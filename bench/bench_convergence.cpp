// E2 — claim C1: the algorithm solves Complete Visibility in ASYNC, across
// every configuration family, adversary, and (for the comparators) their
// home schedulers. Every row must read 100% converged / visible /
// collision-free for the paper's algorithm.
#include "analysis/campaign.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace lumen;

namespace {

struct MatrixRow {
  std::string algorithm;
  sim::SchedulerKind scheduler;
  sched::AdversaryKind adversary;
  gen::ConfigFamily family;
};

void run_row(const MatrixRow& row, std::size_t n, std::size_t seeds,
             util::Table& table, bool& all_ok) {
  analysis::CampaignSpec spec;
  spec.algorithm = row.algorithm;
  spec.family = row.family;
  spec.n = n;
  spec.runs = seeds;
  spec.run.scheduler = row.scheduler;
  spec.run.adversary = row.adversary;
  const auto result = analysis::run_campaign(spec);
  const bool ok = result.converged_count() == seeds &&
                  result.visibility_ok_count() == seeds;
  all_ok = all_ok && ok;
  table.row()
      .cell(row.algorithm)
      .cell(to_string(row.scheduler))
      .cell(row.scheduler == sim::SchedulerKind::kAsync ? to_string(row.adversary)
                                                        : "-")
      .cell(gen::to_string(row.family))
      .cell(result.converged_count())
      .cell(result.visibility_ok_count())
      .cell(result.collision_free_count())
      .cell(seeds)
      .cell(result.epochs().mean, 1);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "robots per run", "24").flag("seeds", "seeds per row", "3");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));

  util::Table table({"algorithm", "scheduler", "adversary", "family", "converged",
                     "visible", "collision-free", "runs", "epochs"});
  bool all_ok = true;

  // The paper's algorithm: full ASYNC matrix.
  for (const auto family : gen::all_families()) {
    for (const auto adversary :
         {sched::AdversaryKind::kUniform, sched::AdversaryKind::kBursty}) {
      run_row({"async-log", sim::SchedulerKind::kAsync, adversary, family}, n,
              seeds, table, all_ok);
    }
  }
  // Hard adversaries on two representative families.
  for (const auto adversary :
       {sched::AdversaryKind::kStallOne, sched::AdversaryKind::kLockstep}) {
    run_row({"async-log", sim::SchedulerKind::kAsync, adversary,
             gen::ConfigFamily::kUniformDisk},
            n, seeds, table, all_ok);
    run_row({"async-log", sim::SchedulerKind::kAsync, adversary,
             gen::ConfigFamily::kRingWithCore},
            n, seeds, table, all_ok);
  }
  // async-log also works under the weaker schedulers.
  run_row({"async-log", sim::SchedulerKind::kSsync, sched::AdversaryKind::kUniform,
           gen::ConfigFamily::kUniformDisk},
          n, seeds, table, all_ok);
  run_row({"async-log", sim::SchedulerKind::kFsync, sched::AdversaryKind::kUniform,
           gen::ConfigFamily::kUniformDisk},
          n, seeds, table, all_ok);
  // Comparators on their home turf.
  for (const auto family :
       {gen::ConfigFamily::kUniformDisk, gen::ConfigFamily::kRingWithCore,
        gen::ConfigFamily::kCollinear}) {
    run_row({"seq-baseline", sim::SchedulerKind::kAsync,
             sched::AdversaryKind::kUniform, family},
            n, seeds, table, all_ok);
    run_row({"ssync-parallel", sim::SchedulerKind::kFsync,
             sched::AdversaryKind::kUniform, family},
            n, seeds, table, all_ok);
  }

  table.print(std::cout, "E2: convergence matrix (claim C1)");
  std::printf("\nclaim C1 (every run converged with verified complete "
              "visibility): %s\n",
              all_ok ? "REPRODUCED" : "NOT REPRODUCED");
  return all_ok ? 0 : 1;
}
