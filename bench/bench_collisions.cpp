// E4 — claim C4: collision-freedom, plus the ablation that justifies the
// beacon handshake.
//
// Two levels of the property are measured over the CONTINUOUS motion
// (closed-form closest approach between all trajectory pairs):
//   * physical collision-freedom (the claim's substance): no two robots
//     ever coincide, and the global closest approach stays far above zero;
//   * strict geometric path-disjointness: additionally, no two
//     time-overlapping move paths cross. The reconstruction allows rare
//     TIME-SEPARATED crossings of long-haul flights (DESIGN.md §7, D5);
//     they are reported in their own column and are NOT collisions — the
//     min-separation column shows how far apart the robots stayed.
// The ablation rows run the same geometry WITHOUT the handshake
// (ssync-parallel) under ASYNC: position collisions and tiny separations
// appear, demonstrating what the handshake buys.
#include "analysis/campaign.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <limits>

using namespace lumen;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "robots per run", "96").flag("seeds", "seeds per row", "6");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));

  util::Table table({"algorithm", "adversary", "family", "runs", "position-coll",
                     "min separation", "phantom crossings"});

  bool guarded_clean = true;
  double guarded_min_sep = std::numeric_limits<double>::infinity();
  std::size_t ablation_incidents = 0;
  double ablation_min_sep = std::numeric_limits<double>::infinity();

  const auto run_row = [&](const std::string& algorithm,
                           sched::AdversaryKind adversary,
                           gen::ConfigFamily family) {
    analysis::CampaignSpec spec;
    spec.algorithm = algorithm;
    spec.family = family;
    spec.n = n;
    spec.runs = seeds;
    spec.run.adversary = adversary;
    spec.audit_collisions = true;
    const auto result = analysis::run_campaign(spec);
    std::size_t collisions = 0, crossings = 0;
    double min_sep = std::numeric_limits<double>::infinity();
    for (const auto& m : result.runs) {
      collisions += m.position_collisions;
      crossings += m.path_crossings;
      min_sep = std::min(min_sep, m.min_observed_separation);
    }
    if (algorithm == "async-log") {
      guarded_clean = guarded_clean && collisions == 0;
      guarded_min_sep = std::min(guarded_min_sep, min_sep);
    } else {
      ablation_incidents += collisions + crossings;
      ablation_min_sep = std::min(ablation_min_sep, min_sep);
    }
    table.row()
        .cell(algorithm)
        .cell(to_string(adversary))
        .cell(gen::to_string(family))
        .cell(result.runs.size())
        .cell(collisions)
        .cell(min_sep, 4)
        .cell(crossings);
  };

  // Part 1: the guarded algorithm across adversaries and hard families.
  for (const auto adversary :
       {sched::AdversaryKind::kUniform, sched::AdversaryKind::kBursty,
        sched::AdversaryKind::kLockstep}) {
    run_row("async-log", adversary, gen::ConfigFamily::kUniformDisk);
  }
  run_row("async-log", sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kGaussianBlob);
  run_row("async-log", sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kDenseDiameter);
  run_row("async-log", sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kCollinear);
  // Part 2: the ablation (no handshake) under the same ASYNC conditions.
  run_row("ssync-parallel", sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kUniformDisk);
  run_row("ssync-parallel", sched::AdversaryKind::kLockstep,
          gen::ConfigFamily::kUniformDisk);

  table.print(std::cout,
              "E4: continuous collision audit (claim C4) + handshake ablation");
  const bool reproduced = guarded_clean && guarded_min_sep > 1e-9;
  std::printf("\nclaim C4 (async-log: zero position collisions, closest "
              "approach %.2e > 0): %s\n",
              guarded_min_sep, reproduced ? "REPRODUCED" : "NOT REPRODUCED");
  std::printf("ablation (removing the handshake degrades safety under "
              "ASYNC): %s (%zu incidents, closest approach %.2e)\n",
              ablation_incidents > 0 ? "CONFIRMED" : "not observed",
              ablation_incidents, ablation_min_sep);
  return reproduced ? 0 : 1;
}
