// E8 — ablations of the design choices DESIGN.md calls out.
//
// Each row removes or varies one mechanism and reports what it costs:
//   * handshake OFF (ssync-parallel under ASYNC): safety degrades — position
//     collisions / tiny separations appear (the C4 ablation, also in E4);
//   * side-popper guard factor: the proximity radius side robots keep from
//     movers (the algorithm's only remaining tunable guard);
//   * frame refresh OFF: one fixed random frame per robot instead of full
//     per-Look disorientation — epochs must not change materially (the
//     algorithm is frame-invariant);
//   * NON-RIGID movement (extension): the adversary may stop any move after
//     min-progress delta; the protocol self-heals by re-planning, costing
//     extra moves and epochs but no safety.
#include "analysis/campaign.hpp"
#include "core/cv_async.hpp"
#include "sim/monitors.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <limits>

using namespace lumen;

namespace {

struct RowStats {
  double epochs = 0.0;
  double moves = 0.0;
  std::size_t collisions = 0;
  double min_sep = std::numeric_limits<double>::infinity();
  std::size_t converged = 0;
};

RowStats aggregate(const analysis::CampaignResult& result) {
  RowStats s;
  s.epochs = result.epochs().mean;
  s.moves = result.moves().mean;
  s.converged = result.converged_count();
  for (const auto& m : result.runs) {
    s.collisions += m.position_collisions;
    s.min_sep = std::min(s.min_sep, m.min_observed_separation);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "robots per run", "96").flag("seeds", "seeds per row", "5");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));

  util::Table table({"variant", "converged", "epochs(mean)", "moves(mean)",
                     "position-coll", "min separation"});

  analysis::CampaignSpec base;
  base.n = n;
  base.runs = seeds;
  base.audit_collisions = true;

  const auto add_row = [&](const char* label, const analysis::CampaignSpec& spec) {
    const RowStats s = aggregate(analysis::run_campaign(spec));
    table.row()
        .cell(label)
        .cell(s.converged)
        .cell(s.epochs, 1)
        .cell(s.moves, 1)
        .cell(s.collisions)
        .cell(s.min_sep, 4);
    return s;
  };

  const RowStats reference = add_row("async-log (reference)", base);

  {
    analysis::CampaignSpec spec = base;
    spec.algorithm = "ssync-parallel";  // Handshake removed.
    add_row("no handshake (ablation)", spec);
  }
  {
    analysis::CampaignSpec spec = base;
    spec.run.refresh_frames_each_look = false;
    add_row("fixed frames", spec);
  }
  {
    analysis::CampaignSpec spec = base;
    spec.run.rigid_moves = false;
    add_row("non-rigid moves (ext.)", spec);
  }

  table.print(std::cout, "E8: design-choice ablations (N fixed, ASYNC uniform)");
  std::printf("\nreference async-log: %zu/%zu converged, %.1f epochs, zero "
              "position collisions expected.\n",
              reference.converged, seeds, reference.epochs);
  const bool ok = reference.converged == seeds && reference.collisions == 0;
  return ok ? 0 : 1;
}
