// E7 — substrate microbenchmarks (google-benchmark).
//
// Throughput of the kernels everything else is built on: robust orientation
// predicate (filtered vs forced-exact), convex hull, obstructed-visibility
// sweep (vs the O(n^3) oracle), smallest enclosing circle, snapshot
// construction, and one full ASYNC engine run per size.
#include <benchmark/benchmark.h>

#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "geom/circle.hpp"
#include "geom/hull.hpp"
#include "geom/predicates.hpp"
#include "geom/visibility.hpp"
#include "model/snapshot.hpp"
#include "sim/run.hpp"
#include "util/prng.hpp"

namespace {

using lumen::geom::Vec2;

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed) {
  lumen::util::Prng rng{seed};
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});
  }
  return pts;
}

void BM_Orient2dFiltered(benchmark::State& state) {
  const auto pts = random_points(3072, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const int s = lumen::geom::orient2d(pts[i], pts[i + 1], pts[i + 2]);
    benchmark::DoNotOptimize(s);
    i = (i + 3) % 3069;
  }
}
BENCHMARK(BM_Orient2dFiltered);

void BM_Orient2dExactPath(benchmark::State& state) {
  // Collinear triples force the exact expansion fallback.
  const Vec2 a{0.1, 0.2}, b{0.2, 0.4}, c{0.4, 0.8};
  for (auto _ : state) {
    const int s = lumen::geom::detail::orient2d_exact_sign(a, b, c);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Orient2dExactPath);

void BM_ConvexHull(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto hull = lumen::geom::convex_hull_indices(pts);
    benchmark::DoNotOptimize(hull);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexHull)->Range(64, 4096)->Complexity(benchmark::oNLogN);

void BM_VisibilityFast(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto g = lumen::geom::compute_visibility(pts);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VisibilityFast)->Range(32, 512)->Complexity();

void BM_VisibilityNaiveOracle(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto g = lumen::geom::compute_visibility_naive(pts);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VisibilityNaiveOracle)->Range(32, 256)->Complexity();

void BM_SmallestEnclosingCircle(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto c = lumen::geom::smallest_enclosing_circle(pts);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SmallestEnclosingCircle)->Range(64, 4096);

void BM_BuildSnapshot(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 5);
  const std::vector<lumen::model::Light> lights(pts.size(),
                                                lumen::model::Light::kOff);
  lumen::util::Prng rng{6};
  const auto frame = lumen::model::LocalFrame::random(pts[0], rng);
  for (auto _ : state) {
    auto snap = lumen::model::build_snapshot(pts, lights, 0, frame);
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_BuildSnapshot)->Range(32, 1024);

void BM_FullAsyncRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto algo = lumen::core::make_algorithm("async-log");
  const auto initial =
      lumen::gen::generate(lumen::gen::ConfigFamily::kUniformDisk, n, 7);
  for (auto _ : state) {
    lumen::sim::RunConfig config;
    config.seed = 7;
    auto run = lumen::sim::run_simulation(*algo, initial, config);
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullAsyncRun)->RangeMultiplier(2)->Range(16, 64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
