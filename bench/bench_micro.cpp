// E7 — substrate microbenchmarks (google-benchmark).
//
// Throughput of the kernels everything else is built on: robust orientation
// predicate (filtered vs forced-exact), convex hull, the single-observer
// angular sweep (warmed scratch, allocation-counted), whole-graph
// obstructed visibility serial vs pooled (vs the O(n^3) oracle), smallest
// enclosing circle, snapshot construction (allocating vs scratch-reusing,
// with a heap-allocation counter), one full SSYNC round serial vs pooled,
// and one full ASYNC engine run per size.
//
// bench/baselines/seed_bench_micro.json holds the pre-kernel-rewrite
// numbers; bench/compare_bench.py gates CI on regressions against the
// committed baseline.
//
// Output: unless --benchmark_out is passed explicitly, results are also
// written as machine-readable JSON to bench_micro.json (console output
// stays human-readable); CI archives the JSON artifact.
#include <benchmark/benchmark.h>

#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "geom/circle.hpp"
#include "geom/hull.hpp"
#include "geom/predicates.hpp"
#include "geom/simd.hpp"
#include "geom/visibility.hpp"
#include "model/snapshot.hpp"
#include "sim/run.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <vector>

// Heap-allocation counter for the zero-allocation claims: every global new
// in this binary bumps the counter; benchmarks report the per-iteration
// delta as a counter column (and in the JSON). Atomic because the pooled
// benchmarks allocate from worker threads (relaxed: only totals matter).
namespace {
std::atomic<std::size_t> g_alloc_count{0};

std::size_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace

// GCC inlines these replacements into google-benchmark's static
// initializers and then flags free() on a new-pointer; the malloc/free
// pairing across the replaced operators is intentional.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using lumen::geom::Vec2;

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed) {
  lumen::util::Prng rng{seed};
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});
  }
  return pts;
}

void BM_Orient2dFiltered(benchmark::State& state) {
  const auto pts = random_points(3072, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const int s = lumen::geom::orient2d(pts[i], pts[i + 1], pts[i + 2]);
    benchmark::DoNotOptimize(s);
    i = (i + 3) % 3069;
  }
}
BENCHMARK(BM_Orient2dFiltered);

void BM_Orient2dExactPath(benchmark::State& state) {
  // Collinear triples force the exact expansion fallback.
  const Vec2 a{0.1, 0.2}, b{0.2, 0.4}, c{0.4, 0.8};
  for (auto _ : state) {
    const int s = lumen::geom::detail::orient2d_exact_sign(a, b, c);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Orient2dExactPath);

void BM_ConvexHull(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto hull = lumen::geom::convex_hull_indices(pts);
    benchmark::DoNotOptimize(hull);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexHull)->Range(64, 4096)->Complexity(benchmark::oNLogN);

void BM_VisibleFrom(benchmark::State& state) {
  // Single-observer angular sweep on warmed scratch — the exact kernel one
  // Look executes. The counter column pins the zero-allocation claim for
  // the steady-state Look path.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 3);
  lumen::geom::VisibilityScratch scratch;
  std::vector<std::size_t> out;
  lumen::geom::visible_from(pts, 0, scratch, out);  // Warm.
  const std::size_t allocs_before = alloc_count();
  std::size_t i = 0;
  for (auto _ : state) {
    lumen::geom::visible_from(pts, i, scratch, out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % n;
  }
  state.counters["heap_allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_count() - allocs_before) /
      static_cast<double>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VisibleFrom)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_VisibleFromSoA(benchmark::State& state) {
  // The split-array kernel exactly as sim::WorldState feeds it: the
  // key-build loop streams xs/ys directly instead of materialising Vec2
  // pairs. Output is bit-identical to BM_VisibleFrom's AoS form; the delta
  // between the two families is pure memory-layout effect.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 3);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t j = 0; j < n; ++j) {
    xs[j] = pts[j].x;
    ys[j] = pts[j].y;
  }
  lumen::geom::VisibilityScratch scratch;
  std::vector<std::size_t> out;
  lumen::geom::visible_from(xs, ys, 0, scratch, out);  // Warm.
  const std::size_t allocs_before = alloc_count();
  std::size_t i = 0;
  for (auto _ : state) {
    lumen::geom::visible_from(xs, ys, i, scratch, out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % n;
  }
  state.counters["heap_allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_count() - allocs_before) /
      static_cast<double>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VisibleFromSoA)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(65536)
    ->Complexity();

void BM_BuildKeys(benchmark::State& state) {
  // The batched SoA key build in isolation — the stage the SIMD dispatch
  // vectorizes (subtraction, half-plane split, diamond key, presort
  // records). Runs at whatever level the dispatcher selected; set
  // LUMEN_SIMD=scalar|sse2|avx2 to pin one. The context section records
  // the level this binary actually ran.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 3);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t j = 0; j < n; ++j) {
    xs[j] = pts[j].x;
    ys[j] = pts[j].y;
  }
  lumen::geom::VisibilityScratch scratch;
  const lumen::geom::Vec2 o{xs[0], ys[0]};
  lumen::geom::simd::build_keys_soa(xs.data(), ys.data(), n, 0, o, scratch);
  const std::size_t allocs_before = alloc_count();
  std::size_t i = 0;
  for (auto _ : state) {
    lumen::geom::simd::build_keys_soa(xs.data(), ys.data(), n, i,
                                      {xs[i], ys[i]}, scratch);
    benchmark::DoNotOptimize(scratch.upper.data());
    benchmark::DoNotOptimize(scratch.lower.data());
    i = (i + 1) % n;
  }
  state.counters["heap_allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_count() - allocs_before) /
      static_cast<double>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildKeys)->Arg(256)->Arg(4096)->Arg(65536)->Complexity(benchmark::oN);

void BM_HullCull(benchmark::State& state) {
  // The batched Akl–Toussaint certify-only cull in isolation: one mask
  // sweep over n points against the coordinate-extreme quad.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 2);
  std::size_t iw = 0, ie = 0, is = 0, in = 0;
  for (std::size_t j = 1; j < n; ++j) {
    if (pts[j].x < pts[iw].x) iw = j;
    if (pts[j].x > pts[ie].x) ie = j;
    if (pts[j].y < pts[is].y) is = j;
    if (pts[j].y > pts[in].y) in = j;
  }
  const Vec2 quad[4] = {pts[iw], pts[is], pts[ie], pts[in]};
  std::vector<std::uint8_t> inside(n);
  for (auto _ : state) {
    lumen::geom::simd::hull_cull_mask(pts.data(), n, quad, inside.data());
    benchmark::DoNotOptimize(inside.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HullCull)->Arg(256)->Arg(4096)->Arg(65536)->Complexity(benchmark::oN);

void BM_ComputeVisibility(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto g = lumen::geom::compute_visibility(pts);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComputeVisibility)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_ComputeVisibilityPooled(benchmark::State& state) {
  // Same sweep with the observer loop fanned over a worker pool (one worker
  // per hardware thread). On a single-core host this measures the fan-out
  // overhead, not a speedup; pair with BM_ComputeVisibility to see both.
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 3);
  lumen::util::ThreadPool pool;
  for (auto _ : state) {
    auto g = lumen::geom::compute_visibility(pts, &pool);
    benchmark::DoNotOptimize(g);
  }
  state.counters["pool_workers"] = static_cast<double>(pool.size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComputeVisibilityPooled)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

lumen::sim::RunConfig ssync_round_config() {
  lumen::sim::RunConfig config;
  config.scheduler = lumen::sim::SchedulerKind::kSsync;
  config.activation = lumen::sched::ActivationKind::kAll;
  config.seed = 7;
  config.max_cycles_per_robot = 1;  // Exactly one round per run.
  config.record_moves = false;
  return config;
}

void BM_SsyncRoundStep(benchmark::State& state) {
  // One full SSYNC round with every robot active: N Looks against the same
  // configuration (N angular sorts), N Computes, N commits, N move sweeps.
  // The engine setup cost is O(N) and amortizes into noise at these sizes.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto algo = lumen::core::make_algorithm("ssync-parallel");
  const auto initial =
      lumen::gen::generate(lumen::gen::ConfigFamily::kUniformDisk, n, 7);
  const auto config = ssync_round_config();
  for (auto _ : state) {
    auto run = lumen::sim::run_simulation(*algo, initial, config);
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SsyncRoundStep)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_SsyncRoundStepPooled(benchmark::State& state) {
  // The same round with Look+Compute fanned over RunConfig::pool —
  // bit-identical output (tests/sim_pool_invariance_test.cpp), so this pair
  // of benchmarks isolates what in-run parallelism buys on this host.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto algo = lumen::core::make_algorithm("ssync-parallel");
  const auto initial =
      lumen::gen::generate(lumen::gen::ConfigFamily::kUniformDisk, n, 7);
  lumen::util::ThreadPool pool;
  auto config = ssync_round_config();
  config.pool = &pool;
  for (auto _ : state) {
    auto run = lumen::sim::run_simulation(*algo, initial, config);
    benchmark::DoNotOptimize(run);
  }
  state.counters["pool_workers"] = static_cast<double>(pool.size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SsyncRoundStepPooled)
    ->RangeMultiplier(2)
    ->Range(256, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalRound(benchmark::State& state) {
  // Multi-round SSYNC run with the incremental visibility cache enabled:
  // range(0) robots, range(1) rounds per iteration. Rounds past the second
  // flow through the cache's replay/repair/rebuild triage (admission stores
  // on the second Look), so this family prices the whole write-log pipeline
  // end to end — WorldState commits, arena reuse, cache triage — not just
  // the sort kernel. The 65536-robot single-round entry is the scaling
  // probe: it must complete inside the fixed cache budget (the per-observer
  // cap keeps the footprint bounded; see geom::VisibilityCache), and runs
  // one iteration only because a round at that size is seconds, not micro.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto algo = lumen::core::make_algorithm("ssync-parallel");
  const auto initial =
      lumen::gen::generate(lumen::gen::ConfigFamily::kUniformDisk, n, 7);
  auto config = ssync_round_config();
  config.max_cycles_per_robot = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto run = lumen::sim::run_simulation(*algo, initial, config);
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalRound)
    ->Args({4096, 3})
    ->Args({65536, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_VisibilityNaiveOracle(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto g = lumen::geom::compute_visibility_naive(pts);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VisibilityNaiveOracle)->Range(32, 256)->Complexity();

void BM_SmallestEnclosingCircle(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto c = lumen::geom::smallest_enclosing_circle(pts);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SmallestEnclosingCircle)->Range(64, 4096);

void BM_BuildSnapshot(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 5);
  const std::vector<lumen::model::Light> lights(pts.size(),
                                                lumen::model::Light::kOff);
  lumen::util::Prng rng{6};
  const auto frame = lumen::model::LocalFrame::random(pts[0], rng);
  const std::size_t allocs_before = alloc_count();
  for (auto _ : state) {
    auto snap = lumen::model::build_snapshot(pts, lights, 0, frame);
    benchmark::DoNotOptimize(snap);
  }
  state.counters["heap_allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_count() - allocs_before) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BuildSnapshot)->Range(32, 1024);

void BM_BuildSnapshotScratch(benchmark::State& state) {
  // The engine's steady-state Look path: warmed scratch buffers, zero heap
  // traffic (the counter column proves it).
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 5);
  const std::vector<lumen::model::Light> lights(pts.size(),
                                                lumen::model::Light::kOff);
  lumen::util::Prng rng{6};
  const auto frame = lumen::model::LocalFrame::random(pts[0], rng);
  lumen::model::SnapshotScratch scratch;
  lumen::model::Snapshot snap;
  lumen::model::build_snapshot(pts, lights, 0, frame, scratch, snap);  // Warm.
  const std::size_t allocs_before = alloc_count();
  for (auto _ : state) {
    lumen::model::build_snapshot(pts, lights, 0, frame, scratch, snap);
    benchmark::DoNotOptimize(snap);
  }
  state.counters["heap_allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_count() - allocs_before) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BuildSnapshotScratch)->Range(32, 1024);

void BM_FullAsyncRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto algo = lumen::core::make_algorithm("async-log");
  const auto initial =
      lumen::gen::generate(lumen::gen::ConfigFamily::kUniformDisk, n, 7);
  for (auto _ : state) {
    lumen::sim::RunConfig config;
    config.seed = 7;
    auto run = lumen::sim::run_simulation(*algo, initial, config);
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullAsyncRun)->RangeMultiplier(2)->Range(16, 64)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: default to ALSO writing JSON (bench_micro.json) so the
// results are machine-readable without extra flags; any explicit
// --benchmark_out takes precedence.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=bench_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  // library_build_type in the JSON reports how google-benchmark ITSELF was
  // compiled (a debug system package taints it irreparably); what the
  // regression gate must trust is how THIS binary — the code under test —
  // was compiled. compare_bench.py hard-fails on anything but "release".
#ifdef NDEBUG
  benchmark::AddCustomContext("lumen_build_type", "release");
#else
  benchmark::AddCustomContext("lumen_build_type", "debug");
#endif
  benchmark::AddCustomContext(
      "lumen_simd",
      std::string(lumen::geom::simd::to_string(
          lumen::geom::simd::active_level())));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
