#!/usr/bin/env python3
"""Compare two bench_micro JSON files and fail on kernel regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 0.20]
                     [--calibrate BM_Orient2dFiltered] [--all]

Compares real_time of every benchmark present in BOTH files and exits
non-zero if any gated kernel regressed by more than --threshold (fractional;
0.20 = 20%). By default only the visibility and round-step kernels are
gated -- the ones the in-run parallelism and SIMD work optimize and CI
protects:

    BM_VisibleFrom/*  BM_VisibleFromSoA/*  BM_ComputeVisibility/*
    BM_SsyncRoundStep/*  BM_IncrementalRound/*  BM_BuildKeys/*
    BM_HullCull/*

Pass --all to gate every shared benchmark instead.

--calibrate NAME divides every time by the named benchmark's time in its own
file before comparing, turning absolute times into multiples of a tiny
fixed-work probe (the filtered orient2d predicate by default lives in both
files). That cancels first-order host-speed differences, which is what makes
a committed baseline meaningful on heterogeneous CI runners. Calibration is
skipped (with a warning) if the probe is missing from either file.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

GATED_PREFIXES = ("BM_VisibleFrom", "BM_ComputeVisibility/",
                  "BM_ComputeVisibility_", "BM_SsyncRoundStep/",
                  "BM_IncrementalRound/", "BM_BuildKeys/", "BM_HullCull/")


def build_type_of(path):
    """The build type the file was recorded from.

    bench_micro stamps ``lumen_build_type`` into the context from its own
    NDEBUG setting; that is authoritative. ``library_build_type`` (written
    by the benchmark LIBRARY) is the fallback for old files — note distro
    packages of google-benchmark are often debug builds, which makes that
    key "debug" even for a fully optimized bench binary; the lumen key
    exists precisely to disambiguate.
    """
    with open(path) as f:
        ctx = json.load(f).get("context", {})
    return ctx.get("lumen_build_type", ctx.get("library_build_type", "unknown"))


def load_times(path):
    """name -> real_time (ns), aggregate-free plain runs only."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue  # Skip mean/median/stddev aggregates and complexity fits.
        name = entry["name"]
        if "/repeats:" in name:
            continue
        # Normalize to nanoseconds regardless of the per-benchmark unit.
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        times[name] = float(entry["real_time"]) * scale
    return times


def is_gated(name, gate_all):
    if gate_all:
        return True
    return any(name.startswith(p) for p in GATED_PREFIXES)


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max allowed fractional regression on gated "
                         "kernels (default 0.20)")
    ap.add_argument("--calibrate", metavar="NAME", default=None,
                    help="normalize both files by this benchmark's time "
                         "(e.g. BM_Orient2dFiltered) before comparing")
    ap.add_argument("--all", action="store_true",
                    help="gate every shared benchmark, not just the "
                         "visibility/round-step kernels")
    ap.add_argument("--allow-non-release", action="store_true",
                    help="compare files recorded from non-Release builds "
                         "anyway (numbers are meaningless for gating)")
    args = ap.parse_args(argv)

    # Debug-build numbers gate nothing: a baseline recorded from a debug
    # build makes every Release run look 5-10x faster and vice versa. Both
    # sides must be Release builds (the poisoned-baseline failure mode this
    # guard exists for was exactly that: a debug-recorded baseline committed
    # as the reference).
    if not args.allow_non_release:
        bad = [(p, bt) for p, bt in ((args.baseline, build_type_of(args.baseline)),
                                     (args.current, build_type_of(args.current)))
               if bt != "release"]
        if bad:
            for path, bt in bad:
                print(f"error: {path} was recorded from a '{bt}' build; "
                      f"gating requires Release-recorded numbers on both "
                      f"sides (--allow-non-release to compare anyway)",
                      file=sys.stderr)
            return 2

    base = load_times(args.baseline)
    cur = load_times(args.current)

    base_scale = cur_scale = 1.0
    if args.calibrate:
        if args.calibrate in base and args.calibrate in cur:
            base_scale = base[args.calibrate]
            cur_scale = cur[args.calibrate]
            print(f"calibrating by {args.calibrate}: baseline "
                  f"{base_scale:.3g} ns, current {cur_scale:.3g} ns")
        else:
            print(f"warning: --calibrate {args.calibrate} missing from one "
                  f"side; comparing raw times", file=sys.stderr)

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("error: no shared benchmarks between the two files",
              file=sys.stderr)
        return 2
    # Benchmarks present in only one file are expected across revisions
    # (kernels get added and retired); warn so renames don't silently
    # shrink the gated set, then compare the intersection.
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    if only_base:
        print(f"warning: {len(only_base)} benchmark(s) only in baseline, "
              f"skipped: {', '.join(only_base)}", file=sys.stderr)
    if only_cur:
        print(f"warning: {len(only_cur)} benchmark(s) only in current, "
              f"skipped: {', '.join(only_cur)}", file=sys.stderr)

    failures = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name in shared:
        b = base[name] / base_scale
        c = cur[name] / cur_scale
        ratio = c / b if b > 0 else float("inf")
        gated = is_gated(name, args.all)
        flag = ""
        if gated and ratio > 1.0 + args.threshold:
            failures.append((name, ratio))
            flag = "  << REGRESSION"
        elif gated:
            flag = "  (gated)"
        print(f"{name:<44} {b:>12.4g} {c:>12.4g} {ratio:>8.3f}{flag}")

    # Per-family roll-up: geometric mean of the before/after ratios of every
    # size in the family (the name up to the first '/'), so a sweep like
    # BM_VisibleFromSoA/{256,4096,65536} reads as one number and a
    # regression confined to a single size still stands out above.
    families = {}
    for name in shared:
        fam = name.split("/")[0]
        b = base[name] / base_scale
        c = cur[name] / cur_scale
        if b > 0 and c > 0:
            families.setdefault(fam, []).append(c / b)
    print(f"\n{'family':<44} {'n':>3} {'geomean ratio':>14}")
    for fam in sorted(families):
        ratios = families[fam]
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print(f"{fam:<44} {len(ratios):>3} {geo:>14.3f}")

    if failures:
        print(f"\nFAIL: {len(failures)} gated kernel(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1
    print(f"\nOK: no gated kernel regressed more than {args.threshold:.0%} "
          f"({len(shared)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
