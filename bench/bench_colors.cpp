// E3 — claim C3: O(1) colors. The number of DISTINCT light colors displayed
// over an entire execution must not grow with N (the palette has 7 colors;
// a typical run uses 4-6 of them depending on which rules fire).
#include "analysis/campaign.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace lumen;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("ns", "N sweep", "4,8,16,32,64,128,256").flag("seeds", "seeds per N", "5");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));

  util::Table table({"N", "family", "max colors used", "palette bound"});
  std::size_t overall_max = 0;
  bool bounded = true;
  for (const auto family :
       {gen::ConfigFamily::kUniformDisk, gen::ConfigFamily::kCollinear,
        gen::ConfigFamily::kRingWithCore}) {
    for (const auto n_signed : cli.get_int_list("ns")) {
      analysis::CampaignSpec spec;
      spec.family = family;
      spec.n = static_cast<std::size_t>(n_signed);
      spec.runs = seeds;
      spec.audit_collisions = false;
      const auto result = analysis::run_campaign(spec);
      const std::size_t used = result.max_colors();
      overall_max = std::max(overall_max, used);
      bounded = bounded && used <= model::kLightCount &&
                result.converged_count() == seeds;
      table.row()
          .cell(spec.n)
          .cell(gen::to_string(family))
          .cell(used)
          .cell(model::kLightCount);
    }
  }
  table.print(std::cout, "E3: distinct colors used per execution (claim C3)");
  std::printf("\nmax colors over all runs and sizes: %zu (palette: %zu)\n",
              overall_max, model::kLightCount);
  std::printf("claim C3 (color count constant in N): %s\n",
              bounded ? "REPRODUCED" : "NOT REPRODUCED");
  return bounded ? 0 : 1;
}
