// E6 — the measured counterpart of the paper's algorithm-comparison table.
//
// The paper positions its contribution against (i) the known O(1)-time
// SSYNC algorithm and (ii) the O(N) ASYNC translation. This bench prints
// the same table with MEASURED values from our implementations:
//
//   setting  algorithm       time bound       measured epochs   colors
//   SSYNC    ssync-parallel  O(1)/round-par.  (FSYNC reference)
//   ASYNC    seq-baseline    O(N)
//   ASYNC    async-log       O(log N)         <- the paper's contribution
#include "analysis/campaign.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace lumen;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "robots", "64").flag("seeds", "seeds", "5");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));

  struct Row {
    const char* setting;
    const char* algorithm;
    const char* bound;
    sim::SchedulerKind scheduler;
  };
  const Row rows[] = {
      {"FSYNC", "ssync-parallel", "O(1) rounds/stage", sim::SchedulerKind::kFsync},
      {"SSYNC", "ssync-parallel", "O(1) rounds/stage", sim::SchedulerKind::kSsync},
      {"ASYNC", "seq-baseline", "O(N)", sim::SchedulerKind::kAsync},
      {"ASYNC", "async-log", "O(log N)  [this paper]", sim::SchedulerKind::kAsync},
  };

  util::Table table({"setting", "algorithm", "claimed time", "epochs(mean)",
                     "epochs(p95)", "moves(mean)", "colors", "all verified"});
  double baseline_epochs = 0.0, asynclog_epochs = 0.0;
  for (const Row& row : rows) {
    analysis::CampaignSpec spec;
    spec.algorithm = row.algorithm;
    spec.n = n;
    spec.runs = seeds;
    spec.run.scheduler = row.scheduler;
    // The comparators' collision behaviour is covered in E4; here we audit
    // only the paper's algorithm to stay within the serial time budget.
    spec.audit_collisions = std::string_view(row.algorithm) == "async-log";
    const auto result = analysis::run_campaign(spec);
    const auto epochs = result.epochs();
    const bool verified = result.converged_count() == seeds &&
                          result.visibility_ok_count() == seeds &&
                          result.collision_free_count() == seeds;
    if (std::string_view(row.algorithm) == "seq-baseline") baseline_epochs = epochs.mean;
    if (std::string_view(row.algorithm) == "async-log" &&
        row.scheduler == sim::SchedulerKind::kAsync) {
      asynclog_epochs = epochs.mean;
    }
    table.row()
        .cell(row.setting)
        .cell(row.algorithm)
        .cell(row.bound)
        .cell(epochs.mean, 1)
        .cell(epochs.p95, 1)
        .cell(result.moves().mean, 1)
        .cell(result.max_colors())
        .cell(verified ? "yes" : "NO");
  }

  char title[160];
  std::snprintf(title, sizeof title,
                "E6: measured counterpart of the paper's comparison table "
                "(N = %zu, %zu seeds)",
                n, seeds);
  table.print(std::cout, title);
  const double speedup = baseline_epochs / std::max(1.0, asynclog_epochs);
  std::printf("\nasync-log vs O(N)-translation speedup at N=%zu: %.1fx "
              "(paper predicts Theta(N/log N) ~= %.1fx)\n",
              n, speedup,
              static_cast<double>(n) / std::log2(static_cast<double>(n)));
  return speedup > 1.5 ? 0 : 1;
}
