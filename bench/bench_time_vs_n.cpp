// E1 — the headline figure (claims C2 + C5).
//
// Epochs-to-convergence vs N for the paper's ASYNC O(log N) algorithm and
// the O(N) sequential-translation baseline, with least-squares fits against
// both growth models. The paper's claim is reproduced if the async-log
// series is classified O(log N), the baseline series O(N), and the gap
// widens with N.
//
// Flags: --ns=8,16,...  --baseline-ns=...  --seeds=5  --family=uniform-disk
//        --csv=path
#include "analysis/campaign.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace lumen;

namespace {

gen::ConfigFamily family_by_name(const std::string& name) {
  for (const auto f : gen::all_families()) {
    if (gen::to_string(f) == name) return f;
  }
  return gen::ConfigFamily::kUniformDisk;
}

struct Series {
  std::vector<double> ns;
  std::vector<double> epochs_mean;
};

Series run_series(const std::string& algorithm, const std::vector<std::int64_t>& ns,
                  std::size_t seeds, gen::ConfigFamily family, util::Table& table) {
  Series series;
  analysis::CampaignSpec spec;
  spec.algorithm = algorithm;
  spec.family = family;
  spec.runs = seeds;
  spec.audit_collisions = false;  // E4 owns the collision audit.
  for (const auto n_signed : ns) {
    spec.n = static_cast<std::size_t>(n_signed);
    // Fewer seeds at the largest sizes to keep the single-core budget sane.
    spec.runs = spec.n >= 512 ? std::min<std::size_t>(seeds, 3) : seeds;
    const auto result = analysis::run_campaign(spec);
    const auto epochs = result.epochs();
    series.ns.push_back(static_cast<double>(spec.n));
    series.epochs_mean.push_back(epochs.mean);
    table.row()
        .cell(algorithm)
        .cell(spec.n)
        .cell(result.converged_count())
        .cell(result.runs.size())
        .cell(epochs.mean, 1)
        .cell(epochs.stddev, 1)
        .cell(epochs.min, 0)
        .cell(epochs.max, 0);
    std::fflush(stdout);
  }
  return series;
}

void print_fit(const char* label, const Series& s) {
  const auto verdict = util::classify_growth(s.ns, s.epochs_mean);
  std::printf(
      "%-14s best model: %-9s | log fit: epochs ~ %.2f + %.2f*log2(N) "
      "(R^2=%.4f) | linear fit: epochs ~ %.2f + %.3f*N (R^2=%.4f)\n",
      label, util::to_string(verdict.winner).c_str(), verdict.log_fit.intercept,
      verdict.log_fit.slope, verdict.log_fit.r_squared, verdict.lin_fit.intercept,
      verdict.lin_fit.slope, verdict.lin_fit.r_squared);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("ns", "N sweep for async-log", "8,16,32,64,128,256,512")
      .flag("baseline-ns", "N sweep for seq-baseline", "8,16,32,64,128,256")
      .flag("seeds", "seeds per point", "5")
      .flag("family", "initial configuration family", "uniform-disk")
      .flag("csv", "also write rows as CSV to this path", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("bench_time_vs_n", "headline scaling figure").c_str());
    return 0;
  }

  const auto family = family_by_name(cli.get("family"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));

  util::Table table({"algorithm", "N", "converged", "runs", "epochs(mean)",
                     "epochs(sd)", "min", "max"});
  const Series fast =
      run_series("async-log", cli.get_int_list("ns"), seeds, family, table);
  const Series slow = run_series("seq-baseline", cli.get_int_list("baseline-ns"),
                                 seeds, family, table);

  table.print(std::cout,
              "E1 (headline): epochs to Complete Visibility vs N, ASYNC "
              "scheduler, uniform adversary");
  std::printf("\n");
  print_fit("async-log", fast);
  print_fit("seq-baseline", slow);

  const std::string csv = cli.get("csv");
  if (!csv.empty() && !table.save_csv(csv)) {
    std::fprintf(stderr, "failed to write %s\n", csv.c_str());
  }

  // Machine-checkable verdicts for EXPERIMENTS.md. With only ~7 sweep
  // points an R^2 contest between the two models is weak (a gentle series
  // fits a small-slope line almost as well as a logarithm), so the shape
  // discriminator is the DOUBLING RATIO: logarithmic growth adds a constant
  // per doubling (ratio -> 1 for large N), linear growth doubles
  // (ratio -> 2). We require the async series' average ratio over the last
  // three doublings to stay below 1.8 while the baseline's reaches it.
  const auto avg_doubling_ratio = [](const Series& s) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = s.ns.size() >= 4 ? s.ns.size() - 3 : 1; i < s.ns.size();
         ++i) {
      if (s.epochs_mean[i - 1] > 0.0 && s.ns[i] == 2.0 * s.ns[i - 1]) {
        sum += s.epochs_mean[i] / s.epochs_mean[i - 1];
        ++count;
      }
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  };
  const double fast_ratio = avg_doubling_ratio(fast);
  const double slow_ratio = avg_doubling_ratio(slow);
  const auto slow_verdict = util::classify_growth(slow.ns, slow.epochs_mean);
  const bool c2 = fast_ratio > 0.0 && fast_ratio < 1.8;
  const bool c5 = slow_verdict.winner == util::GrowthModel::kLinear &&
                  slow_ratio >= 1.8;
  std::printf("\navg epochs ratio per doubling (last 3 doublings): "
              "async-log %.2f, seq-baseline %.2f\n",
              fast_ratio, slow_ratio);
  std::printf("claim C2 (async-log adds ~constant per doubling — "
              "logarithmic shape, not linear): %s\n",
              c2 ? "REPRODUCED" : "NOT REPRODUCED");
  std::printf("claim C5 (baseline doubles per doubling — linear): %s\n",
              c5 ? "REPRODUCED" : "NOT REPRODUCED");
  return (c2 && c5) ? 0 : 1;
}
