// lumen-bench: the single driver for every paper-reproduction experiment.
//
//   lumen-bench list [--names-only]
//   lumen-bench describe <experiment>
//   lumen-bench run <experiment|all> [flags]
//   lumen-bench hunt [flags]
//
// Each experiment (E1-E6, E8) lives in the analysis::ExperimentRegistry;
// this binary only resolves the spec (defaults -> --spec file -> flag
// overrides), runs it, and hands the structured result to a Reporter.
// E7 (microbenchmarks) stays in the separate bench_micro binary because
// google-benchmark owns its harness. `hunt` drives the adversarial search
// subsystem (src/search): it optimizes an AdversaryPlan against a chosen
// fitness, delta-debugs the winner, and can emit the minimized plan as a
// committable regression scenario (scenarios/adversarial/).
//
// Exit codes: 0 all checks passed (or --smoke), 1 a claim check failed,
// 2 usage/spec error, 3 interrupted (SIGINT/SIGTERM drained gracefully —
// in-flight cells finished, journal and partial report flushed).

#include "analysis/experiments.hpp"
#include "analysis/journal.hpp"
#include "analysis/reporter.hpp"
#include "core/registry.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/worker.hpp"
#include "geom/simd.hpp"
#include "search/experiment.hpp"
#include "search/scenario_io.hpp"
#include "util/cli.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace lumen;

// Graceful shutdown: the handlers only set this flag; cmd_run threads it
// into every campaign as the cooperative stop (cells in flight drain, the
// journal and a partial report are still written) and exits with code 3.
std::atomic<bool> g_stop{false};

void request_stop(int /*signal*/) { g_stop.store(true); }

// Resolved in main(): how the fabric coordinator re-invokes this binary as
// `lumen-bench work` subprocesses.
std::string g_self_exe = "lumen-bench";

std::string self_executable(const char* argv0) {
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !exe.empty()) return exe.string();
  return argv0 != nullptr ? argv0 : "lumen-bench";
}

int usage(std::ostream& os, int code) {
  os << "usage: lumen-bench <command> [args]\n"
        "\n"
        "commands:\n"
        "  list [--names-only]      list registered experiments\n"
        "  describe <experiment>    description + default spec JSON\n"
        "  run <experiment|all>     run one experiment (or every one)\n"
        "  hunt                     adversarial search for worst-case plans\n"
        "  work <lease.json|->      execute one fabric lease (spawned by\n"
        "                           run --workers; \"-\" reads stdin)\n"
        "\n"
        "run flags:\n"
        "  --spec=FILE        load a ScenarioSpec JSON (overrides defaults)\n"
        "  --ns=8,16,32       sweep sizes (fixed-N experiments use the first)\n"
        "  --baseline-ns=...  comparator sweep sizes (E1)\n"
        "  --runs=N           seeds per point\n"
        "  --seed-base=S      run i uses seed S+i\n"
        "  --algorithm=NAME   algorithm under test\n"
        "  --family=NAME      default configuration family\n"
        "  --shard=I/K        run seed indices i with i%K == I; merged\n"
        "                     shards are bit-identical to an unsharded run\n"
        "  --format=pretty|csv|json   reporter (default pretty)\n"
        "  --out=FILE         write the report to FILE instead of stdout\n"
        "  --save-spec=FILE   write the resolved spec JSON and continue\n"
        "  --smoke            shrink the spec to a seconds-long sanity run;\n"
        "                     claim checks are reported but not enforced\n"
        "  --journal=FILE     append one durable JSONL record per finished\n"
        "                     campaign cell (checkpoint for --resume)\n"
        "  --resume=FILE      skip cells already recorded in FILE and merge\n"
        "                     their metrics back (byte-identical to an\n"
        "                     uninterrupted run); implies --journal=FILE\n"
        "  --deadline-ms=T    per-run wall-clock watchdog (0 = off)\n"
        "  --max-attempts=K   retries per hung/throwing cell (default 1)\n"
        "  --retry-backoff-ms=B   base backoff between a cell's attempts\n"
        "  --workers=K        distribute campaign cells across K crash-\n"
        "                     tolerant `lumen-bench work` subprocesses via\n"
        "                     fenced seed-range leases; the report is byte-\n"
        "                     identical to an in-process run (0 = in-process)\n"
        "  --fabric-dir=DIR   lease + shard-journal directory for --workers\n"
        "  --lease-ttl-ms=T   reclaim a lease from a worker silent for T ms\n"
        "  --straggler-factor=F  speculatively re-lease a shard with no\n"
        "                     finished cell for F x the median cell time\n"
        "  --chaos-kill=P     fault injection: SIGKILL a worker with\n"
        "                     probability P after each finished cell\n"
        "  --chaos-seed=S     deterministic chaos stream seed\n"
        "\n"
        "hunt flags:\n"
        "  --fitness=KIND     epochs|min-separation|outcome|all (default all)\n"
        "  --strategy=NAME    mu-lambda|bandit (default mu-lambda)\n"
        "  --algorithm=NAME   algorithm under attack (default async-log)\n"
        "  --family=NAME      initial-configuration family\n"
        "  --scheduler=K      seed plan scheduler (fsync|ssync|async)\n"
        "  --n=N / --n-min / --n-max   swarm-size search range\n"
        "  --seed=S           hunt seed (drives the whole trajectory)\n"
        "  --budget=K         search-loop evaluation budget\n"
        "  --minimize-budget=K  shrinking-minimizer evaluation budget\n"
        "  --keep-fraction=F  minimizer score-retention threshold (0,1]\n"
        "  --emit-dir=DIR     write each minimized winner as a regression\n"
        "                     scenario JSON (the scenarios/adversarial/ form)\n"
        "  --journal/--resume checkpointing, exactly as for run\n"
        "  --smoke            shrink budgets to a seconds-long sanity hunt\n"
        "\n"
        "SIGINT/SIGTERM drain in-flight cells (and, under --workers, the\n"
        "worker fleet), flush the journal and the partial report, and exit\n"
        "with code 3 — for `run` and `hunt` alike, whichever signal it was;\n"
        "re-run with --resume to pick up where the interrupted run left\n"
        "off.\n";
  return code;
}

int cmd_list(const std::vector<std::string>& args) {
  const bool names_only =
      std::find(args.begin(), args.end(), "--names-only") != args.end();
  for (const auto& e : analysis::ExperimentRegistry::instance().experiments()) {
    if (names_only) {
      std::cout << e.name << "\n";
    } else {
      std::printf("%-4s %-12s %s\n", e.id.c_str(), e.name.c_str(),
                  e.description.substr(0, e.description.find(':')).c_str());
    }
  }
  // --names-only stays experiments-only: CI's smoke loop feeds each printed
  // name back into `lumen-bench run`.
  if (!names_only) {
    std::printf("\nalgorithms (plugin contract — pass via --algorithm):\n");
    for (const auto& a : core::algorithm_infos()) {
      std::printf("  %-15s motion=%-10s palette=%zu predicate=%s\n",
                  std::string(a.name).c_str(),
                  std::string(model::to_string(a.motion_model)).c_str(),
                  a.palette_size, std::string(a.success_predicate).c_str());
    }
  }
  return 0;
}

int cmd_describe(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "error: describe needs an experiment or algorithm name\n";
    return 2;
  }
  // Numbers read off this host depend on which batch-kernel ISA the
  // geometry layer dispatched to; say so up front (the override knob is
  // LUMEN_SIMD=scalar|sse2|avx2|neon, unsupported values clamp down).
  std::cout << "simd dispatch: "
            << geom::simd::to_string(geom::simd::active_level())
            << " (best supported: "
            << geom::simd::to_string(geom::simd::best_supported_level())
            << ", override with LUMEN_SIMD)\n\n";
  const auto* e = analysis::ExperimentRegistry::instance().find(args[0]);
  if (e != nullptr) {
    std::cout << e->id << " " << e->name << "\n\n"
              << e->description << "\n\ndefault spec:\n"
              << analysis::scenario_to_json(e->defaults);
    return 0;
  }
  // Not an experiment — maybe a registered algorithm plugin.
  for (const auto& a : core::algorithm_infos()) {
    if (a.name != args[0]) continue;
    std::cout << "algorithm " << a.name << "\n"
              << "  motion model:      " << model::to_string(a.motion_model)
              << "\n"
              << "  palette size:      " << a.palette_size << "\n"
              << "  success predicate: " << a.success_predicate << "\n";
    return 0;
  }
  std::cerr << "error: unknown experiment or algorithm \"" << args[0]
            << "\" (try `lumen-bench list`)\n";
  return 2;
}

/// Shrinks a spec so every experiment finishes in seconds: at most two
/// sweep sizes, each clamped to <= 16 robots, at most two seeds.
analysis::ScenarioSpec smoke_spec(analysis::ScenarioSpec spec) {
  const auto shrink = [](std::vector<std::size_t>& ns) {
    if (ns.size() > 2) ns.resize(2);
    for (auto& n : ns) n = std::min<std::size_t>(n, 16);
  };
  shrink(spec.ns);
  if (!spec.baseline_ns.empty()) shrink(spec.baseline_ns);
  spec.runs = std::min<std::size_t>(spec.runs, 2);
  return spec;
}

bool apply_overrides(const util::Cli& cli, analysis::ScenarioSpec& spec,
                     std::string& error) {
  const auto int_list = [&](std::string_view flag,
                            std::vector<std::size_t>& out) {
    if (!cli.is_set(flag)) return true;
    const auto values = cli.get_int_list(flag);
    if (!values || values->empty() ||
        std::any_of(values->begin(), values->end(),
                    [](std::int64_t v) { return v <= 0; })) {
      error = std::string("--") + std::string(flag) +
              " must be a comma-separated list of positive integers";
      return false;
    }
    out.assign(values->begin(), values->end());
    return true;
  };
  if (!int_list("ns", spec.ns)) return false;
  if (!int_list("baseline-ns", spec.baseline_ns)) return false;
  if (cli.is_set("runs")) {
    if (cli.get_int("runs") <= 0) {
      error = "--runs must be positive";
      return false;
    }
    spec.runs = static_cast<std::size_t>(cli.get_int("runs"));
  }
  if (cli.is_set("seed-base")) {
    spec.seed_base = static_cast<std::uint64_t>(cli.get_int("seed-base"));
  }
  if (cli.is_set("algorithm")) {
    // Same up-front rejection as the ScenarioSpec JSON parser: a typo must
    // fail here with the valid-name list, not surface later as an empty
    // campaign full of kSpecInvalid cells.
    const auto names = core::algorithm_names();
    if (std::find(names.begin(), names.end(), cli.get("algorithm")) ==
        names.end()) {
      error = "--algorithm: unknown algorithm \"" + cli.get("algorithm") +
              "\"; valid: " + core::algorithm_names_joined();
      return false;
    }
    spec.algorithm = cli.get("algorithm");
  }
  if (cli.is_set("family")) {
    const auto family = gen::family_from_string(cli.get("family"));
    if (!family) {
      error = "unknown --family \"" + cli.get("family") + "\"";
      return false;
    }
    spec.family = *family;
  }
  if (cli.is_set("shard")) {
    const std::string shard = cli.get("shard");
    const auto slash = shard.find('/');
    const auto index = util::parse_int_list(shard.substr(0, slash));
    const auto count = slash == std::string::npos
                           ? std::nullopt
                           : util::parse_int_list(shard.substr(slash + 1));
    if (!index || !count || index->size() != 1 || count->size() != 1 ||
        (*index)[0] < 0 || (*count)[0] <= 0 || (*index)[0] >= (*count)[0]) {
      error = "--shard must be I/K with 0 <= I < K";
      return false;
    }
    spec.shard_index = static_cast<std::size_t>((*index)[0]);
    spec.shard_count = static_cast<std::size_t>((*count)[0]);
  }
  if (cli.is_set("deadline-ms")) {
    if (cli.get_int("deadline-ms") < 0) {
      error = "--deadline-ms must be non-negative";
      return false;
    }
    spec.run.deadline_ms = static_cast<std::uint64_t>(cli.get_int("deadline-ms"));
  }
  if (cli.is_set("max-attempts")) {
    if (cli.get_int("max-attempts") <= 0) {
      error = "--max-attempts must be positive";
      return false;
    }
    spec.max_attempts = static_cast<std::size_t>(cli.get_int("max-attempts"));
  }
  if (cli.is_set("retry-backoff-ms")) {
    if (cli.get_int("retry-backoff-ms") < 0) {
      error = "--retry-backoff-ms must be non-negative";
      return false;
    }
    spec.retry_backoff_ms =
        static_cast<std::uint64_t>(cli.get_int("retry-backoff-ms"));
  }
  return true;
}

int cmd_run(const std::vector<std::string>& raw_args) {
  util::Cli cli;
  cli.flag("spec", "ScenarioSpec JSON file overriding the defaults");
  cli.flag("ns", "sweep sizes, e.g. 8,16,32");
  cli.flag("baseline-ns", "comparator sweep sizes (E1)");
  cli.flag("runs", "seeds per point");
  cli.flag("seed-base", "run i uses seed seed-base + i");
  cli.flag("algorithm", "algorithm under test");
  cli.flag("family", "default configuration family");
  cli.flag("shard", "I/K seed-range shard");
  cli.flag("format", "pretty|csv|json", "pretty");
  cli.flag("out", "write the report to this file instead of stdout");
  cli.flag("save-spec", "write the resolved spec JSON to this file");
  cli.flag("smoke", "tiny sanity run; checks reported, not enforced");
  cli.flag("journal", "append a durable record per finished campaign cell");
  cli.flag("resume", "skip cells journaled in this file; implies --journal");
  cli.flag("deadline-ms", "per-run wall-clock watchdog, 0 = off");
  cli.flag("max-attempts", "retries per hung/throwing cell");
  cli.flag("retry-backoff-ms", "base backoff between a cell's attempts");
  cli.flag("workers", "fabric worker subprocesses (0 = in-process)", "0");
  cli.flag("fabric-dir", "lease/shard-journal directory", ".lumen-fabric");
  cli.flag("lease-ttl-ms", "reclaim a worker silent this long", "5000");
  cli.flag("straggler-factor", "re-lease after F x median cell time, 0 = off",
           "0");
  cli.flag("chaos-kill", "P(SIGKILL a worker after each cell), 0 = off", "0");
  cli.flag("chaos-seed", "deterministic chaos stream seed", "0");

  std::vector<const char*> argv = {"lumen-bench run"};
  for (const auto& a : raw_args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    std::cerr << "error: " << cli.error() << "\n";
    return 2;
  }
  if (cli.help_requested()) return usage(std::cout, 0);
  if (cli.positional().empty()) {
    std::cerr << "error: run needs an experiment name (or `all`)\n";
    return 2;
  }

  const auto& registry = analysis::ExperimentRegistry::instance();
  std::vector<const analysis::Experiment*> selected;
  if (cli.positional()[0] == "all") {
    for (const auto& e : registry.experiments()) selected.push_back(&e);
  } else {
    for (const auto& name : cli.positional()) {
      const auto* e = registry.find(name);
      if (e == nullptr) {
        std::cerr << "error: unknown experiment \"" << name
                  << "\" (try `lumen-bench list`)\n";
        return 2;
      }
      selected.push_back(e);
    }
  }

  const auto reporter = analysis::make_reporter(cli.get("format"));
  if (reporter == nullptr) {
    std::cerr << "error: unknown --format \"" << cli.get("format") << "\" ("
              << analysis::reporter_formats() << ")\n";
    return 2;
  }

  std::ofstream out_file;
  if (cli.is_set("out")) {
    out_file.open(cli.get("out"));
    if (!out_file) {
      std::cerr << "error: cannot open --out file " << cli.get("out") << "\n";
      return 2;
    }
  }
  std::ostream& out = cli.is_set("out") ? out_file : std::cout;

  // Resilience plumbing: resume snapshot, checkpoint journal (--resume
  // appends to the same file it resumes from unless --journal overrides),
  // and the signal-driven cooperative stop.
  analysis::JournalSnapshot resume_snapshot;
  bool resuming = false;
  if (cli.is_set("resume")) {
    auto loaded = analysis::load_journal(cli.get("resume"));
    if (!loaded.snapshot) {
      std::cerr << "error: --resume: " << loaded.error << "\n";
      return 2;
    }
    resume_snapshot = std::move(*loaded.snapshot);
    resuming = true;
    std::cerr << "resume: " << resume_snapshot.cell_count()
              << " journaled cell(s) loaded from " << cli.get("resume");
    if (loaded.dropped_partial_lines > 0) {
      std::cerr << " (dropped a torn final record)";
    }
    std::cerr << "\n";
  }
  std::unique_ptr<analysis::CampaignJournal> journal;
  const std::string journal_path = cli.is_set("journal") ? cli.get("journal")
                                   : cli.is_set("resume") ? cli.get("resume")
                                                          : std::string();
  if (!journal_path.empty()) {
    journal = std::make_unique<analysis::CampaignJournal>(journal_path);
    if (!journal->ok()) {
      std::cerr << "error: cannot open --journal file " << journal_path << "\n";
      return 2;
    }
  }
  analysis::ExperimentContext ctx;
  ctx.control.journal = journal.get();
  ctx.control.resume = resuming ? &resume_snapshot : nullptr;
  ctx.control.stop = &g_stop;
  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);

  // --workers: reroute every campaign through the multi-process fabric.
  // The coordinator honors the same journal/resume/stop control, and its
  // report is byte-identical to the in-process run by construction
  // (DESIGN.md §17), so nothing downstream changes.
  fabric::FabricConfig fabric_config;
  if (cli.get_int("workers") < 0 || cli.get_int("lease-ttl-ms") < 0 ||
      cli.get_int("chaos-seed") < 0) {
    std::cerr << "error: --workers, --lease-ttl-ms and --chaos-seed must be "
                 "non-negative\n";
    return 2;
  }
  if (cli.get_double("chaos-kill") < 0.0 || cli.get_double("chaos-kill") > 1.0 ||
      cli.get_double("straggler-factor") < 0.0) {
    std::cerr << "error: --chaos-kill must be in [0, 1] and "
                 "--straggler-factor non-negative\n";
    return 2;
  }
  if (cli.get_int("workers") > 0) {
    fabric_config.workers = static_cast<std::size_t>(cli.get_int("workers"));
    fabric_config.worker_argv = {g_self_exe, "work"};
    fabric_config.dir = cli.get("fabric-dir");
    fabric_config.lease_ttl_ms =
        static_cast<std::uint64_t>(cli.get_int("lease-ttl-ms"));
    fabric_config.straggler_factor = cli.get_double("straggler-factor");
    fabric_config.chaos_kill_rate = cli.get_double("chaos-kill");
    fabric_config.chaos_seed =
        static_cast<std::uint64_t>(cli.get_int("chaos-seed"));
    if (!journal_path.empty()) {
      fabric_config.resume_paths.push_back(journal_path);
    }
    fabric_config.log = [](std::string_view line) {
      std::cerr << line << "\n";
    };
    ctx.runner = [&ctx, fabric_config](const analysis::CampaignSpec& spec) {
      // One subdirectory per campaign key: tokens restart per coordinator
      // run, so distinct campaigns must never share shard-journal paths —
      // while re-running the SAME campaign deliberately lands on its old
      // shard journals and resumes from them.
      fabric::FabricConfig config = fabric_config;
      config.dir += "/";
      config.dir += analysis::campaign_key(spec);
      return fabric::run_fabric_campaign(spec, config, ctx.control).result;
    };
  }

  const bool smoke = cli.get_bool("smoke");
  bool all_passed = true;
  bool interrupted = false;
  bool first = true;
  for (const auto* experiment : selected) {
    analysis::ScenarioSpec spec = experiment->defaults;
    if (cli.is_set("spec")) {
      auto parsed = analysis::load_scenario(cli.get("spec"));
      if (!parsed.spec) {
        std::cerr << "error: --spec: " << parsed.error << "\n";
        return 2;
      }
      spec = *parsed.spec;
    }
    std::string error;
    if (!apply_overrides(cli, spec, error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    if (smoke) spec = smoke_spec(spec);
    if (cli.is_set("save-spec") &&
        !analysis::save_scenario(spec, cli.get("save-spec"))) {
      std::cerr << "error: cannot write --save-spec file "
                << cli.get("save-spec") << "\n";
      return 2;
    }

    const auto result = experiment->run(spec, ctx);
    if (!first) out << "\n";
    first = false;
    reporter->report(result, out);
    out.flush();
    all_passed = all_passed && result.passed();
    if (g_stop.load()) {
      interrupted = true;
      break;
    }
  }
  if (interrupted) {
    std::cerr << "interrupted: in-flight cells drained"
              << (journal != nullptr ? ", journal flushed" : "")
              << "; partial report written. Re-run with --resume="
              << (journal != nullptr ? journal->path() : "<journal>")
              << " to continue.\n";
    return 3;
  }
  // Smoke specs are far below the sizes the claim thresholds were
  // calibrated for (E1 needs >= 4 sweep points), so only report verdicts.
  if (smoke) return 0;
  return all_passed ? 0 : 1;
}

// `hunt`: drive the adversarial search subsystem directly. One hunt per
// requested fitness (default: all three), sharing the same hunt seed; each
// prints its trajectory digest (the cross-pool-size determinism witness)
// and optionally emits its minimized winner as a regression scenario.
int cmd_hunt(const std::vector<std::string>& raw_args) {
  util::Cli cli;
  cli.flag("fitness", "epochs|min-separation|outcome|all", "all");
  cli.flag("strategy", "mu-lambda|bandit", "mu-lambda");
  cli.flag("algorithm", "algorithm under attack", "async-log");
  cli.flag("family", "initial-configuration family");
  cli.flag("scheduler", "seed plan scheduler (fsync|ssync|async)");
  cli.flag("adversary", "seed plan timing adversary");
  cli.flag("activation", "seed plan activation policy");
  cli.flag("n", "pin the swarm size (sets both n-min and n-max)");
  cli.flag("n-min", "smallest swarm size the hunt may try");
  cli.flag("n-max", "largest swarm size the hunt may try");
  cli.flag("seed", "hunt seed; the whole trajectory is a function of it", "1");
  cli.flag("budget", "search-loop evaluation budget", "256");
  cli.flag("population", "mu: survivors per generation", "8");
  cli.flag("offspring", "lambda: children per generation", "16");
  cli.flag("crossover-rate", "P(child gets two parents)", "0.5");
  cli.flag("epsilon", "bandit exploration probability", "0.25");
  cli.flag("batch", "bandit arm pulls per round", "16");
  cli.flag("max-cycles", "per-robot cycle budget per evaluation", "256");
  cli.flag("minimize-budget", "shrinking-minimizer evaluation budget", "96");
  cli.flag("keep-fraction", "minimizer score-retention threshold (0,1]", "1");
  cli.flag("emit-dir", "write each minimized winner as a scenario JSON here");
  cli.flag("journal", "append a durable record per finished evaluation");
  cli.flag("resume", "skip evaluations journaled here; implies --journal");
  cli.flag("out", "write the summary to this file instead of stdout");
  cli.flag("smoke", "shrink budgets to a seconds-long sanity hunt");

  std::vector<const char*> argv = {"lumen-bench hunt"};
  for (const auto& a : raw_args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    std::cerr << "error: " << cli.error() << "\n";
    return 2;
  }
  if (cli.help_requested()) return usage(std::cout, 0);

  // Which fitness functions to hunt.
  std::vector<search::FitnessKind> kinds;
  if (cli.get("fitness") == "all") {
    kinds = search::all_fitness_kinds();
  } else {
    const auto kind = search::fitness_from_string(cli.get("fitness"));
    if (!kind) {
      std::cerr << "error: unknown --fitness \"" << cli.get("fitness")
                << "\" (epochs|min-separation|outcome|all)\n";
      return 2;
    }
    kinds = {*kind};
  }

  search::HuntSpec base;
  const auto strategy = search::strategy_from_string(cli.get("strategy"));
  if (!strategy) {
    std::cerr << "error: unknown --strategy \"" << cli.get("strategy")
              << "\" (mu-lambda|bandit)\n";
    return 2;
  }
  base.strategy = *strategy;
  {
    const auto names = core::algorithm_names();
    if (std::find(names.begin(), names.end(), cli.get("algorithm")) ==
        names.end()) {
      std::cerr << "error: --algorithm: unknown algorithm \""
                << cli.get("algorithm")
                << "\"; valid: " << core::algorithm_names_joined() << "\n";
      return 2;
    }
    base.algorithm = cli.get("algorithm");
  }
  if (cli.is_set("family")) {
    const auto family = gen::family_from_string(cli.get("family"));
    if (!family) {
      std::cerr << "error: unknown --family \"" << cli.get("family") << "\"\n";
      return 2;
    }
    base.family = *family;
  }
  if (cli.is_set("scheduler")) {
    const auto scheduler = sim::scheduler_from_string(cli.get("scheduler"));
    if (!scheduler) {
      std::cerr << "error: unknown --scheduler \"" << cli.get("scheduler")
                << "\" (fsync|ssync|async)\n";
      return 2;
    }
    base.seed_plan.scheduler = *scheduler;
  }
  if (cli.is_set("adversary")) {
    const auto adversary = sched::adversary_from_string(cli.get("adversary"));
    if (!adversary) {
      std::cerr << "error: unknown --adversary \"" << cli.get("adversary")
                << "\"\n";
      return 2;
    }
    base.seed_plan.adversary = *adversary;
  }
  if (cli.is_set("activation")) {
    const auto activation =
        sched::activation_from_string(cli.get("activation"));
    if (!activation) {
      std::cerr << "error: unknown --activation \"" << cli.get("activation")
                << "\"\n";
      return 2;
    }
    base.seed_plan.activation = *activation;
  }
  const auto size_flag = [&](std::string_view flag, std::size_t& out,
                             std::string& error) {
    if (!cli.is_set(flag)) return true;
    if (cli.get_int(flag) <= 0) {
      error = std::string("--") + std::string(flag) + " must be positive";
      return false;
    }
    out = static_cast<std::size_t>(cli.get_int(flag));
    return true;
  };
  std::string error;
  if (cli.is_set("n")) {
    std::size_t n = 0;
    if (!size_flag("n", n, error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    base.bounds.n_min = base.bounds.n_max = n;
  }
  if (!size_flag("n-min", base.bounds.n_min, error) ||
      !size_flag("n-max", base.bounds.n_max, error) ||
      !size_flag("budget", base.budget, error) ||
      !size_flag("population", base.population, error) ||
      !size_flag("offspring", base.offspring, error) ||
      !size_flag("batch", base.batch, error) ||
      !size_flag("max-cycles", base.max_cycles_per_robot, error) ||
      !size_flag("minimize-budget", base.minimize_budget, error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (cli.get_int("seed") < 0) {
    std::cerr << "error: --seed must be non-negative\n";
    return 2;
  }
  base.hunt_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  base.seed_plan.seed = base.hunt_seed;
  base.seed_plan.n = std::clamp(base.seed_plan.n, base.bounds.n_min,
                                base.bounds.n_max);
  base.crossover_rate = cli.get_double("crossover-rate");
  base.epsilon = cli.get_double("epsilon");
  base.keep_fraction = cli.get_double("keep-fraction");

  if (cli.get_bool("smoke")) {
    // The same philosophy as run --smoke: seconds, not minutes. Budgets
    // shrink but nothing else changes, so the smoke hunt still exercises
    // the full propose/evaluate/minimize/emit path.
    base.budget = std::min<std::size_t>(base.budget, 8);
    base.minimize_budget = std::min<std::size_t>(base.minimize_budget, 4);
    base.population = std::min<std::size_t>(base.population, 3);
    base.offspring = std::min<std::size_t>(base.offspring, 4);
    base.batch = std::min<std::size_t>(base.batch, 4);
    base.bounds.n_max = std::min<std::size_t>(base.bounds.n_max, 12);
    base.bounds.n_min = std::min(base.bounds.n_min, base.bounds.n_max);
    base.seed_plan.n = std::clamp(base.seed_plan.n, base.bounds.n_min,
                                  base.bounds.n_max);
    base.max_cycles_per_robot =
        std::min<std::size_t>(base.max_cycles_per_robot, 128);
  }

  std::ofstream out_file;
  if (cli.is_set("out")) {
    out_file.open(cli.get("out"));
    if (!out_file) {
      std::cerr << "error: cannot open --out file " << cli.get("out") << "\n";
      return 2;
    }
  }
  std::ostream& out = cli.is_set("out") ? out_file : std::cout;

  // Same resilience plumbing as cmd_run: every hunt evaluation is a
  // journalable campaign cell, so --journal/--resume work unchanged.
  analysis::JournalSnapshot resume_snapshot;
  bool resuming = false;
  if (cli.is_set("resume")) {
    auto loaded = analysis::load_journal(cli.get("resume"));
    if (!loaded.snapshot) {
      std::cerr << "error: --resume: " << loaded.error << "\n";
      return 2;
    }
    resume_snapshot = std::move(*loaded.snapshot);
    resuming = true;
    std::cerr << "resume: " << resume_snapshot.cell_count()
              << " journaled cell(s) loaded from " << cli.get("resume")
              << "\n";
  }
  std::unique_ptr<analysis::CampaignJournal> journal;
  const std::string journal_path = cli.is_set("journal") ? cli.get("journal")
                                   : cli.is_set("resume") ? cli.get("resume")
                                                          : std::string();
  if (!journal_path.empty()) {
    journal = std::make_unique<analysis::CampaignJournal>(journal_path);
    if (!journal->ok()) {
      std::cerr << "error: cannot open --journal file " << journal_path
                << "\n";
      return 2;
    }
  }
  analysis::CampaignControl control;
  control.journal = journal.get();
  control.resume = resuming ? &resume_snapshot : nullptr;
  control.stop = &g_stop;
  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);

  if (cli.is_set("emit-dir")) {
    std::error_code ec;
    std::filesystem::create_directories(cli.get("emit-dir"), ec);
    if (ec) {
      std::cerr << "error: cannot create --emit-dir " << cli.get("emit-dir")
                << ": " << ec.message() << "\n";
      return 2;
    }
  }

  bool all_found = true;
  bool interrupted = false;
  for (const search::FitnessKind fitness : kinds) {
    search::HuntSpec spec = base;
    spec.fitness = fitness;
    const std::string invalid = search::validate_hunt_spec(spec);
    if (!invalid.empty()) {
      std::cerr << "error: invalid hunt spec: " << invalid << "\n";
      return 2;
    }
    const search::HuntResult result = search::run_hunt(spec, nullptr, control);
    if (!result.error.empty()) {
      std::cerr << "error: " << result.error << "\n";
      return 2;
    }

    out << "fitness " << search::to_string(fitness) << " ["
        << search::to_string(spec.strategy) << ", seed " << spec.hunt_seed
        << "]: " << result.evaluations << " search + "
        << result.minimize_evals << " minimizer evaluations\n";
    if (result.best.has_value()) {
      char score[64];
      std::snprintf(score, sizeof score, "%.6g", result.best->score);
      out << "  best:      score " << score << " ("
          << sim::to_string(result.best->metrics.outcome) << ", "
          << result.best->metrics.epochs << " epochs)  "
          << search::plan_fingerprint(result.best->plan) << "\n";
    } else {
      all_found = false;
      out << "  best:      none (stopped before any evaluation finished)\n";
    }
    if (result.minimized.has_value()) {
      char score[64];
      std::snprintf(score, sizeof score, "%.6g", result.minimized->score);
      out << "  minimized: score " << score << " ("
          << result.minimize_accepted << " accepted shrink steps)  "
          << search::plan_fingerprint(result.minimized->plan) << "\n";
    }
    {
      char digest[32];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(
                        search::hunt_digest(result)));
      out << "  digest:    " << digest << "\n";
    }

    if (cli.is_set("emit-dir") && result.minimized.has_value()) {
      const std::string note =
          "hunt: strategy=" + std::string(search::to_string(spec.strategy)) +
          " seed=" + std::to_string(spec.hunt_seed) +
          " budget=" + std::to_string(spec.budget) +
          " algorithm=" + spec.algorithm;
      const search::AdversarialScenario scenario =
          search::make_regression_scenario(spec, *result.minimized, note);
      const std::string path =
          cli.get("emit-dir") + "/" + std::string(search::to_string(fitness)) +
          "-" + std::string(search::to_string(spec.strategy)) + "-seed" +
          std::to_string(spec.hunt_seed) + ".json";
      if (!search::save_adversarial_scenario(scenario, path)) {
        std::cerr << "error: cannot write scenario file " << path << "\n";
        return 2;
      }
      out << "  emitted:   " << path << "\n";
    }
    out.flush();
    // Either signal counts, even one landing after the last evaluation
    // finished (result.stopped would still be false): the exit-code
    // contract is 3 for ANY drained SIGINT/SIGTERM, same as `run`.
    if (result.stopped || g_stop.load()) {
      interrupted = true;
      break;
    }
  }
  if (interrupted) {
    std::cerr << "interrupted: in-flight evaluations drained"
              << (journal != nullptr ? ", journal flushed" : "")
              << "; re-run with --resume="
              << (journal != nullptr ? journal->path() : "<journal>")
              << " to continue.\n";
    return 3;
  }
  if (cli.get_bool("smoke")) return 0;
  return all_found ? 0 : 1;
}

// `work`: the fabric worker half of run --workers. Reads one lease
// (file path or "-" for stdin), runs the leased shard against its own
// journal, and streams progress events on stdout for the coordinator.
// Exit codes: 0 every leased cell journaled, 2 unusable lease/journal,
// 3 drained on SIGINT/SIGTERM with cells left undone.
int cmd_work(const std::vector<std::string>& args) {
  if (args.size() != 1 || args[0] == "--help" || args[0] == "-h") {
    std::cerr << "usage: lumen-bench work <lease.json|->\n";
    return 2;
  }
  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);
  fabric::WorkerOptions options;
  options.lease_path = args[0];
  options.stop = &g_stop;
  return fabric::run_worker(options);
}

}  // namespace

int main(int argc, char** argv) {
  // E13 registers from the search library (not the analysis registry ctor)
  // so lumen_analysis stays independent of lumen_search; idempotent, and
  // called before any thread exists.
  lumen::search::register_hunt_experiment();
  g_self_exe = self_executable(argc > 0 ? argv[0] : nullptr);
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "--help" || command == "help" || command == "-h") {
    return usage(std::cout, 0);
  }
  if (command == "list") return cmd_list(rest);
  if (command == "describe") return cmd_describe(rest);
  if (command == "run") return cmd_run(rest);
  if (command == "hunt") return cmd_hunt(rest);
  if (command == "work") return cmd_work(rest);
  std::cerr << "error: unknown command \"" << command << "\"\n\n";
  return usage(std::cerr, 2);
}
