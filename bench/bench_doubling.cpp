// E5 — claim C6 (the supporting lemma family): beacon-directed insertion
// grows the corner count geometrically.
//
// For each run we record the hull-corner census at every move completion
// and report the time at which the corner count first reached each power of
// two, plus the growth ratio per stage. Geometric growth (ratio comfortably
// above 1 between consecutive stage times) is the doubling schedule behind
// the O(log N) bound; a linear schedule would show the stage time DOUBLING
// as the corner count doubles.
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sim/run.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <map>

using namespace lumen;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("ns", "N sweep", "64,128,256").flag("seeds", "seeds per N", "3");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  const auto algo = core::make_algorithm("async-log");

  util::Table table({"family", "N", "seed", "initial corners",
                     "corner-count trajectory (at each 2^k threshold: time)"});
  bool geometric = true;

  for (const auto family :
       {gen::ConfigFamily::kGaussianBlob, gen::ConfigFamily::kUniformDisk}) {
    for (const auto n_signed : cli.get_int_list("ns")) {
      const auto n = static_cast<std::size_t>(n_signed);
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto initial = gen::generate(family, n, seed);
        sim::RunConfig config;
        config.seed = seed;
        config.record_hull_history = true;
        const auto run = sim::run_simulation(*algo, initial, config);
        if (!run.converged || run.hull_history.empty()) {
          geometric = false;
          continue;
        }
        // First time each power-of-two corner count is reached.
        std::map<std::size_t, double> first_reach;
        std::size_t running_max = 0;
        for (const auto& sample : run.hull_history) {
          running_max = std::max(running_max, sample.corners);
          for (std::size_t threshold = 4; threshold <= n; threshold *= 2) {
            if (running_max >= threshold && !first_reach.count(threshold)) {
              first_reach[threshold] = sample.time;
            }
          }
          if (running_max >= n && !first_reach.count(n)) {
            first_reach[n] = sample.time;
          }
        }
        std::string trajectory;
        for (const auto& [threshold, time] : first_reach) {
          trajectory += std::to_string(threshold) + "@" +
                        util::format_number(time, 1) + "  ";
        }
        table.row()
            .cell(gen::to_string(family))
            .cell(n)
            .cell(static_cast<std::size_t>(seed))
            .cell(run.hull_history.front().corners)
            .cell(trajectory);
        // Geometric-growth check: total time to reach N corners should be
        // O(stages): bounded by a modest multiple of log2(N) stage-times.
        // Operationally: the time to go from N/2 to N corners must not
        // exceed the total time to reach N/2 corners by more than 4x
        // (a linear schedule spends HALF the robots — and half the time —
        // in that last stretch, so its ratio approaches ~1x total time;
        // the check below asserts the last doubling is not the dominant
        // linear tail).
        if (first_reach.count(n) && first_reach.count(n / 2) &&
            first_reach[n / 2] > 0.0) {
          const double last_stage = first_reach[n] - first_reach[n / 2];
          const double before = first_reach[n / 2];
          if (last_stage > 6.0 * before) geometric = false;
        }
      }
    }
  }

  table.print(std::cout,
              "E5: corner-count growth — time at which each corner-count "
              "threshold is first reached (claim C6)");
  std::printf("\nclaim C6 (corner count grows geometrically, not linearly): %s\n",
              geometric ? "REPRODUCED" : "NOT REPRODUCED");
  return geometric ? 0 : 1;
}
