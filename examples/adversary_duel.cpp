// adversary_duel: pit the three algorithms against every ASYNC adversary on
// one configuration and print the scoreboard — a compact tour of the
// scheduler substrate and the campaign API.
//
//   adversary_duel --n=48 --seeds=3 --family=uniform-disk
#include "analysis/campaign.hpp"
#include "core/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace lumen;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "number of robots", "48")
      .flag("seeds", "seeds per cell", "3")
      .flag("family", "configuration family", "uniform-disk");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s",
                cli.usage("adversary_duel", "algorithms vs adversaries").c_str());
    return 0;
  }

  const auto family = gen::family_from_string(cli.get("family"));
  if (!family) {
    std::fprintf(stderr, "unknown family '%s'\n", cli.get("family").c_str());
    return 2;
  }

  util::Table table({"algorithm", "adversary", "converged", "visible",
                     "collision-free", "epochs(mean)", "epochs(max)"});
  bool paper_algo_clean = true;
  for (const auto& algorithm : core::algorithm_names()) {
    for (const auto adversary :
         {sched::AdversaryKind::kUniform, sched::AdversaryKind::kBursty,
          sched::AdversaryKind::kStallOne, sched::AdversaryKind::kLockstep}) {
      analysis::CampaignSpec spec;
      spec.algorithm = std::string(algorithm);
      spec.family = *family;
      spec.n = static_cast<std::size_t>(cli.get_int("n"));
      spec.runs = static_cast<std::size_t>(cli.get_int("seeds"));
      spec.run.adversary = adversary;
      const auto result = analysis::run_campaign(spec);
      const auto epochs = result.epochs();
      table.row()
          .cell(algorithm)
          .cell(to_string(adversary))
          .cell(result.converged_count())
          .cell(result.visibility_ok_count())
          .cell(result.collision_free_count())
          .cell(epochs.mean, 1)
          .cell(epochs.max, 0);
      if (algorithm == "async-log") {
        paper_algo_clean = paper_algo_clean &&
                           result.converged_count() == spec.runs &&
                           result.collision_free_count() == spec.runs;
      }
    }
  }
  table.print(std::cout, "Algorithms vs ASYNC adversaries");
  std::printf("\nNote: ssync-parallel run under ASYNC is the deliberate "
              "ablation — it lacks the beacon handshake, so incidents in its "
              "collision-free column are EXPECTED (that is what the paper's "
              "handshake is for).\n");
  return paper_algo_clean ? 0 : 1;
}
