// diagnose: post-mortem of a single execution.
//
// Runs one configuration, then rebuilds every robot's view of the FINAL
// configuration (identity frame) and reports what the algorithm would do
// next — the tool for investigating liveness issues in rule changes.
#include "core/beacon.hpp"
#include "core/registry.hpp"
#include "core/view.hpp"
#include "gen/generators.hpp"
#include "geom/hull.hpp"
#include "model/snapshot.hpp"
#include "sim/run.hpp"
#include "util/cli.hpp"

#include <cstdio>
#include <map>
#include <string>

using namespace lumen;

namespace {

const char* role_name(core::Role r) {
  switch (r) {
    case core::Role::kAlone: return "alone";
    case core::Role::kCorner: return "corner";
    case core::Role::kSide: return "side";
    case core::Role::kInterior: return "interior";
    case core::Role::kLine: return "line";
    case core::Role::kLineEnd: return "line-end";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "number of robots", "64")
      .flag("seed", "random seed", "3")
      .flag("family", "configuration family", "uniform-disk")
      .flag("algo", "algorithm", "async-log")
      .flag("cap", "max cycles per robot", "4096");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto family = gen::family_from_string(cli.get("family"));
  if (!family) {
    std::fprintf(stderr, "unknown family '%s'\n", cli.get("family").c_str());
    return 2;
  }

  const auto initial = gen::generate(*family, n, seed);
  const auto algorithm = core::make_algorithm(cli.get("algo"));
  sim::RunConfig config;
  config.seed = seed;
  config.max_cycles_per_robot = static_cast<std::size_t>(cli.get_int("cap"));
  const auto run = sim::run_simulation(*algorithm, initial, config);

  std::printf("converged=%d epochs=%zu cycles=%zu moves=%zu\n", run.converged,
              run.epochs, run.total_cycles, run.total_moves);

  // Census over the final configuration: role / light / what the algorithm
  // would decide next (identity frame — decisions are frame-invariant).
  std::map<std::string, std::size_t> census;
  for (std::size_t i = 0; i < n; ++i) {
    model::LocalFrame frame{run.final_positions[i], 0.0, 1.0, false};
    const auto snap =
        model::build_snapshot(run.final_positions, run.final_lights, i, frame);
    const auto view = core::build_view(snap);
    const auto action = algorithm->compute(snap);
    std::string key = role_name(view.role);
    key += "/";
    key += to_string(run.final_lights[i]);
    key += "/next:";
    key += to_string(action.light);
    key += action.moves() ? "+move" : "";
    if (view.role == core::Role::kInterior) {
      const auto plans = core::plan_exits(view, view.self());
      key += plans.empty() ? "/no-perp-plan" : "/plans:" + std::to_string(plans.size());
    }
    ++census[key];
  }
  for (const auto& [key, count] : census) {
    std::printf("%6zu  %s\n", count, key.c_str());
  }

  const auto hull = geom::convex_hull_indices(run.final_positions);
  std::printf("global hull corners: %zu of %zu\n", hull.size(), n);
  return 0;
}
