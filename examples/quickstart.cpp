// Quickstart: run the paper's O(log N) asynchronous Complete Visibility
// algorithm on a random configuration and verify the outcome.
//
//   quickstart [--n=32] [--seed=7] [--family=uniform-disk] [--svg=out.svg]
//
// Demonstrates the whole public API surface: generate a configuration, pick
// an algorithm from the registry, run it under the ASYNC scheduler, audit
// the execution with the monitors, and (optionally) render it to SVG.
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sim/monitors.hpp"
#include "sim/run.hpp"
#include "sim/svg.hpp"
#include "util/cli.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv) {
  lumen::util::Cli cli;
  cli.flag("n", "number of robots", "32")
      .flag("seed", "random seed", "7")
      .flag("family", "initial configuration family", "uniform-disk")
      .flag("algo", "algorithm name (async-log, seq-baseline, ssync-parallel)",
            "async-log")
      .flag("scheduler", "async, ssync or fsync", "async")
      .flag("adversary", "uniform, bursty, stall-one or lockstep (async only)",
            "uniform")
      .flag("svg", "write an SVG rendering of the run to this path", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("quickstart", "run Complete Visibility once").c_str());
    return 0;
  }

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto family = lumen::gen::family_from_string(cli.get("family"));
  if (!family) {
    std::fprintf(stderr, "unknown family '%s'\n", cli.get("family").c_str());
    return 2;
  }

  // 1. A seeded initial configuration.
  const auto initial = lumen::gen::generate(*family, n, seed);

  // 2. The algorithm, by registry name.
  const auto algorithm = lumen::core::make_algorithm(cli.get("algo"));

  // 3. One asynchronous execution.
  lumen::sim::RunConfig config;
  const auto scheduler = lumen::sim::scheduler_from_string(cli.get("scheduler"));
  const auto adversary = lumen::sched::adversary_from_string(cli.get("adversary"));
  if (!scheduler || !adversary) {
    std::fprintf(stderr, "unknown %s '%s'\n",
                 scheduler ? "adversary" : "scheduler",
                 (scheduler ? cli.get("adversary") : cli.get("scheduler")).c_str());
    return 2;
  }
  config.scheduler = *scheduler;
  config.adversary = *adversary;
  config.seed = seed;
  const auto run = lumen::sim::run_simulation(*algorithm, initial, config);

  // 4. Audit the run against the algorithm's DECLARED success predicate
  //    (complete visibility for the paper's algorithms, mutual visibility
  //    for the related-work plugins — DESIGN.md §14).
  const auto success = lumen::sim::verify_success(algorithm->success_predicate(),
                                                  run.final_positions);
  const auto collisions = lumen::sim::check_collisions(
      run.initial_positions, run.moves, run.final_time);

  std::printf("algorithm            : %s\n", std::string(algorithm->name()).c_str());
  std::printf("robots               : %zu (%s, seed %llu)\n", n,
              std::string(lumen::gen::to_string(*family)).c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("converged            : %s\n", run.converged ? "yes" : "NO");
  std::printf("epochs               : %zu\n", run.epochs);
  std::printf("LCM cycles           : %zu (moves: %zu)\n", run.total_cycles,
              run.total_moves);
  std::printf("%-21s: %s\n", std::string(algorithm->success_predicate()).c_str(),
              success.satisfied ? "verified" : "VIOLATED");
  std::printf("collision-free       : %s (min separation %.3e)\n",
              collisions.hazard_free(1e-9) ? "verified" : "VIOLATED",
              collisions.min_separation);
  if (collisions.path_crossings > 0) {
    std::printf("  note               : %zu time-separated path crossing(s) — "
                "see DESIGN.md §7 deviation D5\n",
                collisions.path_crossings);
  }
  if (collisions.first_incident) {
    const auto& inc = *collisions.first_incident;
    std::printf("  first incident     : %s robots %zu/%zu at t=%.3f sep=%.3e\n",
                inc.kind.c_str(), inc.robot_a, inc.robot_b, inc.time,
                inc.separation);
    std::printf("  crossings=%zu position-collisions=%zu\n",
                collisions.path_crossings, collisions.position_collisions);
  }
  std::printf("distinct colors used : %zu\n", run.distinct_lights_used());

  const std::string svg_path = cli.get("svg");
  if (!svg_path.empty()) {
    if (lumen::sim::save_svg(run, svg_path)) {
      std::printf("svg                  : %s\n", svg_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", svg_path.c_str());
    }
  }
  return (run.converged && success.satisfied && collisions.hazard_free(1e-9))
             ? 0
             : 1;
}
