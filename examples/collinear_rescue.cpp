// collinear_rescue: the hardest degenerate start — all robots on ONE line,
// where obstructed visibility reduces each robot's world to its two line
// neighbors. Walks through the execution phase by phase, printing the role
// census after the line escape and at convergence.
//
//   collinear_rescue --n=24 --seed=2
#include "core/registry.hpp"
#include "core/view.hpp"
#include "gen/generators.hpp"
#include "geom/hull.hpp"
#include "geom/visibility.hpp"
#include "model/snapshot.hpp"
#include "sim/monitors.hpp"
#include "sim/run.hpp"
#include "util/cli.hpp"

#include <cstdio>

using namespace lumen;

namespace {

void print_census(const char* label, std::span<const geom::Vec2> positions) {
  const auto hull = geom::convex_hull_indices(positions);
  const auto vis = geom::compute_visibility(positions);
  const std::size_t pairs = positions.size() * (positions.size() - 1) / 2;
  std::printf("%-22s hull corners: %3zu / %zu   visible pairs: %4zu / %zu   "
              "collinear: %s\n",
              label, hull.size(), positions.size(), vis.edge_count(), pairs,
              geom::all_collinear(positions) ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "number of robots", "24").flag("seed", "random seed", "2");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto initial = gen::generate(gen::ConfigFamily::kCollinear, n, seed);
  std::printf("Initial configuration: %zu robots exactly on one line.\n", n);
  std::printf("Each middle robot sees exactly 2 others (its line neighbors); "
              "the endpoints see 1.\n\n");
  print_census("t=0 (line)", initial);

  const auto algorithm = core::make_algorithm("async-log");
  sim::RunConfig config;
  config.seed = seed;
  config.record_hull_history = true;
  const auto run = sim::run_simulation(*algorithm, initial, config);

  // Snapshot the world right after the first wave of moves (the line
  // escape) by replaying trajectories to the time of the n/2-th move.
  if (run.moves.size() >= 2) {
    const double t_escape = run.moves[std::min(run.moves.size() - 1, n / 2)].t1;
    const auto trajectories = build_trajectories(run.initial_positions, run.moves);
    std::vector<geom::Vec2> mid;
    mid.reserve(n);
    for (const auto& traj : trajectories) mid.push_back(traj.at(t_escape));
    print_census("after line escape", mid);
  }
  print_census("final", run.final_positions);

  const auto verdict = sim::verify_complete_visibility(run.final_positions);
  const auto collisions =
      sim::check_collisions(run.initial_positions, run.moves, run.final_time);
  std::printf("\nepochs: %zu   moves: %zu   complete visibility: %s   "
              "collision-free: %s\n",
              run.epochs, run.total_moves,
              verdict.complete() ? "verified" : "VIOLATED",
              collisions.clean() ? "verified" : "VIOLATED");
  return (run.converged && verdict.complete() && collisions.clean()) ? 0 : 1;
}
