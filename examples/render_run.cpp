// render_run: execute one simulation and render it as an SVG picture
// (initial positions, motion paths, final convex configuration colored by
// final lights) — the visual sanity check for a paper figure.
//
//   render_run --n=48 --family=ring-with-core --out=run.svg
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sim/run.hpp"
#include "sim/svg.hpp"
#include "util/cli.hpp"

#include <cstdio>

using namespace lumen;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("n", "number of robots", "48")
      .flag("seed", "random seed", "1")
      .flag("family", "configuration family", "ring-with-core")
      .flag("algo", "algorithm", "async-log")
      .flag("out", "output SVG path", "run.svg")
      .flag("width", "image width", "900")
      .flag("height", "image height", "900");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("render_run", "render one execution to SVG").c_str());
    return 0;
  }

  const auto family = gen::family_from_string(cli.get("family"));
  if (!family) {
    std::fprintf(stderr, "unknown family '%s'\n", cli.get("family").c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto initial = gen::generate(*family, n, seed);
  const auto algorithm = core::make_algorithm(cli.get("algo"));
  sim::RunConfig config;
  config.seed = seed;
  const auto run = sim::run_simulation(*algorithm, initial, config);

  sim::SvgOptions options;
  options.width = cli.get_double("width");
  options.height = cli.get_double("height");
  const std::string out = cli.get("out");
  if (!sim::save_svg(run, out, options)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s: %zu robots, %zu epochs, %zu moves -> %s (converged: %s)\n",
              std::string(algorithm->name()).c_str(), n, run.epochs,
              run.total_moves, out.c_str(), run.converged ? "yes" : "NO");
  return run.converged ? 0 : 1;
}
