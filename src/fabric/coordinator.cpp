#include "fabric/coordinator.hpp"

#include "analysis/journal.hpp"
#include "analysis/scenario.hpp"
#include "fabric/lease.hpp"
#include "fabric/process.hpp"
#include "fabric/protocol.hpp"
#include "util/prng.hpp"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <set>
#include <thread>

namespace lumen::fabric {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_since(Clock::time_point then, Clock::time_point now) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - then).count();
  return ms > 0 ? static_cast<std::uint64_t>(ms) : 0;
}

/// Exact inverse of ScenarioSpec::campaign — every CampaignSpec field maps
/// onto a scenario field, so the lease document can embed the workload via
/// the scenario round-trip guarantee.
analysis::ScenarioSpec scenario_from_campaign(
    const analysis::CampaignSpec& spec) {
  analysis::ScenarioSpec s;
  s.algorithm = spec.algorithm;
  s.family = spec.family;
  s.ns = {spec.n};
  s.baseline_ns.clear();
  s.runs = spec.runs;
  s.seed_base = spec.seed_base;
  s.min_separation = spec.min_separation;
  s.audit_collisions = spec.audit_collisions;
  s.collision_tolerance = spec.collision_tolerance;
  s.shard_index = spec.shard_index;
  s.shard_count = spec.shard_count;
  s.max_attempts = spec.max_attempts;
  s.retry_backoff_ms = spec.retry_backoff_ms;
  s.abort_on_collision = spec.abort_on_collision;
  s.run = spec.run;
  return s;
}

struct Shard {
  enum class State { kPending, kRunning, kDone, kFailed };

  std::size_t id = 0;
  std::size_t shard_index = 0;  ///< Composed index in the sub-sharded grid.
  std::vector<std::uint64_t> seeds;  ///< The cells this shard owns.
  State state = State::kPending;
  std::size_t attempts = 0;
  std::size_t speculations = 0;
  std::uint64_t token = 0;  ///< Current grant's fencing token.
  std::vector<std::string> journals;  ///< Every grant's journal, oldest first.
  ChildProcess worker;
  Clock::time_point last_event;  ///< Any event under the current token.
  Clock::time_point last_progress;  ///< Grant time, bumped per finished cell.
  Clock::time_point next_grant;  ///< Backoff gate for the next grant.
};

/// A worker whose lease was speculatively reassigned: no longer owns its
/// shard, but kept (and its pipe drained) so it can finish the cell in
/// flight — its journal still merges, just as duplicates.
struct Orphan {
  ChildProcess worker;
  std::size_t shard_id = 0;
};

}  // namespace

FabricResult run_fabric_campaign(const analysis::CampaignSpec& spec,
                                 const FabricConfig& config,
                                 const analysis::CampaignControl& control) {
  FabricResult out;
  const auto say = [&](const std::string& line) {
    if (config.log) config.log(line);
  };
  const auto run_locally = [&](const char* why) {
    say(std::string("fabric: running in-process (") + why + ")");
    out.result = analysis::run_campaign(spec, nullptr, control);
    out.stopped = out.result.cells_skipped > 0;
    return out;
  };
  if (config.workers == 0 || config.worker_argv.empty()) {
    return run_locally("no workers configured");
  }
  if (!analysis::validate_campaign_spec(spec).empty()) {
    // Let run_campaign produce its canonical kSpecInvalid record.
    return run_locally("invalid spec");
  }

  std::error_code fs_error;
  std::filesystem::create_directories(config.dir, fs_error);
  if (fs_error) return run_locally("cannot create fabric dir");

  const std::string key = analysis::campaign_key(spec);
  const analysis::ScenarioSpec base_scenario = scenario_from_campaign(spec);

  // Decompose the spec's cell set {i : i % c == s} into S sub-shards
  // {i : i % (cS) == s + c*j}; their union is exactly the original set, so
  // the merged shard journals cover precisely the spec's grid.
  const std::size_t sub_shards =
      std::max<std::size_t>(1, config.workers *
                                   std::max<std::size_t>(
                                       1, config.leases_per_worker));
  const std::size_t total_count = spec.shard_count * sub_shards;
  std::vector<Shard> shards(sub_shards);
  for (std::size_t j = 0; j < sub_shards; ++j) {
    shards[j].id = j;
    shards[j].shard_index = spec.shard_index + spec.shard_count * j;
  }
  for (std::size_t i = 0; i < spec.runs; ++i) {
    if (i % spec.shard_count != spec.shard_index) continue;
    const std::size_t j = (i / spec.shard_count) % sub_shards;
    shards[j].seeds.push_back(spec.seed_base + i);
  }
  for (Shard& shard : shards) {
    // A shard fully covered by the caller's resume snapshot (or owning no
    // cells at all) never needs a worker.
    const bool covered =
        std::all_of(shard.seeds.begin(), shard.seeds.end(),
                    [&](std::uint64_t seed) {
                      return control.resume != nullptr &&
                             control.resume->find(key, seed) != nullptr;
                    });
    if (shard.seeds.empty() || covered) shard.state = Shard::State::kDone;
  }
  out.stats.shards = shards.size();

  std::uint64_t next_token = 1;
  std::uint64_t chaos_state = config.chaos_seed;
  const auto chaos_roll = [&]() {
    chaos_state = util::splitmix64(chaos_state);
    return static_cast<double>(chaos_state >> 11) * 0x1.0p-53 <
           config.chaos_kill_rate;
  };
  std::vector<Orphan> orphans;
  std::vector<std::uint64_t> cell_ms;  ///< Fleet-wide per-cell durations.
  std::set<std::uint64_t> announced;   ///< Seeds already sent to on_cell.

  const auto grant = [&](Shard& shard) {
    const std::uint64_t token = next_token++;
    const std::string tag =
        std::to_string(shard.id) + "-t" + std::to_string(token);
    Lease lease;
    lease.campaign_key = key;
    lease.token = token;
    lease.journal_path = config.dir + "/shard-" + tag + ".jsonl";
    lease.resume_paths = config.resume_paths;
    lease.resume_paths.insert(lease.resume_paths.end(),
                              shard.journals.begin(), shard.journals.end());
    lease.heartbeat_ms = std::max<std::uint64_t>(1, config.heartbeat_ms);
    lease.scenario = base_scenario;
    lease.scenario.shard_index = shard.shard_index;
    lease.scenario.shard_count = total_count;
    const std::string lease_path = config.dir + "/lease-" + tag + ".json";
    if (!save_lease(lease, lease_path)) {
      say("fabric: cannot write lease " + lease_path);
      return false;
    }
    std::vector<std::string> argv = config.worker_argv;
    argv.push_back(lease_path);
    std::string error;
    auto child = ChildProcess::spawn(argv, &error);
    if (!child) {
      say("fabric: spawn failed: " + error);
      return false;
    }
    shard.worker = std::move(*child);
    shard.token = token;
    shard.journals.push_back(lease.journal_path);
    shard.state = Shard::State::kRunning;
    shard.attempts += 1;
    const auto now = Clock::now();
    shard.last_event = now;
    shard.last_progress = now;
    out.stats.leases_granted += 1;
    out.stats.workers_spawned += 1;
    say("fabric: granted shard " + std::to_string(shard.id) + " token " +
        std::to_string(token) + " (attempt " + std::to_string(shard.attempts) +
        ", pid " + std::to_string(shard.worker.pid()) + ")");
    return true;
  };

  // Reclaim a running shard's lease: the worker (dead or presumed dead) is
  // detached, and the shard re-queued behind a jittered backoff or declared
  // failed once past its grant budget. The grant's journal stays on the
  // shard — whatever it durably finished is never redone.
  const auto reclaim = [&](Shard& shard, const std::string& why) {
    say("fabric: reclaiming shard " + std::to_string(shard.id) + " token " +
        std::to_string(shard.token) + " (" + why + ")");
    if (shard.attempts >= config.max_lease_attempts) {
      shard.state = Shard::State::kFailed;
      out.stats.shards_failed += 1;
      say("fabric: shard " + std::to_string(shard.id) +
          " failed after " + std::to_string(shard.attempts) +
          " grants; its cells will be recomputed locally");
      return;
    }
    shard.state = Shard::State::kPending;
    const std::uint64_t delay = analysis::retry_backoff_delay_ms(
        config.relaunch_backoff_ms, shard.attempts,
        static_cast<std::uint64_t>(shard.id));
    shard.next_grant = Clock::now() + std::chrono::milliseconds(
                                          static_cast<std::int64_t>(delay));
  };

  const auto handle_event = [&](Shard& shard, const WorkerEvent& event,
                                Clock::time_point now) {
    if (event.token != shard.token) {
      out.stats.stale_events_fenced += 1;
      return;
    }
    shard.last_event = now;
    if (event.kind != WorkerEventKind::kCell) return;
    cell_ms.push_back(ms_since(shard.last_progress, now));
    shard.last_progress = now;
    if (control.on_cell && announced.insert(event.seed).second) {
      control.on_cell(event.seed);
    }
    if (config.chaos_kill_rate > 0.0 && chaos_roll()) {
      say("fabric: chaos kill of shard " + std::to_string(shard.id) +
          " pid " + std::to_string(shard.worker.pid()));
      shard.worker.kill(SIGKILL);
      out.stats.chaos_kills += 1;
    }
  };

  const auto drain_orphans = [&]() {
    for (auto it = orphans.begin(); it != orphans.end();) {
      std::string error;
      for (const std::string& line : it->worker.read_lines()) {
        const auto event = worker_event_from_line(line, &error);
        // Everything a superseded grant says is fenced: its journal is the
        // only channel that still counts, and only as duplicates.
        if (event && event->kind == WorkerEventKind::kCell) {
          out.stats.stale_events_fenced += 1;
        }
      }
      it->worker.try_reap();
      if (!it->worker.running()) {
        say("fabric: superseded worker for shard " +
            std::to_string(it->shard_id) + " finished");
        it = orphans.erase(it);
      } else {
        ++it;
      }
    }
  };

  const auto median_cell_ms = [&]() -> std::uint64_t {
    if (cell_ms.size() < 3) return 0;
    std::vector<std::uint64_t> copy = cell_ms;
    const std::size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(),
                     copy.begin() + static_cast<std::ptrdiff_t>(mid),
                     copy.end());
    return copy[mid];
  };

  const auto stop_requested = [&]() {
    return control.stop != nullptr &&
           control.stop->load(std::memory_order_relaxed);
  };

  // ---- The supervision loop ------------------------------------------------
  while (!stop_requested()) {
    bool open_work = false;
    const auto now = Clock::now();
    for (Shard& shard : shards) {
      if (shard.state == Shard::State::kRunning) {
        open_work = true;
        std::string error;
        for (const std::string& line : shard.worker.read_lines()) {
          if (const auto event = worker_event_from_line(line, &error)) {
            handle_event(shard, *event, now);
          }
        }
        shard.worker.try_reap();
        if (!shard.worker.running()) {
          const auto& exit = shard.worker.exit_status();
          if (exit && !exit->signaled && exit->code == 0) {
            shard.state = Shard::State::kDone;
            say("fabric: shard " + std::to_string(shard.id) + " complete");
          } else if (exit && !exit->signaled &&
                     (exit->code == 2 || exit->code == 127)) {
            // Unusable lease / unexecutable worker: retrying reproduces the
            // same verdict, so fail fast to the local fallback.
            shard.state = Shard::State::kFailed;
            out.stats.shards_failed += 1;
            say("fabric: shard " + std::to_string(shard.id) +
                " worker exit " + std::to_string(exit->code) +
                " (not retriable); its cells will be recomputed locally");
          } else {
            out.stats.workers_crashed += 1;
            reclaim(shard, exit && exit->signaled
                               ? "worker killed by signal " +
                                     std::to_string(exit->code)
                               : "worker exit " +
                                     std::to_string(exit ? exit->code : -1));
          }
          continue;
        }
        // Liveness: a worker heartbeats even mid-cell, so TTL silence means
        // the PROCESS is gone or frozen, not merely slow.
        if (config.lease_ttl_ms > 0 &&
            ms_since(shard.last_event, now) > config.lease_ttl_ms) {
          shard.worker.kill(SIGKILL);
          shard.worker.reap_with_timeout(100);
          out.stats.leases_expired += 1;
          out.stats.workers_crashed += 1;
          reclaim(shard, "lease expired");
          continue;
        }
        // Straggler speculation: alive and heartbeating but not finishing
        // cells at fleet pace — re-grant, keep the old worker as an orphan.
        const std::uint64_t median = median_cell_ms();
        if (config.straggler_factor > 0.0 && median > 0 &&
            shard.speculations < 2 &&
            static_cast<double>(ms_since(shard.last_progress, now)) >
                std::max(config.straggler_factor * static_cast<double>(median),
                         static_cast<double>(4 * config.heartbeat_ms))) {
          say("fabric: shard " + std::to_string(shard.id) +
              " straggling (no cell for " +
              std::to_string(ms_since(shard.last_progress, now)) +
              " ms, median " + std::to_string(median) + " ms); re-leasing");
          orphans.push_back(Orphan{std::move(shard.worker), shard.id});
          shard.speculations += 1;
          out.stats.straggler_releases += 1;
          shard.state = Shard::State::kPending;
          shard.next_grant = now;
        }
      }
    }
    std::size_t running = 0;
    for (const Shard& shard : shards) {
      if (shard.state == Shard::State::kRunning) ++running;
    }
    for (Shard& shard : shards) {
      if (running >= config.workers) break;
      if (shard.state != Shard::State::kPending || now < shard.next_grant) {
        if (shard.state == Shard::State::kPending) open_work = true;
        continue;
      }
      open_work = true;
      if (grant(shard)) {
        ++running;
      } else if (shard.attempts + 1 >= config.max_lease_attempts) {
        // Grant machinery itself failing (unwritable dir, unspawnable
        // binary) burns the same budget as a crash.
        shard.attempts += 1;
        shard.state = Shard::State::kFailed;
        out.stats.shards_failed += 1;
      } else {
        shard.attempts += 1;
        shard.next_grant =
            now + std::chrono::milliseconds(static_cast<std::int64_t>(
                      analysis::retry_backoff_delay_ms(
                          std::max<std::uint64_t>(1,
                                                  config.relaunch_backoff_ms),
                          shard.attempts,
                          static_cast<std::uint64_t>(shard.id))));
      }
    }
    drain_orphans();
    if (!open_work) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // ---- Drain ---------------------------------------------------------------
  if (stop_requested()) {
    out.stopped = true;
    say("fabric: stop requested; draining workers");
    for (Shard& shard : shards) {
      if (shard.state == Shard::State::kRunning) shard.worker.kill(SIGTERM);
    }
    for (Orphan& orphan : orphans) orphan.worker.kill(SIGTERM);
    for (Shard& shard : shards) {
      if (shard.state == Shard::State::kRunning) {
        shard.worker.reap_with_timeout(5000);
        shard.state = Shard::State::kPending;
      }
    }
  }
  // Superseded workers must not be appending while we merge.
  for (Orphan& orphan : orphans) {
    orphan.worker.kill(SIGKILL);
    orphan.worker.reap_with_timeout(1000);
  }
  orphans.clear();

  // ---- Merge and finish ----------------------------------------------------
  // First-write-wins merge of every journal any grant ever produced; late
  // work from fenced-off grants surfaces here as counted duplicates.
  analysis::JournalSnapshot merged;
  if (control.resume != nullptr) merged = *control.resume;
  for (const Shard& shard : shards) {
    for (const std::string& path : shard.journals) {
      auto load = analysis::load_journal(path);
      if (!load.snapshot) {
        say("fabric: skipping unloadable shard journal " + path + ": " +
            load.error);
        continue;
      }
      out.stats.duplicate_cells_dropped += load.duplicate_cells;
      std::string merge_error;
      out.stats.duplicate_cells_dropped +=
          merge_snapshots(merged, *load.snapshot, &merge_error);
      if (!merge_error.empty()) say("fabric: " + path + ": " + merge_error);
    }
  }

  // Copy newly-delivered cells into the caller's canonical journal, in seed
  // order, so the canonical file resumes exactly like an interrupted
  // single-process run. Cells the caller already had are not re-appended.
  if (control.journal != nullptr) {
    if (const auto it = merged.cells.find(key); it != merged.cells.end()) {
      for (const auto& [seed, cell] : it->second) {
        if (control.resume != nullptr &&
            control.resume->find(key, seed) != nullptr) {
          continue;
        }
        if (cell.metrics) control.journal->append_cell(spec, *cell.metrics);
        if (cell.error) control.journal->append_error(spec, *cell.error);
      }
    }
  }

  // The answer itself: an ordinary in-process run over the merged snapshot.
  // Cells the fleet delivered resume bit-identically; cells it failed to
  // deliver (failed shards, early stop) are recomputed right here — so the
  // fabric's report equals the single-process report BY CONSTRUCTION, no
  // matter what the fleet went through.
  analysis::CampaignControl final_control;
  final_control.journal = control.journal;
  final_control.resume = &merged;
  final_control.stop = control.stop;
  final_control.on_cell = control.on_cell;
  out.result = analysis::run_campaign(spec, nullptr, final_control);
  const std::size_t records = out.result.runs.size() + out.result.errors.size();
  out.stats.cells_recomputed_locally =
      records > out.result.cells_resumed ? records - out.result.cells_resumed
                                         : 0;
  out.stopped = out.stopped || out.result.cells_skipped > 0;
  say("fabric: done (" + std::to_string(out.stats.leases_granted) +
      " leases, " + std::to_string(out.stats.workers_crashed) + " crashes, " +
      std::to_string(out.stats.duplicate_cells_dropped) +
      " duplicate cells dropped, " +
      std::to_string(out.stats.cells_recomputed_locally) +
      " cells recomputed locally)");
  return out;
}

}  // namespace lumen::fabric
