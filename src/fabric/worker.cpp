#include "fabric/worker.hpp"

#include "analysis/campaign.hpp"
#include "analysis/journal.hpp"
#include "fabric/lease.hpp"
#include "fabric/protocol.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

namespace lumen::fabric {

namespace {

/// Serialized, whole-line writes to the coordinator pipe. A failed write
/// (EPIPE: the coordinator is gone) flips `orphaned` so the campaign drains
/// instead of running headless forever.
class EventStream {
 public:
  explicit EventStream(std::atomic<bool>& orphaned) : orphaned_(orphaned) {}

  void emit(const WorkerEvent& event) {
    const std::string line = worker_event_to_line(event) + "\n";
    std::lock_guard lock(mutex_);
    std::size_t written = 0;
    while (written < line.size()) {
      const ssize_t n = ::write(STDOUT_FILENO, line.data() + written,
                                line.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        orphaned_.store(true, std::memory_order_relaxed);
        return;
      }
      written += static_cast<std::size_t>(n);
    }
  }

 private:
  std::mutex mutex_;
  std::atomic<bool>& orphaned_;
};

}  // namespace

int run_worker(const WorkerOptions& options) {
  // The coordinator's death must surface as EPIPE on our writes, not as a
  // process-killing SIGPIPE mid-journal-append.
  ::signal(SIGPIPE, SIG_IGN);

  LeaseParse parsed;
  if (options.lease_path == "-") {
    std::ostringstream text;
    text << std::cin.rdbuf();
    parsed = lease_from_json(text.str());
  } else {
    parsed = load_lease(options.lease_path);
  }
  if (!parsed.lease) {
    std::cerr << "work: invalid lease: " << parsed.error << "\n";
    return 2;
  }
  const Lease& lease = *parsed.lease;
  const analysis::CampaignSpec spec = lease_campaign(lease);
  if (const std::string problem = analysis::validate_campaign_spec(spec);
      !problem.empty()) {
    std::cerr << "work: invalid lease scenario: " << problem << "\n";
    return 2;
  }

  // Resume coverage: the canonical journal plus every prior grant of these
  // cells. A prior journal that fails to load (still being appended by a
  // straggler is fine — torn final lines drop; truly corrupt is not) only
  // costs resume coverage, never correctness: its cells re-run to the same
  // bytes.
  analysis::JournalSnapshot resume;
  for (const std::string& path : lease.resume_paths) {
    auto loaded = analysis::load_journal(path);
    if (!loaded.snapshot) {
      std::cerr << "work: skipping unloadable resume journal: " << loaded.error
                << "\n";
      continue;
    }
    std::string merge_error;
    merge_snapshots(resume, *loaded.snapshot, &merge_error);
    if (!merge_error.empty()) {
      std::cerr << "work: resume journal " << path << ": " << merge_error
                << "\n";
    }
  }

  // Our own journal is single-campaign by contract: refuse to append to a
  // file declaring someone else's key (the multi-writer guard — a stale
  // lease file pointing at a reused path must fail loudly, not interleave
  // two campaigns' cells).
  {
    auto existing = analysis::load_journal(lease.journal_path);
    if (existing.snapshot) {
      if (const std::string mismatch =
              analysis::journal_key_mismatch(*existing.snapshot, spec);
          !mismatch.empty()) {
        std::cerr << "work: " << mismatch << "\n";
        return 2;
      }
      // A respawn under the SAME token resumes its own partial work too.
      merge_snapshots(resume, *existing.snapshot, nullptr);
    }
  }
  analysis::CampaignJournal journal(lease.journal_path);
  if (!journal.ok()) {
    std::cerr << "work: cannot open shard journal " << lease.journal_path
              << "\n";
    return 2;
  }

  std::atomic<bool> orphaned{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> cells_done{0};
  EventStream events(orphaned);
  events.emit(WorkerEvent{WorkerEventKind::kHello, lease.token, 0, 0, 0,
                          static_cast<std::int64_t>(::getpid())});

  // Liveness beats on a background thread so one long cell does not read
  // as a hang; it also folds the two external stop sources (driver signal,
  // orphaning) into the single flag run_campaign polls.
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool finished = false;
  std::thread heartbeat([&] {
    std::unique_lock lock(hb_mutex);
    while (!finished) {
      if ((options.stop != nullptr &&
           options.stop->load(std::memory_order_relaxed)) ||
          orphaned.load(std::memory_order_relaxed)) {
        stop.store(true, std::memory_order_relaxed);
      }
      events.emit(WorkerEvent{WorkerEventKind::kHeartbeat, lease.token, 0,
                              cells_done.load(std::memory_order_relaxed), 0,
                              0});
      hb_cv.wait_for(lock, std::chrono::milliseconds(lease.heartbeat_ms));
    }
  });

  analysis::CampaignControl control;
  control.journal = &journal;
  control.resume = &resume;
  control.stop = &stop;
  control.on_cell = [&](std::uint64_t seed) {
    const std::uint64_t done =
        cells_done.fetch_add(1, std::memory_order_relaxed) + 1;
    events.emit(
        WorkerEvent{WorkerEventKind::kCell, lease.token, seed, done, 0, 0});
  };
  const analysis::CampaignResult result = analysis::run_campaign(
      spec, nullptr, control);

  {
    std::lock_guard lock(hb_mutex);
    finished = true;
  }
  hb_cv.notify_all();
  heartbeat.join();

  events.emit(WorkerEvent{WorkerEventKind::kDone, lease.token, 0,
                          cells_done.load(std::memory_order_relaxed),
                          result.errors.size(), 0});
  // Done means "every leased cell has a durable record" — metrics or
  // structured error; only stop-skipped cells leave the shard unfinished.
  if (result.cells_skipped == 0) return 0;
  return stop.load(std::memory_order_relaxed) ? 3 : 1;
}

}  // namespace lumen::fabric
