#include "fabric/process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace lumen::fabric {

ChildProcess::~ChildProcess() {
  // A coordinator dropping a live child (error unwind) must not leak it:
  // hard-kill and reap so the test suite never accumulates zombies.
  if (running()) {
    kill(SIGKILL);
    try_reap();
    while (running()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      try_reap();
    }
  }
  close_pipe();
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      out_fd_(std::exchange(other.out_fd_, -1)),
      buffer_(std::move(other.buffer_)),
      exit_(std::move(other.exit_)) {
  other.exit_.reset();
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    this->~ChildProcess();
    new (this) ChildProcess(std::move(other));
  }
  return *this;
}

void ChildProcess::close_pipe() noexcept {
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
}

std::optional<ChildProcess> ChildProcess::spawn(
    const std::vector<std::string>& argv, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return std::nullopt;
  };
  if (argv.empty()) {
    if (error != nullptr) *error = "spawn: empty argv";
    return std::nullopt;
  }
  int fds[2];
  if (::pipe(fds) != 0) return fail("pipe");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return fail("fork");
  }
  if (pid == 0) {
    // Child: stdout -> pipe, stdin -> /dev/null (a lease on stdin is the
    // caller's business — the coordinator always passes a lease FILE).
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::close(devnull);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    // exec failed: exit through _exit so no parent-inherited destructors
    // (journals, pools) run twice. 127 = conventional "cannot exec".
    ::_exit(127);
  }
  ::close(fds[1]);
  // Non-blocking reads: the coordinator polls many children in one loop.
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  ChildProcess child;
  child.pid_ = pid;
  child.out_fd_ = fds[0];
  return child;
}

std::vector<std::string> ChildProcess::read_lines(bool* closed) {
  std::vector<std::string> lines;
  if (closed != nullptr) *closed = false;
  if (out_fd_ < 0) {
    if (closed != nullptr) *closed = true;
    return lines;
  }
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(out_fd_, chunk, sizeof chunk);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close_pipe();
      if (closed != nullptr) *closed = true;
      break;
    }
    if (errno == EINTR) continue;
    break;  // EAGAIN/EWOULDBLOCK: drained for now.
  }
  std::size_t start = 0;
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    if (buffer_[i] == '\n') {
      lines.emplace_back(buffer_, start, i - start);
      start = i + 1;
    }
  }
  buffer_.erase(0, start);
  return lines;
}

void ChildProcess::try_reap() noexcept {
  if (pid_ <= 0 || exit_.has_value()) return;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r != pid_) return;
  ExitStatus exit;
  if (WIFSIGNALED(status)) {
    exit.signaled = true;
    exit.code = WTERMSIG(status);
  } else {
    exit.code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  exit_ = exit;
}

void ChildProcess::kill(int signal) noexcept {
  if (pid_ <= 0 || exit_.has_value()) return;
  ::kill(pid_, signal);
}

void ChildProcess::reap_with_timeout(int grace_ms) noexcept {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(grace_ms);
  bool killed = false;
  while (running()) {
    try_reap();
    if (!running()) break;
    if (!killed && clock::now() >= deadline) {
      kill(SIGKILL);
      killed = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace lumen::fabric
