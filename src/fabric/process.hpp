// lumen_fabric: POSIX worker-process management.
//
// The coordinator's view of one spawned worker: its pid, the read end of
// its stdout pipe (non-blocking, line-buffered here), and its exit status
// once reaped. Nothing in this file knows about leases — it is plain
// fork/exec + pipe plumbing, kept separate so the coordinator logic stays
// testable against the protocol layer alone.
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

namespace lumen::fabric {

/// How a reaped child ended.
struct ExitStatus {
  bool signaled = false;  ///< Killed by a signal (crash, SIGKILL, ...).
  int code = 0;           ///< Exit code, or the signal number when signaled.
};

class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  /// fork + exec argv with stdout piped back (stderr passes through).
  /// Returns a running child, or nullopt with *error set.
  static std::optional<ChildProcess> spawn(
      const std::vector<std::string>& argv, std::string* error);

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  [[nodiscard]] int out_fd() const noexcept { return out_fd_; }
  [[nodiscard]] bool running() const noexcept { return pid_ > 0 && !exit_; }
  [[nodiscard]] const std::optional<ExitStatus>& exit_status() const noexcept {
    return exit_;
  }

  /// Drains whatever the pipe holds right now (non-blocking) and returns
  /// the COMPLETE lines received; a trailing partial line is buffered for
  /// the next call. Sets *closed when the child closed its end.
  std::vector<std::string> read_lines(bool* closed = nullptr);

  /// Non-blocking waitpid; fills exit_status() once the child is reaped.
  /// Safe to call repeatedly.
  void try_reap() noexcept;

  /// Sends `signal`; no-op once reaped.
  void kill(int signal) noexcept;

  /// Blocking reap with a SIGKILL escalation after `grace_ms` of waiting.
  void reap_with_timeout(int grace_ms) noexcept;

 private:
  void close_pipe() noexcept;

  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
  std::optional<ExitStatus> exit_;
};

}  // namespace lumen::fabric
