#include "fabric/lease.hpp"

#include "analysis/journal.hpp"
#include "util/json.hpp"

#include <fstream>
#include <sstream>

namespace lumen::fabric {

namespace {

constexpr std::string_view kDocType = "lumen-lease";
constexpr std::int64_t kDocVersion = 1;

}  // namespace

analysis::CampaignSpec lease_campaign(const Lease& lease) {
  return lease.scenario.campaign(lease.scenario.ns.empty()
                                     ? 1
                                     : lease.scenario.ns[0]);
}

std::string lease_to_json(const Lease& lease) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("type", util::JsonValue::string(std::string(kDocType)));
  obj.set("version", util::JsonValue::integer(kDocVersion));
  obj.set("campaign_key", util::JsonValue::string(lease.campaign_key));
  obj.set("token",
          util::JsonValue::integer(static_cast<std::int64_t>(lease.token)));
  obj.set("journal_path", util::JsonValue::string(lease.journal_path));
  util::JsonValue resume = util::JsonValue::array();
  for (const auto& path : lease.resume_paths) {
    resume.push_back(util::JsonValue::string(path));
  }
  obj.set("resume_paths", std::move(resume));
  obj.set("heartbeat_ms", util::JsonValue::integer(
                              static_cast<std::int64_t>(lease.heartbeat_ms)));
  // The scenario document embeds as an object — it round-trips byte-
  // identically, so the lease inherits the spec's fidelity guarantee.
  const auto scenario =
      util::json_parse(analysis::scenario_to_json(lease.scenario));
  obj.set("scenario", scenario ? *scenario : util::JsonValue::object());
  return util::json_write(obj) + "\n";
}

LeaseParse lease_from_json(std::string_view text) {
  LeaseParse out;
  std::string parse_error;
  const auto doc = util::json_parse(text, &parse_error);
  if (!doc || !doc->is_object()) {
    out.error = parse_error.empty() ? "lease must be a JSON object"
                                    : parse_error;
    return out;
  }
  Lease lease;
  bool saw_type = false;
  bool saw_scenario = false;
  for (const auto& [key, value] : doc->members()) {
    if (key == "type") {
      if (!value.is_string() || value.as_string() != kDocType) {
        out.error = "type must be \"" + std::string(kDocType) + "\"";
        return out;
      }
      saw_type = true;
    } else if (key == "version") {
      if (!value.is_integer() || value.as_int() != kDocVersion) {
        out.error = "unsupported lease version";
        return out;
      }
    } else if (key == "campaign_key") {
      if (!value.is_string()) {
        out.error = "campaign_key must be a string";
        return out;
      }
      lease.campaign_key = value.as_string();
    } else if (key == "token") {
      if (!value.is_integer() || value.as_int() < 0) {
        out.error = "token must be a non-negative integer";
        return out;
      }
      lease.token = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "journal_path") {
      if (!value.is_string()) {
        out.error = "journal_path must be a string";
        return out;
      }
      lease.journal_path = value.as_string();
    } else if (key == "resume_paths") {
      if (!value.is_array()) {
        out.error = "resume_paths must be an array of strings";
        return out;
      }
      for (const auto& item : value.items()) {
        if (!item.is_string()) {
          out.error = "resume_paths must contain only strings";
          return out;
        }
        lease.resume_paths.push_back(item.as_string());
      }
    } else if (key == "heartbeat_ms") {
      if (!value.is_integer() || value.as_int() < 1) {
        out.error = "heartbeat_ms must be a positive integer";
        return out;
      }
      lease.heartbeat_ms = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "scenario") {
      auto parsed = analysis::scenario_from_json(util::json_write(value, 0));
      if (!parsed.spec) {
        out.error = "scenario: " + parsed.error;
        return out;
      }
      lease.scenario = std::move(*parsed.spec);
      saw_scenario = true;
    } else {
      out.error = "unknown key \"" + key + "\"";
      return out;
    }
  }
  if (!saw_type) {
    out.error = "missing type";
    return out;
  }
  if (!saw_scenario) {
    out.error = "missing scenario";
    return out;
  }
  if (lease.scenario.ns.size() != 1) {
    out.error = "scenario.ns must contain exactly one sweep size";
    return out;
  }
  if (lease.journal_path.empty()) {
    out.error = "journal_path must be non-empty";
    return out;
  }
  // The key doubles as a checksum: a lease pointing at the wrong scenario
  // (stale file, manual edit) must not silently run the wrong cells under
  // the right journal name.
  const std::string expected = analysis::campaign_key(lease_campaign(lease));
  if (lease.campaign_key != expected) {
    out.error = "campaign_key: lease declares " + lease.campaign_key +
                " but the embedded scenario hashes to " + expected;
    return out;
  }
  out.lease = std::move(lease);
  return out;
}

bool save_lease(const Lease& lease, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << lease_to_json(lease);
  return static_cast<bool>(f.flush());
}

LeaseParse load_lease(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    LeaseParse out;
    out.error = "cannot open " + path;
    return out;
  }
  std::ostringstream text;
  text << f.rdbuf();
  return lease_from_json(text.str());
}

}  // namespace lumen::fabric
