// lumen_fabric: the crash-tolerant worker (`lumen-bench work`).
//
// A worker's whole life: read a lease, merge every prior journal the lease
// names (finished cells are never redone), run the leased shard with its
// own fsync'd journal, and stream hello/heartbeat/cell/done events to the
// coordinator on stdout. It is deliberately stateless beyond its journal —
// SIGKILL at any instant loses at most the cell in flight, and the fsync'd
// record-per-cell discipline means whatever it DID finish is durable and
// mergeable. A worker whose coordinator dies notices (EPIPE on the event
// pipe) and drains gracefully rather than running orphaned forever.
#pragma once

#include <atomic>
#include <string>

namespace lumen::fabric {

struct WorkerOptions {
  /// Path of the lease document; "-" reads it from stdin.
  std::string lease_path;
  /// The driver's signal flag (SIGINT/SIGTERM -> drain). May be null.
  const std::atomic<bool>* stop = nullptr;
};

/// Runs one lease to completion. Exit codes mirror the lumen-bench
/// contract: 0 every leased cell has a durable journal record, 2 the lease
/// or its journal is unusable (malformed, campaign-key mismatch — not
/// retriable), 3 drained after a stop request with cells left undone.
[[nodiscard]] int run_worker(const WorkerOptions& options);

}  // namespace lumen::fabric
