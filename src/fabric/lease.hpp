// lumen_fabric: seed-range leases (DESIGN.md §17).
//
// A lease is the coordinator's grant of one shard of a campaign's cell grid
// to one worker process: the shard coordinates (composed on top of whatever
// sharding the base spec already carries), a FENCING TOKEN, the shard
// journal the worker may append to, prior journals it should resume from,
// and the full scenario so the lease document is self-contained (a worker
// needs nothing but the lease to do its work — argv, stdin, or a file).
//
// Fencing: tokens are allocated strictly increasing per coordinator run.
// A reclaimed lease (crash, expiry, straggler speculation) is re-granted
// under a NEW token with a NEW journal path, so a resurrected stale worker
// can only ever append to its own token's file; the coordinator's merge is
// first-write-wins per (campaign key, seed), so those late appends are
// duplicates — counted, dropped, harmless.
#pragma once

#include "analysis/scenario.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::fabric {

struct Lease {
  /// FNV-1a campaign key the shard journal must declare (fencing scope;
  /// also a checksum: a lease whose scenario hashes differently is rejected).
  std::string campaign_key;
  /// Strictly-increasing fencing token; ties every worker event and journal
  /// file to one specific grant.
  std::uint64_t token = 0;
  /// The shard journal this grant may append to (unique per token).
  std::string journal_path;
  /// Journals of earlier grants of overlapping cells (prior tokens of this
  /// shard, the canonical resume journal): the worker merges whatever loads
  /// and skips those cells — reclaiming a lease never redoes finished work.
  std::vector<std::string> resume_paths;
  /// Cadence of the worker's liveness heartbeat on stdout.
  std::uint64_t heartbeat_ms = 250;
  /// The leased workload: ns = [n], shard_index/shard_count composed so
  /// that scenario.campaign(ns[0]) IS the shard's cell set.
  analysis::ScenarioSpec scenario;
};

/// Deterministic JSON document (type lumen-lease, version 1), trailing
/// newline; round-trips byte-identically through lease_from_json.
[[nodiscard]] std::string lease_to_json(const Lease& lease);

struct LeaseParse {
  std::optional<Lease> lease;
  std::string error;  ///< Reason when lease is nullopt.
};

/// Parses and validates a lease document: well-formed scenario with exactly
/// one sweep size, campaign_key matching the scenario's FNV-1a key, a
/// non-empty journal path.
[[nodiscard]] LeaseParse lease_from_json(std::string_view text);

bool save_lease(const Lease& lease, const std::string& path);
[[nodiscard]] LeaseParse load_lease(const std::string& path);

/// The campaign the lease's worker actually runs:
/// scenario.campaign(scenario.ns[0]).
[[nodiscard]] analysis::CampaignSpec lease_campaign(const Lease& lease);

}  // namespace lumen::fabric
