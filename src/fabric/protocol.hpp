// lumen_fabric: the worker -> coordinator event stream.
//
// A worker process speaks one compact JSON object per stdout line:
//
//   {"type":"lumen-worker","event":"hello","token":T,"pid":P}
//   {"type":"lumen-worker","event":"heartbeat","token":T,"cells":K}
//   {"type":"lumen-worker","event":"cell","token":T,"seed":S,"cells":K}
//   {"type":"lumen-worker","event":"done","token":T,"cells":K,"errors":E}
//
// `heartbeat` is pure liveness (a background thread, so a worker grinding
// one long cell still beats); `cell` marks a CELL BOUNDARY — the cell's
// journal record is already durable when it is emitted, which is what makes
// it the chaos harness's SIGKILL point and the coordinator's progress /
// straggler clock. Every event carries the fencing token of the lease it
// was emitted under; the coordinator discards events whose token does not
// match the shard's current grant (a resurrected stale worker can talk, but
// it cannot advance anything).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lumen::fabric {

enum class WorkerEventKind { kHello, kHeartbeat, kCell, kDone };

[[nodiscard]] std::string_view to_string(WorkerEventKind k) noexcept;

struct WorkerEvent {
  WorkerEventKind kind = WorkerEventKind::kHeartbeat;
  std::uint64_t token = 0;
  std::uint64_t seed = 0;        ///< kCell only: the finished cell's seed.
  std::uint64_t cells = 0;       ///< Cells finished so far under this lease.
  std::uint64_t errors = 0;      ///< kDone only: cells recorded as errors.
  std::int64_t pid = 0;          ///< kHello only.

  friend bool operator==(const WorkerEvent&, const WorkerEvent&) = default;
};

/// One compact line, no trailing newline.
[[nodiscard]] std::string worker_event_to_line(const WorkerEvent& event);

/// Parses one line. nullopt for anything malformed — the coordinator treats
/// unparseable worker chatter as noise, never as a crash (error set when
/// non-null).
[[nodiscard]] std::optional<WorkerEvent> worker_event_from_line(
    std::string_view line, std::string* error = nullptr);

}  // namespace lumen::fabric
