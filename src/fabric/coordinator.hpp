// lumen_fabric: the lease-based campaign coordinator (DESIGN.md §17).
//
// run_fabric_campaign decomposes one campaign's cell grid into seed-range
// shards (composed on top of any sharding the spec already carries, so the
// union of shard cell sets IS the spec's cell set), grants each shard as a
// fenced lease to a `lumen-bench work` subprocess, and supervises the fleet:
//
//   - liveness by heartbeat: a worker silent past lease_ttl_ms is presumed
//     dead/frozen; its lease is reclaimed (SIGKILL + re-grant under a fresh
//     fencing token and a fresh journal file);
//   - crash tolerance: a worker that exits nonzero or dies by signal is
//     re-granted up to max_lease_attempts times with deterministic jittered
//     backoff; its journaled cells are never redone (the new lease resumes
//     from every prior grant's journal);
//   - straggler speculation: a live worker whose per-cell progress stalls
//     past straggler_factor x the fleet's median cell time is abandoned (not
//     killed — it may still finish and its cells still merge) and its shard
//     speculatively re-granted;
//   - fencing: every event and journal is tied to one token; anything from
//     a reclaimed grant is counted and dropped, and duplicate cell records
//     merge first-write-wins, so stale workers are harmless by construction.
//
// The final report is produced by the ordinary in-process run_campaign with
// the merged shard journals as its resume snapshot: cells the fleet failed
// to deliver (crashed past retry budget, stopped early) are recomputed
// locally, so the fabric's answer is BYTE-IDENTICAL to the single-process
// answer no matter which workers died — graceful degradation is the
// correctness proof, not an error path. Newly-delivered cells are copied
// into the caller's canonical journal, so a coordinator killed mid-campaign
// resumes exactly like an interrupted single-process run.
#pragma once

#include "analysis/campaign.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::fabric {

struct FabricConfig {
  /// Worker processes to keep running concurrently (>= 1).
  std::size_t workers = 2;
  /// Sub-shards granted per worker slot; more shards = finer-grained
  /// reclamation (a crash loses a smaller lease) at more journal files.
  std::size_t leases_per_worker = 2;
  /// Worker liveness cadence (Lease::heartbeat_ms).
  std::uint64_t heartbeat_ms = 100;
  /// A worker silent (no event of any kind) this long is presumed dead and
  /// its lease reclaimed. 0 disables expiry. Keep this several heartbeats
  /// wide — expiry of a merely-slow worker is safe (fencing) but wasteful.
  std::uint64_t lease_ttl_ms = 5000;
  /// Speculative re-lease: a shard with no finished cell for longer than
  /// straggler_factor x the fleet's median cell time (min 3 samples) is
  /// re-granted while the old worker keeps running. 0 disables.
  double straggler_factor = 0.0;
  /// Grant attempts per shard (initial + re-grants) before the shard is
  /// declared failed and its cells fall back to local recomputation.
  std::size_t max_lease_attempts = 4;
  /// Base backoff before re-granting a failed shard; jittered per shard by
  /// analysis::retry_backoff_delay_ms. 0 = re-grant immediately.
  std::uint64_t relaunch_backoff_ms = 50;
  /// Worker command prefix, e.g. {"/path/to/lumen-bench", "work"}; the
  /// coordinator appends the lease file path.
  std::vector<std::string> worker_argv;
  /// Directory for lease documents and shard journals (created if absent).
  std::string dir = ".lumen-fabric";
  /// Extra resume journals handed to every lease (the canonical journal of
  /// an interrupted earlier run): cells found there are never re-executed.
  std::vector<std::string> resume_paths;
  /// Fault injection for the chaos harness: after each finished cell the
  /// owning worker is SIGKILLed with this probability, drawn from a
  /// deterministic splitmix64 stream over chaos_seed.
  double chaos_kill_rate = 0.0;
  std::uint64_t chaos_seed = 0;
  /// Progress/diagnostic lines (lease grants, expiries, crashes); null = silent.
  std::function<void(std::string_view)> log;
};

/// What the fleet went through; reported, never part of the result bytes.
struct FabricStats {
  std::size_t shards = 0;             ///< Seed-range shards the grid split into.
  std::size_t leases_granted = 0;     ///< Grants incl. re-grants and speculation.
  std::size_t workers_spawned = 0;
  std::size_t workers_crashed = 0;    ///< Signal deaths + nonzero retriable exits.
  std::size_t leases_expired = 0;     ///< TTL reclaims of silent workers.
  std::size_t straggler_releases = 0; ///< Speculative re-grants.
  std::size_t chaos_kills = 0;        ///< SIGKILLs injected by the chaos knob.
  std::size_t stale_events_fenced = 0;   ///< Events carrying a superseded token.
  std::size_t duplicate_cells_dropped = 0;  ///< First-write-wins merge drops.
  std::size_t shards_failed = 0;      ///< Shards past the lease-attempt budget.
  std::size_t cells_recomputed_locally = 0;  ///< Fallback cells run in-process.
};

struct FabricResult {
  analysis::CampaignResult result;
  FabricStats stats;
  bool stopped = false;  ///< Drained early on the caller's stop flag.
};

/// Runs `spec` across a fleet of worker subprocesses (see file comment).
/// `control` is the caller's ordinary campaign control: its journal becomes
/// the canonical merged journal, its resume snapshot seeds every lease, its
/// stop flag drains the fleet (workers get SIGTERM, finish their cell, and
/// their partial journals still merge), and its on_cell hook fires once per
/// newly-delivered cell. Blocks until the grid is complete or drained.
[[nodiscard]] FabricResult run_fabric_campaign(
    const analysis::CampaignSpec& spec, const FabricConfig& config,
    const analysis::CampaignControl& control = {});

}  // namespace lumen::fabric
