#include "fabric/protocol.hpp"

#include "util/json.hpp"

namespace lumen::fabric {

namespace {
constexpr std::string_view kEventType = "lumen-worker";
}

std::string_view to_string(WorkerEventKind k) noexcept {
  switch (k) {
    case WorkerEventKind::kHello: return "hello";
    case WorkerEventKind::kHeartbeat: return "heartbeat";
    case WorkerEventKind::kCell: return "cell";
    case WorkerEventKind::kDone: return "done";
  }
  return "?";
}

std::string worker_event_to_line(const WorkerEvent& event) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("type", util::JsonValue::string(std::string(kEventType)));
  obj.set("event",
          util::JsonValue::string(std::string(to_string(event.kind))));
  obj.set("token",
          util::JsonValue::integer(static_cast<std::int64_t>(event.token)));
  switch (event.kind) {
    case WorkerEventKind::kHello:
      obj.set("pid", util::JsonValue::integer(event.pid));
      break;
    case WorkerEventKind::kCell:
      obj.set("seed",
              util::JsonValue::integer(static_cast<std::int64_t>(event.seed)));
      [[fallthrough]];
    case WorkerEventKind::kHeartbeat:
      obj.set("cells",
              util::JsonValue::integer(static_cast<std::int64_t>(event.cells)));
      break;
    case WorkerEventKind::kDone:
      obj.set("cells",
              util::JsonValue::integer(static_cast<std::int64_t>(event.cells)));
      obj.set("errors", util::JsonValue::integer(
                            static_cast<std::int64_t>(event.errors)));
      break;
  }
  return util::json_write(obj, 0);
}

std::optional<WorkerEvent> worker_event_from_line(std::string_view line,
                                                  std::string* error) {
  const auto fail = [error](std::string why) -> std::optional<WorkerEvent> {
    if (error != nullptr && error->empty()) *error = std::move(why);
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::json_parse(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail(parse_error.empty() ? "not a JSON object" : parse_error);
  }
  const auto* type = doc->find("type");
  if (type == nullptr || !type->is_string() ||
      type->as_string() != kEventType) {
    return fail("not a lumen-worker event");
  }
  const auto* event = doc->find("event");
  if (event == nullptr || !event->is_string()) {
    return fail("event must be a string");
  }
  WorkerEvent out;
  bool known = false;
  for (const auto k : {WorkerEventKind::kHello, WorkerEventKind::kHeartbeat,
                       WorkerEventKind::kCell, WorkerEventKind::kDone}) {
    if (to_string(k) == event->as_string()) {
      out.kind = k;
      known = true;
      break;
    }
  }
  if (!known) return fail("unknown event \"" + event->as_string() + "\"");
  const auto want_u64 = [&](std::string_view key, std::uint64_t& into,
                            bool required) {
    const auto* v = doc->find(key);
    if (v == nullptr) return !required;
    if (!v->is_integer() || v->as_int() < 0) return false;
    into = static_cast<std::uint64_t>(v->as_int());
    return true;
  };
  if (!want_u64("token", out.token, true)) return fail("token missing/invalid");
  if (!want_u64("cells", out.cells, out.kind == WorkerEventKind::kHeartbeat ||
                                        out.kind == WorkerEventKind::kCell ||
                                        out.kind == WorkerEventKind::kDone)) {
    return fail("cells missing/invalid");
  }
  if (!want_u64("seed", out.seed, out.kind == WorkerEventKind::kCell)) {
    return fail("seed missing/invalid");
  }
  if (!want_u64("errors", out.errors, false)) return fail("errors invalid");
  if (out.kind == WorkerEventKind::kHello) {
    const auto* pid = doc->find("pid");
    if (pid == nullptr || !pid->is_integer()) return fail("pid missing/invalid");
    out.pid = pid->as_int();
  }
  return out;
}

}  // namespace lumen::fabric
