// lumen_sched: ASYNC adversaries.
//
// In the asynchronous model every robot's Wait, Compute and Move phases take
// arbitrary finite durations chosen by an adversary. We model the adversary
// as a seeded policy that samples per-cycle phase timings; different policy
// families stress different hazards (uniform jitter, heavy-tailed stalls, a
// single slow robot, bursty lockstep-then-chaos). Determinism: the same
// (policy, seed) reproduces the same schedule bit-for-bit.
#pragma once

#include "util/prng.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace lumen::sched {

/// Durations of the non-instantaneous phases of one LCM cycle.
/// Look itself is instantaneous (a snapshot). Movement is rigid (the robot
/// always arrives); the adversary picks the DURATION of the move directly —
/// the robot's speed is whatever covers the distance in that time. Sampling
/// duration rather than speed keeps epochs comparable across world scales
/// (a move across the configuration and a local nudge are both "one move"
/// to the time measure, exactly as in the abstract model where the
/// adversary may pause and speed up robots arbitrarily mid-cycle).
struct PhaseTiming {
  double wait = 0.0;           ///< Idle time before Look.
  double compute = 0.0;        ///< Time between Look and the move/light commit.
  double move_duration = 1.0;  ///< Time a (non-null) Move takes (> 0).
};

/// Known adversary families.
enum class AdversaryKind {
  kUniform,   ///< All phases uniform in moderate ranges — generic jitter.
  kBursty,    ///< Exponential heavy-tail waits: long stalls amid fast cycles.
  kStallOne,  ///< Robot 0 runs an order of magnitude slower than the rest.
  kLockstep,  ///< Near-identical timings: adversary tries to synchronize
              ///< Looks so stale-snapshot races collide maximally.
};

[[nodiscard]] std::string_view to_string(AdversaryKind k) noexcept;

/// Inverse of to_string: exact-name lookup, nullopt for unknown names.
[[nodiscard]] std::optional<AdversaryKind> adversary_from_string(
    std::string_view name) noexcept;

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Samples phase timings for the given robot's cycle. `rng` is the
  /// engine's schedule stream; policies must draw all randomness from it.
  [[nodiscard]] virtual PhaseTiming sample(std::size_t robot, std::uint64_t cycle,
                                           util::Prng& rng) const = 0;

  [[nodiscard]] virtual AdversaryKind kind() const noexcept = 0;
};

/// Factory over the known families.
[[nodiscard]] std::unique_ptr<Adversary> make_adversary(AdversaryKind kind);

}  // namespace lumen::sched
