// lumen_sched: epoch accounting — the time measure behind every bound.
//
// ASYNC time is measured in epochs: starting from the epoch's begin time,
// the epoch ends at the earliest instant by which EVERY robot has completed
// at least one full LCM cycle that STARTED within the epoch. The paper's
// O(log N) claim counts exactly these epochs. The timeline is reconstructed
// after the run from the recorded (start, end) of each cycle, which makes
// the accounting independent of engine internals and easy to test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace lumen::sched {

/// One completed LCM cycle of one robot.
struct CycleRecord {
  std::size_t robot = 0;
  double start = 0.0;  ///< Wait-phase begin (cycle start).
  double end = 0.0;    ///< Move completion (cycle end).
};

class EpochTimeline {
 public:
  explicit EpochTimeline(std::size_t robot_count) : per_robot_(robot_count) {}

  /// Records a completed cycle. Cycles of one robot must arrive in
  /// chronological order (the engine naturally emits them so).
  void add_cycle(const CycleRecord& rec);

  /// Number of robots being tracked.
  [[nodiscard]] std::size_t robot_count() const noexcept { return per_robot_.size(); }

  /// Total cycles recorded.
  [[nodiscard]] std::size_t cycle_count() const noexcept;

  /// Number of COMPLETE epochs contained in [0, horizon]. Greedy
  /// reconstruction: epoch e begins where epoch e-1 ended; it ends at
  /// max over robots of (end of the robot's first cycle with start >= epoch
  /// begin). An epoch that cannot complete within the horizon is not counted.
  [[nodiscard]] std::size_t count_epochs(double horizon) const;

  /// The end times of each complete epoch in [0, horizon].
  [[nodiscard]] std::vector<double> epoch_boundaries(double horizon) const;

 private:
  // Per robot: chronologically sorted cycles (start, end).
  std::vector<std::vector<std::pair<double, double>>> per_robot_;
};

/// Online epoch detection with bounded memory: feeds on the same CycleRecord
/// stream as EpochTimeline but closes epochs as soon as they complete,
/// instead of retaining the whole timeline and reconstructing post-hoc.
/// Runs the SAME greedy recurrence as EpochTimeline::epoch_boundaries —
/// epoch e begins where e-1 ended and ends at max over robots of (end of the
/// robot's first cycle with start >= epoch begin) — so the boundary list is
/// identical; only O(cycles per epoch) records are buffered at any time.
class StreamingEpochDetector {
 public:
  explicit StreamingEpochDetector(std::size_t robot_count);

  /// Feeds one completed cycle. Cycles of one robot must arrive in
  /// chronological order (as the engines emit them). Returns the number of
  /// epochs that CLOSED as a consequence (usually 0 or 1; a straggler
  /// robot's cycle can close several at once).
  std::size_t add_cycle(const CycleRecord& rec);

  /// Permanently removes `robot` from the epoch requirement (crash-stop
  /// faults): from now on an epoch closes when every LIVE robot has a
  /// qualifying cycle, so survivor progress stays measurable around dead
  /// bodies. The retired robot's buffered cycles are discarded. Returns the
  /// number of epochs that closed as a consequence (the dead robot may have
  /// been the only straggler). Once every robot is retired no further
  /// epochs close.
  std::size_t retire(std::size_t robot);

  /// End times of every epoch closed so far (non-decreasing).
  [[nodiscard]] const std::vector<double>& boundaries() const noexcept {
    return boundaries_;
  }

  /// Number of closed epochs whose end lies in [0, horizon] — the streaming
  /// equivalent of EpochTimeline::count_epochs.
  [[nodiscard]] std::size_t count_epochs(double horizon) const noexcept;

 private:
  /// Closes epochs while every robot has a qualifying cycle buffered.
  std::size_t drain();

  double epoch_begin_ = 0.0;
  std::vector<double> boundaries_;
  // Per robot: buffered cycles with start >= epoch_begin_, chronological.
  std::vector<std::deque<std::pair<double, double>>> pending_;
  std::vector<std::uint8_t> retired_;
  std::size_t live_ = 0;
};

}  // namespace lumen::sched
