// lumen_sched: epoch accounting — the time measure behind every bound.
//
// ASYNC time is measured in epochs: starting from the epoch's begin time,
// the epoch ends at the earliest instant by which EVERY robot has completed
// at least one full LCM cycle that STARTED within the epoch. The paper's
// O(log N) claim counts exactly these epochs. The timeline is reconstructed
// after the run from the recorded (start, end) of each cycle, which makes
// the accounting independent of engine internals and easy to test.
#pragma once

#include <cstddef>
#include <vector>

namespace lumen::sched {

/// One completed LCM cycle of one robot.
struct CycleRecord {
  std::size_t robot = 0;
  double start = 0.0;  ///< Wait-phase begin (cycle start).
  double end = 0.0;    ///< Move completion (cycle end).
};

class EpochTimeline {
 public:
  explicit EpochTimeline(std::size_t robot_count) : per_robot_(robot_count) {}

  /// Records a completed cycle. Cycles of one robot must arrive in
  /// chronological order (the engine naturally emits them so).
  void add_cycle(const CycleRecord& rec);

  /// Number of robots being tracked.
  [[nodiscard]] std::size_t robot_count() const noexcept { return per_robot_.size(); }

  /// Total cycles recorded.
  [[nodiscard]] std::size_t cycle_count() const noexcept;

  /// Number of COMPLETE epochs contained in [0, horizon]. Greedy
  /// reconstruction: epoch e begins where epoch e-1 ended; it ends at
  /// max over robots of (end of the robot's first cycle with start >= epoch
  /// begin). An epoch that cannot complete within the horizon is not counted.
  [[nodiscard]] std::size_t count_epochs(double horizon) const;

  /// The end times of each complete epoch in [0, horizon].
  [[nodiscard]] std::vector<double> epoch_boundaries(double horizon) const;

 private:
  // Per robot: chronologically sorted cycles (start, end).
  std::vector<std::vector<std::pair<double, double>>> per_robot_;
};

}  // namespace lumen::sched
