#include "sched/activation.hpp"

namespace lumen::sched {

std::string_view to_string(ActivationKind k) noexcept {
  switch (k) {
    case ActivationKind::kAll: return "fsync-all";
    case ActivationKind::kRandomHalf: return "ssync-half";
    case ActivationKind::kSingleton: return "ssync-singleton";
    case ActivationKind::kRandomSingle: return "ssync-rand1";
  }
  return "?";
}

std::optional<ActivationKind> activation_from_string(std::string_view name) noexcept {
  for (const auto k : {ActivationKind::kAll, ActivationKind::kRandomHalf,
                       ActivationKind::kSingleton, ActivationKind::kRandomSingle}) {
    if (to_string(k) == name) return k;
  }
  return std::nullopt;
}

namespace {

class AllPolicy final : public ActivationPolicy {
 public:
  std::vector<std::size_t> activate(std::size_t n, std::uint64_t,
                                    util::Prng&) const override {
    std::vector<std::size_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  ActivationKind kind() const noexcept override { return ActivationKind::kAll; }
};

class RandomHalfPolicy final : public ActivationPolicy {
 public:
  std::vector<std::size_t> activate(std::size_t n, std::uint64_t,
                                    util::Prng& rng) const override {
    std::vector<std::size_t> out;
    while (out.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(0.5)) out.push_back(i);
      }
    }
    return out;
  }
  ActivationKind kind() const noexcept override { return ActivationKind::kRandomHalf; }
};

class SingletonPolicy final : public ActivationPolicy {
 public:
  std::vector<std::size_t> activate(std::size_t n, std::uint64_t round,
                                    util::Prng&) const override {
    return {static_cast<std::size_t>(round % n)};
  }
  ActivationKind kind() const noexcept override { return ActivationKind::kSingleton; }
};

class RandomSinglePolicy final : public ActivationPolicy {
 public:
  std::vector<std::size_t> activate(std::size_t n, std::uint64_t,
                                    util::Prng& rng) const override {
    return {static_cast<std::size_t>(rng.next_below(n))};
  }
  ActivationKind kind() const noexcept override { return ActivationKind::kRandomSingle; }
};

}  // namespace

std::unique_ptr<ActivationPolicy> make_activation(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kAll: return std::make_unique<AllPolicy>();
    case ActivationKind::kRandomHalf: return std::make_unique<RandomHalfPolicy>();
    case ActivationKind::kSingleton: return std::make_unique<SingletonPolicy>();
    case ActivationKind::kRandomSingle: return std::make_unique<RandomSinglePolicy>();
  }
  return std::make_unique<AllPolicy>();
}

}  // namespace lumen::sched
