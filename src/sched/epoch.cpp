#include "sched/epoch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lumen::sched {

void EpochTimeline::add_cycle(const CycleRecord& rec) {
  if (rec.robot >= per_robot_.size()) {
    throw std::out_of_range("EpochTimeline::add_cycle: robot index out of range");
  }
  auto& cycles = per_robot_[rec.robot];
  if (!cycles.empty() && rec.start < cycles.back().first) {
    throw std::invalid_argument("EpochTimeline::add_cycle: cycles out of order");
  }
  cycles.emplace_back(rec.start, rec.end);
}

std::size_t EpochTimeline::cycle_count() const noexcept {
  std::size_t total = 0;
  for (const auto& v : per_robot_) total += v.size();
  return total;
}

std::vector<double> EpochTimeline::epoch_boundaries(double horizon) const {
  std::vector<double> boundaries;
  if (per_robot_.empty()) return boundaries;
  // Per-robot cursor into its cycle list.
  std::vector<std::size_t> cursor(per_robot_.size(), 0);
  double epoch_begin = 0.0;
  for (;;) {
    double epoch_end = epoch_begin;
    bool complete = true;
    for (std::size_t r = 0; r < per_robot_.size(); ++r) {
      const auto& cycles = per_robot_[r];
      std::size_t c = cursor[r];
      while (c < cycles.size() && cycles[c].first < epoch_begin) ++c;
      cursor[r] = c;
      if (c == cycles.size() || cycles[c].second > horizon) {
        complete = false;
        break;
      }
      epoch_end = std::max(epoch_end, cycles[c].second);
    }
    if (!complete) break;
    boundaries.push_back(epoch_end);
    // Guard against zero-length epochs (all cycles instantaneous) looping.
    if (epoch_end <= epoch_begin) epoch_end = std::nextafter(epoch_begin, 1e300);
    epoch_begin = epoch_end;
  }
  return boundaries;
}

std::size_t EpochTimeline::count_epochs(double horizon) const {
  return epoch_boundaries(horizon).size();
}

StreamingEpochDetector::StreamingEpochDetector(std::size_t robot_count)
    : pending_(robot_count), retired_(robot_count, 0), live_(robot_count) {}

std::size_t StreamingEpochDetector::retire(std::size_t robot) {
  if (robot >= pending_.size()) {
    throw std::out_of_range(
        "StreamingEpochDetector::retire: robot index out of range");
  }
  if (retired_[robot] != 0) return 0;
  retired_[robot] = 1;
  --live_;
  pending_[robot].clear();
  return drain();
}

std::size_t StreamingEpochDetector::add_cycle(const CycleRecord& rec) {
  if (rec.robot >= pending_.size()) {
    throw std::out_of_range(
        "StreamingEpochDetector::add_cycle: robot index out of range");
  }
  auto& cycles = pending_[rec.robot];
  if (!cycles.empty() && rec.start < cycles.back().first) {
    throw std::invalid_argument(
        "StreamingEpochDetector::add_cycle: cycles out of order");
  }
  // Cycles starting before the current epoch can never qualify again (epoch
  // begins only move forward), so they are not buffered at all.
  if (rec.start >= epoch_begin_) cycles.emplace_back(rec.start, rec.end);
  return drain();
}

std::size_t StreamingEpochDetector::drain() {
  std::size_t closed = 0;
  for (;;) {
    // Same recurrence as EpochTimeline::epoch_boundaries, restricted to
    // live robots: the epoch ends at the max over robots of the end of the
    // robot's first cycle with start >= epoch_begin_. Buffered fronts ARE
    // those first qualifying cycles.
    double epoch_end = epoch_begin_;
    bool complete = true;
    for (std::size_t r = 0; r < pending_.size(); ++r) {
      if (retired_[r] != 0) continue;
      if (pending_[r].empty()) {
        complete = false;
        break;
      }
      epoch_end = std::max(epoch_end, pending_[r].front().second);
    }
    if (!complete || live_ == 0) break;
    boundaries_.push_back(epoch_end);
    ++closed;
    // Guard against zero-length epochs (all cycles instantaneous) looping.
    if (epoch_end <= epoch_begin_) epoch_end = std::nextafter(epoch_begin_, 1e300);
    epoch_begin_ = epoch_end;
    for (auto& cycles : pending_) {
      while (!cycles.empty() && cycles.front().first < epoch_begin_) {
        cycles.pop_front();
      }
    }
  }
  return closed;
}

std::size_t StreamingEpochDetector::count_epochs(double horizon) const noexcept {
  std::size_t count = 0;
  for (const double b : boundaries_) {
    if (b <= horizon) ++count;
  }
  return count;
}

}  // namespace lumen::sched
