#include "sched/epoch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lumen::sched {

void EpochTimeline::add_cycle(const CycleRecord& rec) {
  if (rec.robot >= per_robot_.size()) {
    throw std::out_of_range("EpochTimeline::add_cycle: robot index out of range");
  }
  auto& cycles = per_robot_[rec.robot];
  if (!cycles.empty() && rec.start < cycles.back().first) {
    throw std::invalid_argument("EpochTimeline::add_cycle: cycles out of order");
  }
  cycles.emplace_back(rec.start, rec.end);
}

std::size_t EpochTimeline::cycle_count() const noexcept {
  std::size_t total = 0;
  for (const auto& v : per_robot_) total += v.size();
  return total;
}

std::vector<double> EpochTimeline::epoch_boundaries(double horizon) const {
  std::vector<double> boundaries;
  if (per_robot_.empty()) return boundaries;
  // Per-robot cursor into its cycle list.
  std::vector<std::size_t> cursor(per_robot_.size(), 0);
  double epoch_begin = 0.0;
  for (;;) {
    double epoch_end = epoch_begin;
    bool complete = true;
    for (std::size_t r = 0; r < per_robot_.size(); ++r) {
      const auto& cycles = per_robot_[r];
      std::size_t c = cursor[r];
      while (c < cycles.size() && cycles[c].first < epoch_begin) ++c;
      cursor[r] = c;
      if (c == cycles.size() || cycles[c].second > horizon) {
        complete = false;
        break;
      }
      epoch_end = std::max(epoch_end, cycles[c].second);
    }
    if (!complete) break;
    boundaries.push_back(epoch_end);
    // Guard against zero-length epochs (all cycles instantaneous) looping.
    if (epoch_end <= epoch_begin) epoch_end = std::nextafter(epoch_begin, 1e300);
    epoch_begin = epoch_end;
  }
  return boundaries;
}

std::size_t EpochTimeline::count_epochs(double horizon) const {
  return epoch_boundaries(horizon).size();
}

}  // namespace lumen::sched
