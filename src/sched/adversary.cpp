#include "sched/adversary.hpp"

#include <algorithm>

namespace lumen::sched {

std::string_view to_string(AdversaryKind k) noexcept {
  switch (k) {
    case AdversaryKind::kUniform: return "uniform";
    case AdversaryKind::kBursty: return "bursty";
    case AdversaryKind::kStallOne: return "stall-one";
    case AdversaryKind::kLockstep: return "lockstep";
  }
  return "?";
}

std::optional<AdversaryKind> adversary_from_string(std::string_view name) noexcept {
  for (const auto k : {AdversaryKind::kUniform, AdversaryKind::kBursty,
                       AdversaryKind::kStallOne, AdversaryKind::kLockstep}) {
    if (to_string(k) == name) return k;
  }
  return std::nullopt;
}

namespace {

class UniformAdversary final : public Adversary {
 public:
  PhaseTiming sample(std::size_t, std::uint64_t, util::Prng& rng) const override {
    return PhaseTiming{rng.uniform(0.05, 1.0), rng.uniform(0.05, 0.5),
                       rng.uniform(0.5, 2.0)};  // Move takes 0.5-2 time units.
  }
  AdversaryKind kind() const noexcept override { return AdversaryKind::kUniform; }
};

class BurstyAdversary final : public Adversary {
 public:
  PhaseTiming sample(std::size_t, std::uint64_t, util::Prng& rng) const override {
    // 10% of cycles stall with an exponential tail, the rest are fast;
    // move durations swing across two orders of magnitude (a mid-move robot
    // can be observed by dozens of peer Looks).
    const double wait =
        rng.bernoulli(0.1) ? 0.5 + rng.exponential(0.2) : rng.uniform(0.01, 0.2);
    const double compute = rng.uniform(0.01, 0.3);
    const double move =
        rng.bernoulli(0.2) ? rng.uniform(3.0, 10.0) : rng.uniform(0.2, 1.0);
    return PhaseTiming{wait, compute, move};
  }
  AdversaryKind kind() const noexcept override { return AdversaryKind::kBursty; }
};

class StallOneAdversary final : public Adversary {
 public:
  PhaseTiming sample(std::size_t robot, std::uint64_t, util::Prng& rng) const override {
    const double slow = robot == 0 ? 12.0 : 1.0;
    return PhaseTiming{slow * rng.uniform(0.05, 1.0), slow * rng.uniform(0.05, 0.5),
                       slow * rng.uniform(0.5, 2.0)};
  }
  AdversaryKind kind() const noexcept override { return AdversaryKind::kStallOne; }
};

class LockstepAdversary final : public Adversary {
 public:
  PhaseTiming sample(std::size_t, std::uint64_t, util::Prng& rng) const override {
    // Tiny jitter on identical nominal timings: many robots Look within the
    // same instant and then act on equally stale snapshots.
    return PhaseTiming{0.5 + rng.uniform(0.0, 1e-3), 0.1 + rng.uniform(0.0, 1e-3),
                       1.0};
  }
  AdversaryKind kind() const noexcept override { return AdversaryKind::kLockstep; }
};

}  // namespace

std::unique_ptr<Adversary> make_adversary(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kUniform: return std::make_unique<UniformAdversary>();
    case AdversaryKind::kBursty: return std::make_unique<BurstyAdversary>();
    case AdversaryKind::kStallOne: return std::make_unique<StallOneAdversary>();
    case AdversaryKind::kLockstep: return std::make_unique<LockstepAdversary>();
  }
  return std::make_unique<UniformAdversary>();
}

}  // namespace lumen::sched
