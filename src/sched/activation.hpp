// lumen_sched: round-based activation policies (FSYNC / SSYNC).
//
// In the (semi-)synchronous settings time is discrete rounds; in each round
// a scheduler activates a non-empty subset of robots which then Look,
// Compute and Move atomically. FSYNC activates everyone; SSYNC adversaries
// pick subsets. Fairness (every robot activated infinitely often) is
// guaranteed by construction in every policy here.
#pragma once

#include "util/prng.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace lumen::sched {

enum class ActivationKind {
  kAll,          ///< FSYNC: every robot, every round.
  kRandomHalf,   ///< SSYNC: each robot independently with probability 1/2
                 ///< (re-drawn until non-empty).
  kSingleton,    ///< SSYNC worst case: exactly one robot per round,
                 ///< round-robin — the sequential adversary.
  kRandomSingle, ///< SSYNC: one uniformly random robot per round.
};

[[nodiscard]] std::string_view to_string(ActivationKind k) noexcept;

/// Inverse of to_string: exact-name lookup, nullopt for unknown names.
[[nodiscard]] std::optional<ActivationKind> activation_from_string(
    std::string_view name) noexcept;

class ActivationPolicy {
 public:
  virtual ~ActivationPolicy() = default;

  /// Indices of the robots activated in `round`; guaranteed non-empty,
  /// strictly increasing.
  [[nodiscard]] virtual std::vector<std::size_t> activate(std::size_t n,
                                                          std::uint64_t round,
                                                          util::Prng& rng) const = 0;

  [[nodiscard]] virtual ActivationKind kind() const noexcept = 0;
};

[[nodiscard]] std::unique_ptr<ActivationPolicy> make_activation(ActivationKind kind);

}  // namespace lumen::sched
