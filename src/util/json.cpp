#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace lumen::util {

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  // Keep integral doubles exact in output (campaign sizes, counts).
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 9.0e15) {
    v.integral_ = true;
    v.int_ = static_cast<std::int64_t>(d);
  }
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.integral_ = true;
  v.int_ = i;
  v.number_ = static_cast<double>(i);
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string number_text(const JsonValue& v) {
  char buf[64];
  if (v.is_integer()) {
    std::snprintf(buf, sizeof buf, "%" PRId64, v.as_int());
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
  }
  return buf;
}

void write_value(std::ostringstream& os, const JsonValue& v, int indent,
                 int depth) {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      os << '\n';
      for (int i = 0; i < d * indent; ++i) os << ' ';
    }
  };
  switch (v.kind()) {
    case JsonValue::Kind::kNull: os << "null"; break;
    case JsonValue::Kind::kBool: os << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::kNumber: os << number_text(v); break;
    case JsonValue::Kind::kString:
      os << '"' << json_escape(v.as_string()) << '"';
      break;
    case JsonValue::Kind::kArray: {
      if (v.items().empty()) {
        os << "[]";
        break;
      }
      // Arrays of scalars stay on one line (readable ns-lists); arrays of
      // containers get one element per line.
      bool scalar = true;
      for (const auto& item : v.items()) {
        scalar = scalar && !item.is_array() && !item.is_object();
      }
      os << '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) os << (scalar && indent > 0 ? ", " : ",");
        if (!scalar) newline_pad(depth + 1);
        write_value(os, item, indent, depth + 1);
        first = false;
      }
      if (!scalar) newline_pad(depth);
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      if (v.members().empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) os << ',';
        newline_pad(depth + 1);
        os << '"' << json_escape(key) << "\":";
        if (indent > 0) os << ' ';
        write_value(os, value, indent, depth + 1);
        first = false;
      }
      newline_pad(depth);
      os << '}';
      break;
    }
  }
}

class Parser {
 public:
  // Containers nested deeper than this fail with a clear error instead of
  // overflowing the recursive-descent stack (a hostile --spec file is the
  // threat model; real scenario documents nest 3-4 levels).
  static constexpr int kMaxDepth = 128;

  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    auto v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  void fail(std::string_view msg) {
    if (error_.empty()) {
      error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxDepth) {
        fail("nesting deeper than 128 levels");
        return std::nullopt;
      }
      ++depth_;
      auto v = c == '{' ? parse_object() : parse_array();
      --depth_;
      return v;
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue::string(std::move(*s));
    }
    if (literal("true")) return JsonValue::boolean(true);
    if (literal("false")) return JsonValue::boolean(false);
    if (literal("null")) return JsonValue::null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    if (lexeme.empty() || lexeme == "-") {
      fail("malformed number");
      return std::nullopt;
    }
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long i = std::strtoll(lexeme.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::integer(i);
      }
      // Out-of-range integer: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(lexeme.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number");
      return std::nullopt;
    }
    // An overflowing literal (1e999) parses to infinity, which the
    // deterministic writer cannot represent — rejecting it here keeps the
    // byte-exact round-trip guarantee total over accepted documents.
    if (!std::isfinite(d)) {
      fail("number out of range");
      return std::nullopt;
    }
    return JsonValue::number(d);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // Specs and results are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_array() {
    if (!consume('[')) {
      fail("expected array");
      return std::nullopt;
    }
    JsonValue out = JsonValue::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) return out;
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object() {
    if (!consume('{')) {
      fail("expected object");
      return std::nullopt;
    }
    JsonValue out = JsonValue::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      auto v = parse_value();
      if (!v) return std::nullopt;
      out.set(std::move(*key), std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) return out;
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

std::string json_write(const JsonValue& v, int indent) {
  std::ostringstream os;
  write_value(os, v, indent, 0);
  return os.str();
}

}  // namespace lumen::util
