#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace lumen::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  fit.rmse = std::sqrt(ss_res / static_cast<double>(n));
  fit.r_squared = (syy > 0.0) ? std::max(0.0, 1.0 - ss_res / syy) : 1.0;
  return fit;
}

ScalingVerdict classify_growth(std::span<const double> ns,
                               std::span<const double> times,
                               double tie_margin) {
  ScalingVerdict v;
  std::vector<double> logs;
  logs.reserve(ns.size());
  for (const double n : ns) logs.push_back(std::log2(std::max(n, 1.0)));
  v.log_fit = fit_linear(logs, times);
  v.lin_fit = fit_linear(ns, times);
  v.margin = v.log_fit.r_squared - v.lin_fit.r_squared;
  if (v.margin > tie_margin) {
    v.winner = GrowthModel::kLogarithmic;
  } else if (v.margin < -tie_margin) {
    v.winner = GrowthModel::kLinear;
  } else {
    v.winner = GrowthModel::kTie;
  }
  return v;
}

std::string to_string(GrowthModel m) {
  switch (m) {
    case GrowthModel::kLogarithmic:
      return "O(log N)";
    case GrowthModel::kLinear:
      return "O(N)";
    case GrowthModel::kTie:
      return "tie";
  }
  return "?";
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile(xs, 50.0);
  s.p95 = percentile(xs, 95.0);
  return s;
}

}  // namespace lumen::util
