// lumen_util: a flat dynamic bitset stored as 64-bit words.
//
// The simulation keeps per-robot boolean state (alive, move-in-flight) hot
// on the Look path; packing it 64 robots to the word keeps the whole flag
// set of even a 10^5-robot swarm inside a few cache lines and lets
// population counts run word-at-a-time. Tail bits beyond size() are kept
// zero as a class invariant, so count()/any() never mask per call.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lumen::util {

class DynamicBitset {
 public:
  static constexpr std::size_t kWordBits = 64;

  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n, bool value = false) { assign(n, value); }

  /// Resizes to `n` bits, all set to `value`. Keeps word capacity.
  void assign(std::size_t n, bool value) {
    n_ = n;
    const std::uint64_t fill = value ? ~std::uint64_t{0} : 0;
    words_.assign(word_count(n), fill);
    clear_tail();
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return ((words_[i >> 6] >> (i & 63)) & 1u) != 0;
  }

  void set(std::size_t i, bool value = true) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void reset(std::size_t i) noexcept { set(i, false); }

  /// Number of set bits. O(size / 64).
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) {
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }

  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// Raw word storage (tail bits beyond size() are zero). Observers hand
  /// these words out in read-only views; word i holds bits [64i, 64i+64).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  [[nodiscard]] static std::size_t word_count(std::size_t bits) noexcept {
    return (bits + kWordBits - 1) / kWordBits;
  }

 private:
  /// Re-establishes the all-zero-tail invariant after a bulk fill.
  void clear_tail() noexcept {
    const std::size_t tail = n_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lumen::util
