// lumen_util: LSD radix sort for packed (key << 32 | slot) records.
//
// The geometry kernels presort by a 32-bit approximate key (a float
// pseudo-angle, a rounded coordinate) with the element's slot id packed
// into the low half. Sorting the full 64-bit word ascending then means
// "by key, ties in slot order" — and because callers append records in
// ascending slot order, a STABLE sort over just the key bytes produces
// exactly that order without ever touching the low half. Four LSD
// counting passes over the high 32 bits do the job in O(n) with no
// comparisons; identity passes (every record sharing a key byte, common
// for float exponent bytes of clustered data) are detected from the
// histogram and skipped.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lumen::util {

/// Below this many records a plain comparison sort of the packed words
/// beats the radix passes.
inline constexpr std::size_t kRadixMinRecords = 96;

/// Sorts `records` ascending by full 64-bit value. Precondition: records
/// were appended with low-32 slots in ascending order (the stable radix
/// path never inspects the low half and relies on it). `tmp` is the
/// ping-pong buffer; it keeps its capacity across calls.
inline void sort_key32_records(std::vector<std::uint64_t>& records,
                               std::vector<std::uint64_t>& tmp) {
  const std::size_t m = records.size();
  if (m < kRadixMinRecords) {
    std::sort(records.begin(), records.end());
    return;
  }
  tmp.resize(m);
  std::uint64_t* src = records.data();
  std::uint64_t* dst = tmp.data();
  int passes_done = 0;
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = 32 + 8 * pass;
    std::array<std::size_t, 256> count{};
    for (std::size_t k = 0; k < m; ++k) {
      ++count[static_cast<std::size_t>((src[k] >> shift) & 0xff)];
    }
    if (count[static_cast<std::size_t>((src[0] >> shift) & 0xff)] == m) {
      continue;  // Identity pass: every record shares this byte.
    }
    std::size_t sum = 0;
    for (std::size_t& c : count) {
      const std::size_t this_bucket = c;
      c = sum;
      sum += this_bucket;
    }
    for (std::size_t k = 0; k < m; ++k) {
      dst[count[static_cast<std::size_t>((src[k] >> shift) & 0xff)]++] = src[k];
    }
    std::swap(src, dst);
    ++passes_done;
  }
  if (passes_done % 2 != 0) {
    std::copy(tmp.begin(), tmp.end(), records.begin());
  }
}

}  // namespace lumen::util
