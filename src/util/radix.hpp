// lumen_util: LSD radix sort for packed (key << 32 | slot) records.
//
// The geometry kernels presort by a 32-bit approximate key (a float
// pseudo-angle, a rounded coordinate) with the element's slot id packed
// into the low half. Sorting the full 64-bit word ascending then means
// "by key, ties in slot order" — and because callers append records in
// ascending slot order, a STABLE sort over just the key bytes produces
// exactly that order without ever touching the low half. Four LSD
// counting passes over the high 32 bits do the job in O(n) with no
// comparisons; identity passes (every record sharing a key byte, common
// for float exponent bytes of clustered data) are detected from the
// histogram and skipped.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lumen::util {

/// One element of an exact 64-bit-keyed stable sort: the full key (e.g. the
/// monotone bit image of a double coordinate) plus the element's slot id.
/// Unlike the packed 32-bit records below, key and payload are separate
/// fields, so EQUAL keys are genuinely equal — no approximate-key tie runs
/// exist and no comparison-sort repair pass is ever needed; stability alone
/// carries the secondary order.
struct Key64Record {
  std::uint64_t key;
  std::uint32_t slot;
};

/// Below this many records a plain comparison sort of the packed words
/// beats the radix passes.
inline constexpr std::size_t kRadixMinRecords = 96;

/// Sorts `records` ascending by full 64-bit value. Precondition: records
/// were appended with low-32 slots in ascending order (the stable radix
/// path never inspects the low half and relies on it). `tmp` is the
/// ping-pong buffer; it keeps its capacity across calls.
inline void sort_key32_records(std::vector<std::uint64_t>& records,
                               std::vector<std::uint64_t>& tmp) {
  const std::size_t m = records.size();
  if (m < kRadixMinRecords) {
    std::sort(records.begin(), records.end());
    return;
  }
  tmp.resize(m);
  std::uint64_t* src = records.data();
  std::uint64_t* dst = tmp.data();
  int passes_done = 0;
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = 32 + 8 * pass;
    std::array<std::size_t, 256> count{};
    for (std::size_t k = 0; k < m; ++k) {
      ++count[static_cast<std::size_t>((src[k] >> shift) & 0xff)];
    }
    if (count[static_cast<std::size_t>((src[0] >> shift) & 0xff)] == m) {
      continue;  // Identity pass: every record shares this byte.
    }
    std::size_t sum = 0;
    for (std::size_t& c : count) {
      const std::size_t this_bucket = c;
      c = sum;
      sum += this_bucket;
    }
    for (std::size_t k = 0; k < m; ++k) {
      dst[count[static_cast<std::size_t>((src[k] >> shift) & 0xff)]++] = src[k];
    }
    std::swap(src, dst);
    ++passes_done;
  }
  if (passes_done % 2 != 0) {
    std::copy(tmp.begin(), tmp.end(), records.begin());
  }
}

/// Finishing pass of a value-bucketed sort: `bucket_ends[b]` is the END
/// offset of bucket b in `dst` (what the scatter's post-increment cursors
/// hold). Buckets are already ordered by key; comparison-sort each
/// multi-record bucket on the full word (insertion for the common tiny
/// runs) and the whole array is exactly ascending.
inline void sort_bucketed_runs(std::uint64_t* dst,
                               const std::uint64_t* bucket_ends,
                               std::size_t nb) {
  std::uint64_t begin = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint64_t end = bucket_ends[b];
    const std::uint64_t len = end - begin;
    if (len > 1) {
      if (len <= 32) {
        for (std::uint64_t* p = dst + begin + 1; p < dst + end; ++p) {
          const std::uint64_t v = *p;
          std::uint64_t* q = p;
          while (q > dst + begin && q[-1] > v) {
            *q = q[-1];
            --q;
          }
          *q = v;
        }
      } else {
        std::sort(dst + begin, dst + end);
      }
    }
    begin = end;
  }
}

/// Sorts packed (float_bits << 32 | slot) records ascending by full 64-bit
/// value, specialised for keys that are the bit images of finite,
/// non-negative floats bounded by `max_key` (values landing exactly on
/// max_key are clamped into the last bucket). Because the key's VALUE is
/// known to live in a small interval, one value-proportional bucket
/// scatter replaces the four byte passes of sort_key32_records: with ~one
/// record per bucket, almost all order is established by the single
/// scatter, and the leftover per-bucket runs are tiny comparison sorts.
/// Produces exactly the full ascending 64-bit order (bucket boundaries are
/// monotone in the key, the scatter is stable, and each bucket is
/// comparison-sorted on the whole word), so it is a drop-in replacement
/// for sort_key32_records wherever the value precondition holds. `tmp`
/// holds the bucket cursors and the scatter destination; it keeps its
/// capacity across calls.
inline void sort_f32key_records(std::vector<std::uint64_t>& records,
                                std::vector<std::uint64_t>& tmp,
                                float max_key) {
  const std::size_t m = records.size();
  if (m < kRadixMinRecords) {
    std::sort(records.begin(), records.end());
    return;
  }
  // Largest power of two NOT ABOVE m (capped): mean occupancy lands in
  // [1, 2), and the cursor array stays within the record footprint so the
  // histogram/scatter working set does not fall out of cache right when m
  // crosses a power of two.
  std::size_t nb = std::bit_floor(m);
  if (nb > (std::size_t{1} << 13)) nb = std::size_t{1} << 13;
  const float scale = static_cast<float>(nb) / max_key;
  tmp.resize(nb + m);
  std::uint64_t* const cursors = tmp.data();
  std::uint64_t* const dst = tmp.data() + nb;
  std::fill_n(cursors, nb, std::uint64_t{0});
  const auto bucket_of = [nb, scale](std::uint64_t rec) noexcept {
    const float key =
        std::bit_cast<float>(static_cast<std::uint32_t>(rec >> 32));
    const auto b = static_cast<std::size_t>(key * scale);
    return b < nb ? b : nb - 1;
  };
  for (const std::uint64_t rec : records) ++cursors[bucket_of(rec)];
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint64_t count = cursors[b];
    cursors[b] = sum;
    sum += count;
  }
  for (const std::uint64_t rec : records) dst[cursors[bucket_of(rec)]++] = rec;
  sort_bucketed_runs(dst, cursors, nb);
  std::memcpy(records.data(), dst, m * sizeof(std::uint64_t));
}

/// STABLE ascending sort of `records` by the full 64-bit key; records with
/// equal keys keep their relative order. Eight LSD counting passes with
/// identity-pass skipping, exactly like sort_key32_records but over an
/// exact key that lives outside the payload. Chaining two calls — sort by a
/// secondary key, rewrite keys in place, sort by the primary — yields the
/// exact lexicographic (primary, secondary, insertion) order with zero
/// comparisons, which is how the convex hull orders (x, y, index) without
/// any tie-run repair sort. `tmp` is the ping-pong buffer and keeps its
/// capacity across calls.
inline void sort_key64_records(std::vector<Key64Record>& records,
                               std::vector<Key64Record>& tmp) {
  const std::size_t m = records.size();
  if (m < kRadixMinRecords) {
    // Stability matters here (unlike the packed-record path, ties are
    // real): stable_sort preserves the insertion order the radix passes
    // would.
    std::stable_sort(records.begin(), records.end(),
                     [](const Key64Record& a, const Key64Record& b) {
                       return a.key < b.key;
                     });
    return;
  }
  tmp.resize(m);
  Key64Record* src = records.data();
  Key64Record* dst = tmp.data();
  int passes_done = 0;
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = 8 * pass;
    std::array<std::size_t, 256> count{};
    for (std::size_t k = 0; k < m; ++k) {
      ++count[static_cast<std::size_t>((src[k].key >> shift) & 0xff)];
    }
    if (count[static_cast<std::size_t>((src[0].key >> shift) & 0xff)] == m) {
      continue;  // Identity pass: every record shares this key byte.
    }
    std::size_t sum = 0;
    for (std::size_t& c : count) {
      const std::size_t this_bucket = c;
      c = sum;
      sum += this_bucket;
    }
    for (std::size_t k = 0; k < m; ++k) {
      dst[count[static_cast<std::size_t>((src[k].key >> shift) & 0xff)]++] =
          src[k];
    }
    std::swap(src, dst);
    ++passes_done;
  }
  if (passes_done % 2 != 0) {
    std::copy(tmp.begin(), tmp.end(), records.begin());
  }
}

}  // namespace lumen::util
