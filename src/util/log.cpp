#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lumen::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
std::function<void(LogLevel, std::string_view)>& sink_ref() {
  static std::function<void(LogLevel, std::string_view)> sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::function<void(LogLevel, std::string_view)> sink) {
  std::lock_guard lock(g_sink_mutex);
  sink_ref() = std::move(sink);
}

void log_message(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard lock(g_sink_mutex);
  if (sink_ref()) {
    sink_ref()(level, msg);
  } else {
    std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace lumen::util
