// lumen_util: leveled logging and scoped wall-clock timing.
//
// The simulator is deterministic, so log output doubles as an execution
// trace; levels let campaigns run silent while single-run debugging stays
// verbose. Thread-safe (a single mutex serializes sinks).
#pragma once

#include <chrono>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace lumen::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide minimum level; messages below it are dropped cheaply.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Replaces the sink (default: stderr). Pass nullptr to restore the default.
void set_log_sink(std::function<void(LogLevel, std::string_view)> sink);

/// Emits a message at `level` (no-op if below the current level).
void log_message(LogLevel level, std::string_view msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Stream-style helpers: LUMEN_INFO() << "epoch " << e;
#define LUMEN_LOG(level)                                     \
  if (static_cast<int>(level) < static_cast<int>(::lumen::util::log_level())) { \
  } else                                                     \
    ::lumen::util::detail::LogLine(level)
#define LUMEN_TRACE() LUMEN_LOG(::lumen::util::LogLevel::kTrace)
#define LUMEN_DEBUG() LUMEN_LOG(::lumen::util::LogLevel::kDebug)
#define LUMEN_INFO() LUMEN_LOG(::lumen::util::LogLevel::kInfo)
#define LUMEN_WARN() LUMEN_LOG(::lumen::util::LogLevel::kWarn)
#define LUMEN_ERROR() LUMEN_LOG(::lumen::util::LogLevel::kError)

/// Measures wall time between construction and stop()/destruction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lumen::util
