// lumen_util: descriptive statistics and scaling-law fits.
//
// The benchmark harness reduces each campaign (many runs of a simulation) to
// summary rows: central tendency, spread, percentiles, and — for the headline
// claim — a model-selection fit that decides whether epochs-to-convergence
// grow like a + b*log2(N) or like a + b*N.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace lumen::util {

/// Welford online accumulator: numerically stable mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order statistics
/// (the "exclusive" convention, matching numpy's default). q in [0, 100].
/// The input need not be sorted; a copy is sorted internally.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Median shorthand.
[[nodiscard]] double median(std::span<const double> xs);

/// Ordinary least squares fit of y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination in [0, 1].
  double rmse = 0.0;       ///< Root-mean-square residual.
};

/// Fits y ~ a + b*x by least squares. Requires xs.size() == ys.size() >= 2
/// and non-constant xs; otherwise returns a zero fit with r_squared = 0.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs,
                                   std::span<const double> ys);

/// Which growth model explains a (N, time) series better.
enum class GrowthModel { kLogarithmic, kLinear, kTie };

/// Result of comparing time ~ a + b*log2(N) against time ~ a + b*N.
struct ScalingVerdict {
  LinearFit log_fit;    ///< Fit against log2(N).
  LinearFit lin_fit;    ///< Fit against N.
  GrowthModel winner = GrowthModel::kTie;
  /// log_fit.r_squared - lin_fit.r_squared; positive favors logarithmic.
  double margin = 0.0;
};

/// Fits both growth models to (n, time) pairs and picks the winner by R²
/// (ties within `tie_margin` are reported as kTie).
[[nodiscard]] ScalingVerdict classify_growth(std::span<const double> ns,
                                             std::span<const double> times,
                                             double tie_margin = 0.01);

/// Human-readable name for a growth model ("O(log N)", "O(N)", "tie").
[[nodiscard]] std::string to_string(GrowthModel m);

/// Summary of a vector of samples, convenient for table rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace lumen::util
