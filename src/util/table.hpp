// lumen_util: CSV and aligned console table emitters.
//
// Every bench binary prints (a) a human-readable aligned table to stdout —
// the "figure/table" of the reproduced experiment — and (b) optionally the
// same rows as CSV for downstream plotting. Both are driven through the same
// row API so they can never disagree.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::util {

/// Formats a double compactly: fixed for moderate magnitudes, scientific
/// otherwise, trimming trailing zeros.
[[nodiscard]] std::string format_number(double v, int precision = 3);

/// Accumulates rows of string cells and renders them.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string_view text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with padded columns, a header rule, and a title line.
  void print(std::ostream& os, std::string_view title = {}) const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lumen::util
