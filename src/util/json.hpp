// lumen_util: minimal JSON value tree.
//
// The experiment subsystem needs one serialization format for scenario
// specs and machine-readable results. This is a deliberately small,
// dependency-free JSON: a value tree with insertion-ordered objects, a
// recursive-descent parser, and a deterministic writer (fixed key order is
// the caller's, numbers via shortest-round-trip "%.17g", integers kept
// exact). Determinism is what makes the ScenarioSpec byte-identical
// round-trip guarantee testable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lumen::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue integer(std::int64_t v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  /// True for numbers written without fraction/exponent that fit int64.
  [[nodiscard]] bool is_integer() const noexcept {
    return kind_ == Kind::kNumber && integral_;
  }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept { return number_; }
  [[nodiscard]] std::int64_t as_int() const noexcept { return int_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// Array append.
  JsonValue& push_back(JsonValue v);
  /// Object append (insertion order preserved; duplicate keys not checked).
  JsonValue& set(std::string key, JsonValue v);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool integral_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document (trailing garbage is an error). On
/// failure returns nullopt and, when `error` is non-null, a message with a
/// byte offset. Containers nested deeper than 128 levels are rejected (a
/// maliciously nested document must not overflow the parser stack).
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text,
                                                  std::string* error = nullptr);

/// Serializes deterministically. indent > 0 pretty-prints with that many
/// spaces per level; indent == 0 emits the compact one-line form.
[[nodiscard]] std::string json_write(const JsonValue& v, int indent = 2);

/// Escapes a string for embedding inside JSON quotes (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace lumen::util
