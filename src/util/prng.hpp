// lumen_util: deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in lumen (configuration generators, schedulers,
// adversary policies, campaign runners) draws from a Prng seeded explicitly,
// so any run is reproducible from its seed. Sub-streams are derived with
// split(), which hashes (state, tag) so that adding a consumer never perturbs
// the draws of existing consumers.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace lumen::util {

/// SplitMix64 step: the standard seeding/stream-derivation mixer.
/// Advances `state` and returns a well-mixed 64-bit value.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Prng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all four lanes through SplitMix64 so that nearby seeds yield
  /// uncorrelated streams.
  explicit constexpr Prng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& lane : state_) lane = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). Lemire's unbiased multiply-shift rejection.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p of true.
  [[nodiscard]] bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Derives an independent child stream identified by `tag`.
  /// Deterministic in (current state, tag); does not advance this stream.
  [[nodiscard]] Prng split(std::string_view tag) const noexcept;

  /// Derives an independent child stream identified by an integer tag.
  [[nodiscard]] Prng split(std::uint64_t tag) const noexcept;

  /// Fisher-Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) noexcept {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = next_below(i);
      using std::swap;
      swap(first[static_cast<std::ptrdiff_t>(i - 1)],
           first[static_cast<std::ptrdiff_t>(j)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// FNV-1a hash of a string, used for tag-based stream splitting.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace lumen::util
