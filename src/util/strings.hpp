// lumen_util: small string helpers shared by the enum parsers.
//
// Every *_from_string parser in the repo (scheduler, run outcome, fault
// enums) accepts names case-insensitively; iequals is the one comparison
// they all share so the convention cannot drift.
#pragma once

#include <cctype>
#include <string_view>

namespace lumen::util {

/// ASCII case-insensitive equality.
[[nodiscard]] inline bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace lumen::util
