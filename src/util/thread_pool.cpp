#include "util/thread_pool.hpp"

#include <algorithm>

namespace lumen::util {

namespace {
/// The pool whose worker_loop is running on this thread (nullptr on
/// non-worker threads) — how parallel_for detects nested invocation.
thread_local const ThreadPool* t_worker_of = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      record_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::record_exception() {
  std::lock_guard lock(mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  parallel_for_slots(
      count, [&body](std::size_t, std::size_t i) { body(i); }, grain);
}

void ThreadPool::parallel_for_slots(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  if (t_worker_of == this) {
    // Nested region on one of our own workers: run inline (see header).
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  // Per-invocation completion/error state. Errors stay with THIS caller —
  // two concurrent parallel_for regions on the same pool can never observe
  // each other's exceptions (the pool-global first_error_ is only for bare
  // submit()+wait_idle users). The first exception wins; the cancel flag
  // stops the remaining chunk loops from claiming more work, so a throwing
  // campaign shard fails fast instead of burning the whole index space.
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  const std::size_t tasks = std::min(workers_.size(), (count + grain - 1) / grain);
  state->pending = tasks;
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([state, count, grain, &body, t] {
      while (!state->cancelled.load(std::memory_order_relaxed)) {
        const std::size_t begin = state->next.fetch_add(grain);
        if (begin >= count) break;
        const std::size_t end = std::min(begin + grain, count);
        try {
          for (std::size_t i = begin; i < end; ++i) body(t, i);
        } catch (...) {
          std::lock_guard lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
          state->cancelled.store(true, std::memory_order_relaxed);
          break;
        }
      }
      std::lock_guard lock(state->mutex);
      if (--state->pending == 0) state->done.notify_all();
    });
  }
  std::unique_lock lock(state->mutex);
  state->done.wait(lock, [&] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lumen::util
