#include "util/thread_pool.hpp"

#include <algorithm>

namespace lumen::util {

namespace {
/// The pool whose worker_loop is running on this thread (nullptr on
/// non-worker threads) — how parallel_for detects nested invocation.
thread_local const ThreadPool* t_worker_of = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      record_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::record_exception() {
  std::lock_guard lock(mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  parallel_for_slots(
      count, [&body](std::size_t, std::size_t i) { body(i); }, grain);
}

void ThreadPool::parallel_for_slots(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  if (t_worker_of == this) {
    // Nested region on one of our own workers: run inline (see header).
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t tasks = std::min(workers_.size(), (count + grain - 1) / grain);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, count, grain, &body, t] {
      for (;;) {
        const std::size_t begin = next->fetch_add(grain);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + grain, count);
        for (std::size_t i = begin; i < end; ++i) body(t, i);
      }
    });
  }
  wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lumen::util
