#include "util/prng.hpp"

#include <cmath>

namespace lumen::util {

std::uint64_t Prng::next_below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Prng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Prng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Prng::exponential(double lambda) noexcept {
  // Clamp away from 0 so log() stays finite.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

Prng Prng::split(std::string_view tag) const noexcept {
  return split(fnv1a(tag));
}

Prng Prng::split(std::uint64_t tag) const noexcept {
  std::uint64_t sm = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                     rotl(state_[3], 43) ^ (tag * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t child_seed = splitmix64(sm) ^ splitmix64(sm);
  return Prng{child_seed};
}

}  // namespace lumen::util
