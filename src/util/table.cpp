#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace lumen::util {

std::string format_number(double v, int precision) {
  if (!std::isfinite(v)) return std::signbit(v) ? "-inf" : (std::isnan(v) ? "nan" : "inf");
  char buf[64];
  const double mag = std::fabs(v);
  if (v == std::floor(v) && mag < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  if (mag >= 1e-4 && mag < 1e9) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    std::string s{buf};
    // Trim trailing zeros but keep at least one decimal digit.
    const auto dot = s.find('.');
    if (dot != std::string::npos) {
      auto last = s.find_last_not_of('0');
      if (last == dot) ++last;
      s.erase(last + 1);
    }
    return s;
  }
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string_view text) {
  if (rows_.empty()) row();
  rows_.back().emplace_back(text);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_number(value, precision));
}

Table& Table::cell(std::size_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(long long value) {
  return cell(std::to_string(value));
}

void Table::print(std::ostream& os, std::string_view title) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << "  " << text;
      for (std::size_t pad = text.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  if (!title.empty()) os << title << '\n';
  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  }
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

}  // namespace lumen::util
