#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace lumen::util {

Cli& Cli::flag(std::string name, std::string help, std::string default_value) {
  specs_[std::move(name)] = Spec{std::move(help), std::move(default_value)};
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    if (!value) {
      // A bare flag is boolean true unless the next token is a value for a
      // flag whose default is non-boolean-looking.
      const bool next_is_value =
          i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0;
      const std::string& dflt = it->second.default_value;
      const bool boolean_like = dflt.empty() || dflt == "true" || dflt == "false";
      if (next_is_value && !boolean_like) {
        value = std::string(argv[++i]);
      } else {
        value = "true";
      }
    }
    values_[name] = *value;
  }
  return true;
}

std::string Cli::get(std::string_view name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  if (const auto it = specs_.find(name); it != specs_.end()) return it->second.default_value;
  return {};
}

std::int64_t Cli::get_int(std::string_view name) const {
  const std::string v = get(name);
  return v.empty() ? 0 : std::strtoll(v.c_str(), nullptr, 10);
}

double Cli::get_double(std::string_view name) const {
  const std::string v = get(name);
  return v.empty() ? 0.0 : std::strtod(v.c_str(), nullptr);
}

bool Cli::get_bool(std::string_view name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

bool Cli::is_set(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::optional<std::vector<std::int64_t>> parse_int_list(std::string_view text) {
  std::vector<std::int64_t> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = text.find(',', start);
    const std::string part(text.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start));
    if (part.empty()) return std::nullopt;  // "", "8,,16", "8," all land here.
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(part.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
    out.push_back(v);
    if (comma == std::string_view::npos) return out;
    start = comma + 1;
  }
}

std::optional<std::vector<std::int64_t>> Cli::get_int_list(
    std::string_view name) const {
  return parse_int_list(get(name));
}

std::string Cli::usage(std::string_view program, std::string_view description) const {
  std::ostringstream os;
  os << program << " — " << description << "\n\nFlags:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.default_value.empty()) os << " (default: " << spec.default_value << ")";
    os << "\n      " << spec.help << '\n';
  }
  return os.str();
}

}  // namespace lumen::util
