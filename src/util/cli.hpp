// lumen_util: minimal declarative command-line flag parser.
//
// Bench binaries and examples share the same flag conventions:
//   --name=value   or   --name value   or   --flag (bool, sets true)
// Unknown flags are an error (catches typos in sweep scripts); positional
// arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::util {

/// Strict comma-separated integer list parser: every element must be a
/// complete base-10 integer ("8,,16", "8x", "8," and "" are all rejected
/// with nullopt). The shared primitive behind Cli::get_int_list and any
/// other list-shaped flag.
[[nodiscard]] std::optional<std::vector<std::int64_t>> parse_int_list(
    std::string_view text);

class Cli {
 public:
  /// Registers a flag with a help string and a default rendered in --help.
  Cli& flag(std::string name, std::string help, std::string default_value = "");

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// missing values. `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Typed accessors fall back to the registered default when unset.
  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;
  [[nodiscard]] bool is_set(std::string_view name) const;

  /// Parses comma-separated integers, e.g. "8,16,32". Malformed lists
  /// (empty elements, trailing commas, non-numeric junk) return nullopt —
  /// callers must error out rather than run a garbled sweep.
  [[nodiscard]] std::optional<std::vector<std::int64_t>> get_int_list(
      std::string_view name) const;

  /// Renders usage text for --help.
  [[nodiscard]] std::string usage(std::string_view program,
                                  std::string_view description) const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
  };
  std::map<std::string, Spec, std::less<>> specs_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_ = false;
};

}  // namespace lumen::util
