// lumen_util: fixed-size worker pool with a blocking parallel_for.
//
// Campaign sweeps (thousands of independent simulations) are embarrassingly
// parallel; ThreadPool::parallel_for partitions the index space dynamically
// (atomic chunk grabbing) so uneven run lengths balance automatically.
// Exceptions thrown by tasks are captured and rethrown on the caller thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lumen::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. Rethrows the first
  /// captured task exception, if any.
  void wait_idle();

  /// Runs body(i) for i in [0, count), distributing dynamically across the
  /// pool and blocking until done. `grain` indices are claimed at a time.
  /// Rethrows the first exception thrown by any invocation; the remaining
  /// chunks are cancelled (indices not yet claimed may never run). Errors
  /// are per-invocation: concurrent parallel regions on the same pool never
  /// observe each other's exceptions, and the pool stays usable after.
  ///
  /// Reentrant: called from one of this pool's own worker threads (a nested
  /// parallel region), the loop runs inline on that worker instead of
  /// enqueuing — queueing and then blocking in wait_idle from inside a
  /// task would deadlock the pool. Nesting therefore serializes, which is
  /// exactly the right degradation: the outer region already owns all the
  /// workers.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// As parallel_for, but hands the body a stable slot id in
  /// [0, slot_count()) alongside the index. Two invocations with the same
  /// slot never run concurrently, so slot-indexed scratch buffers need no
  /// synchronization. Nested (inline) execution uses slot 0.
  void parallel_for_slots(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 1);

  /// Upper bound (exclusive) on the slot ids parallel_for_slots passes.
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return workers_.empty() ? 1 : workers_.size();
  }

 private:
  void worker_loop();
  void record_exception();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Shared process-wide pool sized to the machine; lazily constructed.
ThreadPool& global_pool();

}  // namespace lumen::util
