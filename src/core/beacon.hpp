// lumen_core: Beacon-directed insertion targets.
//
// The geometric core of the O(log N) algorithm: given a gate edge (c1, c2)
// of the observer's local hull, compute a point p strictly OUTSIDE the edge
// that (i) becomes a strict hull corner, (ii) keeps c1, c2 (and every other
// hull vertex) strict corners, and (iii) gives concurrent movers at the same
// edge distinct, non-crossing straight paths.
//
// Construction (DESIGN.md §4.1): p = base + h * n with
//   base = c1 + lambda * (c2 - c1),  lambda = 0.15 + 0.7 * t,
//   t    = observer's normalized projection onto the edge (a bijection, so
//          distinct movers get distinct columns — no clamping plateaus),
//   n    = outward unit normal,
//   h    = min(0.25 * |edge|, 0.45 * h_wedge) * (0.4 + 0.5 * lambda),
// where h_wedge is the height at which p would leave the pocket bounded by
// the extensions of the hull edges adjacent to c1 and c2 (keeping those
// vertices convex). The lambda-dependent factor makes same-edge insertions
// from successive stages non-collinear.
#pragma once

#include "core/view.hpp"
#include "geom/vec2.hpp"

#include <optional>

namespace lumen::core {

/// Insertion point for an INTERIOR observer exiting through `gate`.
/// Local coordinates. nullopt when the gate is degenerate.
[[nodiscard]] std::optional<geom::Vec2> interior_insertion_target(
    const LocalView& view, const GateEdge& gate);

/// A fully resolved exit: which gate and where to land.
struct ExitPlan {
  GateEdge gate;
  geom::Vec2 target;
  double exit_distance = 0.0;  ///< |from -> target|, the handshake priority.
};

/// The ASYNC algorithm's exit planner, usable both for the observer itself
/// and for MODELLING a rival's intention (`from` = the rival's position).
/// Candidate gates are the hull edges with both endpoints Corner-lit whose
/// PERPENDICULAR foot from `from` lands comfortably inside the edge
/// (t in [0.08, 0.92]); plans come back nearest-gate-first. The target sits
/// on the observer's own column (straight perpendicular approach), so
/// concurrent exits at one edge follow parallel, non-crossing paths, at
/// heights bounded by the adjacent-edge wedge (every old corner stays a
/// corner).
[[nodiscard]] std::vector<ExitPlan> plan_exits(const LocalView& view,
                                               geom::Vec2 from);

/// Pop-out point for a SIDE observer sitting on `gate`'s open interior:
/// straight out along the edge's outward normal (a perpendicular path, so
/// same-edge poppers move in parallel), with a height that (a) stays small
/// against both edge fractions and (b) varies with the observer's position
/// along the edge to break collinearity among poppers.
[[nodiscard]] std::optional<geom::Vec2> side_popout_target(const LocalView& view,
                                                           const GateEdge& gate);

/// Escape move for a robot whose entire view is one line (Role::kLine):
/// perpendicular to the line by a quarter of the distance to the nearest
/// visible robot. The side is chosen in the observer's private frame —
/// an arbitrary local tie-break, admissible since robots share no chirality.
[[nodiscard]] geom::Vec2 line_escape_target(const LocalView& view);

}  // namespace lumen::core
