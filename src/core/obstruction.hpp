// lumen_core: snapshot-local obstruction queries shared by the related-work
// algorithms (grid-cv, mutual-vis).
//
// Both algorithms are driven by one local question: "am I sitting on the
// segment between two robots I can see?" Visibility in this model is
// obstructed, so if a and b are both visible to the observer and the
// observer lies between them on their line, then the observer is the ONLY
// robot blocking the pair a-b — moving off that line is guaranteed local
// progress. The test runs in the observer's local frame (self at the
// origin): a and b straddle the origin iff dot(a, b) < 0, and the three
// points are collinear iff the normalized cross product |a x b| / (|a||b|)
// vanishes. Local frames are similarity transforms, which preserve both
// sign(dot) up to the straddle test's needs and exact collinearity, so the
// answer is frame-independent. The threshold 1e-9 separates the two
// populations by orders of magnitude: exactly-collinear world triples map
// to ~1e-14 after the frame transform, while the closest non-collinear
// lattice triples in the generator's range land at ~1e-5.
#pragma once

#include "model/snapshot.hpp"

#include <cstddef>
#include <optional>
#include <utility>

namespace lumen::core {

inline constexpr double kCollinearSinThreshold = 1e-9;

/// Indices (into snap.other_positions()) of the first visible pair the
/// observer blocks, scanning in snapshot order; nullopt when the observer
/// obstructs nobody.
[[nodiscard]] inline std::optional<std::pair<std::size_t, std::size_t>>
find_blocked_pair(const model::Snapshot& snap) {
  const auto others = snap.other_positions();
  for (std::size_t i = 0; i < others.size(); ++i) {
    for (std::size_t j = i + 1; j < others.size(); ++j) {
      const geom::Vec2 a = others[i];
      const geom::Vec2 b = others[j];
      if (geom::dot(a, b) >= 0.0) continue;  // Origin not between a and b.
      const double denom = geom::norm(a) * geom::norm(b);
      if (denom <= 0.0) continue;
      if (std::abs(geom::cross(a, b)) <= kCollinearSinThreshold * denom) {
        return std::make_pair(i, j);
      }
    }
  }
  return std::nullopt;
}

/// Distance from the observer (the origin) to its nearest visible robot;
/// 0 when nobody is visible.
[[nodiscard]] inline double nearest_visible_distance(
    const model::Snapshot& snap) noexcept {
  double best_sq = 0.0;
  bool any = false;
  for (const geom::Vec2 p : snap.other_positions()) {
    const double d = geom::norm_sq(p);
    if (!any || d < best_sq) {
      best_sq = d;
      any = true;
    }
  }
  return any ? std::sqrt(best_sq) : 0.0;
}

}  // namespace lumen::core
