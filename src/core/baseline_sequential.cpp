#include "core/baseline_sequential.hpp"

#include "core/beacon.hpp"
#include "core/view.hpp"
#include "geom/hull.hpp"
#include "geom/segment.hpp"

#include <algorithm>
#include <limits>

namespace lumen::core {

using geom::Vec2;
using model::Action;
using model::Light;

namespace {

/// Distance from p to the nearest edge of the view's hull.
double distance_to_hull_boundary(const LocalView& view, Vec2 p) {
  const std::size_t h = view.hull.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < h; ++k) {
    const geom::Segment e{view.pts[view.hull[k]], view.pts[view.hull[(k + 1) % h]]};
    best = std::min(best, geom::point_segment_distance(e, p));
  }
  return best;
}

/// The serialization test: the observer moves only if it is strictly the
/// closest-to-boundary robot among every visible non-corner robot. This is
/// how the SSYNC algorithm's "everyone moves" becomes "one at a time" when
/// atomic rounds are gone.
bool is_unique_candidate(const LocalView& view) {
  const double own = distance_to_hull_boundary(view, view.self());
  for (std::size_t i = 1; i < view.pts.size(); ++i) {
    if (view.lights[i] == Light::kCorner) continue;
    // Hull vertices other than self are prospective corners, not rivals.
    bool is_hull_vertex = false;
    for (const std::size_t k : view.hull) {
      if (k == i) {
        is_hull_vertex = true;
        break;
      }
    }
    if (is_hull_vertex) continue;
    if (distance_to_hull_boundary(view, view.pts[i]) <= own) return false;
  }
  return true;
}

std::optional<GateEdge> nearest_corner_lit_edge(const LocalView& view) {
  const std::size_t h = view.hull.size();
  if (h < 3) return std::nullopt;
  std::optional<GateEdge> best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t i1 = view.hull[k];
    const std::size_t i2 = view.hull[(k + 1) % h];
    if (i1 == 0 || i2 == 0) continue;
    if (view.lights[i1] != Light::kCorner || view.lights[i2] != Light::kCorner) {
      continue;
    }
    const geom::Segment e{view.pts[i1], view.pts[i2]};
    const double d = geom::point_segment_distance(e, view.self());
    if (d < best_dist) {
      best_dist = d;
      best = GateEdge{i1, i2, e.a, e.b, d};
    }
  }
  return best;
}

}  // namespace

Action SequentialAsyncBaseline::compute(const model::Snapshot& snap) const {
  const LocalView view = build_view(snap);
  switch (view.role) {
    case Role::kAlone:
      return Action::stay(Light::kCorner);
    case Role::kLineEnd:
      return Action::stay(Light::kLineEnd);
    case Role::kLine:
      // Line escape is inherently safe; even the baseline does it in
      // parallel (otherwise a collinear start would already cost O(N)).
      return Action::move_to(line_escape_target(view), Light::kLine);
    case Role::kCorner:
      return Action::stay(Light::kCorner);

    case Role::kSide: {
      // Global mutual exclusion: any Transit anywhere defers.
      if (view.lights.end() !=
          std::find(view.lights.begin() + 1, view.lights.end(), Light::kTransit)) {
        return Action::stay(Light::kSide);
      }
      if (!is_unique_candidate(view)) return Action::stay(Light::kSide);
      const auto gate = containing_hull_edge(view);
      if (!gate) return Action::stay(Light::kSide);
      const auto target = side_popout_target(view, *gate);
      if (!target) return Action::stay(Light::kSide);
      return Action::move_to(*target, Light::kTransit);
    }

    case Role::kInterior: {
      if (view.lights.end() !=
          std::find(view.lights.begin() + 1, view.lights.end(), Light::kTransit)) {
        return Action::stay(Light::kInterior);
      }
      if (!is_unique_candidate(view)) return Action::stay(Light::kInterior);
      const auto gate = nearest_corner_lit_edge(view);
      if (!gate) return Action::stay(Light::kInterior);
      if (gate_blocked_by_closer_robot(view, *gate)) {
        return Action::stay(Light::kInterior);
      }
      const auto target = interior_insertion_target(view, *gate);
      if (!target) return Action::stay(Light::kInterior);
      return Action::move_to(*target, Light::kTransit);
    }
  }
  return Action::stay(snap.self_light);
}

std::span<const model::Light> SequentialAsyncBaseline::palette() const noexcept {
  return model::kAllLights;
}

}  // namespace lumen::core
