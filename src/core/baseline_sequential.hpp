// lumen_core: the O(N)-time baseline (claim C5).
//
// The paper motivates its contribution against the naive translation of the
// semi-synchronous O(1) algorithm into the asynchronous model: without the
// atomic-round guarantee, the translation must serialize movers — a robot
// moves only when it believes it is THE unique mover — costing Theta(N)
// epochs. This class implements exactly that translation over the same
// geometric rules as CompleteVisibilityAsync: identical classification,
// identical insertion targets, but the beacon handshake is replaced by a
// global mutual exclusion (defer if ANY Transit light is visible anywhere,
// and move only as the visible non-corner robot closest to the hull
// boundary). One robot is fixed per O(1) epochs -> Theta(N) total.
#pragma once

#include "model/algorithm.hpp"

namespace lumen::core {

class SequentialAsyncBaseline final : public model::Algorithm {
 public:
  [[nodiscard]] model::Action compute(const model::Snapshot& snap) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "seq-baseline";
  }
  [[nodiscard]] std::span<const model::Light> palette() const noexcept override;
};

}  // namespace lumen::core
