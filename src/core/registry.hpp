// lumen_core: algorithm registry.
//
// Benches, tests and examples refer to algorithms by their stable names:
//   "async-log"      — the paper's O(log N) ASYNC algorithm,
//   "seq-baseline"   — the O(N) ASYNC translation baseline,
//   "ssync-parallel" — the semi-synchronous comparator.
#pragma once

#include "model/algorithm.hpp"

#include <string_view>
#include <vector>

namespace lumen::core {

/// All registered algorithm names, in presentation order.
[[nodiscard]] std::vector<std::string_view> algorithm_names();

/// Constructs an algorithm by name; throws std::invalid_argument on unknown
/// names (lists the valid ones in the message).
[[nodiscard]] model::AlgorithmPtr make_algorithm(std::string_view name);

}  // namespace lumen::core
