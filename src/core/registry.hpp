// lumen_core: algorithm registry.
//
// Benches, tests and examples refer to algorithms by their stable names:
//   "async-log"      — the paper's O(log N) ASYNC algorithm,
//   "seq-baseline"   — the O(N) ASYNC translation baseline,
//   "ssync-parallel" — the semi-synchronous comparator,
//   "grid-cv"        — grid-plane complete visibility (Kim & Katayama,
//                      arXiv:2306.08354; integer-lattice motion model),
//   "mutual-vis"     — mutual visibility without collisions (Di Luna et
//                      al., arXiv:1405.2430; mutual-visibility predicate).
#pragma once

#include "model/algorithm.hpp"

#include <string>
#include <string_view>
#include <vector>

namespace lumen::core {

/// All registered algorithm names, in presentation order.
[[nodiscard]] std::vector<std::string_view> algorithm_names();

/// The registered names joined with ", " — for error messages and CLI help.
[[nodiscard]] std::string algorithm_names_joined();

/// Constructs an algorithm by name; throws std::invalid_argument on unknown
/// names (lists the valid ones in the message).
[[nodiscard]] model::AlgorithmPtr make_algorithm(std::string_view name);

/// The plugin-contract traits of one registered algorithm, as declared by
/// the instance itself (name / motion_model / palette / success_predicate).
struct AlgorithmInfo {
  std::string_view name;
  model::MotionModel motion_model = model::MotionModel::kContinuous;
  std::size_t palette_size = 0;
  std::string_view success_predicate;
};

/// Traits of every registered algorithm, in algorithm_names() order.
[[nodiscard]] std::vector<AlgorithmInfo> algorithm_infos();

}  // namespace lumen::core
