#include "core/beacon.hpp"

#include "geom/predicates.hpp"
#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <limits>

namespace lumen::core {

using geom::Vec2;

namespace {

/// Signed-area value of triangle (a, b, c) as a plain double — used only for
/// metric bounds (never for sign decisions, which use orient2d).
double tri(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// Largest h such that orient(u, v, base + h*n) stays > 0 (the wedge bound
/// contributed by the hull edge u->v); +inf when unconstrained.
double wedge_bound(Vec2 u, Vec2 v, Vec2 base, Vec2 n) noexcept {
  const double a0 = tri(u, v, base);
  const double slope = tri(u, v, base + n) - a0;
  if (slope >= 0.0) return std::numeric_limits<double>::infinity();
  if (a0 <= 0.0) return 0.0;
  return a0 / -slope;
}

/// Index into view.hull of the hull position holding pts-index `i`, or npos.
std::size_t hull_position_of(const LocalView& view, std::size_t i) noexcept {
  for (std::size_t k = 0; k < view.hull.size(); ++k) {
    if (view.hull[k] == i) return k;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

std::optional<Vec2> interior_insertion_target(const LocalView& view,
                                              const GateEdge& gate) {
  const Vec2 d = gate.c2 - gate.c1;
  const double len = geom::norm(d);
  if (len <= 0.0) return std::nullopt;
  const Vec2 u = d / len;
  // CCW hull: interior (and thus the observer) is LEFT of c1->c2; outward is
  // right. Double-check against the observer and bail out on degeneracy.
  Vec2 n{u.y, -u.x};
  const Vec2 self = view.self();
  if (geom::dot(n, self - gate.c1) > 0.0) n = -n;

  // Strictly monotone squash of the (unclamped) projection into (0, 1):
  // distinct movers at this edge ALWAYS get distinct columns, even when
  // their feet fall beyond the edge ends (a hard clamp would collapse them
  // onto the same target — the identical-target collision). The [0.15,
  // 0.85] column band keeps targets away from the gate's corners, where the
  // approach regions of adjacent edges meet.
  const double t_raw = geom::dot(self - gate.c1, u) / len;
  const double t = 0.5 + std::atan(2.0 * (t_raw - 0.5)) / std::numbers::pi;
  const double lambda = 0.15 + 0.7 * t;
  const Vec2 base = gate.c1 + u * (lambda * len);

  // Wedge constraints from the hull edges adjacent to the gate.
  double h_wedge = std::numeric_limits<double>::infinity();
  const std::size_t h = view.hull.size();
  const std::size_t k1 = hull_position_of(view, gate.i1);
  const std::size_t k2 = hull_position_of(view, gate.i2);
  if (k1 != static_cast<std::size_t>(-1) && h >= 3) {
    const Vec2 c0 = view.pts[view.hull[(k1 + h - 1) % h]];
    h_wedge = std::min(h_wedge, wedge_bound(c0, gate.c1, base, n));
  }
  if (k2 != static_cast<std::size_t>(-1) && h >= 3) {
    const Vec2 c3 = view.pts[view.hull[(k2 + 1) % h]];
    // Constraint at c2: orient(p, c2, c3) > 0 == orient(c2, c3, p) > 0.
    h_wedge = std::min(h_wedge, wedge_bound(gate.c2, c3, base, n));
  }

  double h_cap = 0.25 * len;
  if (std::isfinite(h_wedge)) h_cap = std::min(h_cap, 0.45 * h_wedge);
  if (h_cap <= len * 1e-12) {
    // Degenerate wedge (numerically flat corner): conservative nudge; the
    // next cycle re-classifies and continues.
    h_cap = 0.05 * len;
  }
  const double height = h_cap * (0.4 + 0.5 * lambda);
  return base + n * height;
}

namespace {

/// Perpendicular-approach target used by plan_exits: the point straight out
/// from `from`'s own projection onto the gate, at a wedge-bounded height.
/// nullopt when the projection falls outside the central [0.08, 0.92] band
/// (approach slabs must stay clear of the gate's corners) or the gate is
/// degenerate.
std::optional<Vec2> perpendicular_target(const LocalView& view,
                                         const GateEdge& gate, Vec2 from,
                                         Vec2 interior_witness) {
  const Vec2 d = gate.c2 - gate.c1;
  const double len = geom::norm(d);
  if (len <= 0.0) return std::nullopt;
  const Vec2 u = d / len;
  Vec2 n{u.y, -u.x};
  if (geom::dot(n, interior_witness - gate.c1) > 0.0) n = -n;

  const double t_raw = geom::dot(from - gate.c1, u) / len;
  if (t_raw < 0.08 || t_raw > 0.92) return std::nullopt;
  const Vec2 base = gate.c1 + u * (t_raw * len);

  double h_wedge = std::numeric_limits<double>::infinity();
  const std::size_t h = view.hull.size();
  const std::size_t k1 = hull_position_of(view, gate.i1);
  const std::size_t k2 = hull_position_of(view, gate.i2);
  if (k1 != static_cast<std::size_t>(-1) && h >= 3) {
    const Vec2 c0 = view.pts[view.hull[(k1 + h - 1) % h]];
    h_wedge = std::min(h_wedge, wedge_bound(c0, gate.c1, base, n));
  }
  if (k2 != static_cast<std::size_t>(-1) && h >= 3) {
    const Vec2 c3 = view.pts[view.hull[(k2 + 1) % h]];
    h_wedge = std::min(h_wedge, wedge_bound(gate.c2, c3, base, n));
  }
  double h_cap = 0.25 * len;
  if (std::isfinite(h_wedge)) h_cap = std::min(h_cap, 0.45 * h_wedge);
  if (h_cap <= len * 1e-12) h_cap = 0.05 * len;
  const double height = h_cap * (0.4 + 0.5 * t_raw);
  return base + n * height;
}

}  // namespace

std::vector<ExitPlan> plan_exits(const LocalView& view, Vec2 from) {
  std::vector<ExitPlan> plans;
  const std::size_t h = view.hull.size();
  if (h < 3) return plans;
  // Interior witness for outward orientation: the hull vertex mean is
  // strictly inside any convex polygon, and stays valid even when `from`
  // itself is outside the hull (a mid-flight rival being modelled).
  Vec2 witness{};
  for (const std::size_t k : view.hull) witness += view.pts[k];
  witness = witness / static_cast<double>(h);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t i1 = view.hull[k];
    const std::size_t i2 = view.hull[(k + 1) % h];
    if (i1 == 0 || i2 == 0) continue;  // Own vertex cannot anchor a gate.
    if (view.lights[i1] != model::Light::kCorner ||
        view.lights[i2] != model::Light::kCorner) {
      continue;
    }
    const geom::Segment edge{view.pts[i1], view.pts[i2]};
    GateEdge gate{i1, i2, edge.a, edge.b,
                  geom::point_segment_distance(edge, from)};
    const auto target = perpendicular_target(view, gate, from, witness);
    if (!target) continue;
    plans.push_back(ExitPlan{gate, *target, geom::distance(from, *target)});
  }
  std::sort(plans.begin(), plans.end(), [](const ExitPlan& a, const ExitPlan& b) {
    return a.gate.distance < b.gate.distance;
  });
  return plans;
}

std::optional<Vec2> side_popout_target(const LocalView& view, const GateEdge& gate) {
  const Vec2 d = gate.c2 - gate.c1;
  const double len = geom::norm(d);
  if (len <= 0.0) return std::nullopt;
  const Vec2 u = d / len;
  // Outward = the side of the edge line holding NO visible robot. The view
  // being 2-D guarantees a strict witness exists.
  Vec2 n{u.y, -u.x};
  bool oriented = false;
  for (std::size_t i = 1; i < view.pts.size() && !oriented; ++i) {
    const int o = geom::orient2d(gate.c1, gate.c2, view.pts[i]);
    if (o != 0) {
      // The witness robot is on the interior side; make n point away from it.
      if (geom::dot(n, view.pts[i] - gate.c1) > 0.0) n = -n;
      oriented = true;
    }
  }
  if (!oriented) return std::nullopt;  // Fully collinear view: not a Side role.

  const Vec2 self = view.self();
  const double d1 = geom::distance(self, gate.c1);
  const double d2 = geom::distance(self, gate.c2);
  const double t = std::clamp(d1 / len, 0.0, 1.0);
  const double height =
      std::min(0.2 * std::min(d1, d2), 0.1 * len) * (0.6 + 0.3 * t);
  if (height <= 0.0) return std::nullopt;
  return self + n * height;
}

Vec2 line_escape_target(const LocalView& view) {
  const Vec2 self = view.self();
  double best_sq = std::numeric_limits<double>::infinity();
  Vec2 nearest{};
  for (std::size_t i = 1; i < view.pts.size(); ++i) {
    const double ds = geom::distance_sq(self, view.pts[i]);
    if (ds > 0.0 && ds < best_sq) {
      best_sq = ds;
      nearest = view.pts[i];
    }
  }
  if (!std::isfinite(best_sq)) return self;
  const Vec2 dir = geom::normalized(nearest - self);
  const double dist = std::sqrt(best_sq);
  return self + geom::perp(dir) * (0.25 * dist);
}

}  // namespace lumen::core
