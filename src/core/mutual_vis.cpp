#include "core/mutual_vis.hpp"

#include "core/obstruction.hpp"

#include <array>

namespace lumen::core {

namespace {

using model::Action;
using model::Light;

constexpr std::array<Light, 4> kPalette = {Light::kOff, Light::kCorner,
                                           Light::kInterior, Light::kMoving};

}  // namespace

std::span<const model::Light> MutualVisibility::palette() const noexcept {
  return kPalette;
}

model::Action MutualVisibility::compute(const model::Snapshot& snap) const {
  if (snap.visible_count() < 2) return Action::stay(Light::kCorner);
  const auto blocked = find_blocked_pair(snap);
  if (!blocked.has_value()) return Action::stay(Light::kCorner);
  // Someone nearby is mid-flight: its observed position is stale, so wait
  // for it to settle before planning a step around it. Deferral shows
  // kInterior, never kMoving, so two blocked robots cannot deadlock on each
  // other's lights.
  if (snap.any_light(Light::kMoving)) return Action::stay(Light::kInterior);
  const auto others = snap.other_positions();
  const geom::Vec2 a = others[blocked->first];
  const geom::Vec2 b = others[blocked->second];
  const double step = 0.25 * nearest_visible_distance(snap);
  // Perpendicular escape off the blocked line. The sign is fixed in the
  // local frame; frames are redrawn (with random reflection) every Look, so
  // across activations the world-side choice varies while each single
  // Compute stays deterministic in its snapshot.
  const geom::Vec2 dir = geom::normalized(geom::perp(b - a));
  return Action::move_to(dir * step, Light::kMoving);
}

}  // namespace lumen::core
