// lumen_core: mutual visibility without collisions (Di Luna et al.,
// arXiv:1405.2430), adapted to this engine's plugin contract.
//
// The goal is weaker than the paper's Complete Visibility: reach a
// configuration in which every pair of robots sees each other (no three
// robots collinear), with no convexity requirement — the success predicate
// is "mutual-visibility". The rule is purely local:
//
//   * a robot that obstructs no visible pair is SATISFIED: it shows kCorner
//     and stays;
//   * a robot sitting between two visible robots a, b steps PERPENDICULAR
//     to the segment a-b by a quarter of its nearest-neighbor distance,
//     showing kMoving while it does;
//   * a blocked robot that currently sees any kMoving light defers
//     (kInterior) until the mover settles, so decisions are not based on a
//     neighbor observed mid-flight.
//
// Collision freedom of a step: every mover travels at most 1/4 of its own
// nearest-neighbor distance d, so even if its nearest neighbor moves
// simultaneously (by at most 1/4 of ITS nearest distance <= d/4 toward us),
// the pair's separation stays >= d - d/4 - d/4 = d/2 > 0.
//
// Lights: {kOff, kCorner, kInterior, kMoving} — kOff only as the initial
// color; kCorner = satisfied, kInterior = blocked but deferring, kMoving =
// in flight. Quiescence (every robot a stationary kCorner that re-observed
// the final world) implies no robot obstructs any visible pair, which is
// exactly the mutual-visibility predicate.
#pragma once

#include "model/algorithm.hpp"

namespace lumen::core {

class MutualVisibility final : public model::Algorithm {
 public:
  [[nodiscard]] model::Action compute(const model::Snapshot& snap) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "mutual-vis";
  }
  [[nodiscard]] std::span<const model::Light> palette() const noexcept override;
  [[nodiscard]] std::string_view success_predicate() const noexcept override {
    return "mutual-visibility";
  }
};

}  // namespace lumen::core
