// lumen_core: classification of a snapshot into the algorithm's vocabulary.
//
// Every rule of the reconstructed algorithm starts from the same geometric
// digest of the snapshot: the local convex hull, the observer's role against
// it, and — for non-corners — the candidate gate edge. A key soundness
// property (tested in tests/core_view_test.cpp) is that the LOCAL
// classification equals the GLOBAL role despite obstructed visibility:
//   - a robot is a strict vertex of its visible set's hull  iff  it is a
//     strict vertex of the global hull;
//   - it lies on a local hull edge  iff  it lies on a global hull edge;
//   - local line configurations are exactly the global collinear ones
//     restricted to what obstruction lets a robot see.
// (Sketch: if r is strictly inside the global hull, every open half-plane
// through r contains a robot of the set, and the nearest robot toward it on
// that ray is visible — so r's visible set surrounds it.)
#pragma once

#include "geom/segment.hpp"
#include "geom/vec2.hpp"
#include "model/light.hpp"
#include "model/snapshot.hpp"

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace lumen::core {

enum class Role {
  kAlone,     ///< Sees nobody.
  kCorner,    ///< Strict vertex of the local hull.
  kSide,      ///< Relative interior of a local hull edge.
  kInterior,  ///< Strictly inside the local hull.
  kLine,      ///< Entire snapshot collinear, observer not extreme.
  kLineEnd,   ///< Entire snapshot collinear, observer extreme.
};

/// The digest all Compute rules share. Index 0 is always the observer
/// (at the local origin); indices 1.. are the visible robots in snapshot
/// order. The point and light spans BORROW the snapshot's parallel arrays
/// (build_view copies nothing), so a view must not outlive the Snapshot it
/// was built from — the hull index list is the only owned state.
struct LocalView {
  std::span<const geom::Vec2> pts;     ///< Observer first, then visible robots.
  std::span<const model::Light> lights;  ///< Parallel to pts.
  std::vector<std::size_t> hull;       ///< CCW strict-vertex indices into pts.
  Role role = Role::kAlone;

  [[nodiscard]] std::size_t count() const noexcept { return pts.size(); }
  [[nodiscard]] geom::Vec2 self() const noexcept { return pts.empty() ? geom::Vec2{} : pts[0]; }

  /// Hull vertex positions, CCW.
  [[nodiscard]] std::vector<geom::Vec2> hull_points() const;
};

/// Builds the digest from a snapshot. The returned view aliases `snap`'s
/// position and light storage; keep the snapshot alive while using it.
[[nodiscard]] LocalView build_view(const model::Snapshot& snap);

/// A gate: a hull edge through which an interior/side robot exits.
struct GateEdge {
  std::size_t i1 = 0;  ///< Index (into LocalView::pts) of the first endpoint.
  std::size_t i2 = 0;  ///< Second endpoint; (i1, i2) is CCW on the hull.
  geom::Vec2 c1{};
  geom::Vec2 c2{};
  double distance = 0.0;  ///< Observer's distance to the closed edge.
};

/// The hull edge nearest to the observer (its gate candidate).
/// Empty when the view has no 2-D hull (fewer than 3 hull vertices).
[[nodiscard]] std::optional<GateEdge> nearest_hull_edge(const LocalView& view);

/// The hull edge whose open relative interior contains the observer — the
/// Side robot's own edge. Empty when the observer is not a Side robot.
[[nodiscard]] std::optional<GateEdge> containing_hull_edge(const LocalView& view);

/// True iff any visible robot lies strictly inside triangle
/// (observer, gate.c1, gate.c2) — someone is closer to the gate, observer
/// must defer.
[[nodiscard]] bool gate_blocked_by_closer_robot(const LocalView& view,
                                                const GateEdge& gate);

/// True iff `gate` is the hull edge of `view` nearest to point `p` — the
/// "p is working this gate" relation used by the beacon handshake.
[[nodiscard]] bool gate_is_nearest_edge_for(const LocalView& view,
                                            const GateEdge& gate, geom::Vec2 p);

/// True iff a visible Transit-lit robot is "at" this gate: its nearest hull
/// edge is the same edge, or it already lies strictly outside the hull
/// beyond it. The mover's mutual-exclusion test.
[[nodiscard]] bool gate_has_transit_traffic(const LocalView& view,
                                            const GateEdge& gate);

/// True iff any visible Transit-lit robot is within `radius` of the
/// observer (the proximity guard against adjacent-gate path overlap).
[[nodiscard]] bool transit_within(const LocalView& view, double radius);

/// Best-effort estimate of the exit path a robot at `p` is about to take:
/// the segment from p to just outside its nearest hull edge (perpendicular
/// approach). Used by movers to test their own path against Transit rivals'
/// presumed paths. Empty when the view has no 2-D hull.
[[nodiscard]] std::optional<geom::Segment> estimated_exit_path(
    const LocalView& view, geom::Vec2 p);

}  // namespace lumen::core
