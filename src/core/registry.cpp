#include "core/registry.hpp"

#include "core/baseline_sequential.hpp"
#include "core/cv_async.hpp"
#include "core/grid_cv.hpp"
#include "core/mutual_vis.hpp"
#include "core/ssync_parallel.hpp"

#include <sstream>
#include <stdexcept>

namespace lumen::core {

std::vector<std::string_view> algorithm_names() {
  return {"async-log", "seq-baseline", "ssync-parallel", "grid-cv",
          "mutual-vis"};
}

std::string algorithm_names_joined() {
  std::string out;
  for (const auto n : algorithm_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

model::AlgorithmPtr make_algorithm(std::string_view name) {
  if (name == "async-log") return std::make_shared<CompleteVisibilityAsync>();
  if (name == "seq-baseline") return std::make_shared<SequentialAsyncBaseline>();
  if (name == "ssync-parallel") return std::make_shared<SsyncParallel>();
  if (name == "grid-cv") return std::make_shared<GridCompleteVisibility>();
  if (name == "mutual-vis") return std::make_shared<MutualVisibility>();
  std::ostringstream msg;
  msg << "unknown algorithm '" << name << "'; valid:";
  for (const auto& n : algorithm_names()) msg << ' ' << n;
  throw std::invalid_argument(msg.str());
}

std::vector<AlgorithmInfo> algorithm_infos() {
  std::vector<AlgorithmInfo> infos;
  for (const auto name : algorithm_names()) {
    const model::AlgorithmPtr algo = make_algorithm(name);
    infos.push_back(AlgorithmInfo{algo->name(), algo->motion_model(),
                                  algo->palette().size(),
                                  algo->success_predicate()});
  }
  return infos;
}

}  // namespace lumen::core
