#include "core/registry.hpp"

#include "core/baseline_sequential.hpp"
#include "core/cv_async.hpp"
#include "core/ssync_parallel.hpp"

#include <sstream>
#include <stdexcept>

namespace lumen::core {

std::vector<std::string_view> algorithm_names() {
  return {"async-log", "seq-baseline", "ssync-parallel"};
}

model::AlgorithmPtr make_algorithm(std::string_view name) {
  if (name == "async-log") return std::make_shared<CompleteVisibilityAsync>();
  if (name == "seq-baseline") return std::make_shared<SequentialAsyncBaseline>();
  if (name == "ssync-parallel") return std::make_shared<SsyncParallel>();
  std::ostringstream msg;
  msg << "unknown algorithm '" << name << "'; valid:";
  for (const auto& n : algorithm_names()) msg << ' ' << n;
  throw std::invalid_argument(msg.str());
}

}  // namespace lumen::core
