#include "core/view.hpp"

#include "geom/hull.hpp"
#include "geom/predicates.hpp"
#include "geom/segment.hpp"

#include <algorithm>
#include <limits>

namespace lumen::core {

using geom::Vec2;

std::vector<Vec2> LocalView::hull_points() const {
  std::vector<Vec2> out;
  out.reserve(hull.size());
  for (const std::size_t i : hull) out.push_back(pts[i]);
  return out;
}

namespace {

/// Role for a fully collinear view: extreme along the line -> kLineEnd.
Role line_role(std::span<const Vec2> pts) {
  // Observer is pts[0] at the origin. Find any distinct point to fix the
  // line direction, then check whether all points lie on one side.
  Vec2 dir{};
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i] != pts[0]) {
      dir = pts[i] - pts[0];
      break;
    }
  }
  if (dir == Vec2{}) return Role::kAlone;
  bool has_positive = false, has_negative = false;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double t = geom::dot(pts[i] - pts[0], dir);
    if (t > 0.0) has_positive = true;
    if (t < 0.0) has_negative = true;
  }
  return (has_positive && has_negative) ? Role::kLine : Role::kLineEnd;
}

/// Result of minimizing point-to-edge distance over the hull boundary.
struct NearestEdge {
  std::size_t i1 = 0;
  std::size_t i2 = 0;
  geom::Segment edge{};
  double dist = std::numeric_limits<double>::infinity();
};

/// The hull edge nearest to `p` (ties keep the first edge in hull order).
/// Shared by the gate search and the exit-path estimate so both agree on
/// which edge a robot is heading for.
std::optional<NearestEdge> scan_nearest_hull_edge(const LocalView& view, Vec2 p) {
  const std::size_t h = view.hull.size();
  if (h < 3) return std::nullopt;
  NearestEdge best;
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t i1 = view.hull[k];
    const std::size_t i2 = view.hull[(k + 1) % h];
    const geom::Segment e{view.pts[i1], view.pts[i2]};
    const double d = geom::point_segment_distance(e, p);
    if (d < best.dist) best = NearestEdge{i1, i2, e, d};
  }
  if (!std::isfinite(best.dist)) return std::nullopt;
  return best;
}

}  // namespace

LocalView build_view(const model::Snapshot& snap) {
  LocalView view;
  // Zero-copy: the snapshot already stores [self, visible...] in parallel
  // arrays with self at the origin — exactly the view's index convention.
  view.pts = snap.all_positions();
  view.lights = snap.lights;
  if (view.pts.size() <= 1) {
    view.role = Role::kAlone;
    return view;
  }
  // Tolerant line test: local-frame transforms perturb exactly collinear
  // world configurations by rounding noise, so the LINE role must be decided
  // within a relative tolerance (DESIGN.md §3, real-RAM substitution).
  if (geom::nearly_collinear(view.pts)) {
    view.role = line_role(view.pts);
    view.hull = geom::convex_hull_indices(view.pts);
    return view;
  }
  view.hull = geom::convex_hull_indices(view.pts);
  if (std::find(view.hull.begin(), view.hull.end(), std::size_t{0}) != view.hull.end()) {
    view.role = Role::kCorner;
    return view;
  }
  const auto hull_pts = view.hull_points();
  const auto pos = geom::classify_against_hull(hull_pts, view.self());
  view.role = pos == geom::HullPosition::kEdge ? Role::kSide : Role::kInterior;
  return view;
}

std::optional<GateEdge> nearest_hull_edge(const LocalView& view) {
  const auto best = scan_nearest_hull_edge(view, view.self());
  if (!best) return std::nullopt;
  return GateEdge{best->i1, best->i2, best->edge.a, best->edge.b, best->dist};
}

std::optional<GateEdge> containing_hull_edge(const LocalView& view) {
  const std::size_t h = view.hull.size();
  if (h < 2) return std::nullopt;
  // A degenerate 2-point hull bounds exactly one edge; a proper polygon has
  // one edge per vertex (the wrap-around closes it).
  const std::size_t edge_count = h == 2 ? 1 : h;
  const Vec2 self = view.self();
  for (std::size_t k = 0; k < edge_count; ++k) {
    const std::size_t i1 = view.hull[k];
    const std::size_t i2 = view.hull[(k + 1) % h];
    if (geom::on_segment_open(view.pts[i1], view.pts[i2], self)) {
      return GateEdge{i1, i2, view.pts[i1], view.pts[i2], 0.0};
    }
  }
  return std::nullopt;
}

bool gate_blocked_by_closer_robot(const LocalView& view, const GateEdge& gate) {
  const Vec2 a = view.self();
  for (std::size_t i = 1; i < view.pts.size(); ++i) {
    if (i == gate.i1 || i == gate.i2) continue;
    const Vec2 p = view.pts[i];
    // Strictly inside triangle (a, c1, c2)? The triangle is oriented
    // (a, c1, c2) or (a, c2, c1); all three signs must agree and be
    // nonzero, so each test short-circuits the next — most robots fail on
    // the first edge, which keeps this O(n) scan out of the profile.
    const int o1 = geom::orient2d_inline(a, gate.c1, p);
    if (o1 == 0) continue;
    const int o2 = geom::orient2d_inline(gate.c1, gate.c2, p);
    if (o2 != o1) continue;
    const int o3 = geom::orient2d_inline(gate.c2, a, p);
    if (o3 == o1) return true;
  }
  return false;
}

bool gate_is_nearest_edge_for(const LocalView& view, const GateEdge& gate,
                              geom::Vec2 p) {
  const geom::Segment edge{gate.c1, gate.c2};
  const double d_here = geom::point_segment_distance(edge, p);
  const std::size_t h = view.hull.size();
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t i1 = view.hull[k];
    const std::size_t i2 = view.hull[(k + 1) % h];
    if ((i1 == gate.i1 && i2 == gate.i2) || (i1 == gate.i2 && i2 == gate.i1)) continue;
    const geom::Segment other{view.pts[i1], view.pts[i2]};
    if (geom::point_segment_distance(other, p) < d_here) return false;
  }
  return true;
}

bool gate_has_transit_traffic(const LocalView& view, const GateEdge& gate) {
  for (std::size_t i = 1; i < view.pts.size(); ++i) {
    if (view.lights[i] != model::Light::kTransit) continue;
    // A Transit robot is relevant when this gate edge is the hull edge
    // nearest to it (it is inserting here), measured in the observer's view.
    if (gate_is_nearest_edge_for(view, gate, view.pts[i])) return true;
  }
  return false;
}

std::optional<geom::Segment> estimated_exit_path(const LocalView& view,
                                                 geom::Vec2 p) {
  const auto best = scan_nearest_hull_edge(view, p);
  if (!best) return std::nullopt;
  const geom::Segment best_edge = best->edge;
  const geom::Vec2 foot = geom::closest_point_on_segment(best_edge, p);
  const geom::Vec2 out = foot - p;
  const double out_len = geom::norm(out);
  const double overshoot = 0.15 * best_edge.length();
  if (out_len <= 0.0) {
    // p sits on the edge; a popper exits perpendicular by the overshoot.
    const geom::Vec2 u = geom::normalized(best_edge.b - best_edge.a);
    return geom::Segment{p, p + geom::perp(u) * overshoot};
  }
  return geom::Segment{p, foot + (out / out_len) * overshoot};
}

bool transit_within(const LocalView& view, double radius) {
  const double r_sq = radius * radius;
  for (std::size_t i = 1; i < view.pts.size(); ++i) {
    if (view.lights[i] == model::Light::kTransit &&
        geom::distance_sq(view.self(), view.pts[i]) <= r_sq) {
      return true;
    }
  }
  return false;
}

}  // namespace lumen::core
