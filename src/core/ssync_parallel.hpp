// lumen_core: the semi-synchronous comparator.
//
// Under SSYNC atomicity (all activated robots observe the same configuration
// and their moves commit before anyone looks again) no beacon handshake is
// needed: every eligible non-corner robot can move at once. This class is
// the cv_async rule set with every Transit-based deferral removed — the
// algorithm whose naive ASYNC translation the paper's baseline (and our
// SequentialAsyncBaseline) represents.
//
// Two uses in the benches:
//  * under FSYNC/SSYNC it converges in few rounds (the speed reference);
//  * run (incorrectly) under ASYNC it exhibits the path-crossing and
//    position-collision incidents that the handshake exists to prevent —
//    the ablation behind DESIGN.md claim C4.
#pragma once

#include "model/algorithm.hpp"

namespace lumen::core {

class SsyncParallel final : public model::Algorithm {
 public:
  [[nodiscard]] model::Action compute(const model::Snapshot& snap) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ssync-parallel";
  }
  [[nodiscard]] std::span<const model::Light> palette() const noexcept override;
};

}  // namespace lumen::core
