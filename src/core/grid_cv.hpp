// lumen_core: complete visibility on the integer grid (Kim & Katayama,
// arXiv:2306.08354), adapted to this engine's plugin contract.
//
// The grid-plane model constrains WHERE robots may rest (lattice points)
// and HOW they travel (axis-aligned legs); both constraints live in the
// engine, keyed off motion_model() == kGrid — the algorithm itself still
// reasons in its local frame, because a robot cannot know the world lattice
// axes through an arbitrary similarity frame. The rule mirrors mutual-vis
// (a robot blocking a visible pair steps off the line) with two grid
// adaptations:
//
//   * the step is 0.9x the nearest-neighbor distance. Distinct lattice
//     points are >= 1 apart in world units, so the snapped displacement is
//     always a nonzero lattice step (0.9 / sqrt(2) > 1/2) — sub-half-cell
//     proposals that would snap back onto the robot's own cell can never
//     stall progress;
//   * a candidate target is accepted only if it keeps >= 0.75x the
//     nearest-neighbor distance from every VISIBLE robot. In world units
//     that is >= 0.75 > 1/sqrt(2)/1, so the snapped landing cell cannot
//     coincide with any visible robot's cell. Four candidate directions are
//     tried (both perpendiculars to the blocked line, then the two 45-degree
//     blends); if none is safe the robot defers (kInterior) and re-decides
//     after its neighbors move.
//
// On the grid, strict convexity of N > 4 points is unattainable for small
// hulls and axis-aligned motion makes the paper's corner-count argument
// moot, so the declared success predicate is "mutual-visibility" (every
// pair sees each other) — the property the Kim-Katayama construction
// establishes before its hull phase. Lights as in mutual-vis: kCorner =
// satisfied, kInterior = blocked/deferring, kMoving = in flight.
#pragma once

#include "model/algorithm.hpp"

namespace lumen::core {

class GridCompleteVisibility final : public model::Algorithm {
 public:
  [[nodiscard]] model::Action compute(const model::Snapshot& snap) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "grid-cv";
  }
  [[nodiscard]] std::span<const model::Light> palette() const noexcept override;
  [[nodiscard]] model::MotionModel motion_model() const noexcept override {
    return model::MotionModel::kGrid;
  }
  [[nodiscard]] std::string_view success_predicate() const noexcept override {
    return "mutual-visibility";
  }
};

}  // namespace lumen::core
