#include "core/ssync_parallel.hpp"

#include "core/beacon.hpp"
#include "core/view.hpp"
#include "geom/segment.hpp"

#include <limits>

namespace lumen::core {

using model::Action;
using model::Light;

namespace {

/// Nearest hull edge not incident to the observer. Unlike the ASYNC
/// algorithm, endpoints need not be Corner-lit: atomic rounds make hull
/// vertices trustworthy anchors by themselves.
std::optional<GateEdge> nearest_gate(const LocalView& view) {
  const std::size_t h = view.hull.size();
  if (h < 3) return std::nullopt;
  std::optional<GateEdge> best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t i1 = view.hull[k];
    const std::size_t i2 = view.hull[(k + 1) % h];
    if (i1 == 0 || i2 == 0) continue;
    const geom::Segment e{view.pts[i1], view.pts[i2]};
    const double d = geom::point_segment_distance(e, view.self());
    if (d < best_dist) {
      best_dist = d;
      best = GateEdge{i1, i2, e.a, e.b, d};
    }
  }
  return best;
}

}  // namespace

Action SsyncParallel::compute(const model::Snapshot& snap) const {
  const LocalView view = build_view(snap);
  switch (view.role) {
    case Role::kAlone:
      return Action::stay(Light::kCorner);
    case Role::kLineEnd:
      return Action::stay(Light::kLineEnd);
    case Role::kLine:
      return Action::move_to(line_escape_target(view), Light::kLine);
    case Role::kCorner:
      return Action::stay(Light::kCorner);

    case Role::kSide: {
      const auto gate = containing_hull_edge(view);
      if (!gate) return Action::stay(Light::kSide);
      const auto target = side_popout_target(view, *gate);
      if (!target) return Action::stay(Light::kSide);
      return Action::move_to(*target, Light::kTransit);
    }

    case Role::kInterior: {
      const auto gate = nearest_gate(view);
      if (!gate) return Action::stay(Light::kInterior);
      if (gate_blocked_by_closer_robot(view, *gate)) {
        return Action::stay(Light::kInterior);
      }
      const auto target = interior_insertion_target(view, *gate);
      if (!target) return Action::stay(Light::kInterior);
      return Action::move_to(*target, Light::kTransit);
    }
  }
  return Action::stay(snap.self_light);
}

std::span<const model::Light> SsyncParallel::palette() const noexcept {
  return model::kAllLights;
}

}  // namespace lumen::core
