#include "core/grid_cv.hpp"

#include "core/obstruction.hpp"

#include <array>

namespace lumen::core {

namespace {

using model::Action;
using model::Light;

constexpr std::array<Light, 4> kPalette = {Light::kOff, Light::kCorner,
                                           Light::kInterior, Light::kMoving};

// 1/sqrt(2): the 45-degree blend of the perpendicular and line directions.
constexpr double kHalfSqrt2 = 0.70710678118654752;

// A candidate landing spot is safe when it keeps this fraction of the
// nearest-neighbor distance from every visible robot; >= 0.75 world units
// on the lattice, so the snapped cell cannot be an occupied visible cell.
constexpr double kClearanceFactor = 0.75;

bool clear_of_visible(const model::Snapshot& snap, geom::Vec2 target,
                      double clearance) noexcept {
  for (const geom::Vec2 p : snap.other_positions()) {
    if (geom::distance(target, p) < clearance) return false;
  }
  return true;
}

}  // namespace

std::span<const model::Light> GridCompleteVisibility::palette() const noexcept {
  return kPalette;
}

model::Action GridCompleteVisibility::compute(const model::Snapshot& snap) const {
  if (snap.visible_count() < 2) return Action::stay(Light::kCorner);
  const auto blocked = find_blocked_pair(snap);
  if (!blocked.has_value()) return Action::stay(Light::kCorner);
  if (snap.any_light(Light::kMoving)) return Action::stay(Light::kInterior);
  const auto others = snap.other_positions();
  const geom::Vec2 u =
      geom::normalized(others[blocked->second] - others[blocked->first]);
  const geom::Vec2 p = geom::perp(u);
  const double near = nearest_visible_distance(snap);
  const double step = 0.9 * near;
  const std::array<geom::Vec2, 4> candidates = {
      p,
      -p,
      (p + u) * kHalfSqrt2,
      (p - u) * kHalfSqrt2,
  };
  for (const geom::Vec2 dir : candidates) {
    const geom::Vec2 target = dir * step;
    if (clear_of_visible(snap, target, kClearanceFactor * near)) {
      return Action::move_to(target, Light::kMoving);
    }
  }
  // Boxed in: every escape spot is too close to someone. Defer; neighbors'
  // moves reshape the neighborhood before the next Look.
  return Action::stay(Light::kInterior);
}

}  // namespace lumen::core
