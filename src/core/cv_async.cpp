#include "core/cv_async.hpp"

#include "core/beacon.hpp"
#include "core/view.hpp"
#include "geom/segment.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

namespace lumen::core {

using geom::Vec2;
using model::Action;
using model::Light;

namespace {

/// Conflict margin as a fraction of the shorter exit: paths closer than
/// this are arbitrated. Larger values serialize crossing fans; smaller
/// values admit closer concurrent flights (grazing shows up in the
/// min-separation audit). 0.02 balances the two empirically.
constexpr double kConflictMargin = 0.02;

/// True iff any visible robot shows a flight or intent light within
/// `radius` of the observer — the side-popper's proximity guard.
bool mover_within(const LocalView& view, double radius) {
  const double r_sq = radius * radius;
  for (std::size_t i = 1; i < view.pts.size(); ++i) {
    if ((view.lights[i] == Light::kTransit || view.lights[i] == Light::kMoving) &&
        geom::distance_sq(view.self(), view.pts[i]) <= r_sq) {
      return true;
    }
  }
  return false;
}

/// First plan (for the robot at pts[subject], usually the observer at 0)
/// whose approach corridor is free of parked robots: nobody may sit
/// essentially ON the straight path (grazing guard; a robot exactly on the
/// path would be run over). Gate anchors are at the edge ends, outside the
/// central approach band, so they never trip this. Used both for the
/// observer's own decision and — with the same logic, for estimate
/// consistency — to model a rival's plan.
std::optional<ExitPlan> first_clear_plan(const LocalView& view,
                                         std::size_t subject) {
  const geom::Vec2 from = view.pts[subject];
  // Corridor width scales with the LOCAL packing (distance to the nearest
  // visible robot): wide enough to rule out grazing a parked robot, narrow
  // enough that dense configurations still admit many concurrent plans.
  // (Scaling it with the gate edge length instead throttles global
  // throughput to a constant — the hull edges are huge early on.)
  double nearest_sq = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < view.pts.size(); ++i) {
    if (i == subject) continue;
    nearest_sq = std::min(nearest_sq, geom::distance_sq(from, view.pts[i]));
  }
  const double corridor =
      std::isfinite(nearest_sq) ? 0.05 * std::sqrt(nearest_sq) : 0.0;
  for (const ExitPlan& plan : plan_exits(view, from)) {
    const geom::Segment path{from, plan.target};
    bool clear = true;
    for (std::size_t i = 0; i < view.pts.size() && clear; ++i) {
      if (i == subject || i == plan.gate.i1 || i == plan.gate.i2) continue;
      if (geom::point_segment_distance(path, view.pts[i]) <= corridor) {
        clear = false;
      }
    }
    if (clear) return plan;
  }
  return std::nullopt;
}

/// Fallback for the rare observer whose perpendicular foot misses the
/// central band of EVERY eligible edge (it sits in the notch behind a hull
/// vertex): the diagonal lambda-squash insertion at the nearest eligible
/// gate. Diagonal paths are not modellable by rivals, so fallback flights
/// are serialized globally by the caller.
std::optional<ExitPlan> fallback_plan(const LocalView& view) {
  const std::size_t h = view.hull.size();
  if (h < 3) return std::nullopt;
  std::optional<GateEdge> best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t i1 = view.hull[k];
    const std::size_t i2 = view.hull[(k + 1) % h];
    if (i1 == 0 || i2 == 0) continue;
    if (view.lights[i1] != Light::kCorner || view.lights[i2] != Light::kCorner) {
      continue;
    }
    const geom::Segment e{view.pts[i1], view.pts[i2]};
    const double d = geom::point_segment_distance(e, view.self());
    if (d < best_dist) {
      best_dist = d;
      best = GateEdge{i1, i2, e.a, e.b, d};
    }
  }
  if (!best) return std::nullopt;
  if (gate_blocked_by_closer_robot(view, *best)) return std::nullopt;
  const auto target = interior_insertion_target(view, *best);
  if (!target) return std::nullopt;
  return ExitPlan{*best, *target, geom::distance(view.self(), *target)};
}

/// Distance from p to the nearest hull edge of the view — the shared scalar
/// the fallback serialization orders rivals by.
double nearest_edge_distance(const LocalView& view, geom::Vec2 p) {
  const std::size_t h = view.hull.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < h; ++k) {
    const geom::Segment e{view.pts[view.hull[k]], view.pts[view.hull[(k + 1) % h]]};
    best = std::min(best, geom::point_segment_distance(e, p));
  }
  return best;
}

}  // namespace

Action CompleteVisibilityAsync::compute(const model::Snapshot& snap) const {
  const LocalView view = build_view(snap);
  switch (view.role) {
    case Role::kAlone:
      return Action::stay(Light::kCorner);

    case Role::kLineEnd:
      return Action::stay(Light::kLineEnd);

    case Role::kLine: {
      // Everything I see is one line and I am between neighbors: step off.
      // Endpoints hold still, so perpendicular escapes (distinct line
      // abscissae) can neither collide nor cross.
      return Action::move_to(line_escape_target(view), Light::kLine);
    }

    case Role::kCorner:
      // Anchors never move; a robot that just landed (kMoving) and is now a
      // corner announces it here.
      return Action::stay(Light::kCorner);

    case Role::kSide: {
      const auto gate = containing_hull_edge(view);
      if (!gate) return Action::stay(Light::kSide);
      const auto target = side_popout_target(view, *gate);
      if (!target) return Action::stay(Light::kSide);
      const double displacement = geom::distance(view.self(), *target);
      if (mover_within(view, guard_factor_ * displacement)) {
        return Action::stay(Light::kSide);
      }
      return Action::move_to(*target, Light::kMoving);
    }

    case Role::kInterior: {
      // The beacon protocol, three lights deep:
      //   kInterior -> kTransit : ANNOUNCE a concrete exit plan (stationary).
      //   kTransit  -> kMoving  : FLY, but only after the arbitration below.
      //   kMoving interior      : the landing slot got absorbed by a
      //                           concurrent insertion; restart the protocol.
      //
      // Arbitration (run by a kTransit robot at its move-Look): against
      // every visible robot with an intent/flight light whose modelled exit
      // path comes within the safety margin of mine,
      //   - kMoving rivals win unconditionally (they are already flying);
      //   - kTransit rivals are ordered by remaining exit distance (a total
      //     order, so no deferral cycles): strictly shorter exit flies,
      //     the other keeps kTransit and re-arbitrates next cycle.
      // Because a robot's kTransit commit precedes its move-Look, two
      // conflicting robots can never both reach flight unseen: at least one
      // of them arbitrates with the other's light visible.
      auto plan = first_clear_plan(view, 0);
      const bool fallback = !plan.has_value();
      if (fallback) plan = fallback_plan(view);
      if (!plan) {
        // No eligible gate right now (or all corridors blocked): withdraw
        // any stale intent so rivals stop yielding to it.
        return Action::stay(Light::kInterior);
      }
      if (snap.self_light != Light::kTransit) {
        return Action::stay(Light::kTransit);  // Announce.
      }

      if (fallback) {
        // Diagonal fallback flights are invisible to rivals' path models,
        // so they run under global exclusivity: yield to every flight, and
        // among intents fly only as the robot strictly closest to the hull
        // boundary (a shared, frame-invariant total order).
        const double own = nearest_edge_distance(view, view.self());
        for (std::size_t i = 1; i < view.pts.size(); ++i) {
          if (view.lights[i] == Light::kMoving) return Action::stay(Light::kTransit);
          if (view.lights[i] == Light::kTransit &&
              nearest_edge_distance(view, view.pts[i]) <= own) {
            return Action::stay(Light::kTransit);
          }
        }
        return Action::move_to(plan->target, Light::kMoving);
      }

      const geom::Segment my_path{view.self(), plan->target};
      // Sound prefilter: a rival's exit path never leaves the disk of
      // radius (distance to its nearest hull edge + 0.25 * longest edge)
      // around the rival, so rivals farther than that from my path cannot
      // conflict — skip the expensive plan modelling for them.
      double longest_edge = 0.0;
      for (std::size_t k = 0; k < view.hull.size(); ++k) {
        longest_edge = std::max(
            longest_edge,
            geom::distance(view.pts[view.hull[k]],
                           view.pts[view.hull[(k + 1) % view.hull.size()]]));
      }
      for (std::size_t i = 1; i < view.pts.size(); ++i) {
        const Light light = view.lights[i];
        if (light != Light::kTransit && light != Light::kMoving) continue;
        const Vec2 rival = view.pts[i];
        const double reach =
            nearest_edge_distance(view, rival) + 0.25 * longest_edge;
        const double gap = geom::point_segment_distance(my_path, rival);
        if (gap > reach + 0.1 * plan->exit_distance) continue;
        // A robot in flight close to my intended path is a hazard no matter
        // what its (unknowable) destination is — yield on position alone.
        if (light == Light::kMoving &&
            geom::point_segment_distance(geom::Segment{view.self(), plan->target},
                                         rival) <= 0.03 * plan->exit_distance) {
          return Action::stay(Light::kTransit);
        }
        // Model the rival with the SAME planner the rival itself runs, so
        // both parties arbitrate on (approximately) the same two paths.
        const auto rival_plan = first_clear_plan(view, i);
        geom::Segment rival_path{rival, rival};
        double rival_exit = 0.0;
        if (rival_plan) {
          rival_path = geom::Segment{rival, rival_plan->target};
          rival_exit = rival_plan->exit_distance;
        }
        const double margin =
            kConflictMargin *
            std::min(plan->exit_distance,
                     rival_exit > 0.0 ? rival_exit : plan->exit_distance);
        if (geom::segment_segment_distance(my_path, rival_path) > margin) {
          continue;
        }
        if (light == Light::kMoving) {
          return Action::stay(Light::kTransit);  // Yield to flights.
        }
        if (rival_exit <= 0.0) {
          // Un-modellable stationary intent near my path (likely a fallback
          // candidate): WITHDRAW rather than hold intent, so the fallback's
          // global-exclusivity count drops and it can proceed.
          return Action::stay(Light::kInterior);
        }
        if (rival_exit <= plan->exit_distance) {
          // Shorter exit flies first; on exact ties both yield until the
          // landscape changes.
          return Action::stay(Light::kTransit);
        }
      }
      return Action::move_to(plan->target, Light::kMoving);
    }
  }
  return Action::stay(snap.self_light);
}

std::span<const model::Light> CompleteVisibilityAsync::palette() const noexcept {
  return model::kAllLights;
}

}  // namespace lumen::core
