// lumen_core: the paper's contribution — O(log N)-time Complete Visibility
// for asynchronous robots with lights, O(1) colors, collision-free.
//
// Reconstruction of Sharma, Vaidyanathan, Trahan, Busch, Rai (IPDPS 2017);
// see DESIGN.md §4 for the rule set and §0 for reconstruction provenance.
//
// Shape of the execution: corners of the convex hull announce themselves
// (kCorner) and never move; side robots pop perpendicular off their hull
// edge; interior robots exit through the nearest hull edge whose endpoints
// are Corner-lit ("the gate"), one per gate at a time, using the kTransit
// light as the beacon handshake. Each stage roughly doubles the number of
// corners, giving O(log N) epochs; fully collinear views are escaped by a
// dedicated line rule first.
#pragma once

#include "model/algorithm.hpp"

namespace lumen::core {

class CompleteVisibilityAsync final : public model::Algorithm {
 public:
  /// `transit_guard_factor`: a mover defers while a Transit-lit robot is
  /// within this multiple of its own intended displacement (the proximity
  /// guard against path overlap near shared hull corners).
  explicit CompleteVisibilityAsync(double transit_guard_factor = 4.0) noexcept
      : guard_factor_(transit_guard_factor) {}

  [[nodiscard]] model::Action compute(const model::Snapshot& snap) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "async-log";
  }
  [[nodiscard]] std::span<const model::Light> palette() const noexcept override;

 private:
  double guard_factor_;
};

}  // namespace lumen::core
