// lumen_gen: initial-configuration generators.
//
// All generators are seeded and deterministic, produce pairwise-distinct
// positions with a minimum separation (the real-RAM substitute documented in
// DESIGN.md §3), and cover the families the claims must hold over: generic
// random clouds, clustered blobs, boundary-heavy rings, structured grids,
// and the degenerate collinear family the line rules exist for.
#pragma once

#include "geom/vec2.hpp"
#include "util/prng.hpp"

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace lumen::gen {

enum class ConfigFamily {
  kUniformDisk,    ///< Uniform in a disk of radius 100.
  kUniformSquare,  ///< Uniform in a 200x200 square.
  kGaussianBlob,   ///< One isotropic Gaussian cluster.
  kMultiCluster,   ///< 2-5 Gaussian clusters spread over the plane.
  kRingWithCore,   ///< Most robots on a circle, a core cluster inside.
  kGrid,           ///< Perturbed square lattice.
  kCollinear,      ///< EXACTLY collinear, evenly spaced with jitter along
                   ///< the line — exercises the line-escape rules.
  kNearCollinear,  ///< A line with tiny perpendicular noise (almost
                   ///< degenerate, but 2-D: stresses the predicates).
  kDenseDiameter,  ///< Adversarial: half the robots packed near the segment
                   ///< between two far-apart anchors (deep obstruction).
  kLattice,        ///< Distinct INTEGER lattice points in the world square —
                   ///< the native family for grid-motion algorithms
                   ///< (model::MotionModel::kGrid). Appended last: the
                   ///< family's enum value salts its generator stream, so
                   ///< new entries must never reorder existing ones.
};

[[nodiscard]] std::string_view to_string(ConfigFamily f) noexcept;

/// Inverse of to_string: exact-name lookup, nullopt for unknown names. This
/// is THE family parser — CLI boundaries must error out on nullopt instead
/// of defaulting (a typoed --family silently running uniform-disk is how
/// sweeps lie).
[[nodiscard]] std::optional<ConfigFamily> family_from_string(
    std::string_view name) noexcept;

/// All families, in presentation order.
[[nodiscard]] const std::vector<ConfigFamily>& all_families();

/// Generates `n` pairwise-distinct positions of the given family.
/// Guarantees min pairwise separation >= min_separation (rescaling or
/// rejection internally; throws std::invalid_argument only if n is so large
/// that the family cannot host it, which none of the benches approach).
[[nodiscard]] std::vector<geom::Vec2> generate(ConfigFamily family, std::size_t n,
                                               std::uint64_t seed,
                                               double min_separation = 1e-3);

}  // namespace lumen::gen
