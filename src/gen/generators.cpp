#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lumen::gen {

using geom::Vec2;

std::string_view to_string(ConfigFamily f) noexcept {
  switch (f) {
    case ConfigFamily::kUniformDisk: return "uniform-disk";
    case ConfigFamily::kUniformSquare: return "uniform-square";
    case ConfigFamily::kGaussianBlob: return "gaussian-blob";
    case ConfigFamily::kMultiCluster: return "multi-cluster";
    case ConfigFamily::kRingWithCore: return "ring-with-core";
    case ConfigFamily::kGrid: return "grid";
    case ConfigFamily::kCollinear: return "collinear";
    case ConfigFamily::kNearCollinear: return "near-collinear";
    case ConfigFamily::kDenseDiameter: return "dense-diameter";
    case ConfigFamily::kLattice: return "lattice";
  }
  return "?";
}

std::optional<ConfigFamily> family_from_string(std::string_view name) noexcept {
  for (const auto f : all_families()) {
    if (to_string(f) == name) return f;
  }
  return std::nullopt;
}

const std::vector<ConfigFamily>& all_families() {
  static const std::vector<ConfigFamily> families = {
      ConfigFamily::kUniformDisk,   ConfigFamily::kUniformSquare,
      ConfigFamily::kGaussianBlob,  ConfigFamily::kMultiCluster,
      ConfigFamily::kRingWithCore,  ConfigFamily::kGrid,
      ConfigFamily::kCollinear,     ConfigFamily::kNearCollinear,
      ConfigFamily::kDenseDiameter, ConfigFamily::kLattice,
  };
  return families;
}

namespace {

constexpr double kWorldRadius = 100.0;

/// Rejection-samples candidates keeping min separation; the callable
/// produces raw candidates.
template <typename Sampler>
std::vector<Vec2> sample_separated(std::size_t n, double min_sep, Sampler&& sampler) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  const double min_sep_sq = min_sep * min_sep;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 1000 * (n + 10);
  while (pts.size() < n) {
    if (++attempts > max_attempts) {
      throw std::invalid_argument(
          "gen::generate: cannot fit requested robots at this separation");
    }
    const Vec2 c = sampler();
    bool ok = true;
    for (const Vec2 p : pts) {
      if (geom::distance_sq(p, c) < min_sep_sq) {
        ok = false;
        break;
      }
    }
    if (ok) pts.push_back(c);
  }
  return pts;
}

Vec2 in_disk(util::Prng& rng, double radius) {
  // Uniform over the disk via sqrt radial transform.
  const double r = radius * std::sqrt(rng.next_double());
  const double a = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return {r * std::cos(a), r * std::sin(a)};
}

std::vector<Vec2> uniform_disk(std::size_t n, util::Prng& rng, double min_sep) {
  return sample_separated(n, min_sep, [&] { return in_disk(rng, kWorldRadius); });
}

std::vector<Vec2> uniform_square(std::size_t n, util::Prng& rng, double min_sep) {
  return sample_separated(n, min_sep, [&] {
    return Vec2{rng.uniform(-kWorldRadius, kWorldRadius),
                rng.uniform(-kWorldRadius, kWorldRadius)};
  });
}

std::vector<Vec2> gaussian_blob(std::size_t n, util::Prng& rng, double min_sep) {
  const double sigma = kWorldRadius / 3.0;
  return sample_separated(n, min_sep, [&] {
    return Vec2{sigma * rng.normal(), sigma * rng.normal()};
  });
}

std::vector<Vec2> multi_cluster(std::size_t n, util::Prng& rng, double min_sep) {
  const std::size_t k = 2 + static_cast<std::size_t>(rng.next_below(4));
  std::vector<Vec2> centers;
  centers.reserve(k);
  for (std::size_t i = 0; i < k; ++i) centers.push_back(in_disk(rng, kWorldRadius));
  const double sigma = kWorldRadius / 12.0;
  return sample_separated(n, min_sep, [&] {
    const Vec2 c = centers[rng.next_below(k)];
    return c + Vec2{sigma * rng.normal(), sigma * rng.normal()};
  });
}

std::vector<Vec2> ring_with_core(std::size_t n, util::Prng& rng, double min_sep) {
  // ~60% on a jittered circle, the rest in a small core cluster: a large
  // corner-rich hull with deep interior robots — the doubling showcase.
  return sample_separated(n, min_sep, [&] {
    if (rng.bernoulli(0.6)) {
      const double a = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double r = kWorldRadius * rng.uniform(0.95, 1.0);
      return Vec2{r * std::cos(a), r * std::sin(a)};
    }
    return in_disk(rng, kWorldRadius / 8.0);
  });
}

std::vector<Vec2> grid(std::size_t n, util::Prng& rng, double min_sep) {
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double step = 2.0 * kWorldRadius / static_cast<double>(side);
  const double jitter = std::min(0.2 * step, step - min_sep > 0 ? 0.2 * step : 0.0);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t row = 0; row < side && pts.size() < n; ++row) {
    for (std::size_t col = 0; col < side && pts.size() < n; ++col) {
      const Vec2 base{-kWorldRadius + (static_cast<double>(col) + 0.5) * step,
                      -kWorldRadius + (static_cast<double>(row) + 0.5) * step};
      pts.push_back(base + Vec2{rng.uniform(-jitter, jitter),
                                rng.uniform(-jitter, jitter)});
    }
  }
  return pts;
}

std::vector<Vec2> collinear(std::size_t n, util::Prng& rng, double min_sep) {
  // EXACTLY collinear: robots on a coordinate axis (one coordinate is the
  // literal 0.0, so orient2d sees true zeros). An arbitrary rotated line
  // would destroy exactness through per-coordinate rounding; axis alignment
  // loses no generality because every robot observes the world through its
  // own random similarity frame anyway. The axis and direction vary with
  // the seed; a random offset shifts the line away from the origin.
  const bool vertical = rng.bernoulli(0.5);
  const double offset = rng.uniform(-kWorldRadius / 2, kWorldRadius / 2);
  std::vector<Vec2> pts;
  pts.reserve(n);
  double t = rng.uniform(-kWorldRadius, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(vertical ? Vec2{offset, t} : Vec2{t, offset});
    t += std::max(min_sep * 2.0, rng.uniform(1.0, 4.0));
  }
  return pts;
}

std::vector<Vec2> near_collinear(std::size_t n, util::Prng& rng, double min_sep) {
  const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const Vec2 d{std::cos(angle), std::sin(angle)};
  const Vec2 normal = geom::perp(d);
  std::vector<Vec2> pts;
  pts.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(d * t + normal * rng.uniform(-0.01, 0.01));
    t += std::max(min_sep * 2.0, rng.uniform(1.0, 4.0));
  }
  return pts;
}

std::vector<Vec2> dense_diameter(std::size_t n, util::Prng& rng, double min_sep) {
  // Two far anchors and a dense sausage of robots along the segment between
  // them: long obstruction chains, small initial hull corner count.
  std::vector<Vec2> pts;
  pts.push_back({-kWorldRadius, 0.0});
  pts.push_back({kWorldRadius, 0.0});
  if (n <= 2) {
    pts.resize(n);
    return pts;
  }
  const auto rest = sample_separated(n - 2, min_sep, [&] {
    const double x = rng.uniform(-0.9 * kWorldRadius, 0.9 * kWorldRadius);
    const double y = rng.uniform(-2.0, 2.0);
    return Vec2{x, y};
  });
  pts.insert(pts.end(), rest.begin(), rest.end());
  return pts;
}

std::vector<Vec2> lattice(std::size_t n, util::Prng& rng, double min_sep) {
  // Distinct integer lattice points, uniform over the world square. Lattice
  // points are >= 1 apart, so any min_sep <= 1 reduces the separation test
  // to plain distinctness; larger separations still hold by rejection.
  const auto side = static_cast<std::uint64_t>(2.0 * kWorldRadius) + 1;
  if (n > side * side) {
    throw std::invalid_argument(
        "gen::generate: lattice family cannot host this many robots");
  }
  return sample_separated(n, std::max(min_sep, 0.5), [&] {
    return Vec2{static_cast<double>(rng.next_below(side)) - kWorldRadius,
                static_cast<double>(rng.next_below(side)) - kWorldRadius};
  });
}

}  // namespace

std::vector<Vec2> generate(ConfigFamily family, std::size_t n, std::uint64_t seed,
                           double min_separation) {
  const auto family_tag = static_cast<std::uint64_t>(static_cast<unsigned>(family));
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  util::Prng rng{seed ^ (std::uint64_t{0xabcd} + family_tag * kGolden)};
  switch (family) {
    case ConfigFamily::kUniformDisk: return uniform_disk(n, rng, min_separation);
    case ConfigFamily::kUniformSquare: return uniform_square(n, rng, min_separation);
    case ConfigFamily::kGaussianBlob: return gaussian_blob(n, rng, min_separation);
    case ConfigFamily::kMultiCluster: return multi_cluster(n, rng, min_separation);
    case ConfigFamily::kRingWithCore: return ring_with_core(n, rng, min_separation);
    case ConfigFamily::kGrid: return grid(n, rng, min_separation);
    case ConfigFamily::kCollinear: return collinear(n, rng, min_separation);
    case ConfigFamily::kNearCollinear: return near_collinear(n, rng, min_separation);
    case ConfigFamily::kDenseDiameter: return dense_diameter(n, rng, min_separation);
    case ConfigFamily::kLattice: return lattice(n, rng, min_separation);
  }
  throw std::invalid_argument("gen::generate: unknown family");
}

}  // namespace lumen::gen
