// lumen_analysis: campaigns — many independent runs, reduced to the rows the
// benches print.
//
// A campaign fixes (algorithm, scheduler, adversary, family, N) and sweeps
// seeds; runs execute in parallel on the shared thread pool (each run is
// fully deterministic in its own seed, so parallel and serial campaigns
// produce identical metrics). Verification (complete visibility, collision
// audit) is part of the per-run metrics so that every table in
// EXPERIMENTS.md carries its own evidence.
#pragma once

#include "fault/events.hpp"
#include "gen/generators.hpp"
#include "sim/run.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace lumen::analysis {

struct CampaignSpec {
  std::string algorithm = "async-log";
  sim::RunConfig run;  ///< Scheduler/adversary template; seed is per-run.
  gen::ConfigFamily family = gen::ConfigFamily::kUniformDisk;
  std::size_t n = 32;
  std::size_t runs = 20;           ///< Number of seeds.
  std::uint64_t seed_base = 1;     ///< Run i uses seed seed_base + i.
  double min_separation = 1e-3;
  /// Streaming continuous collision audit (StreamingCollisionMonitor);
  /// off for big sweeps where only convergence metrics matter.
  bool audit_collisions = true;
  double collision_tolerance = 0.0;
  /// Deterministic seed-range sharding: shard j of k executes exactly the
  /// runs whose index i (seed seed_base + i) satisfies i % shard_count ==
  /// shard_index. Each run is deterministic in its seed, so the k shard
  /// results, merged by seed, are bit-identical to the unsharded campaign —
  /// big sweeps split across machines without changing a single metric.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

struct RunMetrics {
  std::uint64_t seed = 0;
  bool converged = false;
  std::size_t epochs = 0;
  std::size_t cycles = 0;
  std::size_t moves = 0;
  double distance = 0.0;
  std::size_t colors = 0;
  bool visibility_ok = false;
  /// Physical verdict: no coincidence, closest approach above noise
  /// (CollisionReport::hazard_free). Strict path crossings are counted
  /// separately in path_crossings.
  bool collision_free = true;
  double min_observed_separation = 0.0;
  std::size_t path_crossings = 0;
  std::size_t position_collisions = 0;
  /// Outcome classification: the engine's verdict, upgraded to kCollision
  /// when the audit found position collisions.
  sim::RunOutcome outcome = sim::RunOutcome::kBudgetExhausted;
  /// Per-channel injected-fault totals for this run.
  fault::FaultCounters faults;
  /// The fault channel the safety monitor blames for the run's collision
  /// incidents (kNone when incident-free or unaudited).
  fault::FaultChannel collision_channel = fault::FaultChannel::kNone;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<RunMetrics> runs;

  [[nodiscard]] std::size_t converged_count() const noexcept;
  [[nodiscard]] std::size_t visibility_ok_count() const noexcept;
  [[nodiscard]] std::size_t collision_free_count() const noexcept;
  [[nodiscard]] std::size_t max_colors() const noexcept;
  /// Runs classified as `outcome` (after any audit-driven upgrade).
  [[nodiscard]] std::size_t outcome_count(sim::RunOutcome outcome) const noexcept;
  /// Injected-fault totals summed over every run in the campaign.
  [[nodiscard]] fault::FaultCounters fault_totals() const noexcept;
  /// Summary over CONVERGED runs' epoch counts.
  [[nodiscard]] util::Summary epochs() const;
  [[nodiscard]] util::Summary moves() const;
};

/// Runs the campaign on the given pool (nullptr -> util::global_pool()).
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          util::ThreadPool* pool = nullptr);

/// Convenience: per-N sweep of the same campaign spec, returning the epoch
/// means aligned with `ns` (for scaling fits).
struct SweepPoint {
  std::size_t n = 0;
  CampaignResult result;
};

[[nodiscard]] std::vector<SweepPoint> sweep_n(CampaignSpec spec,
                                              const std::vector<std::size_t>& ns,
                                              util::ThreadPool* pool = nullptr);

}  // namespace lumen::analysis
