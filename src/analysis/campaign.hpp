// lumen_analysis: campaigns — many independent runs, reduced to the rows the
// benches print.
//
// A campaign fixes (algorithm, scheduler, adversary, family, N) and sweeps
// seeds; runs execute in parallel on the shared thread pool (each run is
// fully deterministic in its own seed, so parallel and serial campaigns
// produce identical metrics). Verification (complete visibility, collision
// audit) is part of the per-run metrics so that every table in
// EXPERIMENTS.md carries its own evidence.
//
// Resilience (DESIGN.md §12): a campaign is a grid of independent CELLS,
// one per (campaign, seed). A cell that hangs past the per-run watchdog or
// throws is retried up to CampaignSpec::max_attempts times and then recorded
// as a structured CampaignError on the result instead of aborting the whole
// campaign. A CampaignControl can attach a checkpoint journal (every
// finished cell is durably appended), a resume snapshot (journaled cells are
// skipped and their recorded metrics merged back bit-identically), and a
// cooperative stop flag (in-flight cells drain, untouched cells are counted
// as skipped).
#pragma once

#include "fault/events.hpp"
#include "gen/generators.hpp"
#include "sim/run.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lumen::analysis {

class CampaignJournal;
struct JournalSnapshot;

struct CampaignSpec {
  std::string algorithm = "async-log";
  sim::RunConfig run;  ///< Scheduler/adversary template; seed is per-run.
  gen::ConfigFamily family = gen::ConfigFamily::kUniformDisk;
  std::size_t n = 32;
  std::size_t runs = 20;           ///< Number of seeds.
  std::uint64_t seed_base = 1;     ///< Run i uses seed seed_base + i.
  double min_separation = 1e-3;
  /// Streaming continuous collision audit (StreamingCollisionMonitor);
  /// off for big sweeps where only convergence metrics matter.
  bool audit_collisions = true;
  double collision_tolerance = 0.0;
  /// Deterministic seed-range sharding: shard j of k executes exactly the
  /// runs whose index i (seed seed_base + i) satisfies i % shard_count ==
  /// shard_index. Each run is deterministic in its seed, so the k shard
  /// results, merged by seed, are bit-identical to the unsharded campaign —
  /// big sweeps split across machines without changing a single metric.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Retry policy for retriable cell failures (deadline-exceeded runs and
  /// thrown exceptions): each cell is attempted up to max_attempts times
  /// before a CampaignError is recorded. 1 = no retries.
  std::size_t max_attempts = 1;
  /// Base backoff between a cell's attempts; attempt k sleeps
  /// retry_backoff_ms * 2^(k-1), capped at 5000 ms. 0 = retry immediately.
  std::uint64_t retry_backoff_ms = 0;
  /// When set, an audited cell whose run produced a position collision is
  /// recorded as a kCollisionAbort error instead of a metrics row (the
  /// verdict is deterministic in the seed, so it is never retried).
  bool abort_on_collision = false;
};

/// Why a cell (or the whole campaign) failed. The taxonomy drives retry:
/// only timing-dependent failures (kDeadline) and exceptions (kException,
/// which may be environmental — allocation, file descriptors) are retried;
/// kSpecInvalid and kCollisionAbort are deterministic verdicts.
enum class CampaignErrorKind {
  kSpecInvalid,      ///< The spec failed validation; campaign-wide, no cells ran.
  kDeadline,         ///< Every attempt ended RunOutcome::kDeadlineExceeded.
  kException,        ///< Every attempt threw; detail carries the last what().
  kCollisionAbort,   ///< abort_on_collision and the audit found a collision.
  kJournalMismatch,  ///< A journal declared a different campaign key than the
                     ///< spec (multi-writer guard); campaign-wide, no cells ran.
};

[[nodiscard]] std::string_view to_string(CampaignErrorKind k) noexcept;

/// Exact (case-sensitive) inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<CampaignErrorKind> campaign_error_kind_from_string(
    std::string_view name) noexcept;

struct CampaignError {
  CampaignErrorKind kind = CampaignErrorKind::kException;
  /// The failed cell's seed; 0 for the campaign-wide kSpecInvalid record.
  std::uint64_t seed = 0;
  /// How many attempts were made before giving up (0 for kSpecInvalid).
  std::size_t attempts = 0;
  std::string detail;  ///< Human-readable reason (validator/exception text).

  friend bool operator==(const CampaignError&, const CampaignError&) = default;
};

/// Checks every field domain the JSON loaders check, plus the constraints
/// only the campaign layer knows (n >= 1, max_attempts >= 1, fault rates in
/// [0, 1], known algorithm name). Returns the first problem as a
/// field-naming message, or an empty string when the spec is valid.
/// run_campaign records the message as a kSpecInvalid CampaignError instead
/// of running anything.
[[nodiscard]] std::string validate_campaign_spec(const CampaignSpec& spec);

/// The delay before retry attempt `failed_attempts + 1` of a cell: base
/// doubled per failed attempt and capped at 5000 ms, then jittered
/// DETERMINISTICALLY into [delay/2, delay] by a hash of (cell_seed,
/// failed_attempts). Without the jitter every shard that fails at the same
/// instant (a full disk, an exhausted file-descriptor table) retries at the
/// same instant too — a thundering herd; with it, retry times decorrelate
/// across cells while each cell's schedule stays a pure function of its
/// seed. 0 when base is 0 (retry immediately).
[[nodiscard]] std::uint64_t retry_backoff_delay_ms(
    std::uint64_t base, std::size_t failed_attempts,
    std::uint64_t cell_seed) noexcept;

struct RunMetrics {
  std::uint64_t seed = 0;
  bool converged = false;
  std::size_t epochs = 0;
  std::size_t cycles = 0;
  std::size_t moves = 0;
  double distance = 0.0;
  std::size_t colors = 0;
  /// The final configuration satisfies the algorithm's DECLARED success
  /// predicate (model::Algorithm::success_predicate, evaluated by
  /// sim::verify_success) — complete visibility for the paper algorithms,
  /// mutual visibility for the related-work plugins.
  bool visibility_ok = false;
  /// Physical verdict: no coincidence, closest approach above noise
  /// (CollisionReport::hazard_free). Strict path crossings are counted
  /// separately in path_crossings.
  bool collision_free = true;
  double min_observed_separation = 0.0;
  std::size_t path_crossings = 0;
  std::size_t position_collisions = 0;
  /// Outcome classification: the engine's verdict, upgraded to kCollision
  /// when the audit found position collisions.
  sim::RunOutcome outcome = sim::RunOutcome::kBudgetExhausted;
  /// Per-channel injected-fault totals for this run.
  fault::FaultCounters faults;
  /// The fault channel the safety monitor blames for the run's collision
  /// incidents (kNone when incident-free or unaudited).
  fault::FaultChannel collision_channel = fault::FaultChannel::kNone;
  /// Visibility-cache hit mix for this run (RunResult::cache_*): Looks
  /// served by replay, by write-log repair, and by full rebuilds.
  std::uint64_t cache_replays = 0;
  std::uint64_t cache_repairs = 0;
  std::uint64_t cache_rebuilds = 0;

  friend bool operator==(const RunMetrics&, const RunMetrics&) = default;
};

/// External hooks for one run_campaign call; everything is optional and
/// non-owning. `journal` receives one durable record per finished cell;
/// `resume` pre-fills cells already journaled by a previous (interrupted)
/// process; `stop` is polled before each cell starts — once set, running
/// cells drain normally and untouched cells are counted in cells_skipped.
/// Resuming against the journal file being appended to is the intended
/// shape (lumen-bench --resume does exactly that).
struct CampaignControl {
  CampaignJournal* journal = nullptr;
  const JournalSnapshot* resume = nullptr;
  const std::atomic<bool>* stop = nullptr;
  /// Progress hook: invoked once per cell that actually EXECUTED (not for
  /// resumed cells), after its journal record landed, with the cell's seed.
  /// Called from pool worker threads — the callee must be thread-safe. The
  /// fabric worker uses this to stream per-cell progress to its
  /// coordinator; it must not throw.
  std::function<void(std::uint64_t seed)> on_cell;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<RunMetrics> runs;
  /// Cells that failed after retries (ascending seed), or a single
  /// campaign-wide kSpecInvalid record. Aggregates below run over `runs`
  /// only, so a partially-failed campaign still reports honest numbers.
  std::vector<CampaignError> errors;
  /// Bookkeeping (NOT part of the serialized result, so an interrupted +
  /// resumed campaign is byte-identical to an uninterrupted one).
  std::size_t cells_resumed = 0;  ///< Cells merged from the resume snapshot.
  std::size_t cells_skipped = 0;  ///< Cells never started (stop requested).

  /// True when every cell produced metrics: no errors, nothing skipped.
  [[nodiscard]] bool complete() const noexcept {
    return errors.empty() && cells_skipped == 0;
  }

  [[nodiscard]] std::size_t converged_count() const noexcept;
  [[nodiscard]] std::size_t visibility_ok_count() const noexcept;
  [[nodiscard]] std::size_t collision_free_count() const noexcept;
  [[nodiscard]] std::size_t max_colors() const noexcept;
  /// Runs classified as `outcome` (after any audit-driven upgrade).
  [[nodiscard]] std::size_t outcome_count(sim::RunOutcome outcome) const noexcept;
  /// Injected-fault totals summed over every run in the campaign.
  [[nodiscard]] fault::FaultCounters fault_totals() const noexcept;
  /// Visibility-cache hit mix summed over every run (replays / repairs /
  /// rebuilds) — the campaign-level evidence for the E7c table.
  struct CacheTotals {
    std::uint64_t replays = 0;
    std::uint64_t repairs = 0;
    std::uint64_t rebuilds = 0;

    [[nodiscard]] std::uint64_t looks() const noexcept {
      return replays + repairs + rebuilds;
    }
  };
  [[nodiscard]] CacheTotals cache_totals() const noexcept;
  /// Summary over CONVERGED runs' epoch counts.
  [[nodiscard]] util::Summary epochs() const;
  [[nodiscard]] util::Summary moves() const;
  /// Worst case over ALL runs (converged or not): the largest epoch count.
  /// 0 when the campaign produced no metrics. Unlike epochs().max this
  /// includes stalled and budget-exhausted runs — the adversarial tail the
  /// search subsystem hunts (DESIGN.md §16).
  [[nodiscard]] std::size_t max_epochs() const noexcept;
  /// Worst (smallest) audited closest approach over ALL runs — the
  /// near-miss margin. Meaningful only when audit_collisions was set;
  /// +infinity when the campaign produced no metrics.
  [[nodiscard]] double worst_min_separation() const noexcept;
};

/// Runs the campaign on the given pool (nullptr -> util::global_pool()).
/// Never throws for per-cell failures: an invalid spec, a hung run or a
/// throwing cell ends up in CampaignResult::errors (see CampaignControl for
/// journaling / resume / cooperative stop).
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          util::ThreadPool* pool = nullptr,
                                          const CampaignControl& control = {});

/// Convenience: per-N sweep of the same campaign spec, returning the epoch
/// means aligned with `ns` (for scaling fits).
struct SweepPoint {
  std::size_t n = 0;
  CampaignResult result;
};

[[nodiscard]] std::vector<SweepPoint> sweep_n(CampaignSpec spec,
                                              const std::vector<std::size_t>& ns,
                                              util::ThreadPool* pool = nullptr);

}  // namespace lumen::analysis
