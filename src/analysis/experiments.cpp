#include "analysis/experiments.hpp"

#include "core/registry.hpp"
#include "model/light.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <map>

namespace lumen::analysis {

MetricCell cell(std::string_view text) { return MetricCell{std::string(text), std::nullopt}; }

MetricCell cell(double value, int precision) {
  return MetricCell{util::format_number(value, precision), value};
}

MetricCell cell(std::size_t value) {
  return MetricCell{std::to_string(value), static_cast<double>(value)};
}

bool ExperimentResult::passed() const noexcept {
  for (const auto& check : checks) {
    if (!check.passed) return false;
  }
  return true;
}

std::vector<MetricCell>& ExperimentResult::row() {
  rows.emplace_back();
  return rows.back();
}

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string strfmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// Runs one campaign under the experiment's context, folding cell errors
/// and stop-skipped cells into the result's notes and partial flag — a
/// failed or interrupted campaign degrades the table it feeds instead of
/// aborting the experiment (DESIGN.md §12).
CampaignResult run_checked(const CampaignSpec& campaign,
                           const ExperimentContext& ctx,
                           ExperimentResult& result) {
  CampaignResult r = ctx.execute(campaign);
  if (!r.complete()) {
    result.partial = true;
    for (const auto& e : r.errors) {
      result.notes.push_back(strfmt(
          "campaign cell error [%s] N=%zu seed=%llu after %zu attempt(s): %s",
          std::string(to_string(e.kind)).c_str(), campaign.n,
          static_cast<unsigned long long>(e.seed), e.attempts,
          e.detail.c_str()));
    }
    if (r.cells_skipped > 0) {
      result.notes.push_back(
          strfmt("campaign N=%zu: %zu cell(s) skipped (stop requested)",
                 campaign.n, r.cells_skipped));
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// E1 — the headline figure (claims C2 + C5): epochs-to-convergence vs N for
// the paper's ASYNC O(log N) algorithm and the O(N) sequential-translation
// baseline, with least-squares fits against both growth models.

struct Series {
  std::vector<double> ns;
  std::vector<double> epochs_mean;
  /// Visibility-cache hit mix summed over the series' campaigns (feeds the
  /// E7c evidence note: convergent tails should be replay-heavy).
  CampaignResult::CacheTotals cache;
};

Series run_series(const std::string& algorithm, const std::vector<std::size_t>& ns,
                  const ScenarioSpec& scenario, const ExperimentContext& ctx,
                  ExperimentResult& result) {
  Series series;
  for (const std::size_t n : ns) {
    if (ctx.stop_requested()) {
      result.partial = true;
      break;
    }
    CampaignSpec spec = scenario.campaign(n);
    spec.algorithm = algorithm;
    // Fewer seeds at the largest sizes to keep the single-core budget sane.
    if (n >= 512) spec.runs = std::min<std::size_t>(spec.runs, 3);
    const auto campaign = run_checked(spec, ctx, result);
    const auto mix = campaign.cache_totals();
    series.cache.replays += mix.replays;
    series.cache.repairs += mix.repairs;
    series.cache.rebuilds += mix.rebuilds;
    const auto epochs = campaign.epochs();
    series.ns.push_back(static_cast<double>(n));
    series.epochs_mean.push_back(epochs.mean);
    result.row() = {cell(algorithm),
                    cell(n),
                    cell(campaign.converged_count()),
                    cell(campaign.runs.size()),
                    cell(epochs.mean, 1),
                    cell(epochs.stddev, 1),
                    cell(epochs.min, 0),
                    cell(epochs.max, 0)};
  }
  return series;
}

std::string fit_note(const char* label, const Series& s) {
  const auto verdict = util::classify_growth(s.ns, s.epochs_mean);
  return strfmt(
      "%-14s best model: %-9s | log fit: epochs ~ %.2f + %.2f*log2(N) "
      "(R^2=%.4f) | linear fit: epochs ~ %.2f + %.3f*N (R^2=%.4f)",
      label, util::to_string(verdict.winner).c_str(), verdict.log_fit.intercept,
      verdict.log_fit.slope, verdict.log_fit.r_squared, verdict.lin_fit.intercept,
      verdict.lin_fit.slope, verdict.lin_fit.r_squared);
}

// With only ~7 sweep points an R^2 contest between the two models is weak
// (a gentle series fits a small-slope line almost as well as a logarithm),
// so the shape discriminator is the DOUBLING RATIO: logarithmic growth adds
// a constant per doubling (ratio -> 1 for large N), linear growth doubles
// (ratio -> 2). The async series' average ratio over the last three
// doublings must stay below 1.8 while the baseline's reaches it.
double avg_doubling_ratio(const Series& s) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = s.ns.size() >= 4 ? s.ns.size() - 3 : 1; i < s.ns.size();
       ++i) {
    if (s.epochs_mean[i - 1] > 0.0 && s.ns[i] == 2.0 * s.ns[i - 1]) {
      sum += s.epochs_mean[i] / s.epochs_mean[i - 1];
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

ExperimentResult run_time_vs_n(const ScenarioSpec& spec,
                               const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "time-vs-n";
  result.title =
      "E1 (headline): epochs to Complete Visibility vs N, ASYNC scheduler, "
      "uniform adversary";
  result.columns = {"algorithm", "N",            "converged",  "runs",
                    "epochs(mean)", "epochs(sd)", "min",        "max"};

  const Series fast = run_series(spec.algorithm, spec.ns, spec, ctx, result);
  const Series slow =
      run_series("seq-baseline", spec.baseline_sizes(), spec, ctx, result);

  result.notes.push_back(fit_note(spec.algorithm.c_str(), fast));
  result.notes.push_back(fit_note("seq-baseline", slow));
  if (fast.cache.looks() > 0) {
    // The E7c evidence: how the incremental VisibilityCache served this
    // sweep's Looks (replay = untouched order, repair = write-log patch,
    // rebuild = full resort).
    result.notes.push_back(strfmt(
        "visibility-cache hit mix (%s series): replays=%llu repairs=%llu "
        "rebuilds=%llu (replay share %.1f%%)",
        spec.algorithm.c_str(),
        static_cast<unsigned long long>(fast.cache.replays),
        static_cast<unsigned long long>(fast.cache.repairs),
        static_cast<unsigned long long>(fast.cache.rebuilds),
        100.0 * static_cast<double>(fast.cache.replays) /
            static_cast<double>(fast.cache.looks())));
  }

  const double fast_ratio = avg_doubling_ratio(fast);
  const double slow_ratio = avg_doubling_ratio(slow);
  const auto slow_verdict = util::classify_growth(slow.ns, slow.epochs_mean);
  result.notes.push_back(
      strfmt("avg epochs ratio per doubling (last 3 doublings): "
             "%s %.2f, seq-baseline %.2f",
             spec.algorithm.c_str(), fast_ratio, slow_ratio));
  result.checks.push_back(
      {"claim C2 (async-log adds ~constant per doubling — logarithmic shape, "
       "not linear)",
       fast_ratio > 0.0 && fast_ratio < 1.8});
  result.checks.push_back(
      {"claim C5 (baseline doubles per doubling — linear)",
       slow_verdict.winner == util::GrowthModel::kLinear && slow_ratio >= 1.8});
  return result;
}

// ---------------------------------------------------------------------------
// E2 — claim C1: the algorithm solves Complete Visibility in ASYNC, across
// every configuration family, adversary, and (for the comparators) their
// home schedulers. Every row must read 100% converged / visible.

ExperimentResult run_convergence(const ScenarioSpec& spec,
                                 const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "convergence";
  result.title = "E2: convergence matrix (claim C1)";
  result.columns = {"algorithm", "scheduler",      "adversary", "family",
                    "converged", "visible",        "collision-free",
                    "runs",      "epochs"};
  const std::size_t n = spec.ns.front();
  bool all_ok = true;

  const auto run_row = [&](const std::string& algorithm,
                           sim::SchedulerKind scheduler,
                           sched::AdversaryKind adversary,
                           gen::ConfigFamily family) {
    CampaignSpec campaign = spec.campaign(n);
    campaign.algorithm = algorithm;
    campaign.family = family;
    campaign.run.scheduler = scheduler;
    campaign.run.adversary = adversary;
    const auto r = run_checked(campaign, ctx, result);
    const bool ok = r.converged_count() == r.runs.size() &&
                    r.visibility_ok_count() == r.runs.size();
    all_ok = all_ok && ok;
    result.row() = {
        cell(algorithm),
        cell(to_string(scheduler)),
        cell(scheduler == sim::SchedulerKind::kAsync ? to_string(adversary) : "-"),
        cell(gen::to_string(family)),
        cell(r.converged_count()),
        cell(r.visibility_ok_count()),
        cell(r.collision_free_count()),
        cell(r.runs.size()),
        cell(r.epochs().mean, 1)};
  };

  // The paper's algorithm: full ASYNC matrix.
  for (const auto family : gen::all_families()) {
    for (const auto adversary :
         {sched::AdversaryKind::kUniform, sched::AdversaryKind::kBursty}) {
      run_row(spec.algorithm, sim::SchedulerKind::kAsync, adversary, family);
    }
  }
  // Hard adversaries on two representative families.
  for (const auto adversary :
       {sched::AdversaryKind::kStallOne, sched::AdversaryKind::kLockstep}) {
    run_row(spec.algorithm, sim::SchedulerKind::kAsync, adversary,
            gen::ConfigFamily::kUniformDisk);
    run_row(spec.algorithm, sim::SchedulerKind::kAsync, adversary,
            gen::ConfigFamily::kRingWithCore);
  }
  // async-log also works under the weaker schedulers.
  run_row(spec.algorithm, sim::SchedulerKind::kSsync,
          sched::AdversaryKind::kUniform, gen::ConfigFamily::kUniformDisk);
  run_row(spec.algorithm, sim::SchedulerKind::kFsync,
          sched::AdversaryKind::kUniform, gen::ConfigFamily::kUniformDisk);
  // Comparators on their home turf.
  for (const auto family :
       {gen::ConfigFamily::kUniformDisk, gen::ConfigFamily::kRingWithCore,
        gen::ConfigFamily::kCollinear}) {
    run_row("seq-baseline", sim::SchedulerKind::kAsync,
            sched::AdversaryKind::kUniform, family);
    run_row("ssync-parallel", sim::SchedulerKind::kFsync,
            sched::AdversaryKind::kUniform, family);
  }

  result.checks.push_back(
      {"claim C1 (every run converged with verified complete visibility)",
       all_ok});
  return result;
}

// ---------------------------------------------------------------------------
// E3 — claim C3: O(1) colors. The number of DISTINCT light colors displayed
// over an entire execution must not grow with N.

ExperimentResult run_colors(const ScenarioSpec& spec,
                            const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "colors";
  result.title = "E3: distinct colors used per execution (claim C3)";
  result.columns = {"N", "family", "max colors used", "palette bound"};
  std::size_t overall_max = 0;
  bool bounded = true;
  for (const auto family :
       {gen::ConfigFamily::kUniformDisk, gen::ConfigFamily::kCollinear,
        gen::ConfigFamily::kRingWithCore}) {
    for (const std::size_t n : spec.ns) {
      CampaignSpec campaign = spec.campaign(n);
      campaign.family = family;
      const auto r = run_checked(campaign, ctx, result);
      const std::size_t used = r.max_colors();
      overall_max = std::max(overall_max, used);
      bounded = bounded && used <= model::kLightCount &&
                r.converged_count() == r.runs.size();
      result.row() = {cell(n), cell(gen::to_string(family)), cell(used),
                      cell(model::kLightCount)};
    }
  }
  result.notes.push_back(strfmt("max colors over all runs and sizes: %zu (palette: %zu)",
                                overall_max, model::kLightCount));
  result.checks.push_back({"claim C3 (color count constant in N)", bounded});
  return result;
}

// ---------------------------------------------------------------------------
// E4 — claim C4: collision-freedom over the CONTINUOUS motion, plus the
// ablation that justifies the beacon handshake (same geometry WITHOUT the
// handshake degrades safety under ASYNC).

ExperimentResult run_collisions(const ScenarioSpec& spec,
                                const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "collisions";
  result.title = "E4: continuous collision audit (claim C4) + handshake ablation";
  result.columns = {"algorithm",     "adversary",      "family", "runs",
                    "position-coll", "min separation", "phantom crossings"};
  const std::size_t n = spec.ns.front();

  bool guarded_clean = true;
  double guarded_min_sep = std::numeric_limits<double>::infinity();
  std::size_t ablation_incidents = 0;
  double ablation_min_sep = std::numeric_limits<double>::infinity();

  const auto run_row = [&](const std::string& algorithm,
                           sched::AdversaryKind adversary,
                           gen::ConfigFamily family) {
    CampaignSpec campaign = spec.campaign(n);
    campaign.algorithm = algorithm;
    campaign.family = family;
    campaign.run.adversary = adversary;
    campaign.audit_collisions = true;
    const auto r = run_checked(campaign, ctx, result);
    std::size_t collisions = 0, crossings = 0;
    double min_sep = std::numeric_limits<double>::infinity();
    for (const auto& m : r.runs) {
      collisions += m.position_collisions;
      crossings += m.path_crossings;
      min_sep = std::min(min_sep, m.min_observed_separation);
    }
    if (algorithm == spec.algorithm) {
      guarded_clean = guarded_clean && collisions == 0;
      guarded_min_sep = std::min(guarded_min_sep, min_sep);
    } else {
      ablation_incidents += collisions + crossings;
      ablation_min_sep = std::min(ablation_min_sep, min_sep);
    }
    result.row() = {cell(algorithm),
                    cell(to_string(adversary)),
                    cell(gen::to_string(family)),
                    cell(r.runs.size()),
                    cell(collisions),
                    cell(min_sep, 4),
                    cell(crossings)};
  };

  // Part 1: the guarded algorithm across adversaries and hard families.
  for (const auto adversary :
       {sched::AdversaryKind::kUniform, sched::AdversaryKind::kBursty,
        sched::AdversaryKind::kLockstep}) {
    run_row(spec.algorithm, adversary, gen::ConfigFamily::kUniformDisk);
  }
  run_row(spec.algorithm, sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kGaussianBlob);
  run_row(spec.algorithm, sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kDenseDiameter);
  run_row(spec.algorithm, sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kCollinear);
  // Part 2: the ablation (no handshake) under the same ASYNC conditions.
  run_row("ssync-parallel", sched::AdversaryKind::kUniform,
          gen::ConfigFamily::kUniformDisk);
  run_row("ssync-parallel", sched::AdversaryKind::kLockstep,
          gen::ConfigFamily::kUniformDisk);

  const bool reproduced = guarded_clean && guarded_min_sep > 1e-9;
  result.notes.push_back(
      strfmt("async-log closest approach over all guarded rows: %.2e",
             guarded_min_sep));
  result.notes.push_back(
      strfmt("ablation (removing the handshake degrades safety under ASYNC): "
             "%s (%zu incidents, closest approach %.2e)",
             ablation_incidents > 0 ? "CONFIRMED" : "not observed",
             ablation_incidents, ablation_min_sep));
  result.checks.push_back(
      {"claim C4 (async-log: zero position collisions, closest approach > 0)",
       reproduced});
  return result;
}

// ---------------------------------------------------------------------------
// E5 — claim C6 (the supporting lemma family): beacon-directed insertion
// grows the hull corner count geometrically. For each run we record the
// corner census at every move completion and report the time at which the
// count first reached each power of two.

ExperimentResult run_doubling(const ScenarioSpec& spec,
                              const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "doubling";
  result.title =
      "E5: corner-count growth — time at which each corner-count threshold "
      "is first reached (claim C6)";
  result.columns = {"family", "N", "seed", "initial corners",
                    "corner-count trajectory (at each 2^k threshold: time)"};
  const auto algo = core::make_algorithm(spec.algorithm);
  bool geometric = true;

  for (const auto family :
       {gen::ConfigFamily::kGaussianBlob, gen::ConfigFamily::kUniformDisk}) {
    if (result.partial) break;
    for (const std::size_t n : spec.ns) {
      if (result.partial) break;
      for (std::size_t i = 0; i < spec.runs; ++i) {
        // E5 drives run_simulation directly (it needs the hull history, not
        // campaign aggregates), so the cooperative stop is checked here.
        if (ctx.stop_requested()) {
          result.partial = true;
          break;
        }
        const std::uint64_t seed = spec.seed_base + i;
        const auto initial = gen::generate(family, n, seed, spec.min_separation);
        sim::RunConfig config = spec.run;
        config.seed = seed;
        config.record_hull_history = true;
        const auto run = sim::run_simulation(*algo, initial, config);
        if (!run.converged || run.hull_history.empty()) {
          geometric = false;
          continue;
        }
        // First time each power-of-two corner count is reached.
        std::map<std::size_t, double> first_reach;
        std::size_t running_max = 0;
        for (const auto& sample : run.hull_history) {
          running_max = std::max(running_max, sample.corners);
          for (std::size_t threshold = 4; threshold <= n; threshold *= 2) {
            if (running_max >= threshold && !first_reach.count(threshold)) {
              first_reach[threshold] = sample.time;
            }
          }
          if (running_max >= n && !first_reach.count(n)) {
            first_reach[n] = sample.time;
          }
        }
        std::string trajectory;
        for (const auto& [threshold, time] : first_reach) {
          trajectory += std::to_string(threshold) + "@" +
                        util::format_number(time, 1) + "  ";
        }
        result.row() = {cell(gen::to_string(family)), cell(n),
                        cell(static_cast<std::size_t>(seed)),
                        cell(run.hull_history.front().corners), cell(trajectory)};
        // Geometric-growth check: the time to go from N/2 to N corners must
        // not exceed the total time to reach N/2 corners by more than a
        // small factor (a linear schedule spends half the robots — and half
        // the time — in that last stretch).
        if (first_reach.count(n) && first_reach.count(n / 2) &&
            first_reach[n / 2] > 0.0) {
          const double last_stage = first_reach[n] - first_reach[n / 2];
          const double before = first_reach[n / 2];
          if (last_stage > 6.0 * before) geometric = false;
        }
      }
    }
  }

  result.checks.push_back(
      {"claim C6 (corner count grows geometrically, not linearly)", geometric});
  return result;
}

// ---------------------------------------------------------------------------
// E6 — the measured counterpart of the paper's algorithm-comparison table:
// the paper's contribution positioned against the known O(1)-time SSYNC
// algorithm and the O(N) ASYNC translation, with MEASURED values.

ExperimentResult run_summary(const ScenarioSpec& spec,
                             const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "summary";
  const std::size_t n = spec.ns.front();
  result.title = strfmt(
      "E6: measured counterpart of the paper's comparison table (N = %zu, "
      "%zu seeds)",
      n, spec.runs);
  result.columns = {"setting",     "algorithm",  "claimed time", "epochs(mean)",
                    "epochs(p95)", "moves(mean)", "colors",       "all verified"};

  struct Row {
    const char* setting;
    const char* algorithm;
    const char* bound;
    sim::SchedulerKind scheduler;
  };
  const Row rows[] = {
      {"FSYNC", "ssync-parallel", "O(1) rounds/stage", sim::SchedulerKind::kFsync},
      {"SSYNC", "ssync-parallel", "O(1) rounds/stage", sim::SchedulerKind::kSsync},
      {"ASYNC", "seq-baseline", "O(N)", sim::SchedulerKind::kAsync},
      {"ASYNC", "async-log", "O(log N)  [this paper]", sim::SchedulerKind::kAsync},
  };

  double baseline_epochs = 0.0, asynclog_epochs = 0.0;
  for (const Row& row : rows) {
    CampaignSpec campaign = spec.campaign(n);
    campaign.algorithm = row.algorithm;
    campaign.run.scheduler = row.scheduler;
    // The comparators' collision behaviour is covered in E4; here we audit
    // only the paper's algorithm to stay within the serial time budget.
    campaign.audit_collisions = std::string_view(row.algorithm) == "async-log";
    const auto r = run_checked(campaign, ctx, result);
    const auto epochs = r.epochs();
    const bool verified = r.converged_count() == r.runs.size() &&
                          r.visibility_ok_count() == r.runs.size() &&
                          r.collision_free_count() == r.runs.size();
    if (std::string_view(row.algorithm) == "seq-baseline") {
      baseline_epochs = epochs.mean;
    }
    if (std::string_view(row.algorithm) == "async-log" &&
        row.scheduler == sim::SchedulerKind::kAsync) {
      asynclog_epochs = epochs.mean;
    }
    result.row() = {cell(row.setting),
                    cell(row.algorithm),
                    cell(row.bound),
                    cell(epochs.mean, 1),
                    cell(epochs.p95, 1),
                    cell(r.moves().mean, 1),
                    cell(r.max_colors()),
                    cell(verified ? "yes" : "NO")};
  }

  const double speedup = baseline_epochs / std::max(1.0, asynclog_epochs);
  result.notes.push_back(
      strfmt("async-log vs O(N)-translation speedup at N=%zu: %.1fx (paper "
             "predicts Theta(N/log N) ~= %.1fx)",
             n, speedup,
             static_cast<double>(n) / std::log2(static_cast<double>(n))));
  result.checks.push_back({"speedup over the O(N) translation > 1.5x",
                           speedup > 1.5});
  return result;
}

// ---------------------------------------------------------------------------
// E8 — ablations of the design choices DESIGN.md calls out: handshake OFF,
// frame refresh OFF, NON-RIGID movement.

struct AblationStats {
  double epochs = 0.0;
  double moves = 0.0;
  std::size_t collisions = 0;
  double min_sep = std::numeric_limits<double>::infinity();
  std::size_t converged = 0;
};

AblationStats aggregate(const CampaignResult& result) {
  AblationStats s;
  s.epochs = result.epochs().mean;
  s.moves = result.moves().mean;
  s.converged = result.converged_count();
  for (const auto& m : result.runs) {
    s.collisions += m.position_collisions;
    s.min_sep = std::min(s.min_sep, m.min_observed_separation);
  }
  return s;
}

ExperimentResult run_ablation(const ScenarioSpec& spec,
                              const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "ablation";
  result.title = "E8: design-choice ablations (N fixed, ASYNC uniform)";
  result.columns = {"variant",       "converged",      "epochs(mean)",
                    "moves(mean)",   "position-coll",  "min separation"};
  const std::size_t n = spec.ns.front();

  CampaignSpec base = spec.campaign(n);
  base.audit_collisions = true;

  const auto add_row = [&](const char* label, const CampaignSpec& campaign) {
    const AblationStats s = aggregate(run_checked(campaign, ctx, result));
    result.row() = {cell(label),          cell(s.converged),
                    cell(s.epochs, 1),    cell(s.moves, 1),
                    cell(s.collisions),   cell(s.min_sep, 4)};
    return s;
  };

  const AblationStats reference = add_row("async-log (reference)", base);
  {
    CampaignSpec c = base;
    c.algorithm = "ssync-parallel";  // Handshake removed.
    add_row("no handshake (ablation)", c);
  }
  {
    CampaignSpec c = base;
    c.run.refresh_frames_each_look = false;
    add_row("fixed frames", c);
  }
  {
    CampaignSpec c = base;
    c.run.rigid_moves = false;
    add_row("non-rigid moves (ext.)", c);
  }

  result.notes.push_back(
      strfmt("reference async-log: %zu/%zu converged, %.1f epochs, zero "
             "position collisions expected.",
             reference.converged, spec.runs, reference.epochs));
  result.checks.push_back(
      {"reference converged everywhere with zero position collisions",
       reference.converged == spec.runs && reference.collisions == 0});
  return result;
}

// ---------------------------------------------------------------------------
// E9 — crash tolerance: degradation under crash-stop faults. Crashed robots
// stop forever but keep obstructing, so the survivors must still reach a
// mutually-visible fixpoint around the dead bodies. Reports quiescence,
// final-configuration visibility (over ALL robots, dead included — the
// paper's postcondition) and epoch inflation relative to the fault-free
// baseline, per (N, f).

ExperimentResult run_crash_tolerance(const ScenarioSpec& spec,
                                     const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "crash-tolerance";
  result.title =
      "E9: degradation under crash-stop faults — quiescence and epoch "
      "inflation vs crash budget f";
  result.columns = {"N",          "f",          "runs",
                    "quiescent",  "visible",    "budget-exh",
                    "crashes(mean)", "epochs(mean)", "epochs(max)",
                    "inflation"};
  const std::size_t fs[] = {0, 1, 2, 4, 8};
  bool fault_free_clean = true;

  for (const std::size_t n : spec.ns) {
    double baseline_epochs = 0.0;
    for (const std::size_t f : fs) {
      if (f >= n) continue;
      CampaignSpec campaign = spec.campaign(n);
      campaign.run.fault.crash.count = f;
      if (campaign.run.fault.crash.schedule == fault::CrashScheduleKind::kRate &&
          campaign.run.fault.crash.rate <= 0.0) {
        campaign.run.fault.crash.rate = 0.05;
      }
      const auto r = run_checked(campaign, ctx, result);
      const std::size_t quiescent = r.converged_count();
      const std::size_t visible = r.visibility_ok_count();
      const double crashes_mean =
          static_cast<double>(r.fault_totals().crashes) /
          static_cast<double>(std::max<std::size_t>(1, r.runs.size()));
      const double epochs_mean = r.epochs().mean;
      if (f == 0) {
        baseline_epochs = epochs_mean;
        fault_free_clean = fault_free_clean && quiescent == r.runs.size() &&
                           visible == r.runs.size();
      }
      result.row() = {
          cell(n),
          cell(f),
          cell(r.runs.size()),
          cell(quiescent),
          cell(visible),
          cell(r.outcome_count(sim::RunOutcome::kBudgetExhausted)),
          cell(crashes_mean, 2),
          cell(epochs_mean, 1),
          cell(r.max_epochs()),
          baseline_epochs > 0.0 ? cell(epochs_mean / baseline_epochs, 2)
                                : cell("-")};
    }
  }

  result.notes.push_back(
      "quiescent counts both converged and stalled-with-crashes runs; "
      "`visible` audits the FULL final configuration, so dead interior "
      "bodies count against it.");
  result.checks.push_back(
      {"fault-free rows (f=0) fully quiescent with complete visibility",
       fault_free_clean});
  return result;
}

// ---------------------------------------------------------------------------
// E10 — light corruption: safety under misread colors. A corrupted Look
// feeds the algorithm a wrong color for a visible robot, which can break
// the beacon handshake's mutual-exclusion argument — the experiment
// measures how quickly position collisions appear as the per-read
// corruption probability grows, with incidents attributed by the
// SafetyMonitor.

ExperimentResult run_light_corruption(const ScenarioSpec& spec,
                                      const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "light-corruption";
  result.title =
      "E10: safety under light-corruption faults — collisions vs per-read "
      "misread probability";
  result.columns = {"mode",      "p",        "runs",
                    "quiescent", "visible",  "position-coll",
                    "crossings", "min-sep(worst)", "corrupted-reads",
                    "blamed-light"};
  const std::size_t n = spec.ns.front();
  const double ps[] = {0.0, 0.01, 0.05, 0.1, 0.25, 0.5};
  bool fault_free_clean = true;

  for (const double p : ps) {
    CampaignSpec campaign = spec.campaign(n);
    campaign.audit_collisions = true;
    campaign.run.fault.light.probability = p;
    const auto r = run_checked(campaign, ctx, result);
    std::size_t collisions = 0, crossings = 0, blamed_light = 0;
    for (const auto& m : r.runs) {
      collisions += m.position_collisions;
      crossings += m.path_crossings;
      if (m.collision_channel == fault::FaultChannel::kLight) ++blamed_light;
    }
    if (p == 0.0) {
      fault_free_clean = r.converged_count() == r.runs.size() &&
                         r.visibility_ok_count() == r.runs.size() &&
                         collisions == 0;
    }
    result.row() = {cell(to_string(campaign.run.fault.light.mode)),
                    cell(p, 2),
                    cell(r.runs.size()),
                    cell(r.converged_count()),
                    cell(r.visibility_ok_count()),
                    cell(collisions),
                    cell(crossings),
                    r.runs.empty() ? cell("-")
                                   : cell(r.worst_min_separation(), 4),
                    cell(static_cast<std::size_t>(
                        r.fault_totals().corrupted_reads)),
                    cell(blamed_light)};
  }

  result.notes.push_back(
      "blamed-light counts runs whose collision incidents the SafetyMonitor "
      "attributes to the light channel (the only active channel here).");
  result.checks.push_back(
      {"fault-free row (p=0) converged, visible and collision-free",
       fault_free_clean});
  return result;
}

// ---------------------------------------------------------------------------
// E11 — sensor noise: convergence tolerance to Gaussian position error and
// observation dropout in the Look snapshot. The observed view is perturbed,
// the ground truth is not, so this measures how much sensing error the
// geometry tolerates before runs stop reaching a quiescent visible
// configuration.

ExperimentResult run_sensor_noise(const ScenarioSpec& spec,
                                  const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "sensor-noise";
  result.title =
      "E11: convergence under sensor noise — quiescence vs Gaussian "
      "position-error sigma";
  result.columns = {"sigma",      "dropout", "runs",
                    "quiescent",  "visible", "budget-exh",
                    "perturbed(mean)", "epochs(mean)", "epochs(max)"};
  const std::size_t n = spec.ns.front();
  const double sigmas[] = {0.0, 1e-3, 3e-3, 0.01, 0.03, 0.1};
  bool fault_free_clean = true;
  double tolerated_sigma = 0.0;

  for (const double sigma : sigmas) {
    CampaignSpec campaign = spec.campaign(n);
    campaign.run.fault.noise.sigma = sigma;
    const auto r = run_checked(campaign, ctx, result);
    const std::size_t quiescent = r.converged_count();
    const std::size_t visible = r.visibility_ok_count();
    if (sigma == 0.0) {
      fault_free_clean =
          quiescent == r.runs.size() && visible == r.runs.size();
    }
    if (2 * quiescent >= r.runs.size() && sigma > tolerated_sigma) {
      tolerated_sigma = sigma;
    }
    result.row() = {
        cell(sigma, 4),
        cell(campaign.run.fault.noise.dropout, 2),
        cell(r.runs.size()),
        cell(quiescent),
        cell(visible),
        cell(r.outcome_count(sim::RunOutcome::kBudgetExhausted)),
        cell(static_cast<double>(r.fault_totals().perturbed_observations) /
                 static_cast<double>(std::max<std::size_t>(1, r.runs.size())),
             0),
        cell(r.epochs().mean, 1),
        cell(r.max_epochs())};
  }

  result.notes.push_back(strfmt(
      "largest swept sigma with >= 50%% quiescent runs: %g", tolerated_sigma));
  result.checks.push_back(
      {"noise-free row (sigma=0) fully quiescent with complete visibility",
       fault_free_clean});
  return result;
}

// ---------------------------------------------------------------------------
// E12 — cross-algorithm comparison: every registered algorithm through the
// plugin contract, on every scheduler, over identical seeds. Continuous
// algorithms run on the spec family; grid algorithms run on their native
// lattice family (same seeds within each family, so rows are comparable).
// Success is each algorithm's DECLARED predicate, so the paper algorithms
// are held to complete visibility and the related-work plugins to mutual
// visibility — the contract makes the benchmark honest per algorithm.

ExperimentResult run_cross_algorithm(const ScenarioSpec& spec,
                                     const ExperimentContext& ctx) {
  ExperimentResult result;
  result.experiment = "cross-algorithm";
  result.title =
      "E12: cross-algorithm comparison — all registered algorithms x "
      "schedulers, identical seeds, declared success predicates";
  result.columns = {"algorithm",    "motion",      "predicate", "scheduler",
                    "N",            "converged",   "success",   "clean",
                    "min-sep",      "epochs(mean)", "epochs(max)", "colors"};
  const std::size_t n = spec.ns.empty() ? 16 : spec.ns.front();

  bool paper_ok = true;       // async-log: converged + complete visibility.
  bool plugins_ok = true;     // grid-cv / mutual-vis: declared predicate.
  bool plugins_clean = true;  // grid-cv / mutual-vis: no position collision.
  for (const auto& info : core::algorithm_infos()) {
    for (const auto sched :
         {sim::SchedulerKind::kFsync, sim::SchedulerKind::kSsync,
          sim::SchedulerKind::kAsync}) {
      if (ctx.stop_requested()) {
        result.partial = true;
        break;
      }
      CampaignSpec campaign = spec.campaign(n);
      campaign.algorithm = std::string(info.name);
      campaign.run.scheduler = sched;
      campaign.audit_collisions = true;
      if (info.motion_model == model::MotionModel::kGrid) {
        campaign.family = gen::ConfigFamily::kLattice;
      }
      const auto r = run_checked(campaign, ctx, result);
      double min_sep = std::numeric_limits<double>::infinity();
      std::size_t collisions = 0;
      for (const auto& m : r.runs) {
        min_sep = std::min(min_sep, m.min_observed_separation);
        collisions += m.position_collisions;
      }
      const auto epochs = r.epochs();
      result.row() = {cell(info.name),
                      cell(model::to_string(info.motion_model)),
                      cell(info.success_predicate),
                      cell(sim::to_string(sched)),
                      cell(n),
                      cell(strfmt("%zu/%zu", r.converged_count(),
                                  r.runs.size())),
                      cell(strfmt("%zu/%zu", r.visibility_ok_count(),
                                  r.runs.size())),
                      cell(strfmt("%zu/%zu", r.collision_free_count(),
                                  r.runs.size())),
                      cell(std::isfinite(min_sep) ? min_sep : 0.0, 4),
                      cell(epochs.mean, 1),
                      cell(epochs.max, 0),
                      cell(r.max_colors())};
      const bool all_converged_succeed =
          r.converged_count() == r.runs.size() &&
          r.visibility_ok_count() == r.runs.size();
      if (info.name == "async-log") {
        paper_ok = paper_ok && all_converged_succeed;
      } else if (info.name == "grid-cv" || info.name == "mutual-vis") {
        plugins_ok = plugins_ok && all_converged_succeed;
        plugins_clean = plugins_clean && collisions == 0;
      }
    }
    if (result.partial) break;
  }
  result.notes.push_back(
      "grid algorithms run on their native lattice family (identical seeds "
      "within each family); ssync-parallel under ASYNC is the known unsafe "
      "ablation and is reported, not checked");
  result.checks.push_back(
      {"async-log converges to complete visibility on every run under all "
       "three schedulers",
       paper_ok});
  result.checks.push_back(
      {"grid-cv and mutual-vis converge to their declared predicates on "
       "every run under all three schedulers",
       plugins_ok});
  result.checks.push_back(
      {"grid-cv and mutual-vis are position-collision-free on every audited "
       "run",
       plugins_clean});
  return result;
}

// ---------------------------------------------------------------------------

ScenarioSpec make_defaults(std::vector<std::size_t> ns, std::size_t runs,
                           bool audit) {
  ScenarioSpec spec;
  spec.ns = std::move(ns);
  spec.runs = runs;
  spec.audit_collisions = audit;
  return spec;
}

}  // namespace

ExperimentRegistry& ExperimentRegistry::mutable_instance() {
  static ExperimentRegistry registry;
  return registry;
}

const ExperimentRegistry& ExperimentRegistry::instance() {
  return mutable_instance();
}

void ExperimentRegistry::register_external(Experiment experiment) {
  ExperimentRegistry& registry = mutable_instance();
  if (registry.find(experiment.id) != nullptr ||
      registry.find(experiment.name) != nullptr) {
    return;
  }
  registry.experiments_.push_back(std::move(experiment));
}

const Experiment* ExperimentRegistry::find(std::string_view name_or_id) const noexcept {
  for (const auto& e : experiments_) {
    if (e.name == name_or_id || e.id == name_or_id) return &e;
  }
  return nullptr;
}

ExperimentRegistry::ExperimentRegistry() {
  {
    Experiment e;
    e.name = "time-vs-n";
    e.id = "E1";
    e.description =
        "Headline scaling figure (claims C2 + C5): epochs to Complete "
        "Visibility vs N for the spec algorithm (default async-log, over "
        "`ns`) against the O(N) seq-baseline (over `baseline_ns`), with "
        "growth-model fits and the doubling-ratio discriminator. Collision "
        "audit is off by default (E4 owns it).";
    e.defaults = make_defaults({8, 16, 32, 64, 128, 256, 512}, 5, false);
    e.defaults.baseline_ns = {8, 16, 32, 64, 128, 256};
    e.run = run_time_vs_n;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "convergence";
    e.id = "E2";
    e.description =
        "Convergence matrix (claim C1): every configuration family x "
        "{uniform, bursty} adversaries, plus stall-one/lockstep, plus SSYNC "
        "and FSYNC schedulers, plus the comparators on their home "
        "schedulers. Uses the first entry of `ns` as the per-run N; the "
        "matrix itself is fixed.";
    e.defaults = make_defaults({24}, 3, true);
    e.run = run_convergence;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "colors";
    e.id = "E3";
    e.description =
        "O(1) colors (claim C3): max distinct light colors displayed over "
        "entire executions, swept over `ns` on three families; must stay "
        "bounded by the palette independent of N.";
    e.defaults = make_defaults({4, 8, 16, 32, 64, 128, 256}, 5, false);
    e.run = run_colors;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "collisions";
    e.id = "E4";
    e.description =
        "Continuous collision audit (claim C4) + handshake ablation: "
        "closed-form closest approach between all trajectory pairs for the "
        "guarded algorithm across adversaries and hard families, and the "
        "same geometry WITHOUT the handshake. Uses the first entry of `ns`.";
    e.defaults = make_defaults({96}, 6, true);
    e.run = run_collisions;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "doubling";
    e.id = "E5";
    e.description =
        "Doubling schedule (claim C6): per-run hull corner census over "
        "time; the time at which each power-of-two corner count is first "
        "reached must grow geometrically, not linearly. Swept over `ns`.";
    e.defaults = make_defaults({64, 128, 256}, 3, false);
    e.run = run_doubling;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "summary";
    e.id = "E6";
    e.description =
        "Measured counterpart of the paper's comparison table: "
        "ssync-parallel under FSYNC/SSYNC, seq-baseline and async-log under "
        "ASYNC, with epochs/moves/colors and the speedup over the O(N) "
        "translation. Uses the first entry of `ns`.";
    e.defaults = make_defaults({64}, 5, true);
    e.run = run_summary;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "ablation";
    e.id = "E8";
    e.description =
        "Design-choice ablations at fixed N (first entry of `ns`): "
        "handshake removed, frame refresh off, NON-RIGID movement; reports "
        "what each mechanism costs in epochs/moves/safety.";
    e.defaults = make_defaults({96}, 5, true);
    e.run = run_ablation;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "crash-tolerance";
    e.id = "E9";
    e.description =
        "Crash-stop degradation: up to f robots die at cycle boundaries "
        "(rate-parameterized unless the spec's fault plan sets a times "
        "schedule) but keep obstructing; sweeps f in {0,1,2,4,8} over `ns` "
        "and reports quiescence, full-configuration visibility and epoch "
        "inflation vs the f=0 baseline. Collision audit off (E10 owns "
        "safety).";
    e.defaults = make_defaults({16, 64, 256}, 5, false);
    e.defaults.run.max_cycles_per_robot = 256;
    e.run = run_crash_tolerance;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "light-corruption";
    e.id = "E10";
    e.description =
        "Light-corruption safety: each color read independently misreads "
        "with probability p (mode from the spec's fault plan; default "
        "random); sweeps p in {0,0.01,0.05,0.1,0.25,0.5} at the first entry "
        "of `ns` with the continuous collision audit on, attributing "
        "incidents via the SafetyMonitor.";
    e.defaults = make_defaults({24}, 6, true);
    e.defaults.run.max_cycles_per_robot = 512;
    e.run = run_light_corruption;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "sensor-noise";
    e.id = "E11";
    e.description =
        "Sensor-noise tolerance: observed positions are perturbed by "
        "Gaussian noise of standard deviation sigma (dropout from the "
        "spec's fault plan; default 0); sweeps sigma in "
        "{0,1e-3,3e-3,0.01,0.03,0.1} at the first entry of `ns` and reports "
        "the largest sigma that still yields >= 50% quiescent runs.";
    e.defaults = make_defaults({24}, 6, false);
    e.defaults.run.max_cycles_per_robot = 512;
    e.run = run_sensor_noise;
    experiments_.push_back(std::move(e));
  }
  {
    Experiment e;
    e.name = "cross-algorithm";
    e.id = "E12";
    e.description =
        "Cross-algorithm comparison through the plugin contract: every "
        "registered algorithm (async-log, seq-baseline, ssync-parallel, "
        "grid-cv, mutual-vis) under FSYNC/SSYNC/ASYNC on identical seeds, "
        "reporting convergence, declared-predicate success, collision "
        "margin, epochs and colors. Grid-motion algorithms run on the "
        "lattice family. Uses the first entry of `ns`.";
    e.defaults = make_defaults({16}, 5, true);
    e.run = run_cross_algorithm;
    experiments_.push_back(std::move(e));
  }
}

}  // namespace lumen::analysis
