#include "analysis/journal.hpp"

#include "sim/config_io.hpp"
#include "util/prng.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace lumen::analysis {

namespace {

constexpr std::string_view kJournalType = "lumen-journal";
constexpr std::int64_t kJournalVersion = 1;
constexpr std::string_view kResultType = "lumen-campaign-result";
constexpr std::int64_t kResultVersion = 1;

void set_error(std::string* error, std::string message) {
  if (error != nullptr && error->empty()) *error = std::move(message);
}

util::JsonValue counters_to_json(const fault::FaultCounters& c) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("crashes", util::JsonValue::integer(static_cast<std::int64_t>(c.crashes)));
  obj.set("corrupted_reads",
          util::JsonValue::integer(static_cast<std::int64_t>(c.corrupted_reads)));
  obj.set("dropped_observations",
          util::JsonValue::integer(
              static_cast<std::int64_t>(c.dropped_observations)));
  obj.set("perturbed_observations",
          util::JsonValue::integer(
              static_cast<std::int64_t>(c.perturbed_observations)));
  return obj;
}

bool counters_from_json(const util::JsonValue& v, fault::FaultCounters& out,
                        std::string* error) {
  if (!v.is_object()) {
    set_error(error, "faults must be an object");
    return false;
  }
  for (const auto& [key, value] : v.members()) {
    if (!value.is_integer() || value.as_int() < 0) {
      set_error(error, "faults." + key + " must be a non-negative integer");
      return false;
    }
    const auto n = static_cast<std::uint64_t>(value.as_int());
    if (key == "crashes") {
      out.crashes = n;
    } else if (key == "corrupted_reads") {
      out.corrupted_reads = n;
    } else if (key == "dropped_observations") {
      out.dropped_observations = n;
    } else if (key == "perturbed_observations") {
      out.perturbed_observations = n;
    } else {
      set_error(error, "faults: unknown key \"" + key + "\"");
      return false;
    }
  }
  return true;
}

}  // namespace

util::JsonValue run_metrics_to_json(const RunMetrics& m) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("seed", util::JsonValue::integer(static_cast<std::int64_t>(m.seed)));
  obj.set("converged", util::JsonValue::boolean(m.converged));
  obj.set("epochs", util::JsonValue::integer(static_cast<std::int64_t>(m.epochs)));
  obj.set("cycles", util::JsonValue::integer(static_cast<std::int64_t>(m.cycles)));
  obj.set("moves", util::JsonValue::integer(static_cast<std::int64_t>(m.moves)));
  obj.set("distance", util::JsonValue::number(m.distance));
  obj.set("colors", util::JsonValue::integer(static_cast<std::int64_t>(m.colors)));
  obj.set("visibility_ok", util::JsonValue::boolean(m.visibility_ok));
  obj.set("collision_free", util::JsonValue::boolean(m.collision_free));
  obj.set("min_observed_separation",
          util::JsonValue::number(m.min_observed_separation));
  obj.set("path_crossings",
          util::JsonValue::integer(static_cast<std::int64_t>(m.path_crossings)));
  obj.set("position_collisions",
          util::JsonValue::integer(
              static_cast<std::int64_t>(m.position_collisions)));
  obj.set("outcome",
          util::JsonValue::string(std::string(sim::to_string(m.outcome))));
  obj.set("faults", counters_to_json(m.faults));
  obj.set("collision_channel",
          util::JsonValue::string(
              std::string(fault::to_string(m.collision_channel))));
  obj.set("cache_replays",
          util::JsonValue::integer(static_cast<std::int64_t>(m.cache_replays)));
  obj.set("cache_repairs",
          util::JsonValue::integer(static_cast<std::int64_t>(m.cache_repairs)));
  obj.set("cache_rebuilds",
          util::JsonValue::integer(static_cast<std::int64_t>(m.cache_rebuilds)));
  return obj;
}

std::optional<RunMetrics> run_metrics_from_json(const util::JsonValue& v,
                                                std::string* error) {
  if (!v.is_object()) {
    set_error(error, "metrics must be an object");
    return std::nullopt;
  }
  RunMetrics m;
  bool ok = true;
  const auto want_count = [&](std::string_view key, std::size_t& out,
                              const util::JsonValue& value) {
    if (!value.is_integer() || value.as_int() < 0) {
      set_error(error,
                "metrics." + std::string(key) + " must be a non-negative integer");
      ok = false;
      return;
    }
    out = static_cast<std::size_t>(value.as_int());
  };
  const auto want_count64 = [&](std::string_view key, std::uint64_t& out,
                                const util::JsonValue& value) {
    if (!value.is_integer() || value.as_int() < 0) {
      set_error(error,
                "metrics." + std::string(key) + " must be a non-negative integer");
      ok = false;
      return;
    }
    out = static_cast<std::uint64_t>(value.as_int());
  };
  const auto want_bool = [&](std::string_view key, bool& out,
                             const util::JsonValue& value) {
    if (!value.is_bool()) {
      set_error(error, "metrics." + std::string(key) + " must be a boolean");
      ok = false;
      return;
    }
    out = value.as_bool();
  };
  for (const auto& [key, value] : v.members()) {
    if (key == "seed") {
      if (!value.is_integer() || value.as_int() < 0) {
        set_error(error, "metrics.seed must be a non-negative integer");
        ok = false;
      } else {
        m.seed = static_cast<std::uint64_t>(value.as_int());
      }
    } else if (key == "converged") {
      want_bool(key, m.converged, value);
    } else if (key == "epochs") {
      want_count(key, m.epochs, value);
    } else if (key == "cycles") {
      want_count(key, m.cycles, value);
    } else if (key == "moves") {
      want_count(key, m.moves, value);
    } else if (key == "distance") {
      if (!value.is_number()) {
        set_error(error, "metrics.distance must be a number");
        ok = false;
      } else {
        m.distance = value.as_double();
      }
    } else if (key == "colors") {
      want_count(key, m.colors, value);
    } else if (key == "visibility_ok") {
      want_bool(key, m.visibility_ok, value);
    } else if (key == "collision_free") {
      want_bool(key, m.collision_free, value);
    } else if (key == "min_observed_separation") {
      if (!value.is_number()) {
        set_error(error, "metrics.min_observed_separation must be a number");
        ok = false;
      } else {
        m.min_observed_separation = value.as_double();
      }
    } else if (key == "path_crossings") {
      want_count(key, m.path_crossings, value);
    } else if (key == "position_collisions") {
      want_count(key, m.position_collisions, value);
    } else if (key == "outcome") {
      const auto outcome = value.is_string()
                               ? sim::outcome_from_string(value.as_string())
                               : std::nullopt;
      if (!outcome) {
        set_error(error, "metrics.outcome: unknown outcome");
        ok = false;
      } else {
        m.outcome = *outcome;
      }
    } else if (key == "faults") {
      std::string fault_error;
      if (!counters_from_json(value, m.faults, &fault_error)) {
        set_error(error, "metrics." + fault_error);
        ok = false;
      }
    } else if (key == "collision_channel") {
      const auto channel = value.is_string()
                               ? fault::channel_from_string(value.as_string())
                               : std::nullopt;
      if (!channel) {
        set_error(error, "metrics.collision_channel: unknown channel");
        ok = false;
      } else {
        m.collision_channel = *channel;
      }
    } else if (key == "cache_replays") {
      want_count64(key, m.cache_replays, value);
    } else if (key == "cache_repairs") {
      want_count64(key, m.cache_repairs, value);
    } else if (key == "cache_rebuilds") {
      want_count64(key, m.cache_rebuilds, value);
    } else {
      set_error(error, "metrics: unknown key \"" + key + "\"");
      ok = false;
    }
  }
  if (!ok) return std::nullopt;
  return m;
}

util::JsonValue campaign_error_to_json(const CampaignError& e) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("kind", util::JsonValue::string(std::string(to_string(e.kind))));
  obj.set("seed", util::JsonValue::integer(static_cast<std::int64_t>(e.seed)));
  obj.set("attempts",
          util::JsonValue::integer(static_cast<std::int64_t>(e.attempts)));
  obj.set("detail", util::JsonValue::string(e.detail));
  return obj;
}

std::optional<CampaignError> campaign_error_from_json(const util::JsonValue& v,
                                                      std::string* error) {
  if (!v.is_object()) {
    set_error(error, "error record must be an object");
    return std::nullopt;
  }
  CampaignError e;
  bool ok = true;
  for (const auto& [key, value] : v.members()) {
    if (key == "kind") {
      const auto kind = value.is_string()
                            ? campaign_error_kind_from_string(value.as_string())
                            : std::nullopt;
      if (!kind) {
        set_error(error, "error.kind: unknown kind");
        ok = false;
      } else {
        e.kind = *kind;
      }
    } else if (key == "seed") {
      if (!value.is_integer() || value.as_int() < 0) {
        set_error(error, "error.seed must be a non-negative integer");
        ok = false;
      } else {
        e.seed = static_cast<std::uint64_t>(value.as_int());
      }
    } else if (key == "attempts") {
      if (!value.is_integer() || value.as_int() < 0) {
        set_error(error, "error.attempts must be a non-negative integer");
        ok = false;
      } else {
        e.attempts = static_cast<std::size_t>(value.as_int());
      }
    } else if (key == "detail") {
      if (!value.is_string()) {
        set_error(error, "error.detail must be a string");
        ok = false;
      } else {
        e.detail = value.as_string();
      }
    } else {
      set_error(error, "error record: unknown key \"" + key + "\"");
      ok = false;
    }
  }
  if (!ok) return std::nullopt;
  return e;
}

util::JsonValue campaign_signature(const CampaignSpec& spec) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("algorithm", util::JsonValue::string(spec.algorithm));
  obj.set("family",
          util::JsonValue::string(std::string(gen::to_string(spec.family))));
  obj.set("n", util::JsonValue::integer(static_cast<std::int64_t>(spec.n)));
  obj.set("min_separation", util::JsonValue::number(spec.min_separation));
  obj.set("audit_collisions", util::JsonValue::boolean(spec.audit_collisions));
  obj.set("collision_tolerance",
          util::JsonValue::number(spec.collision_tolerance));
  obj.set("abort_on_collision", util::JsonValue::boolean(spec.abort_on_collision));
  // The per-run seed is the cell coordinate, not campaign identity.
  sim::RunConfig run = spec.run;
  run.seed = 0;
  obj.set("run", sim::run_config_to_json(run));
  return obj;
}

std::string campaign_key(const CampaignSpec& spec) {
  const std::uint64_t hash =
      util::fnv1a(util::json_write(campaign_signature(spec), 0));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string campaign_result_to_json(const CampaignResult& result) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("type", util::JsonValue::string(std::string(kResultType)));
  obj.set("version", util::JsonValue::integer(kResultVersion));
  obj.set("key", util::JsonValue::string(campaign_key(result.spec)));
  obj.set("signature", campaign_signature(result.spec));
  util::JsonValue runs = util::JsonValue::array();
  for (const auto& m : result.runs) runs.push_back(run_metrics_to_json(m));
  obj.set("runs", std::move(runs));
  util::JsonValue errors = util::JsonValue::array();
  for (const auto& e : result.errors) errors.push_back(campaign_error_to_json(e));
  obj.set("errors", std::move(errors));
  return util::json_write(obj) + "\n";
}

CampaignJournal::CampaignJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  if (::lseek(fd_, 0, SEEK_END) == 0) {
    util::JsonValue header = util::JsonValue::object();
    header.set("type", util::JsonValue::string(std::string(kJournalType)));
    header.set("version", util::JsonValue::integer(kJournalVersion));
    std::lock_guard lock(mutex_);
    write_line_locked(header);
  }
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CampaignJournal::write_line_locked(const util::JsonValue& record) {
  if (fd_ < 0 || failed_) return;
  const std::string line = util::json_write(record, 0) + "\n";
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) failed_ = true;
}

void CampaignJournal::declare_locked(const CampaignSpec& spec,
                                     const std::string& key) {
  if (!declared_.insert(key).second) return;
  util::JsonValue record = util::JsonValue::object();
  record.set("type", util::JsonValue::string("campaign"));
  record.set("key", util::JsonValue::string(key));
  record.set("signature", campaign_signature(spec));
  write_line_locked(record);
}

void CampaignJournal::append_cell(const CampaignSpec& spec, const RunMetrics& m) {
  const std::string key = campaign_key(spec);
  util::JsonValue record = util::JsonValue::object();
  record.set("type", util::JsonValue::string("cell"));
  record.set("key", util::JsonValue::string(key));
  record.set("seed", util::JsonValue::integer(static_cast<std::int64_t>(m.seed)));
  record.set("metrics", run_metrics_to_json(m));
  std::lock_guard lock(mutex_);
  declare_locked(spec, key);
  write_line_locked(record);
}

void CampaignJournal::append_error(const CampaignSpec& spec,
                                   const CampaignError& e) {
  const std::string key = campaign_key(spec);
  util::JsonValue record = util::JsonValue::object();
  record.set("type", util::JsonValue::string("cell"));
  record.set("key", util::JsonValue::string(key));
  record.set("seed", util::JsonValue::integer(static_cast<std::int64_t>(e.seed)));
  record.set("error", campaign_error_to_json(e));
  std::lock_guard lock(mutex_);
  declare_locked(spec, key);
  write_line_locked(record);
}

std::size_t JournalSnapshot::cell_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [key, seeds] : cells) count += seeds.size();
  return count;
}

const JournalCell* JournalSnapshot::find(const std::string& key,
                                         std::uint64_t seed) const noexcept {
  const auto campaign = cells.find(key);
  if (campaign == cells.end()) return nullptr;
  const auto cell = campaign->second.find(seed);
  return cell == campaign->second.end() ? nullptr : &cell->second;
}

JournalLoad load_journal(const std::string& path) {
  JournalLoad out;
  std::ifstream f(path);
  if (!f) {
    out.error = "cannot open " + path;
    return out;
  }
  JournalSnapshot snapshot;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(f, line)) {
    ++line_no;
    // A process killed mid-append leaves a torn final line; peek ahead so
    // "is this the last line" is known before we decide how to fail.
    const bool is_last = f.peek() == std::ifstream::traits_type::eof();
    const auto fail = [&](const std::string& why) {
      out.error = path + ":" + std::to_string(line_no) + ": " + why;
      return out;
    };
    if (line.empty()) {
      if (is_last) break;
      return fail("empty line");
    }
    std::string parse_error;
    const auto record = util::json_parse(line, &parse_error);
    if (!record || !record->is_object()) {
      if (is_last) {
        ++out.dropped_partial_lines;
        break;
      }
      return fail("malformed record: " +
                  (parse_error.empty() ? "not an object" : parse_error));
    }
    const auto* type = record->find("type");
    if (type == nullptr || !type->is_string()) return fail("record has no type");
    if (line_no == 1) {
      if (type->as_string() != kJournalType) {
        return fail("not a lumen-journal file");
      }
      const auto* version = record->find("version");
      if (version == nullptr || !version->is_integer() ||
          version->as_int() != kJournalVersion) {
        return fail("unsupported journal version");
      }
      saw_header = true;
      continue;
    }
    const auto* key = record->find("key");
    if (key == nullptr || !key->is_string()) return fail("record has no key");
    if (type->as_string() == "campaign") {
      const auto* signature = record->find("signature");
      if (signature == nullptr || !signature->is_object()) {
        return fail("campaign record has no signature");
      }
      const std::string compact = util::json_write(*signature, 0);
      const auto [it, inserted] =
          snapshot.signatures.emplace(key->as_string(), compact);
      if (!inserted && it->second != compact) {
        return fail("campaign key \"" + key->as_string() +
                    "\" declared twice with different signatures");
      }
    } else if (type->as_string() == "cell") {
      if (!snapshot.signatures.count(key->as_string())) {
        return fail("cell references undeclared campaign key \"" +
                    key->as_string() + "\"");
      }
      const auto* seed = record->find("seed");
      if (seed == nullptr || !seed->is_integer() || seed->as_int() < 0) {
        return fail("cell has no valid seed");
      }
      JournalCell cell;
      std::string cell_error;
      if (const auto* metrics = record->find("metrics")) {
        cell.metrics = run_metrics_from_json(*metrics, &cell_error);
        if (!cell.metrics) return fail(cell_error);
      } else if (const auto* error = record->find("error")) {
        cell.error = campaign_error_from_json(*error, &cell_error);
        if (!cell.error) return fail(cell_error);
      } else {
        return fail("cell has neither metrics nor error");
      }
      // First-write-wins: a duplicate (key, seed) is the same deterministic
      // cell recorded twice (resumed appends, fenced stale workers); drop
      // it, count it.
      const auto [it, inserted] =
          snapshot.cells[key->as_string()].try_emplace(
              static_cast<std::uint64_t>(seed->as_int()), std::move(cell));
      if (!inserted) ++out.duplicate_cells;
    } else {
      return fail("unknown record type \"" + type->as_string() + "\"");
    }
  }
  // An empty file or a lone torn first line (journal created, killed before
  // the header landed) is a valid empty snapshot; any other headerless
  // content is not ours.
  if (!saw_header && line_no > 0 && out.dropped_partial_lines == 0) {
    out.error = path + ": missing journal header";
    return out;
  }
  out.snapshot = std::move(snapshot);
  return out;
}

std::string journal_key_mismatch(const JournalSnapshot& snapshot,
                                 const CampaignSpec& spec) {
  if (snapshot.signatures.empty()) return "";
  const std::string key = campaign_key(spec);
  if (snapshot.signatures.count(key)) return "";
  std::string declared;
  for (const auto& [k, sig] : snapshot.signatures) {
    if (!declared.empty()) declared += ", ";
    declared += k;
  }
  return "journal.key: campaign key mismatch: spec is " + key +
         " but the journal declares " + declared +
         " — refusing to merge a journal written for a different campaign";
}

std::size_t merge_snapshots(JournalSnapshot& dst, const JournalSnapshot& src,
                            std::string* error) {
  std::size_t duplicates = 0;
  for (const auto& [key, signature] : src.signatures) {
    const auto [it, inserted] = dst.signatures.emplace(key, signature);
    if (!inserted && it->second != signature) {
      set_error(error, "campaign key \"" + key +
                           "\" declared with different signatures");
      continue;
    }
    const auto cells = src.cells.find(key);
    if (cells == src.cells.end()) continue;
    auto& into = dst.cells[key];
    for (const auto& [seed, cell] : cells->second) {
      if (!into.try_emplace(seed, cell).second) ++duplicates;
    }
  }
  return duplicates;
}

}  // namespace lumen::analysis
