// lumen_analysis: the campaign checkpoint journal (DESIGN.md §12).
//
// A CampaignJournal is an append-only JSONL file with one durably-written
// (fsync'd) record per finished campaign cell, so a campaign killed at any
// instant can be resumed without redoing completed work. Because every cell
// is deterministic in (campaign signature, seed), merging journaled metrics
// back into a resumed run_campaign call reproduces the uninterrupted result
// BYTE-IDENTICALLY (campaign_result_to_json is the comparison form; pinned
// by tests/analysis_resilience_test.cpp across shard counts and pool sizes).
//
// File layout (one compact JSON object per line):
//   {"type":"lumen-journal","version":1}            — header, first line
//   {"type":"campaign","key":K,"signature":{...}}   — declares a campaign
//   {"type":"cell","key":K,"seed":S,"metrics":{..}} — a finished cell
//   {"type":"cell","key":K,"seed":S,"error":{...}}  — a failed cell
//
// The campaign KEY is the FNV-1a hash of the campaign's result-affecting
// fields only (see campaign_signature) — sharding, seed ranges and retry
// policy are deliberately excluded so k shards of one campaign share cell
// records and a retry-policy tweak does not orphan a journal. A process
// killed mid-write leaves at most one torn final line; the loader drops it
// (any earlier malformed line is a hard error).
#pragma once

#include "analysis/campaign.hpp"
#include "util/json.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace lumen::analysis {

/// Deterministic JSON form of one cell's metrics (fixed key order, exact
/// integers, doubles via the round-tripping "%.17g" writer).
[[nodiscard]] util::JsonValue run_metrics_to_json(const RunMetrics& m);
[[nodiscard]] std::optional<RunMetrics> run_metrics_from_json(
    const util::JsonValue& v, std::string* error = nullptr);

[[nodiscard]] util::JsonValue campaign_error_to_json(const CampaignError& e);
[[nodiscard]] std::optional<CampaignError> campaign_error_from_json(
    const util::JsonValue& v, std::string* error = nullptr);

/// The campaign's identity for journaling: exactly the spec fields that
/// affect a cell's result (algorithm, family, n, min_separation, audit
/// settings, abort_on_collision, and the run template with its per-run seed
/// zeroed). runs / seed_base / shard_* / max_attempts / retry_backoff_ms
/// are excluded on purpose — they select or schedule cells without changing
/// any cell's bytes.
[[nodiscard]] util::JsonValue campaign_signature(const CampaignSpec& spec);

/// 16-hex-digit FNV-1a of the compact signature serialization.
[[nodiscard]] std::string campaign_key(const CampaignSpec& spec);

/// The deterministic serialized outcome of a campaign: spec signature, the
/// metrics rows in seed order, the error records in seed order. Excludes
/// the cells_resumed / cells_skipped bookkeeping, so this is the form in
/// which "interrupted + resumed == uninterrupted" is exact byte equality.
[[nodiscard]] std::string campaign_result_to_json(const CampaignResult& result);

/// Append-only journal writer. Thread-safe (run_campaign appends from pool
/// workers); every append is write(2) + fsync(2) under one mutex so a crash
/// loses at most the record being written. Write failures are sticky and
/// reported through ok() — journaling is best-effort and never throws into
/// the campaign (a failing disk should cost the checkpoint, not the run).
class CampaignJournal {
 public:
  /// Opens (creating or appending) the journal at `path`; writes the header
  /// line when the file is empty. Check ok() afterwards.
  explicit CampaignJournal(std::string path);
  ~CampaignJournal();

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0 && !failed_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Durably records one finished / failed cell, declaring the campaign
  /// signature first if this process has not yet declared that key.
  void append_cell(const CampaignSpec& spec, const RunMetrics& m);
  void append_error(const CampaignSpec& spec, const CampaignError& e);

 private:
  void declare_locked(const CampaignSpec& spec, const std::string& key);
  void write_line_locked(const util::JsonValue& record);

  std::string path_;
  int fd_ = -1;
  bool failed_ = false;
  std::mutex mutex_;
  std::set<std::string> declared_;
};

/// One journaled cell: exactly one of metrics / error is set.
struct JournalCell {
  std::optional<RunMetrics> metrics;
  std::optional<CampaignError> error;
};

/// Everything a finished journal load knows, indexed for resume lookups.
struct JournalSnapshot {
  /// key -> compact signature serialization (for stale-journal detection).
  std::map<std::string, std::string> signatures;
  /// key -> seed -> cell. The FIRST record for a (key, seed) wins — cells
  /// are deterministic in (key, seed), so a later duplicate (a journal
  /// appended to across several resumed attempts, or a fenced-off stale
  /// fabric worker finishing a cell someone else already owns) carries the
  /// same bytes; dropping it keeps the merge idempotent and countable.
  std::map<std::string, std::map<std::uint64_t, JournalCell>> cells;

  [[nodiscard]] std::size_t cell_count() const noexcept;
  /// nullptr when the cell is not journaled.
  [[nodiscard]] const JournalCell* find(const std::string& key,
                                        std::uint64_t seed) const noexcept;
};

struct JournalLoad {
  std::optional<JournalSnapshot> snapshot;
  std::string error;  ///< Reason when snapshot is nullopt.
  /// A torn final line (the process died mid-append) is dropped, not an
  /// error; this counts it so drivers can report the lost record.
  std::size_t dropped_partial_lines = 0;
  /// Later records for an already-seen (key, seed) — dropped first-write-
  /// wins. Nonzero is normal for a journal appended to by several resumed
  /// or fenced writers; drivers report the count instead of silently
  /// merging.
  std::size_t duplicate_cells = 0;
};

/// Loads a journal written by CampaignJournal. A missing/garbled header, a
/// malformed NON-final line, a cell referencing an undeclared key, or two
/// declarations of one key with different signatures are errors; a torn
/// final line is tolerated (see JournalLoad::dropped_partial_lines).
[[nodiscard]] JournalLoad load_journal(const std::string& path);

/// Multi-writer guard: a journal written FOR one campaign (a fabric shard
/// journal, a worker checkpoint) must declare exactly that campaign.
/// Returns "" when the snapshot is empty or declares the spec's key;
/// otherwise a field-naming message (journal.key: ...) listing what the
/// journal declares — the caller records it as a kJournalMismatch
/// CampaignError instead of silently merging nothing. NOT for shared
/// multi-campaign journals (an experiment sweeping N keeps every
/// campaign's cells in one file by design).
[[nodiscard]] std::string journal_key_mismatch(const JournalSnapshot& snapshot,
                                               const CampaignSpec& spec);

/// Merges `src` into `dst`, first-write-wins per (key, seed); returns the
/// number of duplicate cells dropped. Two declarations of one key with
/// different signatures are an error (set via *error, merge of that key's
/// cells is skipped) — the same rule load_journal enforces within one file.
std::size_t merge_snapshots(JournalSnapshot& dst, const JournalSnapshot& src,
                            std::string* error = nullptr);

}  // namespace lumen::analysis
