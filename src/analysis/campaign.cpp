#include "analysis/campaign.hpp"

#include "analysis/journal.hpp"
#include "core/registry.hpp"
#include "util/prng.hpp"
#include "sim/look_arena.hpp"
#include "sim/monitors.hpp"
#include "sim/streaming_collision.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <optional>
#include <thread>

namespace lumen::analysis {

std::string_view to_string(CampaignErrorKind k) noexcept {
  switch (k) {
    case CampaignErrorKind::kSpecInvalid: return "spec-invalid";
    case CampaignErrorKind::kDeadline: return "deadline";
    case CampaignErrorKind::kException: return "exception";
    case CampaignErrorKind::kCollisionAbort: return "collision-abort";
    case CampaignErrorKind::kJournalMismatch: return "journal-mismatch";
  }
  return "?";
}

std::optional<CampaignErrorKind> campaign_error_kind_from_string(
    std::string_view name) noexcept {
  for (const auto k :
       {CampaignErrorKind::kSpecInvalid, CampaignErrorKind::kDeadline,
        CampaignErrorKind::kException, CampaignErrorKind::kCollisionAbort,
        CampaignErrorKind::kJournalMismatch}) {
    if (to_string(k) == name) return k;
  }
  return std::nullopt;
}

std::string validate_campaign_spec(const CampaignSpec& spec) {
  const auto names = core::algorithm_names();
  if (std::find(names.begin(), names.end(), spec.algorithm) == names.end()) {
    return "algorithm: unknown algorithm \"" + spec.algorithm +
           "\"; valid: " + core::algorithm_names_joined();
  }
  if (spec.n < 1) return "n must be >= 1";
  if (spec.runs < 1) return "runs must be >= 1";
  if (!(spec.min_separation > 0.0) || !std::isfinite(spec.min_separation)) {
    return "min_separation must be a finite number > 0";
  }
  if (!(spec.collision_tolerance >= 0.0) ||
      !std::isfinite(spec.collision_tolerance)) {
    return "collision_tolerance must be a finite number >= 0";
  }
  if (spec.shard_count < 1) return "shard_count must be >= 1";
  if (spec.shard_index >= spec.shard_count) {
    return "shard_index must be < shard_count";
  }
  if (spec.max_attempts < 1) return "max_attempts must be >= 1";
  if (spec.run.max_cycles_per_robot < 1) {
    return "run.max_cycles_per_robot must be >= 1";
  }
  if (!(spec.run.nonrigid_min_progress >= 0.0) ||
      !std::isfinite(spec.run.nonrigid_min_progress)) {
    return "run.nonrigid_min_progress must be a finite number >= 0";
  }
  const fault::FaultPlan& fault = spec.run.fault;
  if (!(fault.crash.rate >= 0.0 && fault.crash.rate <= 1.0)) {
    return "run.fault.crash.rate must be in [0, 1]";
  }
  for (const double t : fault.crash.times) {
    if (!(t >= 0.0) || !std::isfinite(t)) {
      return "run.fault.crash.times must be finite and non-negative";
    }
  }
  if (!(fault.light.probability >= 0.0 && fault.light.probability <= 1.0)) {
    return "run.fault.light.probability must be in [0, 1]";
  }
  if (!(fault.noise.sigma >= 0.0) || !std::isfinite(fault.noise.sigma)) {
    return "run.fault.noise.sigma must be a finite number >= 0";
  }
  if (!(fault.noise.dropout >= 0.0 && fault.noise.dropout <= 1.0)) {
    return "run.fault.noise.dropout must be in [0, 1]";
  }
  return "";
}

std::size_t CampaignResult::converged_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunMetrics& m) { return m.converged; }));
}

std::size_t CampaignResult::visibility_ok_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunMetrics& m) { return m.visibility_ok; }));
}

std::size_t CampaignResult::collision_free_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunMetrics& m) { return m.collision_free; }));
}

std::size_t CampaignResult::max_colors() const noexcept {
  std::size_t best = 0;
  for (const auto& m : runs) best = std::max(best, m.colors);
  return best;
}

std::size_t CampaignResult::outcome_count(sim::RunOutcome outcome) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(), [outcome](const RunMetrics& m) {
        return m.outcome == outcome;
      }));
}

fault::FaultCounters CampaignResult::fault_totals() const noexcept {
  fault::FaultCounters totals;
  for (const auto& m : runs) {
    totals.crashes += m.faults.crashes;
    totals.corrupted_reads += m.faults.corrupted_reads;
    totals.dropped_observations += m.faults.dropped_observations;
    totals.perturbed_observations += m.faults.perturbed_observations;
  }
  return totals;
}

CampaignResult::CacheTotals CampaignResult::cache_totals() const noexcept {
  CacheTotals totals;
  for (const auto& m : runs) {
    totals.replays += m.cache_replays;
    totals.repairs += m.cache_repairs;
    totals.rebuilds += m.cache_rebuilds;
  }
  return totals;
}

util::Summary CampaignResult::epochs() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& m : runs) {
    if (m.converged) xs.push_back(static_cast<double>(m.epochs));
  }
  return util::summarize(xs);
}

util::Summary CampaignResult::moves() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& m : runs) {
    if (m.converged) xs.push_back(static_cast<double>(m.moves));
  }
  return util::summarize(xs);
}

std::size_t CampaignResult::max_epochs() const noexcept {
  std::size_t worst = 0;
  for (const auto& m : runs) worst = std::max(worst, m.epochs);
  return worst;
}

double CampaignResult::worst_min_separation() const noexcept {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& m : runs) {
    worst = std::min(worst, m.min_observed_separation);
  }
  return worst;
}

namespace {

/// The per-cell slot run_campaign assembles the result from. Exactly one of
/// metrics / error is set for a cell that ran (or resumed); neither is set
/// when the stop flag skipped it.
struct Cell {
  std::optional<RunMetrics> metrics;
  std::optional<CampaignError> error;
  bool resumed = false;
  bool skipped = false;
};

constexpr std::uint64_t kMaxBackoffMs = 5000;

}  // namespace

std::uint64_t retry_backoff_delay_ms(std::uint64_t base,
                                     std::size_t failed_attempts,
                                     std::uint64_t cell_seed) noexcept {
  if (base == 0) return 0;
  std::uint64_t delay = base;
  for (std::size_t i = 1; i < failed_attempts && delay < kMaxBackoffMs; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, kMaxBackoffMs);
  // Half-jitter: the floor keeps the backoff meaningful, the hashed offset
  // decorrelates cells that failed in the same instant. splitmix64 of
  // (seed, attempt) keeps every cell's schedule deterministic.
  std::uint64_t state =
      cell_seed ^ (0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(failed_attempts) + 1));
  const std::uint64_t r = util::splitmix64(state);
  const std::uint64_t floor = delay / 2;
  return floor + r % (delay - floor + 1);
}

CampaignResult run_campaign(const CampaignSpec& spec, util::ThreadPool* pool,
                            const CampaignControl& control) {
  CampaignResult result;
  result.spec = spec;
  // Invalid specs become a single structured error instead of a throw or a
  // crash deep inside a worker: the campaign "ran" with zero cells, and the
  // caller (experiment body, lumen-bench) reports the reason. Not journaled
  // — validation is pure, so a resumed process recomputes the same verdict.
  if (std::string problem = validate_campaign_spec(spec); !problem.empty()) {
    result.errors.push_back(CampaignError{CampaignErrorKind::kSpecInvalid, 0, 0,
                                          std::move(problem)});
    return result;
  }
  const std::size_t shards = spec.shard_count;
  // This shard's run indices, in ascending seed order.
  std::vector<std::size_t> indices;
  indices.reserve(spec.runs / shards + 1);
  for (std::size_t i = spec.shard_index % shards; i < spec.runs; i += shards) {
    indices.push_back(i);
  }
  std::vector<Cell> cells(indices.size());
  const auto algorithm = core::make_algorithm(spec.algorithm);
  util::ThreadPool& workers = pool != nullptr ? *pool : util::global_pool();

  // Cells already journaled by an interrupted process are merged back as-is
  // (each is deterministic in its seed, so the merged result is bit-identical
  // to the uninterrupted campaign) and never re-journaled: the resume
  // snapshot came from the very file any attached journal keeps appending to.
  const std::string key = (control.journal != nullptr || control.resume != nullptr)
                              ? campaign_key(spec)
                              : std::string();
  if (control.resume != nullptr) {
    for (std::size_t slot = 0; slot < indices.size(); ++slot) {
      const std::uint64_t seed = spec.seed_base + indices[slot];
      if (const JournalCell* cell = control.resume->find(key, seed)) {
        cells[slot].metrics = cell->metrics;
        cells[slot].error = cell->error;
        cells[slot].resumed = true;
      }
    }
  }

  const auto stop_requested = [&control]() noexcept {
    return control.stop != nullptr &&
           control.stop->load(std::memory_order_relaxed);
  };

  // One attempt of one cell: generate, run, reduce to metrics — or classify
  // the failure. Returns metrics on success, an error otherwise.
  const auto attempt_cell = [&](std::uint64_t seed, sim::LookArena* arena)
      -> std::pair<std::optional<RunMetrics>, CampaignError> {
    const auto initial =
        gen::generate(spec.family, spec.n, seed, spec.min_separation);
    sim::RunConfig config = spec.run;
    config.seed = seed;
    // Campaigns only reduce to metrics, so nothing needs the move log: the
    // collision audit streams over the run instead of replaying a retained
    // log, and per-run memory stays independent of run length.
    config.record_moves = false;
    // In-run parallelism rides the same pool. Nested from a campaign worker
    // the inner fan-out degrades to inline-serial (the workers are already
    // busy with whole runs); from the caller thread — the single-run path
    // below — a large-N run's rounds genuinely parallelize. Either way the
    // results are bit-identical (pool-size invariance, see run.hpp).
    config.pool = &workers;
    // One Look arena per campaign worker, reused across all its cells:
    // visibility scratch and cache capacity warmed by one run carry into
    // the next instead of being reallocated at every engine reset. Results
    // are bit-identical with or without the shared arena (see run.hpp).
    config.arena = arena;
    // Fault-injected audited runs swap the bare collision monitor for the
    // attributing SafetyMonitor; on fault-free runs both produce identical
    // reports, so the plain monitor keeps the historical hot path.
    const bool attribute_faults = spec.audit_collisions && spec.run.fault.any();
    sim::StreamingCollisionMonitor monitor(spec.collision_tolerance);
    sim::SafetyMonitor safety(spec.collision_tolerance);
    sim::RunObserver* observers[] = {
        attribute_faults ? static_cast<sim::RunObserver*>(&safety) : &monitor};
    const auto run =
        spec.audit_collisions
            ? sim::run_simulation(*algorithm, initial, config, observers)
            : sim::run_simulation(*algorithm, initial, config);

    if (run.outcome == sim::RunOutcome::kDeadlineExceeded) {
      return {std::nullopt,
              CampaignError{CampaignErrorKind::kDeadline, seed, 0,
                            "run exceeded deadline_ms=" +
                                std::to_string(spec.run.deadline_ms)}};
    }
    RunMetrics m;
    m.seed = seed;
    m.converged = run.converged;
    m.epochs = run.epochs;
    m.cycles = run.total_cycles;
    m.moves = run.total_moves;
    m.distance = run.total_distance;
    m.colors = run.distinct_lights_used();
    m.outcome = run.outcome;
    m.faults = run.faults;
    m.cache_replays = run.cache_replays;
    m.cache_repairs = run.cache_repairs;
    m.cache_rebuilds = run.cache_rebuilds;
    // The verdict audits the algorithm's DECLARED success predicate, not a
    // hardwired complete-visibility check — related-work plugins declare
    // weaker goals (see model::Algorithm::success_predicate).
    m.visibility_ok =
        sim::verify_success(algorithm->success_predicate(), run.final_positions,
                            &workers)
            .satisfied;
    if (spec.audit_collisions) {
      const sim::CollisionReport& report =
          attribute_faults ? safety.report() : monitor.report();
      m.collision_free = report.hazard_free(1e-9);
      m.min_observed_separation = report.min_separation;
      m.path_crossings = report.path_crossings;
      m.position_collisions = report.position_collisions;
      if (report.position_collisions > 0) {
        m.outcome = sim::RunOutcome::kCollision;
        if (attribute_faults) m.collision_channel = safety.dominant_channel();
      }
      if (spec.abort_on_collision && report.position_collisions > 0) {
        return {std::nullopt,
                CampaignError{
                    CampaignErrorKind::kCollisionAbort, seed, 0,
                    std::to_string(report.position_collisions) +
                        " position collision(s) with abort_on_collision set"}};
      }
    }
    return {std::move(m), CampaignError{}};
  };

  const auto run_cell = [&](std::size_t slot, sim::LookArena* arena) {
    Cell& cell = cells[slot];
    if (cell.resumed) return;
    const std::uint64_t seed = spec.seed_base + indices[slot];
    CampaignError last_error;
    for (std::size_t attempt = 1; attempt <= spec.max_attempts; ++attempt) {
      // Cooperative stop: cells already past this gate drain normally; this
      // one (and its remaining retries) is abandoned without a record.
      if (stop_requested()) {
        cell.skipped = true;
        return;
      }
      bool retriable = true;
      try {
        auto [metrics, error] = attempt_cell(seed, arena);
        if (metrics) {
          cell.metrics = std::move(metrics);
          if (control.journal != nullptr) {
            control.journal->append_cell(spec, *cell.metrics);
          }
          if (control.on_cell) control.on_cell(seed);
          return;
        }
        last_error = std::move(error);
        // A collision verdict is deterministic in the seed; retrying would
        // reproduce it exactly.
        retriable = last_error.kind != CampaignErrorKind::kCollisionAbort;
      } catch (const std::exception& e) {
        last_error =
            CampaignError{CampaignErrorKind::kException, seed, 0, e.what()};
      } catch (...) {
        last_error = CampaignError{CampaignErrorKind::kException, seed, 0,
                                   "unknown exception"};
      }
      last_error.attempts = attempt;
      if (!retriable) break;
      if (attempt < spec.max_attempts) {
        const std::uint64_t delay =
            retry_backoff_delay_ms(spec.retry_backoff_ms, attempt, seed);
        if (delay > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
      }
    }
    cell.error = std::move(last_error);
    if (control.journal != nullptr) control.journal->append_error(spec, *cell.error);
    if (control.on_cell) control.on_cell(seed);
  };

  // Slot-stable arenas: worker slot k always reuses arenas[k]; the extra
  // last arena belongs to the caller thread's single-run path. Sized once,
  // never resized (LookArena is not movable — the cache pins its entries).
  std::vector<sim::LookArena> arenas(workers.slot_count() + 1);
  if (cells.size() == 1) {
    // Keep the lone run on the caller so its in-run fan-out owns the pool.
    run_cell(0, &arenas.back());
  } else if (!cells.empty()) {
    workers.parallel_for_slots(cells.size(),
                               [&](std::size_t slot, std::size_t index) {
                                 run_cell(index, &arenas[slot]);
                               });
  }

  // Assemble in ascending seed order (slot order IS seed order), which makes
  // merged shards and resumed runs reproduce the serial result exactly.
  result.runs.reserve(cells.size());
  for (const Cell& cell : cells) {
    if (cell.skipped) {
      ++result.cells_skipped;
      continue;
    }
    if (cell.resumed) ++result.cells_resumed;
    if (cell.metrics) {
      result.runs.push_back(*cell.metrics);
    } else if (cell.error) {
      result.errors.push_back(*cell.error);
    }
  }
  return result;
}

std::vector<SweepPoint> sweep_n(CampaignSpec spec, const std::vector<std::size_t>& ns,
                                util::ThreadPool* pool) {
  std::vector<SweepPoint> points;
  points.reserve(ns.size());
  for (const std::size_t n : ns) {
    spec.n = n;
    points.push_back(SweepPoint{n, run_campaign(spec, pool)});
  }
  return points;
}

}  // namespace lumen::analysis
