#include "analysis/campaign.hpp"

#include "core/registry.hpp"
#include "sim/monitors.hpp"
#include "sim/streaming_collision.hpp"

#include <algorithm>

namespace lumen::analysis {

std::size_t CampaignResult::converged_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunMetrics& m) { return m.converged; }));
}

std::size_t CampaignResult::visibility_ok_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunMetrics& m) { return m.visibility_ok; }));
}

std::size_t CampaignResult::collision_free_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunMetrics& m) { return m.collision_free; }));
}

std::size_t CampaignResult::max_colors() const noexcept {
  std::size_t best = 0;
  for (const auto& m : runs) best = std::max(best, m.colors);
  return best;
}

std::size_t CampaignResult::outcome_count(sim::RunOutcome outcome) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(), [outcome](const RunMetrics& m) {
        return m.outcome == outcome;
      }));
}

fault::FaultCounters CampaignResult::fault_totals() const noexcept {
  fault::FaultCounters totals;
  for (const auto& m : runs) {
    totals.crashes += m.faults.crashes;
    totals.corrupted_reads += m.faults.corrupted_reads;
    totals.dropped_observations += m.faults.dropped_observations;
    totals.perturbed_observations += m.faults.perturbed_observations;
  }
  return totals;
}

util::Summary CampaignResult::epochs() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& m : runs) {
    if (m.converged) xs.push_back(static_cast<double>(m.epochs));
  }
  return util::summarize(xs);
}

util::Summary CampaignResult::moves() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& m : runs) {
    if (m.converged) xs.push_back(static_cast<double>(m.moves));
  }
  return util::summarize(xs);
}

CampaignResult run_campaign(const CampaignSpec& spec, util::ThreadPool* pool) {
  CampaignResult result;
  result.spec = spec;
  const std::size_t shards = spec.shard_count == 0 ? 1 : spec.shard_count;
  // This shard's run indices, in ascending seed order.
  std::vector<std::size_t> indices;
  indices.reserve(spec.runs / shards + 1);
  for (std::size_t i = spec.shard_index % shards; i < spec.runs; i += shards) {
    indices.push_back(i);
  }
  result.runs.resize(indices.size());
  const auto algorithm = core::make_algorithm(spec.algorithm);
  util::ThreadPool& workers = pool != nullptr ? *pool : util::global_pool();

  const auto run_one = [&](std::size_t slot) {
    const std::uint64_t seed = spec.seed_base + indices[slot];
    const auto initial =
        gen::generate(spec.family, spec.n, seed, spec.min_separation);
    sim::RunConfig config = spec.run;
    config.seed = seed;
    // Campaigns only reduce to metrics, so nothing needs the move log: the
    // collision audit streams over the run instead of replaying a retained
    // log, and per-run memory stays independent of run length.
    config.record_moves = false;
    // In-run parallelism rides the same pool. Nested from a campaign worker
    // the inner fan-out degrades to inline-serial (the workers are already
    // busy with whole runs); from the caller thread — the single-run path
    // below — a large-N run's rounds genuinely parallelize. Either way the
    // results are bit-identical (pool-size invariance, see run.hpp).
    config.pool = &workers;
    // Fault-injected audited runs swap the bare collision monitor for the
    // attributing SafetyMonitor; on fault-free runs both produce identical
    // reports, so the plain monitor keeps the historical hot path.
    const bool attribute_faults = spec.audit_collisions && spec.run.fault.any();
    sim::StreamingCollisionMonitor monitor(spec.collision_tolerance);
    sim::SafetyMonitor safety(spec.collision_tolerance);
    sim::RunObserver* observers[] = {
        attribute_faults ? static_cast<sim::RunObserver*>(&safety) : &monitor};
    const auto run =
        spec.audit_collisions
            ? sim::run_simulation(*algorithm, initial, config, observers)
            : sim::run_simulation(*algorithm, initial, config);

    RunMetrics m;
    m.seed = seed;
    m.converged = run.converged;
    m.epochs = run.epochs;
    m.cycles = run.total_cycles;
    m.moves = run.total_moves;
    m.distance = run.total_distance;
    m.colors = run.distinct_lights_used();
    m.outcome = run.outcome;
    m.faults = run.faults;
    m.visibility_ok =
        sim::verify_complete_visibility(run.final_positions, &workers).complete();
    if (spec.audit_collisions) {
      const sim::CollisionReport& report =
          attribute_faults ? safety.report() : monitor.report();
      m.collision_free = report.hazard_free(1e-9);
      m.min_observed_separation = report.min_separation;
      m.path_crossings = report.path_crossings;
      m.position_collisions = report.position_collisions;
      if (report.position_collisions > 0) {
        m.outcome = sim::RunOutcome::kCollision;
        if (attribute_faults) m.collision_channel = safety.dominant_channel();
      }
    }
    result.runs[slot] = m;
  };
  if (indices.size() == 1) {
    // Keep the lone run on the caller so its in-run fan-out owns the pool.
    run_one(0);
  } else {
    workers.parallel_for(indices.size(), run_one);
  }
  return result;
}

std::vector<SweepPoint> sweep_n(CampaignSpec spec, const std::vector<std::size_t>& ns,
                                util::ThreadPool* pool) {
  std::vector<SweepPoint> points;
  points.reserve(ns.size());
  for (const std::size_t n : ns) {
    spec.n = n;
    points.push_back(SweepPoint{n, run_campaign(spec, pool)});
  }
  return points;
}

}  // namespace lumen::analysis
