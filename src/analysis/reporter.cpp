#include "analysis/reporter.hpp"

#include "util/table.hpp"

#include <ostream>

namespace lumen::analysis {

namespace {

util::Table to_table(const ExperimentResult& result) {
  util::Table table(result.columns);
  for (const auto& row : result.rows) {
    table.row();
    for (const auto& c : row) table.cell(c.text);
  }
  return table;
}

class PrettyReporter final : public Reporter {
 public:
  void report(const ExperimentResult& result, std::ostream& os) const override {
    to_table(result).print(os, result.title);
    if (!result.notes.empty()) os << "\n";
    for (const auto& note : result.notes) os << note << "\n";
    if (result.partial) {
      os << "  [PARTIAL] result is incomplete (cells failed or were skipped); "
            "claim checks are not meaningful\n";
    }
    for (const auto& check : result.checks) {
      os << (check.passed ? "  [PASS] " : "  [FAIL] ") << check.label << "\n";
    }
  }
};

class CsvReporter final : public Reporter {
 public:
  void report(const ExperimentResult& result, std::ostream& os) const override {
    to_table(result).write_csv(os);
  }
};

class JsonReporter final : public Reporter {
 public:
  void report(const ExperimentResult& result, std::ostream& os) const override {
    os << util::json_write(result_to_json(result)) << "\n";
  }
};

}  // namespace

util::JsonValue result_to_json(const ExperimentResult& result) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("experiment", util::JsonValue::string(result.experiment));
  obj.set("title", util::JsonValue::string(result.title));

  util::JsonValue columns = util::JsonValue::array();
  for (const auto& c : result.columns) {
    columns.push_back(util::JsonValue::string(c));
  }
  obj.set("columns", std::move(columns));

  util::JsonValue rows = util::JsonValue::array();
  for (const auto& row : result.rows) {
    util::JsonValue cells = util::JsonValue::array();
    for (const auto& c : row) {
      cells.push_back(c.value ? util::JsonValue::number(*c.value)
                              : util::JsonValue::string(c.text));
    }
    rows.push_back(std::move(cells));
  }
  obj.set("rows", std::move(rows));

  util::JsonValue notes = util::JsonValue::array();
  for (const auto& n : result.notes) notes.push_back(util::JsonValue::string(n));
  obj.set("notes", std::move(notes));

  util::JsonValue checks = util::JsonValue::array();
  for (const auto& check : result.checks) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("label", util::JsonValue::string(check.label));
    entry.set("passed", util::JsonValue::boolean(check.passed));
    checks.push_back(std::move(entry));
  }
  obj.set("checks", std::move(checks));
  // Only emitted when set, so complete-result documents keep their
  // historical byte-exact form.
  if (result.partial) obj.set("partial", util::JsonValue::boolean(true));
  obj.set("passed", util::JsonValue::boolean(result.passed()));
  return obj;
}

std::unique_ptr<Reporter> make_reporter(std::string_view format) {
  if (format == "pretty") return std::make_unique<PrettyReporter>();
  if (format == "csv") return std::make_unique<CsvReporter>();
  if (format == "json") return std::make_unique<JsonReporter>();
  return nullptr;
}

std::string_view reporter_formats() noexcept { return "pretty|csv|json"; }

}  // namespace lumen::analysis
