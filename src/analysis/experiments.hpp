// lumen_analysis: the experiment registry.
//
// Each of the paper-reproduction experiments (E1-E6, E8) is a library-level
// Experiment: a name, a description, a default ScenarioSpec, and a run
// function that reduces campaigns to a structured ExperimentResult (typed
// rows + free-text notes + named pass/fail checks). The `lumen-bench`
// driver is a thin shell over this registry — list/describe/run — and the
// pluggable reporters render the same ExperimentResult as an aligned
// table, CSV, or JSON. Experiment bodies were moved verbatim from the
// former ad-hoc bench_*.cpp binaries so the printed metric values are
// unchanged (tested in analysis_experiments_test.cpp).
#pragma once

#include "analysis/scenario.hpp"

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::analysis {

/// One table cell: the formatted text every reporter shows, plus the raw
/// number (when the cell is numeric) for machine-readable output.
struct MetricCell {
  std::string text;
  std::optional<double> value;
};

[[nodiscard]] MetricCell cell(std::string_view text);
[[nodiscard]] MetricCell cell(double value, int precision = 3);
[[nodiscard]] MetricCell cell(std::size_t value);

struct ExperimentResult {
  std::string experiment;  ///< Registry name.
  std::string title;       ///< Table caption.
  std::vector<std::string> columns;
  std::vector<std::vector<MetricCell>> rows;
  /// Free-text findings printed after the table (fits, ratios, caveats).
  std::vector<std::string> notes;
  /// Named claim verdicts; the driver's exit code is all-of.
  struct Check {
    std::string label;
    bool passed = false;
  };
  std::vector<Check> checks;
  /// Set when any campaign was cut short (stop requested, cells skipped) or
  /// recorded cell errors: the table's aggregates cover only the cells that
  /// produced metrics. Reporters flag it; claim checks over a partial
  /// result are not trustworthy either way.
  bool partial = false;

  [[nodiscard]] bool passed() const noexcept;

  /// Row-building shorthand used by the experiment bodies.
  std::vector<MetricCell>& row();
};

/// Everything an experiment body needs from its host besides the spec: the
/// worker pool plus the resilience hooks (journal / resume / stop — see
/// CampaignControl) the body threads into every run_campaign call.
struct ExperimentContext {
  /// nullptr -> util::global_pool(). Only sets parallelism; results are
  /// bit-identical for any pool size.
  util::ThreadPool* pool = nullptr;
  CampaignControl control;
  /// When set, every campaign the experiment bodies run routes through this
  /// instead of calling run_campaign directly — the hook must honor
  /// `control` exactly as run_campaign does (journal, resume, stop, on_cell)
  /// and return a result bit-identical to run_campaign's. lumen-bench uses
  /// it to reroute campaigns through the multi-process fabric coordinator
  /// (--workers); since results are execution-strategy-invariant, experiment
  /// bodies cannot tell the difference.
  std::function<CampaignResult(const CampaignSpec&)> runner;

  /// The one way experiment bodies execute a campaign: the runner when one
  /// is installed, plain run_campaign otherwise.
  [[nodiscard]] CampaignResult execute(const CampaignSpec& spec) const {
    return runner ? runner(spec) : run_campaign(spec, pool, control);
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return control.stop != nullptr &&
           control.stop->load(std::memory_order_relaxed);
  }
};

struct Experiment {
  std::string name;         ///< Stable CLI name, e.g. "time-vs-n".
  std::string id;           ///< Paper-record id, e.g. "E1".
  std::string description;  ///< One-paragraph what/why.
  ScenarioSpec defaults;    ///< The spec the experiment runs without overrides.
  /// Executes the experiment under the given context.
  std::function<ExperimentResult(const ScenarioSpec&, const ExperimentContext&)>
      run;
};

class ExperimentRegistry {
 public:
  /// The process-wide registry with all built-in experiments.
  [[nodiscard]] static const ExperimentRegistry& instance();

  /// Registers an experiment contributed by a HIGHER layer (lumen_search's
  /// E13 hunt experiment registers itself through this from the bench
  /// driver — lumen_analysis cannot link the search library without a
  /// cycle). Idempotent per id: a second registration of an id is ignored.
  /// Call before any threads query the registry (main(), not a ctor race).
  static void register_external(Experiment experiment);

  [[nodiscard]] const std::vector<Experiment>& experiments() const noexcept {
    return experiments_;
  }
  /// Lookup by name or id ("time-vs-n" or "E1"); nullptr when unknown.
  [[nodiscard]] const Experiment* find(std::string_view name_or_id) const noexcept;

 private:
  ExperimentRegistry();
  [[nodiscard]] static ExperimentRegistry& mutable_instance();
  std::vector<Experiment> experiments_;
};

}  // namespace lumen::analysis
