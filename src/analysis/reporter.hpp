// lumen_analysis: pluggable ExperimentResult renderers.
//
// Every output format the lumen-bench driver supports is one Reporter
// implementation over the same structured ExperimentResult, so the aligned
// console table, the CSV export and the JSON artifact can never disagree
// about the values — they differ only in framing.
#pragma once

#include "analysis/experiments.hpp"
#include "util/json.hpp"

#include <iosfwd>
#include <memory>
#include <string_view>

namespace lumen::analysis {

class Reporter {
 public:
  virtual ~Reporter() = default;
  virtual void report(const ExperimentResult& result, std::ostream& os) const = 0;
};

/// "pretty" (aligned table + notes + check verdicts), "csv" (data rows
/// only), or "json" (full structure, machine-readable). Unknown format
/// returns nullptr.
[[nodiscard]] std::unique_ptr<Reporter> make_reporter(std::string_view format);

/// The formats make_reporter accepts, for usage text.
[[nodiscard]] std::string_view reporter_formats() noexcept;

/// JSON form of one result (what the "json" reporter writes): columns,
/// rows (numeric cells as numbers, text cells as strings), notes, checks.
[[nodiscard]] util::JsonValue result_to_json(const ExperimentResult& result);

}  // namespace lumen::analysis
