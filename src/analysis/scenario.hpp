// lumen_analysis: serializable scenario specifications.
//
// A ScenarioSpec is the declarative description of an experiment's
// workload: everything a CampaignSpec carries, plus the sweep dimension
// (ns), the comparator sweep some experiments run (baseline_ns), and the
// embedded sim::RunConfig template. Specs serialize to JSON with a
// ROUND-TRIP GUARANTEE: serialize -> parse -> serialize is byte-identical,
// so a spec file is a faithful, diffable record of exactly what ran. The
// schema is documented in DESIGN.md §9.
#pragma once

#include "analysis/campaign.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::analysis {

struct ScenarioSpec {
  std::string algorithm = "async-log";
  gen::ConfigFamily family = gen::ConfigFamily::kUniformDisk;
  /// Sweep sizes. Fixed-N experiments use the first entry; sweep
  /// experiments iterate over all of them.
  std::vector<std::size_t> ns = {32};
  /// Comparator sweep (used by experiments that also run a baseline
  /// series, e.g. E1's seq-baseline); empty means "same as ns".
  std::vector<std::size_t> baseline_ns;
  std::size_t runs = 20;        ///< Seeds per point.
  std::uint64_t seed_base = 1;  ///< Run i uses seed seed_base + i.
  double min_separation = 1e-3;
  bool audit_collisions = true;
  double collision_tolerance = 0.0;
  /// Seed-range sharding (see CampaignSpec): shard shard_index of
  /// shard_count; merged shard results are bit-identical to a serial run.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Cell retry policy and collision handling (see CampaignSpec): each
  /// retriable cell failure is attempted up to max_attempts times with
  /// exponential backoff from retry_backoff_ms; abort_on_collision records
  /// audited collision cells as errors instead of metrics rows.
  std::size_t max_attempts = 1;
  std::uint64_t retry_backoff_ms = 0;
  bool abort_on_collision = false;
  /// Scheduler/adversary/motion template; the per-run seed is overridden
  /// by the campaign.
  sim::RunConfig run;

  /// Projects onto the campaign layer at one sweep size.
  [[nodiscard]] CampaignSpec campaign(std::size_t n) const;
  /// baseline_ns, defaulting to ns when empty.
  [[nodiscard]] const std::vector<std::size_t>& baseline_sizes() const noexcept {
    return baseline_ns.empty() ? ns : baseline_ns;
  }
};

/// Deterministic JSON form (fixed key order, exact integers, trailing
/// newline). The round-trip guarantee is over this function:
/// scenario_to_json(*scenario_from_json(s).spec) == s for any s it emitted.
[[nodiscard]] std::string scenario_to_json(const ScenarioSpec& spec);

struct ScenarioParse {
  std::optional<ScenarioSpec> spec;
  std::string error;  ///< Human-readable reason when spec is nullopt.
};

/// Parses a spec document. Missing keys keep their defaults; unknown keys,
/// type mismatches and out-of-domain values (unknown family name, runs == 0,
/// shard_index >= shard_count, ...) are errors.
[[nodiscard]] ScenarioParse scenario_from_json(std::string_view text);

/// File convenience wrappers.
bool save_scenario(const ScenarioSpec& spec, const std::string& path);
[[nodiscard]] ScenarioParse load_scenario(const std::string& path);

}  // namespace lumen::analysis
