#include "analysis/scenario.hpp"

#include "core/registry.hpp"
#include "sim/config_io.hpp"
#include "util/json.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace lumen::analysis {

namespace {

constexpr std::string_view kDocType = "lumen-scenario";
constexpr std::int64_t kDocVersion = 1;

util::JsonValue size_array(const std::vector<std::size_t>& xs) {
  util::JsonValue arr = util::JsonValue::array();
  for (const std::size_t x : xs) {
    arr.push_back(util::JsonValue::integer(static_cast<std::int64_t>(x)));
  }
  return arr;
}

bool read_size_array(const util::JsonValue& v, std::vector<std::size_t>& out,
                     std::string_view key, std::string& error) {
  if (!v.is_array()) {
    error = std::string(key) + " must be an array of positive integers";
    return false;
  }
  out.clear();
  for (const auto& item : v.items()) {
    if (!item.is_integer() || item.as_int() <= 0) {
      error = std::string(key) + " must contain only positive integers";
      return false;
    }
    out.push_back(static_cast<std::size_t>(item.as_int()));
  }
  return true;
}

}  // namespace

CampaignSpec ScenarioSpec::campaign(std::size_t n) const {
  CampaignSpec spec;
  spec.algorithm = algorithm;
  spec.run = run;
  spec.family = family;
  spec.n = n;
  spec.runs = runs;
  spec.seed_base = seed_base;
  spec.min_separation = min_separation;
  spec.audit_collisions = audit_collisions;
  spec.collision_tolerance = collision_tolerance;
  spec.shard_index = shard_index;
  spec.shard_count = shard_count;
  spec.max_attempts = max_attempts;
  spec.retry_backoff_ms = retry_backoff_ms;
  spec.abort_on_collision = abort_on_collision;
  return spec;
}

std::string scenario_to_json(const ScenarioSpec& spec) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("type", util::JsonValue::string(std::string(kDocType)));
  obj.set("version", util::JsonValue::integer(kDocVersion));
  obj.set("algorithm", util::JsonValue::string(spec.algorithm));
  obj.set("family",
          util::JsonValue::string(std::string(gen::to_string(spec.family))));
  obj.set("ns", size_array(spec.ns));
  obj.set("baseline_ns", size_array(spec.baseline_ns));
  obj.set("runs", util::JsonValue::integer(static_cast<std::int64_t>(spec.runs)));
  obj.set("seed_base",
          util::JsonValue::integer(static_cast<std::int64_t>(spec.seed_base)));
  obj.set("min_separation", util::JsonValue::number(spec.min_separation));
  obj.set("audit_collisions", util::JsonValue::boolean(spec.audit_collisions));
  obj.set("collision_tolerance",
          util::JsonValue::number(spec.collision_tolerance));
  obj.set("shard_index",
          util::JsonValue::integer(static_cast<std::int64_t>(spec.shard_index)));
  obj.set("shard_count",
          util::JsonValue::integer(static_cast<std::int64_t>(spec.shard_count)));
  obj.set("max_attempts",
          util::JsonValue::integer(static_cast<std::int64_t>(spec.max_attempts)));
  obj.set("retry_backoff_ms",
          util::JsonValue::integer(
              static_cast<std::int64_t>(spec.retry_backoff_ms)));
  obj.set("abort_on_collision",
          util::JsonValue::boolean(spec.abort_on_collision));
  obj.set("run", sim::run_config_to_json(spec.run));
  return util::json_write(obj) + "\n";
}

ScenarioParse scenario_from_json(std::string_view text) {
  ScenarioParse out;
  std::string error;
  const auto doc = util::json_parse(text, &error);
  if (!doc) {
    out.error = "invalid JSON: " + error;
    return out;
  }
  if (!doc->is_object()) {
    out.error = "scenario must be a JSON object";
    return out;
  }
  ScenarioSpec spec;
  for (const auto& [key, value] : doc->members()) {
    if (key == "type") {
      if (!value.is_string() || value.as_string() != kDocType) {
        out.error = "type must be \"" + std::string(kDocType) + "\"";
        return out;
      }
    } else if (key == "version") {
      if (!value.is_integer() || value.as_int() != kDocVersion) {
        out.error = "unsupported scenario version";
        return out;
      }
    } else if (key == "algorithm") {
      if (!value.is_string() || value.as_string().empty()) {
        out.error = "algorithm must be a non-empty string";
        return out;
      }
      // Registry check at the parse boundary: an unknown name must fail
      // HERE with the valid list, not later as an exception from
      // make_algorithm inside a campaign worker thread.
      const auto names = core::algorithm_names();
      if (std::find(names.begin(), names.end(), value.as_string()) ==
          names.end()) {
        out.error = "algorithm: unknown algorithm \"" + value.as_string() +
                    "\"; valid: " + core::algorithm_names_joined();
        return out;
      }
      spec.algorithm = value.as_string();
    } else if (key == "family") {
      const auto family = value.is_string()
                              ? gen::family_from_string(value.as_string())
                              : std::nullopt;
      if (!family) {
        out.error = "family: unknown configuration family";
        return out;
      }
      spec.family = *family;
    } else if (key == "ns") {
      if (!read_size_array(value, spec.ns, "ns", out.error)) return out;
    } else if (key == "baseline_ns") {
      if (!read_size_array(value, spec.baseline_ns, "baseline_ns", out.error)) {
        return out;
      }
    } else if (key == "runs") {
      if (!value.is_integer() || value.as_int() <= 0) {
        out.error = "runs must be a positive integer";
        return out;
      }
      spec.runs = static_cast<std::size_t>(value.as_int());
    } else if (key == "seed_base") {
      if (!value.is_integer() || value.as_int() < 0) {
        out.error = "seed_base must be a non-negative integer";
        return out;
      }
      spec.seed_base = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "min_separation") {
      if (!value.is_number() || value.as_double() <= 0.0) {
        out.error = "min_separation must be a positive number";
        return out;
      }
      spec.min_separation = value.as_double();
    } else if (key == "audit_collisions") {
      if (!value.is_bool()) {
        out.error = "audit_collisions must be a boolean";
        return out;
      }
      spec.audit_collisions = value.as_bool();
    } else if (key == "collision_tolerance") {
      if (!value.is_number() || value.as_double() < 0.0) {
        out.error = "collision_tolerance must be a number >= 0";
        return out;
      }
      spec.collision_tolerance = value.as_double();
    } else if (key == "shard_index") {
      if (!value.is_integer() || value.as_int() < 0) {
        out.error = "shard_index must be a non-negative integer";
        return out;
      }
      spec.shard_index = static_cast<std::size_t>(value.as_int());
    } else if (key == "shard_count") {
      if (!value.is_integer() || value.as_int() <= 0) {
        out.error = "shard_count must be a positive integer";
        return out;
      }
      spec.shard_count = static_cast<std::size_t>(value.as_int());
    } else if (key == "max_attempts") {
      if (!value.is_integer() || value.as_int() <= 0) {
        out.error = "max_attempts must be a positive integer";
        return out;
      }
      spec.max_attempts = static_cast<std::size_t>(value.as_int());
    } else if (key == "retry_backoff_ms") {
      if (!value.is_integer() || value.as_int() < 0) {
        out.error = "retry_backoff_ms must be a non-negative integer";
        return out;
      }
      spec.retry_backoff_ms = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "abort_on_collision") {
      if (!value.is_bool()) {
        out.error = "abort_on_collision must be a boolean";
        return out;
      }
      spec.abort_on_collision = value.as_bool();
    } else if (key == "run") {
      std::string run_error;
      const auto config = sim::run_config_from_json(value, &run_error);
      if (!config) {
        out.error = run_error;
        return out;
      }
      spec.run = *config;
    } else {
      out.error = "unknown key \"" + key + "\"";
      return out;
    }
  }
  if (spec.ns.empty()) {
    out.error = "ns must not be empty";
    return out;
  }
  if (spec.shard_index >= spec.shard_count) {
    out.error = "shard_index must be < shard_count";
    return out;
  }
  out.spec = std::move(spec);
  return out;
}

bool save_scenario(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << scenario_to_json(spec);
  return static_cast<bool>(f);
}

ScenarioParse load_scenario(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    ScenarioParse out;
    out.error = "cannot open " + path;
    return out;
  }
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return scenario_from_json(buffer.str());
}

}  // namespace lumen::analysis
