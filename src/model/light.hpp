// lumen_model: the constant-size light palette.
//
// The robots-with-lights model gives every robot one externally visible
// color from an O(1) palette — the only persistent, communicable state a
// robot has. The reproduction's palette has 7 colors (claim C3 in DESIGN.md:
// the count must not grow with N; bench_colors audits this).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace lumen::model {

enum class Light : std::uint8_t {
  kOff = 0,      ///< Initial color of every robot.
  kCorner,       ///< "I am a strict vertex of the hull; I will not move."
  kSide,         ///< "I am on a hull edge's interior" (announced before popping out).
  kInterior,     ///< "I am strictly inside the hull."
  kTransit,      ///< "I INTEND to exit through my gate" — stationary intent,
                 ///< the first half of the beacon handshake.
  kMoving,       ///< "I am IN FLIGHT to my exit slot" — committed movement;
                 ///< everyone whose path could meet mine must yield.
  kLine,         ///< "My whole snapshot is collinear and I am not an endpoint."
  kLineEnd,      ///< "My whole snapshot is collinear and I am an endpoint."
};

inline constexpr std::size_t kLightCount = 8;

inline constexpr std::array<Light, kLightCount> kAllLights = {
    Light::kOff,     Light::kCorner, Light::kSide, Light::kInterior,
    Light::kTransit, Light::kMoving, Light::kLine, Light::kLineEnd,
};

[[nodiscard]] constexpr std::string_view to_string(Light l) noexcept {
  switch (l) {
    case Light::kOff: return "Off";
    case Light::kCorner: return "Corner";
    case Light::kSide: return "Side";
    case Light::kInterior: return "Interior";
    case Light::kTransit: return "Transit";
    case Light::kMoving: return "Moving";
    case Light::kLine: return "Line";
    case Light::kLineEnd: return "LineEnd";
  }
  return "?";
}

}  // namespace lumen::model
