#include "model/frame.hpp"

#include "util/prng.hpp"

#include <cmath>
#include <numbers>

namespace lumen::model {

LocalFrame::LocalFrame(geom::Vec2 origin_world, double rotation, double scale,
                       bool reflected)
    : origin_(origin_world),
      cos_(std::cos(rotation)),
      sin_(std::sin(rotation)),
      scale_(scale),
      reflected_(reflected) {}

LocalFrame LocalFrame::random(geom::Vec2 origin_world, util::Prng& rng) {
  const double rotation = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double log_scale = rng.uniform(-2.0, 2.0);  // scale in [1/4, 4]
  const double scale = std::exp2(log_scale);
  const bool reflected = rng.bernoulli(0.5);
  return LocalFrame{origin_world, rotation, scale, reflected};
}

geom::Vec2 LocalFrame::to_local(geom::Vec2 world) const noexcept {
  return direction_to_local(world - origin_);
}

geom::Vec2 LocalFrame::to_world(geom::Vec2 local) const noexcept {
  return origin_ + direction_to_world(local);
}

geom::Vec2 LocalFrame::direction_to_local(geom::Vec2 d) const noexcept {
  geom::Vec2 r{(cos_ * d.x + sin_ * d.y) * scale_,
               (-sin_ * d.x + cos_ * d.y) * scale_};
  if (reflected_) r.y = -r.y;
  return r;
}

geom::Vec2 LocalFrame::direction_to_world(geom::Vec2 d) const noexcept {
  geom::Vec2 v = d;
  if (reflected_) v.y = -v.y;
  v = v / scale_;
  return {cos_ * v.x - sin_ * v.y, sin_ * v.x + cos_ * v.y};
}

}  // namespace lumen::model
