// lumen_model: Look-phase snapshots.
//
// A snapshot is everything a robot may base a decision on: the positions (in
// its own local frame) and light colors of the robots it can currently see,
// plus its own light. Algorithms receive ONLY a Snapshot — there is no other
// channel — which structurally enforces obliviousness: no identities, no
// history, no global coordinates.
//
// Storage is two parallel arrays with the observer at index 0 (always the
// local-frame origin) and the visible robots at 1.. in visibility-sweep
// order. core::build_view aliases these arrays directly (LocalView's point
// and light spans borrow them), so the whole Look -> Compute pipeline does
// not copy the view again; the historical allocating all_positions() /
// other_positions() accessors are span-returning and free.
#pragma once

#include "geom/vec2.hpp"
#include "geom/visibility.hpp"
#include "model/frame.hpp"
#include "model/light.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace lumen::model {

/// The observer's view of the world at one Look instant.
struct Snapshot {
  Light self_light = Light::kOff;  ///< Observer's own current color.
  /// Local-frame positions: [0] is the observer (the origin), [1..] the
  /// visible robots. Parallel to `lights`. Empty only when default-
  /// constructed; build_snapshot always emplaces the self entry.
  std::vector<geom::Vec2> positions;
  /// lights[0] repeats self_light so the arrays stay index-parallel.
  std::vector<Light> lights;

  /// Observer's own local position — always the local-frame origin by
  /// construction (frames are robot-centered).
  [[nodiscard]] static constexpr geom::Vec2 self_position() noexcept { return {}; }

  /// Number of visible robots (self excluded).
  [[nodiscard]] std::size_t visible_count() const noexcept {
    return positions.empty() ? 0 : positions.size() - 1;
  }

  /// All positions including self (self first). Borrows; no allocation.
  [[nodiscard]] std::span<const geom::Vec2> all_positions() const noexcept {
    return positions;
  }

  /// Positions of visible robots only (self excluded). Borrows.
  [[nodiscard]] std::span<const geom::Vec2> other_positions() const noexcept {
    return positions.empty() ? std::span<const geom::Vec2>{}
                             : std::span<const geom::Vec2>{positions}.subspan(1);
  }

  /// Lights of visible robots (parallel to other_positions()).
  [[nodiscard]] std::span<const Light> other_lights() const noexcept {
    return lights.empty() ? std::span<const Light>{}
                          : std::span<const Light>{lights}.subspan(1);
  }

  /// Resets to an observer-only snapshot with the given self light.
  void reset(Light self) {
    self_light = self;
    positions.clear();
    lights.clear();
    positions.push_back(self_position());
    lights.push_back(self);
  }

  /// Appends one visible robot.
  void push_visible(geom::Vec2 local_position, Light light) {
    positions.push_back(local_position);
    lights.push_back(light);
  }

  /// Number of visible robots whose light is `l`.
  [[nodiscard]] std::size_t count_light(Light l) const noexcept;

  /// True iff any visible robot shows `l`.
  [[nodiscard]] bool any_light(Light l) const noexcept {
    return count_light(l) > 0;
  }
};

/// Reusable workspace for build_snapshot. One instance per engine (or per
/// thread) makes the steady-state Look path allocation-free: the visibility
/// sweep buffers and the id list keep their capacity across Looks.
struct SnapshotScratch {
  geom::VisibilityScratch visibility;
  std::vector<std::size_t> visible_ids;
};

/// Builds the snapshot of `observer` against world-state arrays.
/// `positions[i]` / `lights[i]` are the CURRENT world position (possibly
/// mid-move under ASYNC) and light of robot i. Visibility is obstructed;
/// entries are mapped through `frame` into the observer's local coordinates.
[[nodiscard]] Snapshot build_snapshot(std::span<const geom::Vec2> positions,
                                      std::span<const Light> lights,
                                      std::size_t observer,
                                      const LocalFrame& frame);

/// Buffer-reusing overload: refills `out` in place. Performs no heap
/// allocation once `scratch` and `out` have warmed to the swarm size.
/// Produces exactly the same snapshot as the allocating overload (which
/// delegates to this one).
void build_snapshot(std::span<const geom::Vec2> positions,
                    std::span<const Light> lights, std::size_t observer,
                    const LocalFrame& frame, SnapshotScratch& scratch,
                    Snapshot& out);

/// SoA overload: identical output for positions[j] == {xs[j], ys[j]}. The
/// visibility sweep streams the split coordinate arrays (sim::WorldState's
/// layout) without materialising Vec2 pairs.
void build_snapshot(std::span<const double> xs, std::span<const double> ys,
                    std::span<const Light> lights, std::size_t observer,
                    const LocalFrame& frame, SnapshotScratch& scratch,
                    Snapshot& out);

/// The mapping tail of build_snapshot, split out so callers that already
/// hold the visible id list (the incremental visibility cache) skip the
/// sweep: fills `out` with the observer's self entry plus `visible_ids`
/// mapped through `frame`, in id order.
void fill_snapshot(std::span<const double> xs, std::span<const double> ys,
                   std::span<const Light> lights, std::size_t observer,
                   std::span<const std::size_t> visible_ids,
                   const LocalFrame& frame, Snapshot& out);

}  // namespace lumen::model
