// lumen_model: Look-phase snapshots.
//
// A snapshot is everything a robot may base a decision on: the positions (in
// its own local frame) and light colors of the robots it can currently see,
// plus its own light. Algorithms receive ONLY a Snapshot — there is no other
// channel — which structurally enforces obliviousness: no identities, no
// history, no global coordinates.
#pragma once

#include "geom/vec2.hpp"
#include "geom/visibility.hpp"
#include "model/frame.hpp"
#include "model/light.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace lumen::model {

struct SnapshotEntry {
  geom::Vec2 position;  ///< Local-frame position of a visible robot.
  Light light;          ///< Its light color at Look time.
};

/// The observer's view of the world at one Look instant.
struct Snapshot {
  Light self_light = Light::kOff;       ///< Observer's own current color.
  std::vector<SnapshotEntry> visible;   ///< Visible robots, self EXCLUDED.

  /// Observer's own local position — always the local-frame origin by
  /// construction (frames are robot-centered).
  [[nodiscard]] static constexpr geom::Vec2 self_position() noexcept { return {}; }

  /// All positions including self (self first). Allocates.
  [[nodiscard]] std::vector<geom::Vec2> all_positions() const;

  /// Positions of visible robots only (self excluded). Allocates.
  [[nodiscard]] std::vector<geom::Vec2> other_positions() const;

  /// Number of visible robots whose light is `l`.
  [[nodiscard]] std::size_t count_light(Light l) const noexcept;

  /// True iff any visible robot shows `l`.
  [[nodiscard]] bool any_light(Light l) const noexcept {
    return count_light(l) > 0;
  }
};

/// Reusable workspace for build_snapshot. One instance per engine (or per
/// thread) makes the steady-state Look path allocation-free: the visibility
/// sweep buffers and the id list keep their capacity across Looks.
struct SnapshotScratch {
  geom::VisibilityScratch visibility;
  std::vector<std::size_t> visible_ids;
};

/// Builds the snapshot of `observer` against world-state arrays.
/// `positions[i]` / `lights[i]` are the CURRENT world position (possibly
/// mid-move under ASYNC) and light of robot i. Visibility is obstructed;
/// entries are mapped through `frame` into the observer's local coordinates.
[[nodiscard]] Snapshot build_snapshot(std::span<const geom::Vec2> positions,
                                      std::span<const Light> lights,
                                      std::size_t observer,
                                      const LocalFrame& frame);

/// Buffer-reusing overload: refills `out` in place. Performs no heap
/// allocation once `scratch` and `out.visible` have warmed to the swarm
/// size. Produces exactly the same snapshot as the allocating overload
/// (which delegates to this one).
void build_snapshot(std::span<const geom::Vec2> positions,
                    std::span<const Light> lights, std::size_t observer,
                    const LocalFrame& frame, SnapshotScratch& scratch,
                    Snapshot& out);

}  // namespace lumen::model
