#include "model/snapshot.hpp"

#include "geom/visibility.hpp"

namespace lumen::model {

std::vector<geom::Vec2> Snapshot::all_positions() const {
  std::vector<geom::Vec2> pts;
  pts.reserve(visible.size() + 1);
  pts.push_back(self_position());
  for (const auto& e : visible) pts.push_back(e.position);
  return pts;
}

std::vector<geom::Vec2> Snapshot::other_positions() const {
  std::vector<geom::Vec2> pts;
  pts.reserve(visible.size());
  for (const auto& e : visible) pts.push_back(e.position);
  return pts;
}

std::size_t Snapshot::count_light(Light l) const noexcept {
  std::size_t c = 0;
  for (const auto& e : visible) {
    if (e.light == l) ++c;
  }
  return c;
}

Snapshot build_snapshot(std::span<const geom::Vec2> positions,
                        std::span<const Light> lights, std::size_t observer,
                        const LocalFrame& frame) {
  Snapshot snap;
  snap.self_light = lights[observer];
  const auto visible_ids = geom::visible_from(positions, observer);
  snap.visible.reserve(visible_ids.size());
  for (const std::size_t j : visible_ids) {
    snap.visible.push_back(SnapshotEntry{frame.to_local(positions[j]), lights[j]});
  }
  return snap;
}

}  // namespace lumen::model
