#include "model/snapshot.hpp"

#include "geom/visibility.hpp"

namespace lumen::model {

std::vector<geom::Vec2> Snapshot::all_positions() const {
  std::vector<geom::Vec2> pts;
  pts.reserve(visible.size() + 1);
  pts.push_back(self_position());
  for (const auto& e : visible) pts.push_back(e.position);
  return pts;
}

std::vector<geom::Vec2> Snapshot::other_positions() const {
  std::vector<geom::Vec2> pts;
  pts.reserve(visible.size());
  for (const auto& e : visible) pts.push_back(e.position);
  return pts;
}

std::size_t Snapshot::count_light(Light l) const noexcept {
  std::size_t c = 0;
  for (const auto& e : visible) {
    if (e.light == l) ++c;
  }
  return c;
}

Snapshot build_snapshot(std::span<const geom::Vec2> positions,
                        std::span<const Light> lights, std::size_t observer,
                        const LocalFrame& frame) {
  Snapshot snap;
  SnapshotScratch scratch;
  build_snapshot(positions, lights, observer, frame, scratch, snap);
  return snap;
}

void build_snapshot(std::span<const geom::Vec2> positions,
                    std::span<const Light> lights, std::size_t observer,
                    const LocalFrame& frame, SnapshotScratch& scratch,
                    Snapshot& out) {
  out.self_light = lights[observer];
  geom::visible_from(positions, observer, scratch.visibility,
                     scratch.visible_ids);
  out.visible.clear();
  out.visible.reserve(scratch.visible_ids.size());
  for (const std::size_t j : scratch.visible_ids) {
    out.visible.push_back(SnapshotEntry{frame.to_local(positions[j]), lights[j]});
  }
}

}  // namespace lumen::model
