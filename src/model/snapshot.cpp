#include "model/snapshot.hpp"

#include "geom/visibility.hpp"

namespace lumen::model {

std::size_t Snapshot::count_light(Light l) const noexcept {
  std::size_t c = 0;
  for (std::size_t k = 1; k < lights.size(); ++k) {
    if (lights[k] == l) ++c;
  }
  return c;
}

Snapshot build_snapshot(std::span<const geom::Vec2> positions,
                        std::span<const Light> lights, std::size_t observer,
                        const LocalFrame& frame) {
  Snapshot snap;
  SnapshotScratch scratch;
  build_snapshot(positions, lights, observer, frame, scratch, snap);
  return snap;
}

void build_snapshot(std::span<const geom::Vec2> positions,
                    std::span<const Light> lights, std::size_t observer,
                    const LocalFrame& frame, SnapshotScratch& scratch,
                    Snapshot& out) {
  geom::visible_from(positions, observer, scratch.visibility,
                     scratch.visible_ids);
  out.reset(lights[observer]);
  out.positions.reserve(scratch.visible_ids.size() + 1);
  out.lights.reserve(scratch.visible_ids.size() + 1);
  for (const std::size_t j : scratch.visible_ids) {
    out.push_visible(frame.to_local(positions[j]), lights[j]);
  }
}

void build_snapshot(std::span<const double> xs, std::span<const double> ys,
                    std::span<const Light> lights, std::size_t observer,
                    const LocalFrame& frame, SnapshotScratch& scratch,
                    Snapshot& out) {
  geom::visible_from(xs, ys, observer, scratch.visibility,
                     scratch.visible_ids);
  fill_snapshot(xs, ys, lights, observer, scratch.visible_ids, frame, out);
}

void fill_snapshot(std::span<const double> xs, std::span<const double> ys,
                   std::span<const Light> lights, std::size_t observer,
                   std::span<const std::size_t> visible_ids,
                   const LocalFrame& frame, Snapshot& out) {
  out.reset(lights[observer]);
  out.positions.reserve(visible_ids.size() + 1);
  out.lights.reserve(visible_ids.size() + 1);
  for (const std::size_t j : visible_ids) {
    out.push_visible(frame.to_local(geom::Vec2{xs[j], ys[j]}), lights[j]);
  }
}

}  // namespace lumen::model
