// lumen_model: private local coordinate frames.
//
// Robots share no compass, no origin, no unit length, and not even
// handedness. Each robot perceives the world through a private similarity
// transform (rotation + uniform scale + translation, optionally composed
// with a reflection). Snapshots are delivered to algorithms in LOCAL
// coordinates and the returned move target is mapped back — so an algorithm
// that is not invariant under similarities will visibly misbehave, and the
// frame-randomization tests catch it.
#pragma once

#include "geom/vec2.hpp"

namespace lumen::util {
class Prng;
}

namespace lumen::model {

/// Orientation-preserving-or-reversing similarity transform.
/// world -> local:  p_local = S * R * (p_world - origin)   (then y-flip if
/// reflected), with S = uniform scale, R = rotation.
class LocalFrame {
 public:
  /// Identity frame (local == world).
  LocalFrame() = default;

  /// `origin_world`: the world point that maps to local (0,0).
  /// `rotation`: radians; `scale`: local units per world unit (> 0);
  /// `reflected`: flips local y (left-handed frame).
  LocalFrame(geom::Vec2 origin_world, double rotation, double scale, bool reflected);

  /// Uniformly random frame centered at `origin_world`: rotation in [0,2pi),
  /// scale log-uniform in [0.25, 4], reflection with probability 1/2.
  static LocalFrame random(geom::Vec2 origin_world, util::Prng& rng);

  [[nodiscard]] geom::Vec2 to_local(geom::Vec2 world) const noexcept;
  [[nodiscard]] geom::Vec2 to_world(geom::Vec2 local) const noexcept;

  /// Maps a world-space displacement (no translation applied).
  [[nodiscard]] geom::Vec2 direction_to_local(geom::Vec2 world_dir) const noexcept;
  [[nodiscard]] geom::Vec2 direction_to_world(geom::Vec2 local_dir) const noexcept;

  [[nodiscard]] geom::Vec2 origin() const noexcept { return origin_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] bool reflected() const noexcept { return reflected_; }

 private:
  geom::Vec2 origin_{};
  double cos_ = 1.0;
  double sin_ = 0.0;
  double scale_ = 1.0;
  bool reflected_ = false;
};

}  // namespace lumen::model
