// lumen_model: the algorithm interface of the robots-with-lights model.
//
// An Algorithm is the Compute phase: a PURE function from a Snapshot to an
// Action (stay or move to a local-frame target, plus the next light color).
// Instances are shared across all robots and all activations — they carry no
// per-robot state, which is exactly the obliviousness the model demands.
#pragma once

#include "geom/vec2.hpp"
#include "model/light.hpp"
#include "model/snapshot.hpp"

#include <memory>
#include <span>
#include <string_view>

namespace lumen::model {

/// Result of one Compute: where to go (local frame) and what to show.
struct Action {
  geom::Vec2 target;          ///< Local-frame destination; origin means stay.
  Light light = Light::kOff;  ///< Color to display from now on.

  [[nodiscard]] bool moves() const noexcept { return target != geom::Vec2{}; }

  static Action stay(Light light) noexcept { return {geom::Vec2{}, light}; }
  static Action move_to(geom::Vec2 target, Light light) noexcept {
    return {target, light};
  }
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// The Compute phase. Must be deterministic in `snap` alone.
  [[nodiscard]] virtual Action compute(const Snapshot& snap) const = 0;

  /// Stable identifier used in tables and the registry.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The colors this algorithm may ever emit (its O(1) palette). The color
  /// audit monitor checks executions against this set.
  [[nodiscard]] virtual std::span<const Light> palette() const noexcept = 0;
};

using AlgorithmPtr = std::shared_ptr<const Algorithm>;

}  // namespace lumen::model
