// lumen_model: the algorithm interface of the robots-with-lights model.
//
// An Algorithm is the Compute phase: a PURE function from a Snapshot to an
// Action (stay or move to a local-frame target, plus the next light color).
// Instances are shared across all robots and all activations — they carry no
// per-robot state, which is exactly the obliviousness the model demands.
#pragma once

#include "geom/vec2.hpp"
#include "model/light.hpp"
#include "model/snapshot.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace lumen::model {

/// The space an algorithm's Move phase operates in. Declared per algorithm;
/// the engine adapts its commit path accordingly (see DESIGN.md §14):
///  * kContinuous — the classic plane: targets are taken verbatim and moves
///    travel the straight segment to them.
///  * kGrid — the integer lattice (Kim & Katayama, arXiv:2306.08354):
///    the engine snaps initial positions and world-frame targets to the
///    nearest lattice point and each committed move travels ONE full axis
///    leg (dominant axis first), so trajectories are rectilinear and every
///    committed configuration is lattice-valued. The motion adversary does
///    not apply (grid moves are rigid by definition).
enum class MotionModel : std::uint8_t { kContinuous, kGrid };

[[nodiscard]] constexpr std::string_view to_string(MotionModel m) noexcept {
  return m == MotionModel::kGrid ? "grid" : "continuous";
}

/// Result of one Compute: where to go (local frame) and what to show.
struct Action {
  geom::Vec2 target;          ///< Local-frame destination; origin means stay.
  Light light = Light::kOff;  ///< Color to display from now on.

  [[nodiscard]] bool moves() const noexcept { return target != geom::Vec2{}; }

  static Action stay(Light light) noexcept { return {geom::Vec2{}, light}; }
  static Action move_to(geom::Vec2 target, Light light) noexcept {
    return {target, light};
  }
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// The Compute phase. Must be deterministic in `snap` alone.
  [[nodiscard]] virtual Action compute(const Snapshot& snap) const = 0;

  /// Stable identifier used in tables and the registry.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The colors this algorithm may ever emit (its O(1) palette). The color
  /// audit monitor checks executions against this set.
  [[nodiscard]] virtual std::span<const Light> palette() const noexcept = 0;

  /// The motion space this algorithm's targets live in. The engine gates its
  /// commit path on this; continuous algorithms take the exact historical
  /// code path (golden digests are bit-identical).
  [[nodiscard]] virtual MotionModel motion_model() const noexcept {
    return MotionModel::kContinuous;
  }

  /// The named success predicate a converged configuration is audited
  /// against (resolved by sim::verify_success): "complete-visibility"
  /// (distinct + strictly convex + mutually visible — the paper's C1) or
  /// "mutual-visibility" (distinct + mutually visible, no convexity
  /// requirement — Di Luna et al., arXiv:1405.2430).
  [[nodiscard]] virtual std::string_view success_predicate() const noexcept {
    return "complete-visibility";
  }
};

using AlgorithmPtr = std::shared_ptr<const Algorithm>;

}  // namespace lumen::model
