#include "sim/streaming_collision.hpp"

#include "geom/segment.hpp"

#include <algorithm>
#include <limits>

namespace lumen::sim {

void StreamingCollisionMonitor::on_run_begin(const WorldView& world) {
  robots_.assign(world.size(), RobotState{});
  for (std::size_t i = 0; i < world.size(); ++i) {
    robots_[i].idle_pos = world.position(i);
  }
  report_ = CollisionReport{};
  sealed_ = false;
}

void StreamingCollisionMonitor::on_commit(const CommitEvent& event,
                                          const WorldView&) {
  if (event.move_started == nullptr) return;
  RobotState& rs = robots_[event.robot];
  const MoveSegment& move = *event.move_started;
  // The idle stretch before this move ends now; a zero-length gap produces
  // no piece (matching pieces_of's strict `m.t0 > t`).
  if (move.t0 > rs.open_start) {
    close_piece(event.robot,
                detail::Piece{rs.open_start, move.t0, rs.idle_pos, rs.idle_pos},
                /*is_move=*/false);
  }
  rs.in_flight = true;
  rs.flight = move;
  rs.open_start = move.t0;
  prune();
}

void StreamingCollisionMonitor::on_move_complete(const MoveSegment& move,
                                                 const WorldView&) {
  RobotState& rs = robots_[move.robot];
  close_piece(move.robot, detail::Piece{move.t0, move.t1, move.from, move.to},
              /*is_move=*/true);
  rs.in_flight = false;
  rs.idle_pos = move.to;
  rs.open_start = move.t1;
  prune();
}

void StreamingCollisionMonitor::on_run_end(const WorldView& world) {
  if (sealed_) return;
  const double horizon = world.time;
  // Close every tail in robot-index order. Pieces are only appended during
  // this sweep (no pruning), so each tail pair is evaluated exactly once.
  for (std::size_t r = 0; r < robots_.size(); ++r) {
    RobotState& rs = robots_[r];
    if (rs.in_flight) {
      // Aborted mid-move: the move never completed, so (like the post-hoc
      // audit, whose log lacks it) the robot is modelled as parked at its
      // committed position for the remainder. See header for the caveat.
      if (rs.flight.t0 < horizon) {
        close_piece(r, detail::Piece{rs.flight.t0, horizon, rs.flight.from,
                                     rs.flight.from},
                    /*is_move=*/false);
      }
      rs.in_flight = false;
    } else if (rs.open_start < horizon) {
      close_piece(r, detail::Piece{rs.open_start, horizon, rs.idle_pos,
                                   rs.idle_pos},
                  /*is_move=*/false);
    }
  }
  sealed_ = true;
}

std::size_t StreamingCollisionMonitor::retained_pieces() const noexcept {
  std::size_t total = 0;
  for (const RobotState& rs : robots_) total += rs.closed.size();
  return total;
}

void StreamingCollisionMonitor::close_piece(std::size_t r,
                                            const detail::Piece& piece,
                                            bool is_move) {
  for (std::size_t j = 0; j < robots_.size(); ++j) {
    if (j == r) continue;
    for (const ClosedPiece& other : robots_[j].closed) {
      const detail::Piece& pb = other.piece;
      const double lo = std::max(piece.t0, pb.t0);
      const double hi = std::min(piece.t1, pb.t1);
      if (lo <= hi) {
        // Canonical pair order (i < j) so min_distance_linear_motion sees
        // the same argument order as the post-hoc merge-walk.
        const detail::Piece& pa = r < j ? piece : pb;
        const detail::Piece& pc = r < j ? pb : piece;
        double t_at = lo;
        const double d = min_distance_linear_motion(
            detail::piece_at(pa, lo), detail::piece_at(pa, hi),
            detail::piece_at(pc, lo), detail::piece_at(pc, hi), lo, hi, &t_at);
        if (d < report_.min_separation) report_.min_separation = d;
        if (d <= tolerance_) {
          note_incident(std::min(r, j), std::max(r, j), t_at, d, "position",
                        true);
        }
        // Path-crossing audit among time-overlapping moves; zero-length
        // moves are skipped (engine moves are always of positive length).
        if (is_move && other.is_move && piece.p0 != piece.p1 &&
            pb.p0 != pb.p1 &&
            geom::segments_cross(geom::Segment{piece.p0, piece.p1},
                                 geom::Segment{pb.p0, pb.p1})) {
          note_incident(r, j, lo, 0.0, "path-crossing", false);
        }
      }
    }
  }
  robots_[r].closed.push_back(ClosedPiece{piece, is_move});
}

void StreamingCollisionMonitor::prune() {
  // A closed piece can still matter only if some not-yet-closed piece can
  // reach back to it; the earliest such reach is the earliest open-piece
  // start across robots. Keep touching pieces (t1 == threshold): touching
  // windows count as overlapping (lo <= hi).
  double threshold = std::numeric_limits<double>::infinity();
  for (const RobotState& rs : robots_) {
    threshold = std::min(threshold, rs.open_start);
  }
  for (RobotState& rs : robots_) {
    while (!rs.closed.empty() && rs.closed.front().piece.t1 < threshold) {
      rs.closed.pop_front();
    }
  }
}

void StreamingCollisionMonitor::note_incident(std::size_t a, std::size_t b,
                                              double time, double separation,
                                              const char* kind,
                                              bool is_position) {
  if (is_position) {
    ++report_.position_collisions;
  } else {
    ++report_.path_crossings;
  }
  if (!report_.first_incident) {
    report_.first_incident = CollisionIncident{a, b, time, separation, kind};
  }
}

}  // namespace lumen::sim
