#include "sim/trajectory.hpp"

#include <algorithm>
#include <stdexcept>

namespace lumen::sim {

Trajectory::Trajectory(geom::Vec2 initial, std::vector<MoveSegment> moves)
    : initial_(initial), moves_(std::move(moves)) {
  std::stable_sort(moves_.begin(), moves_.end(),
                   [](const MoveSegment& a, const MoveSegment& b) { return a.t0 < b.t0; });
  // Contract: segments of one robot must not overlap in time and must chain
  // spatially (each starts where the previous ended).
  for (std::size_t i = 1; i < moves_.size(); ++i) {
    if (moves_[i].t0 < moves_[i - 1].t1) {
      throw std::invalid_argument("Trajectory: overlapping move segments");
    }
  }
}

geom::Vec2 Trajectory::at(double t) const noexcept {
  geom::Vec2 pos = initial_;
  for (const auto& m : moves_) {
    if (t < m.t0) return pos;
    if (t <= m.t1) return m.at(t);
    pos = m.to;
  }
  return pos;
}

geom::Vec2 Trajectory::final() const noexcept {
  return moves_.empty() ? initial_ : moves_.back().to;
}

double Trajectory::total_distance() const noexcept {
  double d = 0.0;
  for (const auto& m : moves_) d += m.length();
  return d;
}

std::vector<Trajectory> build_trajectories(std::span<const geom::Vec2> initial_positions,
                                           std::span<const MoveSegment> moves) {
  std::vector<std::vector<MoveSegment>> per_robot(initial_positions.size());
  for (const auto& m : moves) {
    if (m.robot >= per_robot.size()) {
      throw std::out_of_range("build_trajectories: robot index out of range");
    }
    per_robot[m.robot].push_back(m);
  }
  std::vector<Trajectory> out;
  out.reserve(initial_positions.size());
  for (std::size_t i = 0; i < initial_positions.size(); ++i) {
    out.emplace_back(initial_positions[i], std::move(per_robot[i]));
  }
  return out;
}

}  // namespace lumen::sim
