// The execution engines.
//
// ASYNC: a discrete-event loop over per-robot phase events. Each robot
// cycles Wait -> Look (instantaneous snapshot; other robots may be observed
// MID-MOVE at their interpolated positions) -> Compute (the action is
// derived from the stale snapshot and committed, with the light change,
// after the adversarial compute delay) -> Move (constant speed, rigid).
//
// SYNC (FSYNC/SSYNC): discrete rounds; all robots activated in a round Look
// at the same configuration, then apply their moves and light changes
// simultaneously. Moves are recorded as unit-interval segments so the
// collision monitor treats same-round movers as concurrent.
//
// Both engines detect quiescence (every robot completed a cycle that
// observed the final configuration and chose to do nothing) and reconstruct
// epochs from the recorded cycle timeline.
#include "sim/run.hpp"

#include "geom/hull.hpp"
#include "model/frame.hpp"
#include "model/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace lumen::sim {

std::string_view to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::kFsync: return "FSYNC";
    case SchedulerKind::kSsync: return "SSYNC";
    case SchedulerKind::kAsync: return "ASYNC";
  }
  return "?";
}

namespace {

using geom::Vec2;
using model::Light;

std::size_t light_index(Light l) noexcept { return static_cast<std::size_t>(l); }

/// Census of strict hull corners vs the rest.
HullSample hull_census(double time, std::span<const Vec2> positions) {
  const auto hull = geom::convex_hull_indices(positions);
  HullSample s;
  s.time = time;
  // A degenerate (collinear) hull reports its two extremes as "corners".
  s.corners = hull.size();
  s.non_corners = positions.size() - std::min(hull.size(), positions.size());
  return s;
}

/// Frame parameters that persist when refresh_frames_each_look is false.
struct FrameParams {
  double rotation = 0.0;
  double scale = 1.0;
  bool reflected = false;
};

// ---------------------------------------------------------------------------
// ASYNC engine
// ---------------------------------------------------------------------------

enum class PhaseEvent { kLook, kCommit, kMoveDone };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< FIFO tie-break for simultaneous events.
  std::size_t robot = 0;
  PhaseEvent type = PhaseEvent::kLook;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class AsyncEngine {
 public:
  AsyncEngine(const model::Algorithm& algorithm, std::span<const Vec2> initial,
              const RunConfig& config)
      : algo_(algorithm),
        config_(config),
        n_(initial.size()),
        rng_(config.seed),
        adversary_(sched::make_adversary(config.adversary)),
        timeline_(initial.size()) {
    positions_.assign(initial.begin(), initial.end());
    lights_.assign(n_, Light::kOff);
    moving_.assign(n_, false);
    current_move_.assign(n_, MoveSegment{});
    cycle_start_.assign(n_, 0.0);
    look_time_.assign(n_, 0.0);
    pending_.assign(n_, model::Action{});
    pending_null_.assign(n_, true);
    timing_.assign(n_, sched::PhaseTiming{});
    last_null_look_.assign(n_, -1.0);
    in_wait_.assign(n_, true);
    frame_params_.reserve(n_);
    util::Prng frame_rng = rng_.split("frames");
    for (std::size_t i = 0; i < n_; ++i) {
      frame_params_.push_back(FrameParams{
          frame_rng.uniform(0.0, 6.283185307179586),
          std::exp2(frame_rng.uniform(-2.0, 2.0)),
          frame_rng.bernoulli(0.5),
      });
    }
    schedule_rng_ = rng_.split("schedule");
    look_frame_rng_ = rng_.split("look-frames");
  }

  RunResult run() {
    RunResult result;
    result.initial_positions = positions_;
    result.lights_seen[light_index(Light::kOff)] = true;
    if (config_.record_hull_history) {
      result.hull_history.push_back(hull_census(0.0, positions_));
    }
    if (n_ == 0) {
      result.converged = true;
      return result;
    }

    // Boot every robot's first cycle.
    for (std::size_t i = 0; i < n_; ++i) start_cycle(i, 0.0);

    const std::size_t cycle_cap = config_.max_cycles_per_robot * n_;
    bool quiescent = false;
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      switch (ev.type) {
        case PhaseEvent::kLook: handle_look(ev.robot); break;
        case PhaseEvent::kCommit: handle_commit(ev.robot, result); break;
        case PhaseEvent::kMoveDone: handle_move_done(ev.robot, result); break;
      }
      if (ev.type != PhaseEvent::kLook && is_quiescent()) {
        quiescent = true;
        break;
      }
      if (total_cycles_ >= cycle_cap) break;
    }

    result.converged = quiescent;
    result.final_time = now_;
    result.total_cycles = total_cycles_;
    result.final_positions = positions_;
    result.final_lights = lights_;
    result.moves = std::move(move_log_);
    result.total_moves = result.moves.size();
    for (const auto& m : result.moves) result.total_distance += m.length();
    // Convergence time is the LAST state change, not the (later) instant at
    // which quiescence became detectable; count one extra epoch so the final
    // observing cycle is included, matching the theoretical measure.
    result.epochs = timeline_.count_epochs(last_change_) + 1;
    return result;
  }

 private:
  void push_event(double time, std::size_t robot, PhaseEvent type) {
    events_.push(Event{time, seq_++, robot, type});
  }

  void start_cycle(std::size_t robot, double time) {
    timing_[robot] = adversary_->sample(robot, cycle_counter_[0], schedule_rng_);
    cycle_start_[robot] = time;
    in_wait_[robot] = true;
    push_event(time + timing_[robot].wait, robot, PhaseEvent::kLook);
  }

  Vec2 position_at(std::size_t robot, double t) const noexcept {
    return moving_[robot] ? current_move_[robot].at(t) : positions_[robot];
  }

  void handle_look(std::size_t robot) {
    in_wait_[robot] = false;
    look_time_[robot] = now_;
    // World positions at this instant (movers interpolated).
    std::vector<Vec2> world(n_);
    for (std::size_t j = 0; j < n_; ++j) world[j] = position_at(j, now_);
    model::LocalFrame frame = make_frame(robot, world[robot]);
    const model::Snapshot snap =
        model::build_snapshot(world, lights_, robot, frame);
    // Compute is deterministic on the snapshot, so evaluating it now and
    // committing later is equivalent to evaluating at commit time.
    const model::Action action = algo_.compute(snap);
    pending_[robot] = model::Action{frame.to_world(action.target) , action.light};
    // Encode "stay" in world terms: a stay action keeps the world position.
    if (!action.moves()) pending_[robot].target = world[robot];
    pending_null_[robot] = !action.moves() && action.light == lights_[robot];
    push_event(now_ + timing_[robot].compute, robot, PhaseEvent::kCommit);
  }

  /// Applies the non-rigid adversary to an intended destination: the robot
  /// is stopped somewhere along the segment, but always progresses by at
  /// least min(nonrigid_min_progress, full distance).
  Vec2 apply_motion_adversary(Vec2 from, Vec2 to) {
    if (config_.rigid_moves) return to;
    const double dist = geom::distance(from, to);
    if (dist <= config_.nonrigid_min_progress) return to;
    const double fraction = schedule_rng_.uniform(0.0, 1.0);
    const double travelled =
        std::max(config_.nonrigid_min_progress, fraction * dist);
    return geom::lerp(from, to, travelled / dist);
  }

  void handle_commit(std::size_t robot, RunResult& result) {
    const model::Action action = pending_[robot];
    const bool light_changed = lights_[robot] != action.light;
    lights_[robot] = action.light;
    result.lights_seen[light_index(action.light)] = true;
    const Vec2 from = positions_[robot];
    const Vec2 to = apply_motion_adversary(from, action.target);
    const double dist = geom::distance(from, to);
    if (light_changed) last_change_ = now_;
    if (dist > 0.0) {
      last_change_ = now_;
      const double duration = timing_[robot].move_duration;
      current_move_[robot] = MoveSegment{robot, now_, now_ + duration, from, to};
      moving_[robot] = true;
      push_event(now_ + duration, robot, PhaseEvent::kMoveDone);
    } else {
      // Null move: the cycle ends here.
      if (!light_changed) last_null_look_[robot] = look_time_[robot];
      finish_cycle(robot, result, /*moved=*/false);
    }
  }

  void handle_move_done(std::size_t robot, RunResult& result) {
    positions_[robot] = current_move_[robot].to;
    moving_[robot] = false;
    move_log_.push_back(current_move_[robot]);
    last_change_ = now_;
    if (config_.record_hull_history) {
      std::vector<Vec2> world(n_);
      for (std::size_t j = 0; j < n_; ++j) world[j] = position_at(j, now_);
      result.hull_history.push_back(hull_census(now_, world));
    }
    finish_cycle(robot, result, /*moved=*/true);
  }

  void finish_cycle(std::size_t robot, RunResult&, bool) {
    timeline_.add_cycle(sched::CycleRecord{robot, cycle_start_[robot], now_});
    ++total_cycles_;
    ++cycle_counter_[0];
    start_cycle(robot, now_);
  }

  // Quiescent iff no robot can change the world state anymore:
  //  - nobody is moving,
  //  - any robot between Look and Commit has a null action pending,
  //  - every robot has completed a null cycle that observed the
  //    post-last-change configuration (so all future cycles are null too,
  //    given a frame-invariant algorithm).
  [[nodiscard]] bool is_quiescent() const noexcept {
    for (std::size_t i = 0; i < n_; ++i) {
      if (moving_[i]) return false;
      if (!in_wait_[i] && !pending_null_[i]) return false;
      if (last_null_look_[i] < last_change_) return false;
    }
    return true;
  }

  model::LocalFrame make_frame(std::size_t robot, Vec2 origin) {
    if (config_.refresh_frames_each_look) {
      return model::LocalFrame::random(origin, look_frame_rng_);
    }
    const FrameParams& p = frame_params_[robot];
    return model::LocalFrame{origin, p.rotation, p.scale, p.reflected};
  }

  const model::Algorithm& algo_;
  const RunConfig& config_;
  std::size_t n_;
  util::Prng rng_;
  util::Prng schedule_rng_{0};
  util::Prng look_frame_rng_{0};
  std::unique_ptr<sched::Adversary> adversary_;
  sched::EpochTimeline timeline_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
  double last_change_ = 0.0;
  std::size_t total_cycles_ = 0;
  std::array<std::uint64_t, 1> cycle_counter_{};

  std::vector<Vec2> positions_;
  std::vector<Light> lights_;
  std::vector<bool> moving_;
  std::vector<MoveSegment> current_move_;
  std::vector<double> cycle_start_;
  std::vector<double> look_time_;
  std::vector<model::Action> pending_;
  std::vector<bool> pending_null_;
  std::vector<sched::PhaseTiming> timing_;
  std::vector<double> last_null_look_;
  std::vector<bool> in_wait_;
  std::vector<FrameParams> frame_params_;
  std::vector<MoveSegment> move_log_;
};

// ---------------------------------------------------------------------------
// SYNC engine (FSYNC / SSYNC)
// ---------------------------------------------------------------------------

class SyncEngine {
 public:
  SyncEngine(const model::Algorithm& algorithm, std::span<const Vec2> initial,
             const RunConfig& config)
      : algo_(algorithm),
        config_(config),
        n_(initial.size()),
        rng_(config.seed),
        timeline_(initial.size()) {
    positions_.assign(initial.begin(), initial.end());
    lights_.assign(n_, Light::kOff);
    const sched::ActivationKind kind = config.scheduler == SchedulerKind::kFsync
                                           ? sched::ActivationKind::kAll
                                           : config.activation;
    policy_ = sched::make_activation(kind);
    activation_rng_ = rng_.split("activation");
    motion_rng_ = rng_.split("motion");
    look_frame_rng_ = rng_.split("look-frames");
    util::Prng frame_rng = rng_.split("frames");
    frame_params_.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      frame_params_.push_back(FrameParams{
          frame_rng.uniform(0.0, 6.283185307179586),
          std::exp2(frame_rng.uniform(-2.0, 2.0)),
          frame_rng.bernoulli(0.5),
      });
    }
  }

  RunResult run() {
    RunResult result;
    result.initial_positions = positions_;
    result.lights_seen[light_index(Light::kOff)] = true;
    if (config_.record_hull_history) {
      result.hull_history.push_back(hull_census(0.0, positions_));
    }
    if (n_ == 0) {
      result.converged = true;
      return result;
    }

    std::vector<double> last_null_look(n_, -1.0);
    double last_change = 0.0;
    const std::size_t round_cap = config_.max_cycles_per_robot;
    std::uint64_t round = 0;
    bool quiescent = false;
    while (round < round_cap) {
      const double t0 = static_cast<double>(round);
      const double t1 = t0 + 1.0;
      const auto active = policy_->activate(n_, round, activation_rng_);
      // All activated robots Look at the same pre-round configuration.
      std::vector<model::Action> world_actions(active.size());
      for (std::size_t k = 0; k < active.size(); ++k) {
        const std::size_t r = active[k];
        model::LocalFrame frame = make_frame(r, positions_[r]);
        const model::Snapshot snap =
            model::build_snapshot(positions_, lights_, r, frame);
        const model::Action a = algo_.compute(snap);
        world_actions[k] =
            model::Action{a.moves() ? frame.to_world(a.target) : positions_[r], a.light};
      }
      // Simultaneous application (non-rigid stopping applied per robot).
      for (std::size_t k = 0; k < active.size(); ++k) {
        const std::size_t r = active[k];
        model::Action a = world_actions[k];
        if (!config_.rigid_moves && a.target != positions_[r]) {
          const double dist = geom::distance(positions_[r], a.target);
          if (dist > config_.nonrigid_min_progress) {
            const double travelled = std::max(config_.nonrigid_min_progress,
                                              motion_rng_.uniform(0.0, 1.0) * dist);
            a.target = geom::lerp(positions_[r], a.target, travelled / dist);
          }
        }
        const bool light_changed = lights_[r] != a.light;
        const bool moved = a.target != positions_[r];
        lights_[r] = a.light;
        result.lights_seen[light_index(a.light)] = true;
        if (moved) {
          move_log_.push_back(MoveSegment{r, t0, t1, positions_[r], a.target});
          positions_[r] = a.target;
        }
        if (light_changed || moved) {
          last_change = t1;
        } else {
          last_null_look[r] = t0;
        }
        timeline_.add_cycle(sched::CycleRecord{r, t0, t1});
        ++total_cycles_;
      }
      if (config_.record_hull_history) {
        result.hull_history.push_back(hull_census(t1, positions_));
      }
      ++round;
      quiescent = true;
      for (std::size_t i = 0; i < n_; ++i) {
        if (last_null_look[i] < last_change) {
          quiescent = false;
          break;
        }
      }
      if (quiescent) break;
    }

    result.converged = quiescent;
    result.rounds = round;
    result.final_time = static_cast<double>(round);
    result.total_cycles = total_cycles_;
    result.final_positions = positions_;
    result.final_lights = lights_;
    result.moves = std::move(move_log_);
    result.total_moves = result.moves.size();
    for (const auto& m : result.moves) result.total_distance += m.length();
    result.epochs = timeline_.count_epochs(last_change) + 1;
    return result;
  }

 private:
  model::LocalFrame make_frame(std::size_t robot, Vec2 origin) {
    if (config_.refresh_frames_each_look) {
      return model::LocalFrame::random(origin, look_frame_rng_);
    }
    const FrameParams& p = frame_params_[robot];
    return model::LocalFrame{origin, p.rotation, p.scale, p.reflected};
  }

  const model::Algorithm& algo_;
  const RunConfig& config_;
  std::size_t n_;
  util::Prng rng_;
  util::Prng activation_rng_{0};
  util::Prng look_frame_rng_{0};
  util::Prng motion_rng_{0};
  std::unique_ptr<sched::ActivationPolicy> policy_;
  sched::EpochTimeline timeline_;
  std::vector<Vec2> positions_;
  std::vector<Light> lights_;
  std::vector<FrameParams> frame_params_;
  std::vector<MoveSegment> move_log_;
  std::size_t total_cycles_ = 0;
};

}  // namespace

RunResult run_simulation(const model::Algorithm& algorithm,
                         std::span<const Vec2> initial, const RunConfig& config) {
  if (config.scheduler == SchedulerKind::kAsync) {
    AsyncEngine engine(algorithm, initial, config);
    return engine.run();
  }
  SyncEngine engine(algorithm, initial, config);
  return engine.run();
}

}  // namespace lumen::sim
