// The execution drivers.
//
// ASYNC: a discrete-event loop over per-robot phase events. Each robot
// cycles Wait -> Look (instantaneous snapshot; other robots may be observed
// MID-MOVE at their interpolated positions) -> Compute (the action is
// derived from the stale snapshot and committed, with the light change,
// after the adversarial compute delay) -> Move (constant speed, rigid).
//
// SYNC (FSYNC/SSYNC): discrete rounds; all robots activated in a round Look
// at the same configuration, then apply their moves and light changes
// simultaneously. Moves are recorded as unit-interval segments so the
// collision monitor treats same-round movers as concurrent.
//
// All world state, quiescence accounting and instrumentation fan-out lives
// in ExecutionCore (execution_core.hpp); the drivers below own only their
// scheduling shape. Observers delivered per the contract in observer.hpp;
// the SYNC driver delivers all of a round's commits before any of its move
// completions, mirroring their simultaneity.
//
// In-run parallelism: the SYNC drivers fan each round's Look+Compute over
// RunConfig::pool via ExecutionCore::look_batch (bit-identical for any pool
// size — see DESIGN.md §10). The ASYNC driver stays serial by construction:
// its event loop processes one robot phase at a time and every event both
// reads and advances the shared world clock, so there is no simultaneous
// batch to distribute.
#include "sim/run.hpp"

#include "sim/execution_core.hpp"
#include "util/strings.hpp"

#include <queue>

namespace lumen::sim {

std::string_view to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::kFsync: return "FSYNC";
    case SchedulerKind::kSsync: return "SSYNC";
    case SchedulerKind::kAsync: return "ASYNC";
  }
  return "?";
}

std::optional<SchedulerKind> scheduler_from_string(std::string_view name) noexcept {
  for (const auto k :
       {SchedulerKind::kFsync, SchedulerKind::kSsync, SchedulerKind::kAsync}) {
    if (util::iequals(to_string(k), name)) return k;
  }
  return std::nullopt;
}

std::string_view to_string(RunOutcome o) noexcept {
  switch (o) {
    case RunOutcome::kConverged: return "converged";
    case RunOutcome::kStalled: return "stalled";
    case RunOutcome::kCollision: return "collision";
    case RunOutcome::kBudgetExhausted: return "budget-exhausted";
    case RunOutcome::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

std::optional<RunOutcome> outcome_from_string(std::string_view name) noexcept {
  for (const auto o : {RunOutcome::kConverged, RunOutcome::kStalled,
                       RunOutcome::kCollision, RunOutcome::kBudgetExhausted,
                       RunOutcome::kDeadlineExceeded}) {
    if (util::iequals(to_string(o), name)) return o;
  }
  return std::nullopt;
}

namespace {

using geom::Vec2;

// ---------------------------------------------------------------------------
// ASYNC driver
// ---------------------------------------------------------------------------

enum class PhaseEvent { kLook, kCommit, kMoveDone };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< FIFO tie-break for simultaneous events.
  std::size_t robot = 0;
  PhaseEvent type = PhaseEvent::kLook;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class AsyncDriver {
 public:
  AsyncDriver(const model::Algorithm& algorithm, std::span<const Vec2> initial,
              const RunConfig& config, std::span<RunObserver* const> observers)
      : config_(config),
        core_(algorithm, initial, config, observers),
        adversary_(sched::make_adversary(config.adversary)) {
    core_.seed_frames(core_.split_stream("frames"));
    schedule_rng_ = core_.split_stream("schedule");
    core_.set_look_frame_stream(core_.split_stream("look-frames"));
    timing_.assign(core_.size(), sched::PhaseTiming{});
  }

  RunResult run() {
    RunResult result;
    const WorldState& ws = core_.world_state();
    result.initial_positions.resize(ws.size());
    for (std::size_t i = 0; i < ws.size(); ++i) {
      result.initial_positions[i] = ws.position(i);
    }
    core_.notify_run_begin();
    const std::size_t n = core_.size();
    if (n == 0) {
      core_.notify_run_end(0.0);
      core_.finalize(result, /*converged=*/true, /*final_time=*/0.0);
      return result;
    }

    // Boot every robot's first cycle.
    for (std::size_t i = 0; i < n; ++i) start_cycle(i, 0.0);

    const std::size_t cycle_cap = config_.max_cycles_per_robot * n;
    bool quiescent = false;
    // Every robot may have crash-stopped at boot (kTimes schedules with
    // t=0 entries), leaving the queue empty before the loop runs.
    if (events_.empty()) quiescent = core_.quiescent_async();
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      switch (ev.type) {
        case PhaseEvent::kLook: {
          core_.look(ev.robot, now_);
          push_event(now_ + timing_[ev.robot].compute, ev.robot,
                     PhaseEvent::kCommit);
          break;
        }
        case PhaseEvent::kCommit: {
          if (core_.commit_async(ev.robot, now_,
                                 timing_[ev.robot].move_duration,
                                 schedule_rng_)) {
            push_event(now_ + timing_[ev.robot].move_duration, ev.robot,
                       PhaseEvent::kMoveDone);
          } else {
            finish_cycle(ev.robot);
          }
          break;
        }
        case PhaseEvent::kMoveDone: {
          core_.complete_move(ev.robot, now_);
          finish_cycle(ev.robot);
          break;
        }
      }
      if (ev.type != PhaseEvent::kLook && core_.quiescent_async()) {
        quiescent = true;
        break;
      }
      if (core_.total_cycles() >= cycle_cap) break;
      // Cooperative watchdog: checked between events, never mid-phase, so a
      // cut-short run still has a consistent world state to finalize.
      if (core_.deadline_exceeded()) break;
      // If the last live robot just crashed the queue drains without a
      // further non-Look event; the survivors' fixpoint still counts.
      if (events_.empty()) quiescent = core_.quiescent_async();
    }

    core_.notify_run_end(now_);
    core_.finalize(result, quiescent, now_);
    return result;
  }

 private:
  void push_event(double time, std::size_t robot, PhaseEvent type) {
    events_.push(Event{time, seq_++, robot, type});
  }

  void start_cycle(std::size_t robot, double time) {
    // Crash-stop fires at cycle boundaries: a dead robot schedules nothing
    // further, but its body and last light stay in the world.
    if (core_.crash_check(robot, time)) return;
    timing_[robot] = adversary_->sample(
        robot, static_cast<std::uint64_t>(core_.total_cycles()), schedule_rng_);
    core_.begin_cycle(robot, time);
    push_event(time + timing_[robot].wait, robot, PhaseEvent::kLook);
  }

  void finish_cycle(std::size_t robot) {
    core_.record_cycle(robot, now_);
    start_cycle(robot, now_);
  }

  const RunConfig& config_;
  ExecutionCore core_;
  util::Prng schedule_rng_{0};
  std::unique_ptr<sched::Adversary> adversary_;
  std::vector<sched::PhaseTiming> timing_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

// ---------------------------------------------------------------------------
// SYNC driver (FSYNC / SSYNC)
// ---------------------------------------------------------------------------

class SyncDriver {
 public:
  SyncDriver(const model::Algorithm& algorithm, std::span<const Vec2> initial,
             const RunConfig& config, std::span<RunObserver* const> observers)
      : config_(config), core_(algorithm, initial, config, observers) {
    const sched::ActivationKind kind = config.scheduler == SchedulerKind::kFsync
                                           ? sched::ActivationKind::kAll
                                           : config.activation;
    policy_ = sched::make_activation(kind);
    activation_rng_ = core_.split_stream("activation");
    motion_rng_ = core_.split_stream("motion");
    core_.set_look_frame_stream(core_.split_stream("look-frames"));
    core_.seed_frames(core_.split_stream("frames"));
  }

  RunResult run() {
    RunResult result;
    const WorldState& ws = core_.world_state();
    result.initial_positions.resize(ws.size());
    for (std::size_t i = 0; i < ws.size(); ++i) {
      result.initial_positions[i] = ws.position(i);
    }
    core_.notify_run_begin();
    const std::size_t n = core_.size();
    if (n == 0) {
      core_.notify_run_end(0.0);
      core_.finalize(result, /*converged=*/true, /*final_time=*/0.0);
      return result;
    }

    const std::size_t round_cap = config_.max_cycles_per_robot;
    std::uint64_t round = 0;
    bool quiescent = false;
    std::vector<std::uint8_t> started;
    while (round < round_cap) {
      const double t0 = static_cast<double>(round);
      const double t1 = t0 + 1.0;
      const auto activated = policy_->activate(n, round, activation_rng_);
      // Crash-stop filter: a robot dies (or is already dead) at its
      // activation instant and simply drops out of the round. Guarded so
      // the zero-fault path hands the policy's vector through untouched.
      std::span<const std::size_t> active = activated;
      if (core_.crash_faults_enabled()) {
        alive_.clear();
        for (const std::size_t r : activated) {
          if (core_.crashed(r) || core_.crash_check(r, t0)) continue;
          alive_.push_back(r);
        }
        active = alive_;
      }
      // All activated robots Look at the same pre-round configuration, so
      // the round's Look+Compute fan-out runs on config.pool when present
      // (bit-identical to the serial loop; commit order below is what the
      // downstream bits depend on and it never changes).
      for (const std::size_t r : active) core_.begin_cycle(r, t0);
      core_.look_batch(active, t0);
      // Simultaneous application: all commits land before any position
      // write, so same-round movers see each other's pre-round positions.
      started.assign(active.size(), 0);
      for (std::size_t k = 0; k < active.size(); ++k) {
        started[k] = core_.commit_sync(active[k], t0, t1, motion_rng_) ? 1 : 0;
      }
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (started[k] != 0) core_.complete_move(active[k], t1);
      }
      for (const std::size_t r : active) core_.record_cycle(r, t1);
      core_.notify_round(round, t1);
      ++round;
      if (core_.quiescent_sync()) {
        quiescent = true;
        break;
      }
      // Cooperative watchdog at the round boundary (quiescence wins ties).
      if (core_.deadline_exceeded()) break;
    }

    const double final_time = static_cast<double>(round);
    core_.notify_run_end(final_time);
    core_.finalize(result, quiescent, final_time);
    result.rounds = round;
    return result;
  }

 private:
  const RunConfig& config_;
  ExecutionCore core_;
  util::Prng activation_rng_{0};
  util::Prng motion_rng_{0};
  std::unique_ptr<sched::ActivationPolicy> policy_;
  std::vector<std::size_t> alive_;  ///< Crash-filtered activation scratch.
};

}  // namespace

RunResult run_simulation(const model::Algorithm& algorithm,
                         std::span<const Vec2> initial, const RunConfig& config,
                         std::span<RunObserver* const> observers) {
  MoveLogRecorder move_recorder;
  HullHistoryRecorder hull_recorder(config.scheduler != SchedulerKind::kAsync);
  FaultLogRecorder fault_recorder;
  const bool record_faults = config.record_moves && config.fault.any();
  std::vector<RunObserver*> attached(observers.begin(), observers.end());
  if (config.record_moves) attached.push_back(&move_recorder);
  if (config.record_hull_history) attached.push_back(&hull_recorder);
  if (record_faults) attached.push_back(&fault_recorder);

  RunResult result;
  if (config.scheduler == SchedulerKind::kAsync) {
    AsyncDriver driver(algorithm, initial, config, attached);
    result = driver.run();
  } else {
    SyncDriver driver(algorithm, initial, config, attached);
    result = driver.run();
  }
  if (config.record_moves) result.moves = std::move(move_recorder.moves());
  if (config.record_hull_history) {
    result.hull_history = std::move(hull_recorder.samples());
  }
  if (record_faults) result.fault_events = std::move(fault_recorder.events());
  return result;
}

RunResult run_simulation(const model::Algorithm& algorithm,
                         std::span<const Vec2> initial,
                         const RunConfig& config) {
  return run_simulation(algorithm, initial, config, {});
}

}  // namespace lumen::sim
