#include "sim/svg.hpp"

#include "geom/hull.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

namespace lumen::sim {

namespace {

const char* light_color(model::Light l) noexcept {
  switch (l) {
    case model::Light::kOff: return "#9aa0a6";
    case model::Light::kCorner: return "#1a73e8";
    case model::Light::kSide: return "#f9ab00";
    case model::Light::kInterior: return "#d93025";
    case model::Light::kTransit: return "#9334e6";
    case model::Light::kMoving: return "#e37400";
    case model::Light::kLine: return "#12b5cb";
    case model::Light::kLineEnd: return "#188038";
  }
  return "#000000";
}

const char* fault_channel_color(fault::FaultChannel c) noexcept {
  switch (c) {
    case fault::FaultChannel::kCrash: return "#d93025";
    case fault::FaultChannel::kLight: return "#fbbc04";
    case fault::FaultChannel::kNoise: return "#669df6";
    case fault::FaultChannel::kNone: break;
  }
  return "#000000";
}

}  // namespace

std::string render_svg(const RunResult& run, const SvgOptions& options) {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x, max_x = -min_x, max_y = -min_x;
  const auto extend = [&](geom::Vec2 p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  };
  for (const auto& p : run.initial_positions) extend(p);
  for (const auto& p : run.final_positions) extend(p);
  if (!std::isfinite(min_x)) min_x = min_y = max_x = max_y = 0.0;
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  const double sx = (options.width - 2 * options.margin) / span_x;
  const double sy = (options.height - 2 * options.margin) / span_y;
  const double s = std::min(sx, sy);
  const auto map = [&](geom::Vec2 p) {
    // Flip y so the plane's +y points up on screen.
    return geom::Vec2{options.margin + (p.x - min_x) * s,
                      options.height - options.margin - (p.y - min_y) * s};
  };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << options.width
      << "' height='" << options.height << "' viewBox='0 0 " << options.width
      << ' ' << options.height << "'>\n";
  svg << "<rect width='100%' height='100%' fill='white'/>\n";

  if (options.draw_hull && run.final_positions.size() >= 3) {
    const auto hull = geom::convex_hull_indices(run.final_positions);
    svg << "<polygon fill='none' stroke='#dadce0' stroke-width='1.5' points='";
    for (const auto i : hull) {
      const geom::Vec2 q = map(run.final_positions[i]);
      svg << q.x << ',' << q.y << ' ';
    }
    svg << "'/>\n";
  }
  if (options.draw_paths) {
    for (const auto& m : run.moves) {
      const geom::Vec2 a = map(m.from);
      const geom::Vec2 b = map(m.to);
      svg << "<line x1='" << a.x << "' y1='" << a.y << "' x2='" << b.x
          << "' y2='" << b.y
          << "' stroke='#e8eaed' stroke-width='1'/>\n";
    }
  }
  if (options.draw_initial) {
    for (const auto& p : run.initial_positions) {
      const geom::Vec2 q = map(p);
      svg << "<circle cx='" << q.x << "' cy='" << q.y
          << "' r='3' fill='none' stroke='#bdc1c6'/>\n";
    }
  }
  if (options.draw_faults && !run.fault_events.empty()) {
    // Per-Look corruption annotations: a small hollow ring, colored by
    // channel, at the affected robot's true position at the Look. Capped so
    // heavily faulted long runs stay inspectable.
    constexpr std::size_t kMaxFaultMarks = 200;
    std::size_t marks = 0;
    for (const auto& ev : run.fault_events) {
      if (ev.channel == fault::FaultChannel::kCrash) continue;
      if (marks >= kMaxFaultMarks) break;
      const geom::Vec2 q = map(ev.position);
      svg << "<circle cx='" << q.x << "' cy='" << q.y
          << "' r='6' fill='none' stroke='" << fault_channel_color(ev.channel)
          << "' stroke-width='1' opacity='0.6'/>\n";
      ++marks;
    }
  }
  for (std::size_t i = 0; i < run.final_positions.size(); ++i) {
    const geom::Vec2 q = map(run.final_positions[i]);
    const model::Light l =
        i < run.final_lights.size() ? run.final_lights[i] : model::Light::kOff;
    svg << "<circle cx='" << q.x << "' cy='" << q.y << "' r='4' fill='"
        << light_color(l) << "'/>\n";
    if (options.draw_faults && i < run.crashed.size() && run.crashed[i] != 0) {
      // Crash-stop marker: a red X over the dead robot's final body.
      svg << "<path d='M " << q.x - 5 << ' ' << q.y - 5 << " L " << q.x + 5
          << ' ' << q.y + 5 << " M " << q.x - 5 << ' ' << q.y + 5 << " L "
          << q.x + 5 << ' ' << q.y - 5
          << "' stroke='#d93025' stroke-width='2' fill='none'/>\n";
    }
  }
  if (options.draw_faults && run.faults.any()) {
    svg << "<text x='" << options.margin << "' y='" << options.height - 10
        << "' font-family='monospace' font-size='12' fill='#5f6368'>faults: "
        << run.faults.crashes << " crashes, " << run.faults.corrupted_reads
        << " corrupted reads, " << run.faults.dropped_observations
        << " dropped, " << run.faults.perturbed_observations
        << " perturbed (outcome: " << to_string(run.outcome) << ")</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

bool save_svg(const RunResult& run, const std::string& path,
              const SvgOptions& options) {
  std::ofstream f(path);
  if (!f) return false;
  f << render_svg(run, options);
  return static_cast<bool>(f);
}

}  // namespace lumen::sim
