#include "sim/execution_core.hpp"

#include "util/thread_pool.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace lumen::sim {

namespace {

std::size_t light_index(model::Light l) noexcept {
  return static_cast<std::size_t>(l);
}

}  // namespace

ExecutionCore::ExecutionCore(const model::Algorithm& algorithm,
                             std::span<const geom::Vec2> initial,
                             const RunConfig& config,
                             std::span<RunObserver* const> observers)
    : algo_(algorithm),
      config_(config),
      grid_(algorithm.motion_model() == model::MotionModel::kGrid),
      n_(initial.size()),
      rng_(config.seed),
      epochs_(initial.size()),
      observers_(observers) {
  if (grid_) {
    // Grid motion: the world lives on the integer lattice from the first
    // instant — initial positions snap to the nearest lattice point. The
    // drivers read initial_positions back from the world state, so results
    // report the snapped configuration the run actually started from.
    std::vector<geom::Vec2> snapped(initial.begin(), initial.end());
    for (geom::Vec2& p : snapped) {
      p = geom::Vec2{std::nearbyint(p.x), std::nearbyint(p.y)};
    }
    world_.reset(snapped);
  } else {
    world_.reset(initial);
  }
  current_move_.assign(n_, MoveSegment{});
  cycle_start_.assign(n_, 0.0);
  look_time_.assign(n_, 0.0);
  pending_.assign(n_, model::Action{});
  pending_null_.assign(n_, 1);
  last_null_look_.assign(n_, -1.0);
  in_wait_.assign(n_, 1);
  lights_seen_[light_index(model::Light::kOff)] = true;
  arena_ = config.arena != nullptr ? config.arena : &own_arena_;
  // The look fill starts as a mirror of the committed coordinates; from here
  // on fill_look_world / complete_move keep it coherent incrementally.
  arena_->look_xs.assign(world_.xs().begin(), world_.xs().end());
  arena_->look_ys.assign(world_.ys().begin(), world_.ys().end());
  arena_->prev_movers.clear();
  arena_->visibility_cache.reset(n_, config.visibility_cache_budget);
  // Shared arenas carry the cache (and its lifetime counters) across runs;
  // baselines let finalize report this run's hit mix as deltas.
  cache_base_replays_ = arena_->visibility_cache.replays();
  cache_base_repairs_ = arena_->visibility_cache.repairs();
  cache_base_rebuilds_ = arena_->visibility_cache.rebuilds();
  // Fault streams are split() children of rng_, so an empty plan leaves
  // every existing stream untouched (bit-identity with fault-free runs).
  fault_.init(config.fault, rng_, n_);
  if (config.deadline_ms > 0) {
    deadline_armed_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(config.deadline_ms);
  }
}

bool ExecutionCore::deadline_exceeded() noexcept {
  if (!deadline_armed_ || deadline_hit_) return deadline_hit_;
  if (std::chrono::steady_clock::now() >= deadline_) deadline_hit_ = true;
  return deadline_hit_;
}

util::Prng ExecutionCore::split_stream(std::string_view tag) const noexcept {
  return rng_.split(tag);
}

void ExecutionCore::seed_frames(util::Prng frame_rng) {
  frame_params_.clear();
  frame_params_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    frame_params_.push_back(FrameParams{
        frame_rng.uniform(0.0, 6.283185307179586),
        std::exp2(frame_rng.uniform(-2.0, 2.0)),
        frame_rng.bernoulli(0.5),
    });
  }
}

void ExecutionCore::begin_cycle(std::size_t robot, double time) {
  cycle_start_[robot] = time;
  in_wait_[robot] = 1;
}

bool ExecutionCore::crash_check(std::size_t robot, double time) {
  if (!fault_.try_crash(robot, time)) return false;
  world_.kill(robot);
  fault::FaultEvent event;
  event.channel = fault::FaultChannel::kCrash;
  event.robot = robot;
  event.time = time;
  event.position = world_.position(robot);
  for (RunObserver* o : observers_) o->on_fault(event, world(time));
  // The dead robot drops out of the epoch requirement: later epochs measure
  // survivor progress. Retiring the straggler can close pent-up epochs.
  const std::size_t closed = epochs_.retire(robot);
  for (std::size_t k = 0; k < closed; ++k) {
    const std::size_t index = epochs_emitted_++;
    for (RunObserver* o : observers_) {
      o->on_epoch(index, epochs_.boundaries()[index], world(time));
    }
  }
  return true;
}

void ExecutionCore::notify_look_faults(std::size_t robot, double time,
                                       geom::Vec2 position,
                                       const fault::LookFaultStats& stats) {
  if (!stats.any()) return;
  if (stats.corrupted != 0) {
    fault::FaultEvent event;
    event.channel = fault::FaultChannel::kLight;
    event.robot = robot;
    event.time = time;
    event.position = position;
    event.corrupted_reads = stats.corrupted;
    for (RunObserver* o : observers_) o->on_fault(event, world(time));
  }
  if (stats.dropped + stats.perturbed != 0) {
    fault::FaultEvent event;
    event.channel = fault::FaultChannel::kNoise;
    event.robot = robot;
    event.time = time;
    event.position = position;
    event.dropped = stats.dropped;
    event.perturbed = stats.perturbed;
    for (RunObserver* o : observers_) o->on_fault(event, world(time));
  }
}

std::pair<std::span<const double>, std::span<const double>>
ExecutionCore::fill_look_world(double t) {
  LookArena& a = *arena_;
  // Undo the previous fill's interpolations. Every other slot already holds
  // the committed coordinate: set_position happens only in complete_move,
  // which writes through to the fill arrays.
  for (const std::uint32_t r : a.prev_movers) {
    a.look_xs[r] = world_.xs()[r];
    a.look_ys[r] = world_.ys()[r];
  }
  a.prev_movers.clear();
  if (world_.moving_count() == 0) {
    // Nobody mid-move (every SYNC Look): snapshot the committed arrays
    // directly, no copy at all.
    return {world_.xs(), world_.ys()};
  }
  const std::span<const std::uint64_t> words = world_.moving().words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const std::size_t r =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const geom::Vec2 p = current_move_[r].at(t);
      a.look_xs[r] = p.x;
      a.look_ys[r] = p.y;
      a.prev_movers.push_back(static_cast<std::uint32_t>(r));
    }
  }
  return {a.look_xs, a.look_ys};
}

void ExecutionCore::compute_pending(std::size_t robot,
                                    const model::LocalFrame& frame,
                                    std::uint64_t look_seq,
                                    std::span<const double> xs,
                                    std::span<const double> ys,
                                    model::SnapshotScratch& scratch,
                                    model::Snapshot& snap,
                                    fault::ViewScratch& view,
                                    fault::LookFaultStats& stats) {
  const std::span<const model::Light> lights = world_.lights();
  const bool noisy = fault_.view_active() && fault_.noise_active();
  if (!noisy) {
    geom::VisibilityCache& cache = arena_->visibility_cache;
    if (cache.cached_observers() > 0) {
      // Incremental path: replay/repair this observer's retained angular
      // order against the committed-write log (bit-identical to the
      // one-shot kernel; see geom::VisibilityCache).
      cache.visible_from(xs, ys, robot, world_.write_log(),
                         world_.moving_count(), scratch.visibility,
                         scratch.visible_ids);
      model::fill_snapshot(xs, ys, lights, robot, scratch.visible_ids, frame,
                           snap);
    } else {
      model::build_snapshot(xs, ys, lights, robot, frame, scratch, snap);
    }
  }
  if (fault_.view_active()) {
    // Corruption draws are a pure function of (seed, robot, look_seq), so
    // this stays safe and bit-identical under the parallel SYNC batch.
    util::Prng rng = fault_.look_rng(robot, look_seq);
    if (fault_.noise_active()) {
      const std::size_t observer =
          fault_.make_noisy_view(robot, rng, xs, ys, lights, view, stats);
      model::build_snapshot(view.xs, view.ys, view.lights, observer, frame,
                            scratch, snap);
    }
    fault_.corrupt_lights(rng, snap, stats);
    fault_.account(stats);
  }
  // Compute is deterministic on the snapshot, so evaluating it now and
  // committing later is equivalent to evaluating at commit time.
  const model::Action action = algo_.compute(snap);
  pending_[robot] = model::Action{frame.to_world(action.target), action.light};
  // Encode "stay" in world terms: a stay action keeps the world position.
  if (!action.moves()) pending_[robot].target = geom::Vec2{xs[robot], ys[robot]};
  if (grid_) {
    // Grid motion: the world-frame goal snaps to the nearest lattice point.
    // A move whose goal snaps back onto the robot's own cell is a null
    // action — it must count toward quiescence or sub-half-cell targets
    // would keep the run alive forever.
    geom::Vec2& t = pending_[robot].target;
    t = geom::Vec2{std::nearbyint(t.x), std::nearbyint(t.y)};
    pending_null_[robot] = (t == geom::Vec2{xs[robot], ys[robot]} &&
                            action.light == world_.light(robot))
                               ? 1
                               : 0;
    return;
  }
  pending_null_[robot] =
      (!action.moves() && action.light == world_.light(robot)) ? 1 : 0;
}

void ExecutionCore::look(std::size_t robot, double time) {
  in_wait_[robot] = 0;
  look_time_[robot] = time;
  const std::uint64_t seq = look_seq_++;
  const auto [xs, ys] = fill_look_world(time);
  const geom::Vec2 origin{xs[robot], ys[robot]};
  const model::LocalFrame frame = make_frame(robot, origin);
  fault::LookFaultStats stats;
  compute_pending(robot, frame, seq, xs, ys, arena_->snapshot_scratch,
                  arena_->snapshot, arena_->view_scratch, stats);
  notify_look_faults(robot, time, origin, stats);
  for (RunObserver* o : observers_) o->on_look(robot, time, world(time));
}

void ExecutionCore::look_batch(std::span<const std::size_t> robots, double time) {
  util::ThreadPool* pool = config_.pool;
  if (pool == nullptr || robots.size() < 2) {
    for (const std::size_t r : robots) look(r, time);
    return;
  }
  // Serial prologue in `robots` order: the same state writes and frame-rng
  // draws, in the same order, as the serial loop above — the one world fill
  // suffices because nobody is mid-move between SYNC rounds, so every
  // serial look() would return identical spans (the committed arrays).
  const auto [xs, ys] = fill_look_world(time);
  LookArena& a = *arena_;
  a.frames.clear();
  a.frames.reserve(robots.size());
  a.seqs.clear();
  a.seqs.reserve(robots.size());
  a.stats.assign(robots.size(), fault::LookFaultStats{});
  for (const std::size_t r : robots) {
    in_wait_[r] = 0;
    look_time_[r] = time;
    a.frames.push_back(make_frame(r, geom::Vec2{xs[r], ys[r]}));
    a.seqs.push_back(look_seq_++);
  }
  // Parallel Look + Compute: per-slot scratch, per-robot pending slots.
  // Thread interleaving cannot affect the result — Compute is pure, fault
  // draws are keyed by the pre-assigned look sequence, the visibility cache
  // touches only the observer's own entry, and every write lands in the
  // robot's own slot.
  a.slots.resize(pool->slot_count());
  pool->parallel_for_slots(robots.size(), [&, xs = xs,
                                           ys = ys](std::size_t slot,
                                                    std::size_t k) {
    LookSlot& ls = a.slots[slot];
    compute_pending(robots[k], a.frames[k], a.seqs[k], xs, ys, ls.scratch,
                    ls.snapshot, ls.view, a.stats[k]);
  });
  // Observers fire serially afterwards, in `robots` order: nothing a Look
  // mutates is visible through WorldView, so the delivered stream is
  // byte-identical to the serial loop's.
  for (std::size_t k = 0; k < robots.size(); ++k) {
    const std::size_t r = robots[k];
    notify_look_faults(r, time, geom::Vec2{xs[r], ys[r]}, a.stats[k]);
    for (RunObserver* o : observers_) o->on_look(r, time, world(time));
  }
}

geom::Vec2 ExecutionCore::grid_leg(geom::Vec2 from, geom::Vec2 goal) noexcept {
  const double dx = goal.x - from.x;
  const double dy = goal.y - from.y;
  if (dx == 0.0 && dy == 0.0) return from;
  // Dominant axis first (ties go to x): one full rectilinear leg per commit,
  // so both endpoints are lattice points and intermediate Looks observe the
  // robot travelling along a grid line.
  if (std::abs(dx) >= std::abs(dy)) return geom::Vec2{goal.x, from.y};
  return geom::Vec2{from.x, goal.y};
}

geom::Vec2 ExecutionCore::apply_motion_adversary(geom::Vec2 from, geom::Vec2 to,
                                                 util::Prng& rng) const {
  if (config_.rigid_moves) return to;
  const double dist = geom::distance(from, to);
  if (dist <= config_.nonrigid_min_progress) return to;
  const double fraction = rng.uniform(0.0, 1.0);
  const double travelled =
      std::max(config_.nonrigid_min_progress, fraction * dist);
  return geom::lerp(from, to, travelled / dist);
}

bool ExecutionCore::commit_async(std::size_t robot, double now,
                                 double move_duration, util::Prng& motion_rng) {
  const model::Action action = pending_[robot];
  const bool light_changed = world_.light(robot) != action.light;
  world_.set_light(robot, action.light);
  lights_seen_[light_index(action.light)] = true;
  const geom::Vec2 from = world_.position(robot);
  // Grid commits travel one axis leg and skip the motion adversary (no rng
  // draw — grid algorithms are new, so no stream compatibility to keep).
  const geom::Vec2 to = grid_ ? grid_leg(from, action.target)
                              : apply_motion_adversary(from, action.target,
                                                       motion_rng);
  const double dist = geom::distance(from, to);
  if (light_changed) last_change_ = now;
  const bool starts_move = dist > 0.0;
  CommitEvent event;
  event.robot = robot;
  event.time = now;
  event.action = model::Action{to, action.light};
  event.light_changed = light_changed;
  if (starts_move) {
    last_change_ = now;
    current_move_[robot] =
        MoveSegment{robot, now, now + move_duration, from, to};
    world_.begin_move(robot);
    event.move_started = &current_move_[robot];
  } else if (!light_changed) {
    // Null cycle: this Look observed a configuration the robot is content
    // with; quiescence needs it to postdate the last world change.
    last_null_look_[robot] = look_time_[robot];
  }
  notify_commit(event, now);
  return starts_move;
}

bool ExecutionCore::commit_sync(std::size_t robot, double t0, double t1,
                                util::Prng& motion_rng) {
  const model::Action action = pending_[robot];
  const geom::Vec2 from = world_.position(robot);
  geom::Vec2 to = action.target;
  if (grid_) {
    to = grid_leg(from, to);
  } else if (to != from) {
    to = apply_motion_adversary(from, to, motion_rng);
  }
  const bool light_changed = world_.light(robot) != action.light;
  const bool moved = to != from;
  world_.set_light(robot, action.light);
  lights_seen_[light_index(action.light)] = true;
  CommitEvent event;
  event.robot = robot;
  event.time = t0;
  event.action = model::Action{to, action.light};
  event.light_changed = light_changed;
  if (moved) {
    // Unit-interval segment; the position write waits for complete_move so
    // every robot in the round commits against the pre-round world.
    current_move_[robot] = MoveSegment{robot, t0, t1, from, to};
    world_.begin_move(robot);
    event.move_started = &current_move_[robot];
  }
  if (light_changed) {
    last_change_ = t1;
  } else if (!moved) {
    last_null_look_[robot] = t0;
  }
  notify_commit(event, t0);
  return moved;
}

void ExecutionCore::complete_move(std::size_t robot, double t) {
  const geom::Vec2 to = current_move_[robot].to;
  world_.set_position(robot, to);
  // Write through to the look fill: this robot may never be interpolated by
  // a Look during its flight (so it never enters prev_movers), and after
  // this commit its fill slot must already hold the new committed value.
  arena_->look_xs[robot] = to.x;
  arena_->look_ys[robot] = to.y;
  world_.end_move(robot);
  ++total_moves_;
  total_distance_ += current_move_[robot].length();
  last_change_ = t;
  for (RunObserver* o : observers_) {
    o->on_move_complete(current_move_[robot], world(t));
  }
}

void ExecutionCore::record_cycle(std::size_t robot, double end) {
  const std::size_t closed = epochs_.add_cycle(
      sched::CycleRecord{robot, cycle_start_[robot], end});
  ++total_cycles_;
  for (std::size_t k = 0; k < closed; ++k) {
    const std::size_t index = epochs_emitted_++;
    for (RunObserver* o : observers_) {
      o->on_epoch(index, epochs_.boundaries()[index], world(end));
    }
  }
}

bool ExecutionCore::quiescent_async() const noexcept {
  for (std::size_t i = 0; i < n_; ++i) {
    // Crashed robots execute no further cycles: quiescence is over the
    // survivors (a fully-crashed swarm is trivially quiescent).
    if (fault_.crashed(i)) continue;
    if (world_.is_moving(i)) return false;
    if (in_wait_[i] == 0 && pending_null_[i] == 0) return false;
    if (last_null_look_[i] < last_change_) return false;
  }
  return true;
}

bool ExecutionCore::quiescent_sync() const noexcept {
  for (std::size_t i = 0; i < n_; ++i) {
    if (fault_.crashed(i)) continue;
    if (last_null_look_[i] < last_change_) return false;
  }
  return true;
}

WorldView ExecutionCore::world(double time) const noexcept {
  WorldView view;
  view.xs = world_.xs();
  view.ys = world_.ys();
  view.lights = world_.lights();
  view.moving_words = world_.moving().words();
  view.current_moves = current_move_;
  view.time = time;
  return view;
}

void ExecutionCore::notify_run_begin() {
  for (RunObserver* o : observers_) o->on_run_begin(world(0.0));
}

void ExecutionCore::notify_round(std::uint64_t round, double time) {
  for (RunObserver* o : observers_) o->on_round(round, time, world(time));
}

void ExecutionCore::notify_run_end(double time) {
  for (RunObserver* o : observers_) o->on_run_end(world(time));
}

void ExecutionCore::notify_commit(const CommitEvent& event, double time) {
  for (RunObserver* o : observers_) o->on_commit(event, world(time));
}

model::LocalFrame ExecutionCore::make_frame(std::size_t robot,
                                            geom::Vec2 origin) {
  if (config_.refresh_frames_each_look) {
    return model::LocalFrame::random(origin, look_frame_rng_);
  }
  const FrameParams& p = frame_params_[robot];
  return model::LocalFrame{origin, p.rotation, p.scale, p.reflected};
}

void ExecutionCore::finalize(RunResult& result, bool converged,
                             double final_time) const {
  result.converged = converged;
  result.final_time = final_time;
  result.total_cycles = total_cycles_;
  result.total_moves = total_moves_;
  result.total_distance = total_distance_;
  result.final_positions.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    result.final_positions[i] = world_.position(i);
  }
  result.final_lights.assign(world_.lights().begin(), world_.lights().end());
  for (std::size_t i = 0; i < lights_seen_.size(); ++i) {
    if (lights_seen_[i]) result.lights_seen[i] = true;
  }
  // Convergence time is the LAST state change, not the (later) instant at
  // which quiescence became detectable; count one extra epoch so the final
  // observing cycle is included, matching the theoretical measure.
  result.epochs = n_ == 0 ? 0 : epochs_.count_epochs(last_change_) + 1;
  // A run that reached quiescence is converged even if the watchdog probe
  // fired on the same boundary; the deadline only classifies runs the
  // driver actually cut short.
  result.outcome = !converged ? (deadline_hit_ ? RunOutcome::kDeadlineExceeded
                                               : RunOutcome::kBudgetExhausted)
                   : fault_.crash_count() > 0 ? RunOutcome::kStalled
                                              : RunOutcome::kConverged;
  result.faults = fault_.counters();
  const auto crashed = fault_.crashed_flags();
  result.crashed.assign(crashed.begin(), crashed.end());
  // This run's visibility-cache hit mix (deltas against the construction
  // baselines; the cache outlives the run when the arena is shared).
  const geom::VisibilityCache& cache = arena_->visibility_cache;
  result.cache_replays = cache.replays() - cache_base_replays_;
  result.cache_repairs = cache.repairs() - cache_base_repairs_;
  result.cache_rebuilds = cache.rebuilds() - cache_base_rebuilds_;
}

}  // namespace lumen::sim
