// lumen_sim: SVG rendering of executions.
//
// Renders a recorded run as a static SVG: initial positions (hollow), final
// positions (filled, colored by final light), motion paths, and the final
// hull outline. Used by the examples to produce inspectable artifacts of
// single executions. Runs with injected faults additionally get crash
// markers, per-Look fault annotations and a summary line; a fault-free run
// renders byte-identically to the pre-fault renderer.
#pragma once

#include "sim/run.hpp"

#include <string>

namespace lumen::sim {

struct SvgOptions {
  double width = 800.0;
  double height = 800.0;
  double margin = 40.0;
  bool draw_paths = true;
  bool draw_hull = true;
  bool draw_initial = true;
  /// Crash markers, corrupted-Look annotations and the fault summary line.
  /// Emits nothing for runs without fault data regardless of this flag.
  bool draw_faults = true;
};

/// Renders the run as a self-contained SVG document.
[[nodiscard]] std::string render_svg(const RunResult& run,
                                     const SvgOptions& options = {});

/// Renders and writes to `path`; returns false on I/O failure.
bool save_svg(const RunResult& run, const std::string& path,
              const SvgOptions& options = {});

}  // namespace lumen::sim
