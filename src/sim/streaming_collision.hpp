// lumen_sim: streaming collision auditing.
//
// StreamingCollisionMonitor folds the continuous collision audit of
// monitors.hpp's check_collisions over the live event stream instead of a
// retained move log, so campaigns can audit arbitrarily long runs with
// memory bounded by the number of concurrently-relevant motion pieces.
//
// Algorithm: each robot's trajectory is the same piecewise-linear Piece
// decomposition check_collisions reconstructs post-hoc (idle stretches and
// move segments). A piece CLOSES when its end becomes known — an idle piece
// when the robot's next move commits, a move piece when it completes, tails
// at run end. Every overlapping piece pair is evaluated exactly once, when
// its LATER-closing piece closes (the earlier one is in the closed history;
// open pieces are skipped and pick the pair up at their own closure). Since
// both auditors call min_distance_linear_motion / segments_cross on
// bit-identical Piece windows, a CONVERGED run yields a bit-identical
// min_separation and identical collision/crossing counts.
//
// Known divergences from the post-hoc audit, by design:
//  * first_incident uses closure order (earliest evaluation wins), not the
//    post-hoc robot-pair-major order; counts and min_separation agree.
//  * A run aborted at the cycle cap with a move still in flight: post-hoc
//    never sees the unfinished move (it is not in the log) and models the
//    robot as one idle piece to the horizon, while the monitor has already
//    closed the pre-move idle piece. The windows split differently, which
//    can shift min_separation by ulps and merge/split incident counts.
#pragma once

#include "sim/monitors.hpp"
#include "sim/observer.hpp"

#include <cstddef>
#include <deque>
#include <vector>

namespace lumen::sim {

class StreamingCollisionMonitor final : public RunObserver {
 public:
  /// `collision_tolerance`: separations at or below it count as collisions,
  /// exactly as in check_collisions.
  explicit StreamingCollisionMonitor(double collision_tolerance = 0.0)
      : tolerance_(collision_tolerance) {}

  void on_run_begin(const WorldView& world) override;
  void on_commit(const CommitEvent& event, const WorldView& world) override;
  void on_move_complete(const MoveSegment& move, const WorldView& world) override;
  /// Closes every tail piece at the run horizon (`world.time`) and seals
  /// the report.
  void on_run_end(const WorldView& world) override;

  /// The audit verdict; complete once on_run_end has fired.
  [[nodiscard]] const CollisionReport& report() const noexcept { return report_; }

  /// Closed pieces currently buffered across all robots (test/introspection
  /// hook: stays bounded on long runs, unlike a move log).
  [[nodiscard]] std::size_t retained_pieces() const noexcept;

 private:
  struct ClosedPiece {
    detail::Piece piece;
    bool is_move = false;
  };

  struct RobotState {
    std::deque<ClosedPiece> closed;
    double open_start = 0.0;   ///< Start of the current open (idle/move) piece.
    geom::Vec2 idle_pos{};     ///< Committed position while idle.
    bool in_flight = false;
    MoveSegment flight{};      ///< Valid while in_flight.
  };

  /// Evaluates `piece` (robot `r`, just closed) against every other robot's
  /// closed pieces, then appends it to r's history.
  void close_piece(std::size_t r, const detail::Piece& piece, bool is_move);

  /// Drops closed pieces that can no longer overlap any future window.
  void prune();

  void note_incident(std::size_t a, std::size_t b, double time,
                     double separation, const char* kind, bool is_position);

  double tolerance_ = 0.0;
  bool sealed_ = false;
  std::vector<RobotState> robots_;
  CollisionReport report_;
};

}  // namespace lumen::sim
