// lumen_sim: RunConfig <-> JSON.
//
// The declarative experiment layer (analysis::ScenarioSpec) embeds a full
// RunConfig; serializing it here, next to the type, keeps the field list in
// one compilation unit so a new RunConfig knob cannot silently miss the
// spec format. The encoding is deterministic (fixed key order, exact
// integers) — the ScenarioSpec byte-identity round-trip rests on it.
#pragma once

#include "sim/run.hpp"
#include "util/json.hpp"

#include <optional>
#include <string>

namespace lumen::sim {

/// Serializes every RunConfig field under stable keys, enums as their
/// to_string names.
[[nodiscard]] util::JsonValue run_config_to_json(const RunConfig& config);

/// Parses an object written by run_config_to_json. Missing keys keep their
/// defaults (terse hand-written specs stay legal); unknown keys and
/// out-of-domain values are errors (a typoed knob must not silently run the
/// default). On failure returns nullopt and fills `error` when non-null.
[[nodiscard]] std::optional<RunConfig> run_config_from_json(
    const util::JsonValue& json, std::string* error = nullptr);

}  // namespace lumen::sim
