// lumen_sim: the hot simulation state, structure-of-arrays.
//
// WorldState is the single owner of everything a Look touches per robot:
// split x/y coordinate arrays (so the visibility kernel streams doubles
// instead of gathering Vec2 pairs), the packed light array, and two
// DynamicBitsets — `alive` (cleared when a robot crash-stops) and `moving`
// (set while a move segment is in flight). The committed position arrays
// change at exactly one point, set_position (ExecutionCore::complete_move),
// which also appends the robot to `write_log`: entry k of the log is the
// robot whose committed position was the (k+1)-th write of the run, and
// `version()` == write_log.size(). The incremental visibility cache keys
// its per-observer dirty sets on log suffixes — "everything written since I
// was last rebuilt" — so a cache entry is validated in O(#writes since)
// instead of O(N) (see geom::VisibilityCache).
#pragma once

#include "geom/vec2.hpp"
#include "model/light.hpp"
#include "util/bitset.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lumen::sim {

class WorldState {
 public:
  /// Rebinds to a swarm: committed positions from `initial`, all lights
  /// kOff, everyone alive, nobody moving, empty write log.
  void reset(std::span<const geom::Vec2> initial) {
    const std::size_t n = initial.size();
    xs_.resize(n);
    ys_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs_[i] = initial[i].x;
      ys_[i] = initial[i].y;
    }
    lights_.assign(n, model::Light::kOff);
    alive_.assign(n, true);
    moving_.assign(n, false);
    moving_count_ = 0;
    write_log_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }

  [[nodiscard]] std::span<const double> xs() const noexcept { return xs_; }
  [[nodiscard]] std::span<const double> ys() const noexcept { return ys_; }
  [[nodiscard]] std::span<const model::Light> lights() const noexcept {
    return lights_;
  }
  [[nodiscard]] geom::Vec2 position(std::size_t i) const noexcept {
    return geom::Vec2{xs_[i], ys_[i]};
  }
  [[nodiscard]] model::Light light(std::size_t i) const noexcept {
    return lights_[i];
  }
  void set_light(std::size_t i, model::Light l) noexcept { lights_[i] = l; }

  /// Commits a new position for robot i and logs the write. The ONLY
  /// mutation point of the coordinate arrays after reset.
  void set_position(std::size_t i, geom::Vec2 p) {
    xs_[i] = p.x;
    ys_[i] = p.y;
    write_log_.push_back(static_cast<std::uint32_t>(i));
  }

  /// Number of committed position writes so far; write_log()[v..] are the
  /// robots written after a snapshot taken at version v.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return write_log_.size();
  }
  [[nodiscard]] std::span<const std::uint32_t> write_log() const noexcept {
    return write_log_;
  }

  // -- In-flight move bits ---------------------------------------------------

  [[nodiscard]] bool is_moving(std::size_t i) const noexcept {
    return moving_.test(i);
  }
  [[nodiscard]] std::size_t moving_count() const noexcept {
    return moving_count_;
  }
  [[nodiscard]] const util::DynamicBitset& moving() const noexcept {
    return moving_;
  }
  void begin_move(std::size_t i) noexcept {
    moving_.set(i);
    ++moving_count_;
  }
  void end_move(std::size_t i) noexcept {
    moving_.reset(i);
    --moving_count_;
  }

  // -- Alive bits (cleared on crash-stop; the body keeps obstructing) --------

  [[nodiscard]] bool is_alive(std::size_t i) const noexcept {
    return alive_.test(i);
  }
  [[nodiscard]] const util::DynamicBitset& alive() const noexcept {
    return alive_;
  }
  void kill(std::size_t i) noexcept { alive_.reset(i); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<model::Light> lights_;
  util::DynamicBitset alive_;
  util::DynamicBitset moving_;
  std::size_t moving_count_ = 0;
  std::vector<std::uint32_t> write_log_;
};

}  // namespace lumen::sim
