// lumen_sim: the shared execution core behind both engines.
//
// ExecutionCore owns everything the ASYNC event loop and the SYNC round loop
// used to duplicate: the world state (a structure-of-arrays WorldState:
// split x/y coordinate arrays, packed lights, alive and move-in-flight
// bitsets, and the committed-write log), the local-frame policy, the
// non-rigid motion adversary, streaming result accounting (cycles, epochs,
// move totals, lights audit) and the observer fan-out. The engines in
// engine.cpp reduce to thin drivers that own only their scheduling shape —
// an event queue with a timing adversary (ASYNC) or an activation policy
// over unit rounds (SYNC) — and call into the core for every Look / commit
// / move completion.
//
// The Look path streams the SoA arrays end to end: fill_look_world patches
// only the in-flight movers over the committed arrays (aliasing them
// outright when nobody moves, which is every SYNC Look), the visibility
// sweep reads split doubles, and the per-observer incremental cache
// (geom::VisibilityCache, budgeted via RunConfig) repairs cached angular
// orders from the write log instead of resorting. All Look scratch lives
// in a LookArena — private by default, shareable across runs through
// RunConfig::arena so campaign cells keep warmed capacity.
//
// The core is deliberately scheduling-agnostic: commit_async and commit_sync
// differ only in how time is stamped (commit instant + sampled duration vs
// the round's [t0, t1]) and in when the position write lands (immediately
// scheduled vs deferred to the round's completion sweep).
//
// Determinism: the core draws randomness ONLY from streams the driver hands
// it (motion adversary draws come from the driver's rng so the historical
// stream interleavings are preserved bit-for-bit), plus the look-frame
// stream it is explicitly given. run_simulation results are bit-identical
// to the pre-refactor engines; tests/sim_golden_test.cpp pins that.
#pragma once

#include "fault/state.hpp"
#include "model/frame.hpp"
#include "model/snapshot.hpp"
#include "sched/epoch.hpp"
#include "sim/look_arena.hpp"
#include "sim/run.hpp"
#include "sim/world_state.hpp"
#include "util/prng.hpp"

#include <array>
#include <chrono>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

namespace lumen::sim {

class ExecutionCore {
 public:
  ExecutionCore(const model::Algorithm& algorithm,
                std::span<const geom::Vec2> initial, const RunConfig& config,
                std::span<RunObserver* const> observers);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t total_cycles() const noexcept { return total_cycles_; }
  [[nodiscard]] const WorldState& world_state() const noexcept { return world_; }

  /// Derives a named substream from the master seed (pure; the driver
  /// controls which streams exist and in what roles, as the engines did).
  [[nodiscard]] util::Prng split_stream(std::string_view tag) const noexcept;

  /// Draws each robot's persistent frame parameters (used when
  /// refresh_frames_each_look is false) from `frame_rng`, in robot order.
  void seed_frames(util::Prng frame_rng);

  /// Installs the stream consumed when refresh_frames_each_look is true.
  void set_look_frame_stream(util::Prng rng) { look_frame_rng_ = rng; }

  /// Marks the start of robot's next LCM cycle at `time` (Wait phase).
  void begin_cycle(std::size_t robot, double time);

  /// Crash-stop check at a cycle start (serial driver code only): decides
  /// via the fault plan whether `robot` dies at `time`, fires on_fault and
  /// returns true if it did. The driver must then never schedule the robot
  /// again — its body keeps obstructing and its last light stays visible.
  bool crash_check(std::size_t robot, double time);

  /// Cooperative wall-clock watchdog (RunConfig::deadline_ms): returns true
  /// once the budget armed at construction has elapsed. Drivers call this
  /// at cycle/round boundaries and stop scheduling when it fires; finalize
  /// then classifies the run as RunOutcome::kDeadlineExceeded. Sticky: once
  /// exceeded it stays exceeded. Free when no deadline is configured.
  [[nodiscard]] bool deadline_exceeded() noexcept;

  [[nodiscard]] bool crash_faults_enabled() const noexcept {
    return fault_.crash_enabled();
  }
  [[nodiscard]] bool crashed(std::size_t robot) const noexcept {
    return fault_.crashed(robot);
  }
  [[nodiscard]] const fault::FaultState& faults() const noexcept {
    return fault_;
  }

  /// Look + Compute at `time`: snapshots the instantaneous world (movers
  /// interpolated), runs the algorithm and parks the world-frame action as
  /// pending. Allocation-free in steady state: the world fill, the
  /// visibility scratch and the Snapshot all live in the arena and are
  /// reused across Looks (and across runs when the arena is shared).
  void look(std::size_t robot, double time);

  /// Batched Look + Compute for a SYNC round: every robot in `robots`
  /// snapshots the SAME instant (nobody is mid-move between rounds) and
  /// Compute is pure, so the per-robot work fans out over config.pool with
  /// per-slot scratch while staying bit-identical to serial look() calls in
  /// `robots` order — frame draws happen serially in that order first, the
  /// pending action lands in the robot's own pre-indexed slot, and
  /// observers fire serially afterwards (their WorldView is untouched by
  /// Look). Falls back to the serial loop without a pool.
  void look_batch(std::span<const std::size_t> robots, double time);

  /// ASYNC commit at `now`: applies the pending light, runs the non-rigid
  /// motion adversary (drawing from `motion_rng`), and either starts a move
  /// of `move_duration` (returns true; the driver schedules its completion)
  /// or ends the cycle as a null commit (returns false).
  bool commit_async(std::size_t robot, double now, double move_duration,
                    util::Prng& motion_rng);

  /// SYNC commit for the round [t0, t1]: same semantics with unit-interval
  /// move segments and the position write deferred until complete_move —
  /// every activated robot Looks and commits against the pre-round world.
  bool commit_sync(std::size_t robot, double t0, double t1,
                   util::Prng& motion_rng);

  /// Lands the in-flight move of `robot` at time `t` (its segment's end).
  void complete_move(std::size_t robot, double t);

  /// Closes robot's cycle at `end` (started at the begin_cycle time): feeds
  /// the streaming epoch detector and fires on_epoch for any epoch this
  /// closes.
  void record_cycle(std::size_t robot, double end);

  /// ASYNC quiescence: nobody moving, no non-null action pending, and every
  /// robot completed a null cycle observing the post-last-change world.
  [[nodiscard]] bool quiescent_async() const noexcept;

  /// SYNC quiescence: every robot's latest null Look postdates last change.
  [[nodiscard]] bool quiescent_sync() const noexcept;

  [[nodiscard]] WorldView world(double time) const noexcept;

  void notify_run_begin();
  void notify_round(std::uint64_t round, double time);
  void notify_run_end(double time);

  /// Fills every RunResult field the core accounts for (convergence, times,
  /// totals, epochs, final configuration, lights audit). The driver sets
  /// `rounds`; run_simulation moves recorder payloads in afterwards.
  void finalize(RunResult& result, bool converged, double final_time) const;

 private:
  /// Refreshes the arena's interpolated world fill for a Look at `t` and
  /// returns the coordinate spans to snapshot. O(#movers now + #movers at
  /// the previous fill): the arrays mirror the committed coordinates
  /// everywhere except the slots the previous fill interpolated (listed in
  /// arena.prev_movers, restored here) — complete_move writes through, so
  /// no other slot can go stale. When nobody is mid-move the committed
  /// arrays are returned directly and the fill is untouched.
  [[nodiscard]] std::pair<std::span<const double>, std::span<const double>>
  fill_look_world(double t);

  /// Non-rigid stopping: the robot always progresses by at least
  /// min(nonrigid_min_progress, the full distance); rigid moves pass through.
  [[nodiscard]] geom::Vec2 apply_motion_adversary(geom::Vec2 from, geom::Vec2 to,
                                                  util::Prng& rng) const;

  /// Grid mode (model::MotionModel::kGrid): the single rectilinear leg a
  /// commit travels toward the (lattice-snapped) goal — the full dominant
  /// axis first, then the other. Both endpoints are lattice points, so the
  /// committed-write-log and VisibilityCache contracts are untouched; the
  /// motion adversary never applies (grid moves are rigid by definition).
  [[nodiscard]] static geom::Vec2 grid_leg(geom::Vec2 from,
                                           geom::Vec2 goal) noexcept;

  [[nodiscard]] model::LocalFrame make_frame(std::size_t robot, geom::Vec2 origin);

  /// The pure per-robot slice of a Look: snapshot the xs/ys world arrays
  /// through `frame` (possibly through the fault plan's corrupted view,
  /// whose draws depend only on (robot, look_seq)), run Compute, park the
  /// world-frame action in robot's pending slot. Reads only shared
  /// immutable state + the given scratch (the visibility cache entry for
  /// `robot` is owned by this call), so look_batch may run it concurrently
  /// for distinct robots.
  void compute_pending(std::size_t robot, const model::LocalFrame& frame,
                       std::uint64_t look_seq, std::span<const double> xs,
                       std::span<const double> ys,
                       model::SnapshotScratch& scratch, model::Snapshot& snap,
                       fault::ViewScratch& view, fault::LookFaultStats& stats);

  /// Fires the per-Look fault events (at most one per channel) for the
  /// stats gathered by compute_pending; serial, right before on_look.
  /// `position` is the observer's (possibly interpolated) Look position.
  void notify_look_faults(std::size_t robot, double time, geom::Vec2 position,
                          const fault::LookFaultStats& stats);

  void notify_commit(const CommitEvent& event, double time);

  const model::Algorithm& algo_;
  const RunConfig& config_;
  /// True when algo_ declares MotionModel::kGrid; gates target snapping and
  /// the axis-leg commit path. Continuous algorithms take the exact
  /// historical code path (golden digests stay bit-identical).
  bool grid_ = false;
  std::size_t n_;
  util::Prng rng_;
  util::Prng look_frame_rng_{0};
  sched::StreamingEpochDetector epochs_;
  std::size_t epochs_emitted_ = 0;
  std::span<RunObserver* const> observers_;

  // Watchdog state: armed in the constructor when config.deadline_ms > 0.
  std::chrono::steady_clock::time_point deadline_{};
  bool deadline_armed_ = false;
  bool deadline_hit_ = false;

  double last_change_ = 0.0;
  std::size_t total_cycles_ = 0;
  std::size_t total_moves_ = 0;
  double total_distance_ = 0.0;

  // Hot per-robot state, structure-of-arrays (see world_state.hpp).
  WorldState world_;
  std::vector<MoveSegment> current_move_;
  std::vector<double> cycle_start_;
  std::vector<double> look_time_;
  std::vector<model::Action> pending_;
  std::vector<std::uint8_t> pending_null_;
  std::vector<double> last_null_look_;
  std::vector<std::uint8_t> in_wait_;

  struct FrameParams {
    double rotation = 0.0;
    double scale = 1.0;
    bool reflected = false;
  };
  std::vector<FrameParams> frame_params_;
  std::array<bool, model::kLightCount> lights_seen_{};

  // Fault injection state; inert (and stream-invisible) for empty plans.
  fault::FaultState fault_;
  // Serial Look sequence number: assigned in driver order, it keys each
  // Look's corruption stream so the parallel batch draws are independent of
  // thread interleaving.
  std::uint64_t look_seq_ = 0;

  // Look-path workspace: the shared arena when RunConfig::arena is set,
  // otherwise this run's private one.
  LookArena own_arena_;
  LookArena* arena_ = nullptr;

  // VisibilityCache counter baselines, captured at construction: the cache
  // may be shared across runs (campaign arenas), so finalize reports this
  // run's hit mix as deltas against these.
  std::uint64_t cache_base_replays_ = 0;
  std::uint64_t cache_base_repairs_ = 0;
  std::uint64_t cache_base_rebuilds_ = 0;
};

}  // namespace lumen::sim
