#include "sim/monitors.hpp"

#include "geom/hull.hpp"
#include "geom/segment.hpp"
#include "geom/visibility.hpp"
#include "sim/streaming_collision.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lumen::sim {

double min_distance_linear_motion(geom::Vec2 a0, geom::Vec2 a1, geom::Vec2 b0,
                                  geom::Vec2 b1, double t0, double t1,
                                  double* t_min) noexcept {
  // Relative motion: d(t) = (a0-b0) + s(t) * ((a1-b1) - (a0-b0)),
  // s in [0, 1]. |d|^2 is a convex quadratic in s.
  const geom::Vec2 d0 = a0 - b0;
  const geom::Vec2 d1 = a1 - b1;
  const geom::Vec2 v = d1 - d0;
  const double vv = geom::norm_sq(v);
  double s_best = 0.0;
  if (vv > 0.0) s_best = std::clamp(-geom::dot(d0, v) / vv, 0.0, 1.0);
  const double dist_best = geom::norm(d0 + v * s_best);
  // Endpoints could tie with interior minimizer; quadratic convexity makes
  // the clamped critical point globally optimal already.
  if (t_min != nullptr) *t_min = t0 + s_best * (t1 - t0);
  return dist_best;
}

namespace detail {

geom::Vec2 piece_at(const Piece& pc, double t) noexcept {
  if (pc.t1 <= pc.t0) return pc.p0;
  const double s = std::clamp((t - pc.t0) / (pc.t1 - pc.t0), 0.0, 1.0);
  return geom::lerp(pc.p0, pc.p1, s);
}

}  // namespace detail

namespace {

using detail::Piece;
using detail::piece_at;

std::vector<Piece> pieces_of(const Trajectory& traj, double horizon) {
  std::vector<Piece> pieces;
  double t = 0.0;
  geom::Vec2 p = traj.initial();
  for (const auto& m : traj.moves()) {
    if (m.t0 > t) pieces.push_back({t, m.t0, p, p});
    pieces.push_back({m.t0, m.t1, m.from, m.to});
    t = m.t1;
    p = m.to;
  }
  if (t < horizon) pieces.push_back({t, horizon, p, p});
  return pieces;
}

void note_incident(CollisionReport& report, std::size_t a, std::size_t b,
                   double time, double separation, const char* kind,
                   bool is_position_collision) {
  if (is_position_collision) {
    ++report.position_collisions;
  } else {
    ++report.path_crossings;
  }
  if (!report.first_incident) {
    report.first_incident = CollisionIncident{a, b, time, separation, kind};
  }
}

}  // namespace

CollisionReport check_collisions(std::span<const geom::Vec2> initial_positions,
                                 std::span<const MoveSegment> moves, double horizon,
                                 double collision_tolerance) {
  CollisionReport report;
  const std::size_t n = initial_positions.size();
  const auto trajectories = build_trajectories(initial_positions, moves);
  std::vector<std::vector<Piece>> pieces(n);
  for (std::size_t i = 0; i < n; ++i) {
    pieces[i] = pieces_of(trajectories[i], horizon);
  }

  // Continuous closest approach, pairwise over overlapping linear pieces.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Merge-walk the two piece lists by time.
      std::size_t a = 0, b = 0;
      while (a < pieces[i].size() && b < pieces[j].size()) {
        const Piece& pa = pieces[i][a];
        const Piece& pb = pieces[j][b];
        const double lo = std::max(pa.t0, pb.t0);
        const double hi = std::min(pa.t1, pb.t1);
        if (lo <= hi) {
          double t_at = lo;
          const double d = min_distance_linear_motion(
              piece_at(pa, lo), piece_at(pa, hi), piece_at(pb, lo), piece_at(pb, hi),
              lo, hi, &t_at);
          if (d < report.min_separation) report.min_separation = d;
          if (d <= collision_tolerance) {
            note_incident(report, i, j, t_at, d, "position", true);
          }
        }
        if (pa.t1 <= pb.t1) {
          ++a;
        } else {
          ++b;
        }
      }
    }
  }

  // Path-crossing audit among time-overlapping moves (the paper's second
  // collision-freedom condition). Zero-length moves are skipped.
  for (std::size_t x = 0; x < moves.size(); ++x) {
    for (std::size_t y = x + 1; y < moves.size(); ++y) {
      const MoveSegment& mx = moves[x];
      const MoveSegment& my = moves[y];
      if (mx.robot == my.robot) continue;
      const bool overlap = std::max(mx.t0, my.t0) <= std::min(mx.t1, my.t1);
      if (!overlap) continue;
      if (mx.from == mx.to || my.from == my.to) continue;
      if (geom::segments_cross(geom::Segment{mx.from, mx.to},
                               geom::Segment{my.from, my.to})) {
        note_incident(report, mx.robot, my.robot, std::max(mx.t0, my.t0), 0.0,
                      "path-crossing", false);
      }
    }
  }
  return report;
}

VisibilityVerdict verify_complete_visibility(std::span<const geom::Vec2> positions,
                                             util::ThreadPool* pool) {
  VisibilityVerdict verdict;
  std::vector<geom::Vec2> sorted(positions.begin(), positions.end());
  std::sort(sorted.begin(), sorted.end());
  verdict.distinct =
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
  verdict.strictly_convex = geom::points_in_strictly_convex_position(positions);
  verdict.mutually_visible = geom::compute_visibility(positions, pool).complete();
  return verdict;
}

std::vector<std::string_view> success_predicate_names() {
  return {"complete-visibility", "mutual-visibility"};
}

SuccessVerdict verify_success(std::string_view predicate,
                              std::span<const geom::Vec2> positions,
                              util::ThreadPool* pool) {
  SuccessVerdict out;
  out.visibility = verify_complete_visibility(positions, pool);
  if (predicate == "complete-visibility") {
    out.satisfied = out.visibility.complete();
    return out;
  }
  if (predicate == "mutual-visibility") {
    out.satisfied = out.visibility.distinct && out.visibility.mutually_visible;
    return out;
  }
  std::string msg = "unknown success predicate '";
  msg += predicate;
  msg += "'; valid:";
  for (const auto n : success_predicate_names()) {
    msg += ' ';
    msg += n;
  }
  throw std::invalid_argument(msg);
}

// ---------------------------------------------------------------------------
// SafetyMonitor
// ---------------------------------------------------------------------------

SafetyMonitor::SafetyMonitor(double collision_tolerance)
    : inner_(std::make_unique<StreamingCollisionMonitor>(collision_tolerance)) {}

SafetyMonitor::~SafetyMonitor() = default;

void SafetyMonitor::absorb() {
  const CollisionReport& r = inner_->report();
  const std::size_t total = r.position_collisions + r.path_crossings;
  if (total > seen_incidents_) {
    attributed_[static_cast<std::size_t>(last_channel_)] +=
        total - seen_incidents_;
    seen_incidents_ = total;
  }
}

void SafetyMonitor::on_run_begin(const WorldView& world) {
  inner_->on_run_begin(world);
}

void SafetyMonitor::on_fault(const fault::FaultEvent& event, const WorldView&) {
  last_channel_ = event.channel;
}

void SafetyMonitor::on_commit(const CommitEvent& event, const WorldView& world) {
  inner_->on_commit(event, world);
  absorb();
}

void SafetyMonitor::on_move_complete(const MoveSegment& move,
                                     const WorldView& world) {
  inner_->on_move_complete(move, world);
  absorb();
}

void SafetyMonitor::on_run_end(const WorldView& world) {
  inner_->on_run_end(world);
  absorb();
}

const CollisionReport& SafetyMonitor::report() const noexcept {
  return inner_->report();
}

std::size_t SafetyMonitor::attributed(fault::FaultChannel channel) const noexcept {
  return attributed_[static_cast<std::size_t>(channel)];
}

fault::FaultChannel SafetyMonitor::dominant_channel() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < attributed_.size(); ++i) {
    if (attributed_[i] > attributed_[best]) best = i;
  }
  if (attributed_[best] == 0) return fault::FaultChannel::kNone;
  return static_cast<fault::FaultChannel>(best);
}

}  // namespace lumen::sim
