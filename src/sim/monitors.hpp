// lumen_sim: execution monitors — the machine-checkable counterparts of the
// paper's safety theorems.
//
// The collision monitor verifies claim C4 on the CONTINUOUS motion: for
// every pair of robots and every instant, positions stay distinct
// (closed-form closest approach between piecewise-linear trajectories, no
// sampling holes), and the swept paths of time-overlapping moves never
// cross. The convexity/visibility checks verify C1's postcondition on the
// final configuration.
#pragma once

#include "geom/vec2.hpp"
#include "sim/observer.hpp"
#include "sim/trajectory.hpp"

#include <array>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace lumen::util {
class ThreadPool;
}

namespace lumen::sim {

namespace detail {

/// A maximal interval during which a robot's motion is a single linear
/// function of time (either one MoveSegment or an idle stretch). Shared by
/// the post-hoc audit and the streaming monitor so both evaluate closest
/// approaches on bit-identical arguments.
struct Piece {
  double t0 = 0.0;
  double t1 = 0.0;
  geom::Vec2 p0{};
  geom::Vec2 p1{};
};

[[nodiscard]] geom::Vec2 piece_at(const Piece& pc, double t) noexcept;

}  // namespace detail

struct CollisionIncident {
  std::size_t robot_a = 0;
  std::size_t robot_b = 0;
  double time = 0.0;
  double separation = 0.0;
  std::string kind;  ///< "position" or "path-crossing".
};

struct CollisionReport {
  /// Minimum separation between any two robots over the whole run.
  double min_separation = std::numeric_limits<double>::infinity();
  /// Pairs that came within `collision_tolerance` (position collisions).
  std::size_t position_collisions = 0;
  /// Time-overlapping move pairs whose swept paths cross.
  std::size_t path_crossings = 0;
  std::optional<CollisionIncident> first_incident;

  [[nodiscard]] bool clean() const noexcept {
    return position_collisions == 0 && path_crossings == 0;
  }

  /// The physical collision-freedom verdict: no two robots ever coincide,
  /// and the global closest approach stays at or above `delta` (robots are
  /// points; delta is the near-miss threshold the benches require). Strict
  /// geometric path-disjointness is reported separately via path_crossings:
  /// time-separated traversals of crossing long-haul paths can occur in
  /// this reconstruction (DESIGN.md §7) without ever bringing two robots
  /// near each other.
  [[nodiscard]] bool hazard_free(double delta) const noexcept {
    return position_collisions == 0 && min_separation >= delta;
  }
};

/// Runs the full continuous collision audit over a recorded execution.
/// `collision_tolerance`: separations at or below it count as collisions
/// (0 flags only exact coincidence; the benches use a small positive value
/// to also catch grazing contact).
[[nodiscard]] CollisionReport check_collisions(
    std::span<const geom::Vec2> initial_positions,
    std::span<const MoveSegment> moves, double horizon,
    double collision_tolerance = 0.0);

/// Minimum distance between two linearly moving points over [t0, t1].
/// a(t) and b(t) are given by endpoint positions at t0 and t1.
/// Exposed for direct unit testing of the closed form.
[[nodiscard]] double min_distance_linear_motion(geom::Vec2 a0, geom::Vec2 a1,
                                                geom::Vec2 b0, geom::Vec2 b1,
                                                double t0, double t1,
                                                double* t_min = nullptr) noexcept;

/// Final-configuration audit for Complete Visibility (claim C1): all points
/// distinct, strictly convex position, every pair mutually visible.
struct VisibilityVerdict {
  bool distinct = false;
  bool strictly_convex = false;
  bool mutually_visible = false;

  [[nodiscard]] bool complete() const noexcept {
    return distinct && strictly_convex && mutually_visible;
  }
};

/// With a pool, the underlying visibility sweep fans observers out over
/// the workers (bit-identical verdict for any pool size; see
/// geom::compute_visibility).
[[nodiscard]] VisibilityVerdict verify_complete_visibility(
    std::span<const geom::Vec2> positions, util::ThreadPool* pool = nullptr);

/// The named success predicates an Algorithm may declare
/// (model::Algorithm::success_predicate), in presentation order.
[[nodiscard]] std::vector<std::string_view> success_predicate_names();

/// Evaluates the named success predicate over a final configuration:
///   "complete-visibility" — distinct + strictly convex + mutually visible
///     (the paper's C1 postcondition);
///   "mutual-visibility"   — distinct + mutually visible, convexity not
///     required (Di Luna et al., arXiv:1405.2430).
/// `satisfied` is the predicate's verdict; the full VisibilityVerdict is
/// returned alongside so callers can still report the individual bits.
/// Throws std::invalid_argument for unknown predicate names (lists the
/// valid ones).
struct SuccessVerdict {
  VisibilityVerdict visibility;
  bool satisfied = false;
};

[[nodiscard]] SuccessVerdict verify_success(std::string_view predicate,
                                            std::span<const geom::Vec2> positions,
                                            util::ThreadPool* pool = nullptr);

class StreamingCollisionMonitor;

/// Collision auditing with fault attribution: wraps a
/// StreamingCollisionMonitor and blames every new incident on the fault
/// channel most recently seen active via on_fault (kNone before any fault
/// fires). Attribution is a heuristic diagnosis — the injected fault that
/// most plausibly destabilized the run — not a causal proof; on a fault-free
/// run the wrapped report is identical to a bare StreamingCollisionMonitor's.
class SafetyMonitor final : public RunObserver {
 public:
  /// `collision_tolerance` forwards to the wrapped monitor.
  explicit SafetyMonitor(double collision_tolerance = 0.0);
  ~SafetyMonitor() override;

  void on_run_begin(const WorldView& world) override;
  void on_fault(const fault::FaultEvent& event, const WorldView& world) override;
  void on_commit(const CommitEvent& event, const WorldView& world) override;
  void on_move_complete(const MoveSegment& move, const WorldView& world) override;
  void on_run_end(const WorldView& world) override;

  /// The wrapped audit verdict; complete once on_run_end has fired.
  [[nodiscard]] const CollisionReport& report() const noexcept;

  /// Incidents (position collisions + path crossings) attributed to
  /// `channel`; the kNone bucket holds incidents seen before any fault.
  [[nodiscard]] std::size_t attributed(fault::FaultChannel channel) const noexcept;

  /// The channel the NEXT incident would be blamed on.
  [[nodiscard]] fault::FaultChannel last_active_channel() const noexcept {
    return last_channel_;
  }

  /// The channel with the most attributed incidents (ties broken toward the
  /// earlier enum value); kNone when the run is incident-free.
  [[nodiscard]] fault::FaultChannel dominant_channel() const noexcept;

 private:
  /// Attributes incidents the wrapped monitor found since the last call.
  void absorb();

  std::unique_ptr<StreamingCollisionMonitor> inner_;
  fault::FaultChannel last_channel_ = fault::FaultChannel::kNone;
  std::array<std::size_t, 4> attributed_{};  ///< Indexed by FaultChannel.
  std::size_t seen_incidents_ = 0;
};

}  // namespace lumen::sim
