// lumen_sim: cross-run Look-path workspace.
//
// Every buffer the Look path touches — the visibility sort scratch, the
// snapshot arrays, the fault view buffers, the per-pool-slot copies of all
// three, the interpolated world-fill arrays and the incremental visibility
// cache — lives in a LookArena. ExecutionCore owns a private arena by
// default, which preserves the historical per-run behavior; a caller that
// executes many runs back to back (the campaign worker loop) passes one
// arena through RunConfig::arena instead, so capacity warmed by one cell
// carries into the next and the steady state stays allocation-free across
// engine resets, not just across Looks. Like RunConfig::pool, the arena is
// a process-local resource, never serialized, and never read concurrently
// by two runs.
#pragma once

#include "fault/state.hpp"
#include "geom/visibility_cache.hpp"
#include "model/snapshot.hpp"

#include <cstdint>
#include <vector>

namespace lumen::sim {

/// One pool slot's private Look workspace (tasks sharing a slot never run
/// concurrently, so slot count bounds live copies).
struct LookSlot {
  model::SnapshotScratch scratch;
  model::Snapshot snapshot;
  fault::ViewScratch view;
};

struct LookArena {
  // Serial-path workspace (also slot 0 semantics for unbatched looks).
  model::SnapshotScratch snapshot_scratch;
  model::Snapshot snapshot;
  fault::ViewScratch view_scratch;

  // Per-pool-slot workspaces for the parallel SYNC Look batch.
  std::vector<LookSlot> slots;

  // Interpolated world fill: committed coordinates with in-flight movers
  // overwritten per Look. `prev_movers` lists the slots dirtied by the
  // previous fill so the next one restores O(#movers) entries instead of
  // recopying the arrays (see ExecutionCore::fill_look_world).
  std::vector<double> look_xs;
  std::vector<double> look_ys;
  std::vector<std::uint32_t> prev_movers;

  // Incremental per-observer visibility maintenance (reset per run; entry
  // capacity survives, which is the point of sharing the arena).
  geom::VisibilityCache visibility_cache;

  // look_batch per-round staging, aligned with the batch's robot list.
  std::vector<model::LocalFrame> frames;
  std::vector<std::uint64_t> seqs;
  std::vector<fault::LookFaultStats> stats;
};

}  // namespace lumen::sim
