#include "sim/config_io.hpp"

#include "fault/plan.hpp"
#include "sched/activation.hpp"
#include "sched/adversary.hpp"

#include <string_view>

namespace lumen::sim {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr && error->empty()) *error = std::move(message);
}

}  // namespace

util::JsonValue run_config_to_json(const RunConfig& config) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("scheduler", util::JsonValue::string(std::string(to_string(config.scheduler))));
  obj.set("adversary",
          util::JsonValue::string(std::string(sched::to_string(config.adversary))));
  obj.set("activation",
          util::JsonValue::string(std::string(sched::to_string(config.activation))));
  obj.set("seed", util::JsonValue::integer(static_cast<std::int64_t>(config.seed)));
  obj.set("max_cycles_per_robot",
          util::JsonValue::integer(static_cast<std::int64_t>(config.max_cycles_per_robot)));
  obj.set("refresh_frames_each_look",
          util::JsonValue::boolean(config.refresh_frames_each_look));
  obj.set("record_hull_history", util::JsonValue::boolean(config.record_hull_history));
  obj.set("record_moves", util::JsonValue::boolean(config.record_moves));
  obj.set("rigid_moves", util::JsonValue::boolean(config.rigid_moves));
  obj.set("nonrigid_min_progress", util::JsonValue::number(config.nonrigid_min_progress));
  // deadline_ms and fault are emitted only when non-default, so documents
  // predating each feature stay byte-identical (the round-trip guarantee is
  // over emitted strings).
  if (config.deadline_ms > 0) {
    obj.set("deadline_ms",
            util::JsonValue::integer(static_cast<std::int64_t>(config.deadline_ms)));
  }
  if (config.fault != fault::FaultPlan{}) {
    obj.set("fault", fault::fault_plan_to_json(config.fault));
  }
  return obj;
}

std::optional<RunConfig> run_config_from_json(const util::JsonValue& json,
                                              std::string* error) {
  if (!json.is_object()) {
    set_error(error, "run config must be a JSON object");
    return std::nullopt;
  }
  RunConfig config;
  bool ok = true;
  const auto want_bool = [&](std::string_view key, bool& out,
                             const util::JsonValue& v) {
    if (!v.is_bool()) {
      set_error(error, "run." + std::string(key) + " must be a boolean");
      ok = false;
      return;
    }
    out = v.as_bool();
  };
  for (const auto& [key, value] : json.members()) {
    if (key == "scheduler") {
      if (const auto k = value.is_string()
                             ? scheduler_from_string(value.as_string())
                             : std::nullopt) {
        config.scheduler = *k;
      } else {
        set_error(error, "run.scheduler: unknown scheduler");
        ok = false;
      }
    } else if (key == "adversary") {
      if (const auto k = value.is_string()
                             ? sched::adversary_from_string(value.as_string())
                             : std::nullopt) {
        config.adversary = *k;
      } else {
        set_error(error, "run.adversary: unknown adversary");
        ok = false;
      }
    } else if (key == "activation") {
      if (const auto k = value.is_string()
                             ? sched::activation_from_string(value.as_string())
                             : std::nullopt) {
        config.activation = *k;
      } else {
        set_error(error, "run.activation: unknown activation policy");
        ok = false;
      }
    } else if (key == "seed") {
      if (!value.is_integer() || value.as_int() < 0) {
        set_error(error, "run.seed must be a non-negative integer");
        ok = false;
      } else {
        config.seed = static_cast<std::uint64_t>(value.as_int());
      }
    } else if (key == "max_cycles_per_robot") {
      if (!value.is_integer() || value.as_int() <= 0) {
        set_error(error, "run.max_cycles_per_robot must be a positive integer");
        ok = false;
      } else {
        config.max_cycles_per_robot = static_cast<std::size_t>(value.as_int());
      }
    } else if (key == "refresh_frames_each_look") {
      want_bool(key, config.refresh_frames_each_look, value);
    } else if (key == "record_hull_history") {
      want_bool(key, config.record_hull_history, value);
    } else if (key == "record_moves") {
      want_bool(key, config.record_moves, value);
    } else if (key == "rigid_moves") {
      want_bool(key, config.rigid_moves, value);
    } else if (key == "nonrigid_min_progress") {
      if (!value.is_number() || value.as_double() < 0.0) {
        set_error(error, "run.nonrigid_min_progress must be a number >= 0");
        ok = false;
      } else {
        config.nonrigid_min_progress = value.as_double();
      }
    } else if (key == "deadline_ms") {
      if (!value.is_integer() || value.as_int() < 0) {
        set_error(error, "run.deadline_ms must be a non-negative integer");
        ok = false;
      } else {
        config.deadline_ms = static_cast<std::uint64_t>(value.as_int());
      }
    } else if (key == "fault") {
      std::string fault_error;
      if (const auto plan = fault::fault_plan_from_json(value, &fault_error)) {
        config.fault = *plan;
      } else {
        set_error(error, "run.fault: " + fault_error);
        ok = false;
      }
    } else {
      set_error(error, "run config: unknown key \"" + key + "\"");
      ok = false;
    }
  }
  if (!ok) return std::nullopt;
  return config;
}

}  // namespace lumen::sim
