// lumen_sim: running one execution end-to-end.
//
// run_simulation() binds an Algorithm, an initial configuration and a
// scheduler into one execution and returns everything the monitors, benches
// and renderers need: the motion record, the cycle timeline (for epoch
// accounting), the lights audit and the convergence status.
#pragma once

#include "fault/events.hpp"
#include "fault/plan.hpp"
#include "geom/vec2.hpp"
#include "model/algorithm.hpp"
#include "model/light.hpp"
#include "sched/activation.hpp"
#include "sched/adversary.hpp"
#include "sched/epoch.hpp"
#include "sim/observer.hpp"
#include "sim/trajectory.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace lumen::util {
class ThreadPool;
}

namespace lumen::sim {

struct LookArena;

enum class SchedulerKind { kFsync, kSsync, kAsync };

[[nodiscard]] std::string_view to_string(SchedulerKind k) noexcept;

/// Inverse of to_string. Case-insensitive ("async" == "ASYNC"), nullopt for
/// unknown names.
[[nodiscard]] std::optional<SchedulerKind> scheduler_from_string(
    std::string_view name) noexcept;

/// How a run ended, beyond the raw `converged` bit:
///  * kConverged — quiescent with no faults injected into the trajectory
///    (light/noise channels may have fired; the swarm still reached a
///    fixpoint).
///  * kStalled — quiescent, but robots crash-stopped along the way: the
///    survivors reached a fixpoint of the CRASHED world, which is not the
///    paper's Complete Visibility postcondition.
///  * kCollision — assigned post-hoc by the campaign layer when the audit
///    finds a position collision (the engine itself never stops on one).
///  * kBudgetExhausted — the cycle/round cap fired before quiescence.
///  * kDeadlineExceeded — the wall-clock watchdog (RunConfig::deadline_ms)
///    fired at a cycle boundary before quiescence. Unlike every other
///    outcome this one is timing-dependent, which is exactly its job: a run
///    hung under an adversarial schedule is classified and returned instead
///    of wedging a campaign worker forever. The campaign layer treats it as
///    retriable (see analysis::CampaignError).
enum class RunOutcome {
  kConverged,
  kStalled,
  kCollision,
  kBudgetExhausted,
  kDeadlineExceeded
};

[[nodiscard]] std::string_view to_string(RunOutcome o) noexcept;

/// Case-insensitive inverse ("stalled" == "STALLED"); nullopt for unknown.
[[nodiscard]] std::optional<RunOutcome> outcome_from_string(
    std::string_view name) noexcept;

struct RunConfig {
  SchedulerKind scheduler = SchedulerKind::kAsync;
  /// ASYNC only: the timing adversary.
  sched::AdversaryKind adversary = sched::AdversaryKind::kUniform;
  /// SSYNC only: the activation adversary (FSYNC forces kAll).
  sched::ActivationKind activation = sched::ActivationKind::kRandomHalf;
  std::uint64_t seed = 1;
  /// Abort threshold: a run exceeding this many cycles per robot (on
  /// average) is reported as not converged.
  std::size_t max_cycles_per_robot = 4096;
  /// Per-run wall-clock watchdog in milliseconds; 0 disables it. Enforced
  /// cooperatively at cycle/round boundaries by the drivers (never
  /// mid-phase), so a run under an adversarial scheduler that would
  /// otherwise hang a campaign worker ends with RunOutcome::
  /// kDeadlineExceeded instead. The cut-off instant is wall-clock and thus
  /// NOT deterministic — results of runs that finish within the budget are
  /// unaffected (the watchdog never draws from any PRNG stream).
  /// Serialized by config_io only when nonzero, so pre-watchdog documents
  /// stay byte-identical.
  std::uint64_t deadline_ms = 0;
  /// Draw a fresh random local frame at every Look (full disorientation).
  /// When false, each robot keeps one fixed random frame.
  bool refresh_frames_each_look = true;
  /// Record hull corner counts over time (costs O(N log N) per move).
  bool record_hull_history = false;
  /// Retain the full move log in RunResult::moves. On by default for
  /// single-run workflows (traces, SVG, post-hoc audits); campaigns switch
  /// it off and audit with the streaming collision monitor instead, so a
  /// run's memory no longer grows with its length.
  bool record_moves = true;
  /// Rigid movement: a moving robot always reaches its target. When false
  /// (the NON-RIGID model variant), the adversary may stop the robot
  /// anywhere along its path as long as it travels at least
  /// min(nonrigid_min_progress, the full distance) — the classic delta
  /// guarantee that keeps Zeno behaviours out.
  bool rigid_moves = true;
  double nonrigid_min_progress = 0.5;
  /// Optional in-run worker pool (non-owning; nullptr = serial). The SYNC
  /// drivers fan each round's Look+Compute over it — every activated robot
  /// snapshots the same pre-round configuration and Compute is a pure
  /// function of the snapshot, so results are bit-identical for any pool
  /// size (pinned by tests/sim_pool_invariance_test.cpp). ASYNC ignores it:
  /// the event loop interleaves single-robot phases, so there is no
  /// intra-run batch to parallelize (DESIGN.md §10). Not serialized by
  /// config_io (a pool is a process-local resource, not configuration).
  util::ThreadPool* pool = nullptr;
  /// Optional cross-run Look workspace (non-owning; nullptr = the engine
  /// uses a private arena). Campaign workers pass one arena for all their
  /// cells so visibility scratch and cache capacity survive engine resets.
  /// Results are bit-identical with and without a shared arena. Not
  /// serialized by config_io (a process-local resource, like `pool`).
  LookArena* arena = nullptr;
  /// Byte budget for the incremental visibility cache (see
  /// geom::VisibilityCache): per-observer sorted angular orders are
  /// retained and repaired from the world's write log instead of rebuilt
  /// every Look. 0 disables caching. The cache is bit-identity-preserving
  /// by construction, so this knob trades memory for Look time only.
  /// Not serialized by config_io while it is a pure performance knob.
  std::size_t visibility_cache_budget = 256u << 20;
  /// Fault injection plan (crash-stop / light corruption / sensor noise;
  /// see fault/plan.hpp). The default (empty) plan is bit-identical to the
  /// pre-fault engine on every scheduler and pool size. Serialized by
  /// config_io only when non-default.
  fault::FaultPlan fault;
};

struct RunResult {
  bool converged = false;
  double final_time = 0.0;
  std::size_t epochs = 0;        ///< ASYNC epochs / sync epochs (see DESIGN §1).
  std::size_t rounds = 0;        ///< Sync rounds executed (0 for ASYNC).
  std::size_t total_cycles = 0;
  std::size_t total_moves = 0;
  double total_distance = 0.0;
  std::vector<geom::Vec2> initial_positions;
  std::vector<geom::Vec2> final_positions;
  std::vector<model::Light> final_lights;
  /// Full move log — populated only when RunConfig::record_moves is set
  /// (the default). total_moves / total_distance are always maintained.
  std::vector<MoveSegment> moves;
  std::vector<HullSample> hull_history;
  /// lights_seen[i] is true iff color kAllLights[i] was ever displayed.
  std::array<bool, model::kLightCount> lights_seen{};
  /// Outcome classification (converged / stalled / budget-exhausted from
  /// the engine; the campaign layer upgrades to kCollision on audit hits).
  RunOutcome outcome = RunOutcome::kBudgetExhausted;
  /// Whole-run fault totals per channel; all zero for a fault-free run.
  fault::FaultCounters faults;
  /// crashed[i] != 0 iff robot i crash-stopped during the run (size N).
  std::vector<std::uint8_t> crashed;
  /// Injected fault events — populated only when RunConfig::record_moves is
  /// set AND the plan is active (single-run tracing; the SVG renderer's
  /// annotations feed on this).
  std::vector<fault::FaultEvent> fault_events;
  /// This run's geom::VisibilityCache hit mix (Looks served by replaying a
  /// retained angular order, by repairing one from the write log, and by
  /// full rebuilds). Deltas for THIS run even when the arena (and thus the
  /// cache) is shared across campaign cells. All zero when caching is
  /// disabled — every Look then takes the one-shot kernel.
  std::uint64_t cache_replays = 0;
  std::uint64_t cache_repairs = 0;
  std::uint64_t cache_rebuilds = 0;

  [[nodiscard]] std::size_t distinct_lights_used() const noexcept {
    std::size_t c = 0;
    for (const bool b : lights_seen) {
      if (b) ++c;
    }
    return c;
  }
};

/// Executes the algorithm from `initial` until quiescence or the cycle cap.
/// Deterministic in (algorithm, initial, config).
[[nodiscard]] RunResult run_simulation(const model::Algorithm& algorithm,
                                       std::span<const geom::Vec2> initial,
                                       const RunConfig& config);

/// As above, with additional streaming observers attached for the duration
/// of the run (hull/move recorders implied by `config` are attached on top;
/// see observer.hpp for the hook contract). Observer callbacks never affect
/// the execution: results are bit-identical with and without observers.
[[nodiscard]] RunResult run_simulation(const model::Algorithm& algorithm,
                                       std::span<const geom::Vec2> initial,
                                       const RunConfig& config,
                                       std::span<RunObserver* const> observers);

}  // namespace lumen::sim
