// lumen_sim: recorded motion and piecewise-linear trajectories.
//
// The engine records every Move as a timed segment; a Trajectory glues a
// robot's segments together with the implicit idle intervals between them,
// giving position-at-time queries for the collision monitor, the epoch
// renderer, and the SVG output.
#pragma once

#include "geom/vec2.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace lumen::sim {

/// One recorded Move: robot `robot` travels from `from` (at t0) to `to`
/// (at t1) in a straight line at constant speed. t1 == t0 encodes an
/// instantaneous jump (synchronous rounds).
struct MoveSegment {
  std::size_t robot = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  geom::Vec2 from{};
  geom::Vec2 to{};

  [[nodiscard]] geom::Vec2 at(double t) const noexcept {
    if (t1 <= t0) return t >= t1 ? to : from;  // Instantaneous jump.
    if (t <= t0) return from;
    if (t >= t1) return to;
    return geom::lerp(from, to, (t - t0) / (t1 - t0));
  }
  [[nodiscard]] double length() const noexcept { return geom::distance(from, to); }
};

/// A single robot's complete motion history.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(geom::Vec2 initial, std::vector<MoveSegment> moves);

  /// Position at absolute time t (clamped to [0, inf); after the last move
  /// the robot rests at its final position).
  [[nodiscard]] geom::Vec2 at(double t) const noexcept;

  [[nodiscard]] geom::Vec2 initial() const noexcept { return initial_; }
  [[nodiscard]] geom::Vec2 final() const noexcept;
  [[nodiscard]] std::span<const MoveSegment> moves() const noexcept { return moves_; }
  [[nodiscard]] double total_distance() const noexcept;

 private:
  geom::Vec2 initial_{};
  std::vector<MoveSegment> moves_;  ///< Chronological, non-overlapping.
};

/// Splits a flat recorded move list into per-robot trajectories.
[[nodiscard]] std::vector<Trajectory> build_trajectories(
    std::span<const geom::Vec2> initial_positions,
    std::span<const MoveSegment> moves);

}  // namespace lumen::sim
