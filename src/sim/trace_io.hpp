// lumen_sim: execution trace export and replay verification.
//
// A RunResult's motion record serializes to a line-oriented JSON (JSONL)
// trace: one header line, one line per initial position, one line per move.
// Traces are the exchange format for offline analysis (plotting, external
// checkers) and for regression pinning: a loaded trace can be re-audited by
// the collision monitor and compared against a fresh run of the same seed.
#pragma once

#include "sim/run.hpp"

#include <iosfwd>
#include <optional>
#include <string>

namespace lumen::sim {

/// Subset of a RunResult that round-trips through a trace file.
struct Trace {
  std::size_t robot_count = 0;
  bool converged = false;
  double final_time = 0.0;
  std::size_t epochs = 0;
  std::vector<geom::Vec2> initial_positions;
  std::vector<MoveSegment> moves;
};

/// Extracts the traceable subset of a run.
[[nodiscard]] Trace make_trace(const RunResult& run);

/// Writes the trace as JSONL. Deterministic output (fixed float format).
void write_trace(std::ostream& os, const Trace& trace);

/// Parses a trace written by write_trace. Returns nullopt on malformed
/// input (wrong header, counts out of range, unparsable lines).
[[nodiscard]] std::optional<Trace> read_trace(std::istream& is);

/// Convenience file round-trips.
bool save_trace(const RunResult& run, const std::string& path);
[[nodiscard]] std::optional<Trace> load_trace(const std::string& path);

/// True iff the two traces describe the same execution (exact positions
/// and move records; converged/epochs metadata must match too).
[[nodiscard]] bool traces_equal(const Trace& a, const Trace& b);

}  // namespace lumen::sim
