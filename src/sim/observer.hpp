// lumen_sim: streaming run observation.
//
// A RunObserver receives the execution as it happens — every Look, commit,
// move completion, round and epoch boundary — instead of mining an
// unbounded post-hoc move log. All engine instrumentation (move recording,
// hull census, collision auditing) is an observer; a run with no observers
// retains nothing per-event, which is what makes large-N campaigns
// memory-bound only by the world state itself.
//
// Contract (see DESIGN.md §"ExecutionCore and observers"):
//  * Hooks fire in simulated-time order; equal-time events fire in engine
//    processing order (ASYNC: event-queue FIFO; SYNC: activation order,
//    with all of a round's commits delivered before its move completions).
//  * on_commit fires AFTER the light is applied and the non-rigid adversary
//    has truncated the move; `move_started` is null for stay commits and
//    points at the in-flight segment otherwise.
//  * on_move_complete fires AFTER the robot's committed position updated.
//  * The WorldView passed to a hook is only valid during that call.
//  * Observers must not re-enter the engine (they see a consistent world
//    snapshot, not a mutation point) and must not assume they are the only
//    observer; the engine never reorders hooks across observers.
#pragma once

#include "fault/events.hpp"
#include "geom/vec2.hpp"
#include "model/algorithm.hpp"
#include "model/light.hpp"
#include "sim/trajectory.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lumen::sim {

/// Corner census at one instant (for the doubling experiment, claim C6).
struct HullSample {
  double time = 0.0;
  std::size_t corners = 0;       ///< Strict hull vertices.
  std::size_t non_corners = 0;   ///< Robots not yet in convex position.
};

/// Read-only view of the live world state, valid for the duration of one
/// observer hook. Coordinates come as the engine's split SoA arrays —
/// `position(i)` re-pairs robot i's last COMMITTED position; `position_at`
/// interpolates robots that are mid-move (ASYNC). `moving_words` is the
/// packed in-flight bitset (64 robots per word, bit i of word i/64).
struct WorldView {
  std::span<const double> xs;
  std::span<const double> ys;
  std::span<const model::Light> lights;
  std::span<const std::uint64_t> moving_words;  ///< Packed mid-move bits.
  std::span<const MoveSegment> current_moves;   ///< Valid where is_moving(i).
  double time = 0.0;                            ///< Hook's simulated time.

  [[nodiscard]] std::size_t size() const noexcept { return xs.size(); }

  [[nodiscard]] geom::Vec2 position(std::size_t i) const noexcept {
    return geom::Vec2{xs[i], ys[i]};
  }

  [[nodiscard]] bool is_moving(std::size_t i) const noexcept {
    return ((moving_words[i >> 6] >> (i & 63)) & 1u) != 0;
  }

  [[nodiscard]] geom::Vec2 position_at(std::size_t i, double t) const noexcept {
    return is_moving(i) ? current_moves[i].at(t) : position(i);
  }
};

/// One committed Compute result, as delivered to observers.
struct CommitEvent {
  std::size_t robot = 0;
  double time = 0.0;
  model::Action action;       ///< World-frame action (target in world coords).
  bool light_changed = false;
  /// The move this commit started (non-rigid truncation already applied),
  /// or nullptr for a stay commit. Points into engine state; copy to keep.
  const MoveSegment* move_started = nullptr;
};

/// Streaming hook interface. Default implementations ignore everything, so
/// observers override only the events they care about.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// Initial configuration, before any event. `world.time` is 0.
  virtual void on_run_begin(const WorldView& world) { (void)world; }

  /// A robot took its instantaneous snapshot at `time`.
  virtual void on_look(std::size_t robot, double time, const WorldView& world) {
    (void)robot, (void)time, (void)world;
  }

  /// A robot committed its pending action (light applied; move started or
  /// cycle ended as null).
  virtual void on_commit(const CommitEvent& event, const WorldView& world) {
    (void)event, (void)world;
  }

  /// A robot finished its move; `world` already holds the new position.
  virtual void on_move_complete(const MoveSegment& move, const WorldView& world) {
    (void)move, (void)world;
  }

  /// A fault was injected: a crash-stop (fires before the robot's cycle
  /// would have started), or one Look's light/noise corruption summary
  /// (fires after Compute, before that robot's on_look). Never fires on a
  /// fault-free run.
  virtual void on_fault(const fault::FaultEvent& event, const WorldView& world) {
    (void)event, (void)world;
  }

  /// SYNC only: a round was fully applied. `time` is the round's end.
  virtual void on_round(std::uint64_t round, double time, const WorldView& world) {
    (void)round, (void)time, (void)world;
  }

  /// An epoch closed (streaming detection; identical boundaries to the
  /// post-hoc EpochTimeline reconstruction). Fires for every scheduler.
  virtual void on_epoch(std::size_t epoch_index, double end_time,
                        const WorldView& world) {
    (void)epoch_index, (void)end_time, (void)world;
  }

  /// The run is over (quiescent or cycle-capped); final configuration.
  virtual void on_run_end(const WorldView& world) { (void)world; }
};

// ---------------------------------------------------------------------------
// Built-in observers
// ---------------------------------------------------------------------------

/// Retains the full move log — the opt-in replacement for the historical
/// always-on RunResult::moves field. trace_io and the SVG renderer feed on
/// this; big campaigns simply do not attach it.
class MoveLogRecorder final : public RunObserver {
 public:
  void on_move_complete(const MoveSegment& move, const WorldView&) override {
    moves_.push_back(move);
  }

  [[nodiscard]] std::vector<MoveSegment>& moves() noexcept { return moves_; }

 private:
  std::vector<MoveSegment> moves_;
};

/// Retains every injected fault event — attached by run_simulation when the
/// run both records moves (single-run tracing) and has an active fault
/// plan, mirroring MoveLogRecorder's opt-in shape.
class FaultLogRecorder final : public RunObserver {
 public:
  void on_fault(const fault::FaultEvent& event, const WorldView&) override {
    events_.push_back(event);
  }

  [[nodiscard]] std::vector<fault::FaultEvent>& events() noexcept {
    return events_;
  }

 private:
  std::vector<fault::FaultEvent> events_;
};

/// Corner census over time (claim C6's doubling experiment): samples the
/// strict-hull corner count at t=0, then after every move completion (ASYNC)
/// or at every round boundary (SYNC), matching the historical
/// record_hull_history cadence exactly.
class HullHistoryRecorder final : public RunObserver {
 public:
  /// `per_round`: sample at round boundaries (SYNC schedulers) instead of at
  /// individual move completions (ASYNC).
  explicit HullHistoryRecorder(bool per_round) : per_round_(per_round) {}

  void on_run_begin(const WorldView& world) override;
  void on_move_complete(const MoveSegment& move, const WorldView& world) override;
  void on_round(std::uint64_t round, double time, const WorldView& world) override;

  [[nodiscard]] std::vector<HullSample>& samples() noexcept { return samples_; }

 private:
  void sample(double time, const WorldView& world);

  std::vector<HullSample> samples_;
  std::vector<geom::Vec2> world_scratch_;
  bool per_round_ = false;
};

}  // namespace lumen::sim
