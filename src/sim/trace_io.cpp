#include "sim/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

namespace lumen::sim {

namespace {

/// Shortest round-trip representation of a double ("%.17g" is exact).
std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

Trace make_trace(const RunResult& run) {
  Trace t;
  t.robot_count = run.initial_positions.size();
  t.converged = run.converged;
  t.final_time = run.final_time;
  t.epochs = run.epochs;
  t.initial_positions = run.initial_positions;
  t.moves = run.moves;
  return t;
}

void write_trace(std::ostream& os, const Trace& trace) {
  os << "{\"type\":\"lumen-trace\",\"version\":1,\"robots\":" << trace.robot_count
     << ",\"converged\":" << (trace.converged ? "true" : "false")
     << ",\"final_time\":" << number(trace.final_time)
     << ",\"epochs\":" << trace.epochs << ",\"moves\":" << trace.moves.size()
     << "}\n";
  for (const auto& p : trace.initial_positions) {
    os << "{\"init\":[" << number(p.x) << ',' << number(p.y) << "]}\n";
  }
  for (const auto& m : trace.moves) {
    os << "{\"robot\":" << m.robot << ",\"t\":[" << number(m.t0) << ','
       << number(m.t1) << "],\"from\":[" << number(m.from.x) << ','
       << number(m.from.y) << "],\"to\":[" << number(m.to.x) << ','
       << number(m.to.y) << "]}\n";
  }
}

std::optional<Trace> read_trace(std::istream& is) {
  Trace t;
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  unsigned long long robots = 0, epochs = 0, moves = 0;
  char converged[8] = {0};
  // The writer's format is fixed, so a strict scanf parse suffices (and
  // rejects anything else).
  if (std::sscanf(line.c_str(),
                  "{\"type\":\"lumen-trace\",\"version\":1,\"robots\":%llu"
                  ",\"converged\":%5[a-z],\"final_time\":%lf,\"epochs\":%llu"
                  ",\"moves\":%llu}",
                  &robots, converged, &t.final_time, &epochs, &moves) != 5) {
    return std::nullopt;
  }
  const std::string conv = converged;
  if (conv != "true" && conv != "false") return std::nullopt;
  t.converged = conv == "true";
  t.robot_count = robots;
  t.epochs = epochs;
  if (robots > 10'000'000ULL || moves > 100'000'000ULL) return std::nullopt;

  t.initial_positions.reserve(robots);
  for (unsigned long long i = 0; i < robots; ++i) {
    if (!std::getline(is, line)) return std::nullopt;
    geom::Vec2 p;
    if (std::sscanf(line.c_str(), "{\"init\":[%lf,%lf]}", &p.x, &p.y) != 2) {
      return std::nullopt;
    }
    t.initial_positions.push_back(p);
  }
  t.moves.reserve(moves);
  for (unsigned long long i = 0; i < moves; ++i) {
    if (!std::getline(is, line)) return std::nullopt;
    MoveSegment m;
    unsigned long long robot = 0;
    if (std::sscanf(line.c_str(),
                    "{\"robot\":%llu,\"t\":[%lf,%lf],\"from\":[%lf,%lf]"
                    ",\"to\":[%lf,%lf]}",
                    &robot, &m.t0, &m.t1, &m.from.x, &m.from.y, &m.to.x,
                    &m.to.y) != 7) {
      return std::nullopt;
    }
    if (robot >= t.robot_count) return std::nullopt;
    m.robot = robot;
    t.moves.push_back(m);
  }
  return t;
}

bool save_trace(const RunResult& run, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_trace(f, make_trace(run));
  return static_cast<bool>(f);
}

std::optional<Trace> load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  return read_trace(f);
}

bool traces_equal(const Trace& a, const Trace& b) {
  if (a.robot_count != b.robot_count || a.converged != b.converged ||
      a.final_time != b.final_time || a.epochs != b.epochs ||
      a.initial_positions != b.initial_positions ||
      a.moves.size() != b.moves.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.moves.size(); ++i) {
    const MoveSegment& x = a.moves[i];
    const MoveSegment& y = b.moves[i];
    if (x.robot != y.robot || x.t0 != y.t0 || x.t1 != y.t1 || x.from != y.from ||
        x.to != y.to) {
      return false;
    }
  }
  return true;
}

}  // namespace lumen::sim
