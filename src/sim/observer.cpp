#include "sim/observer.hpp"

#include "geom/hull.hpp"

#include <algorithm>

namespace lumen::sim {

namespace {

/// Census of strict hull corners vs the rest.
HullSample hull_census(double time, std::span<const geom::Vec2> positions) {
  const auto hull = geom::convex_hull_indices(positions);
  HullSample s;
  s.time = time;
  // A degenerate (collinear) hull reports its two extremes as "corners".
  s.corners = hull.size();
  s.non_corners = positions.size() - std::min(hull.size(), positions.size());
  return s;
}

}  // namespace

void HullHistoryRecorder::on_run_begin(const WorldView& world) {
  // Nobody is mid-move at t = 0, so this materialises the committed
  // configuration exactly as the historical AoS view did.
  sample(0.0, world);
}

void HullHistoryRecorder::on_move_complete(const MoveSegment& move,
                                           const WorldView& world) {
  if (per_round_) return;
  sample(move.t1, world);
}

void HullHistoryRecorder::on_round(std::uint64_t, double time,
                                   const WorldView& world) {
  if (!per_round_) return;
  sample(time, world);
}

void HullHistoryRecorder::sample(double time, const WorldView& world) {
  // ASYNC: other robots may be mid-move at this instant; census their
  // interpolated positions, as the engine always has.
  world_scratch_.resize(world.size());
  for (std::size_t j = 0; j < world.size(); ++j) {
    world_scratch_[j] = world.position_at(j, time);
  }
  samples_.push_back(hull_census(time, world_scratch_));
}

}  // namespace lumen::sim
