#include "fault/plan.hpp"

#include "util/strings.hpp"

namespace lumen::fault {

std::string_view to_string(CrashScheduleKind k) noexcept {
  switch (k) {
    case CrashScheduleKind::kRate: return "rate";
    case CrashScheduleKind::kTimes: return "times";
  }
  return "?";
}

std::optional<CrashScheduleKind> crash_schedule_from_string(
    std::string_view name) noexcept {
  for (const auto k : {CrashScheduleKind::kRate, CrashScheduleKind::kTimes}) {
    if (util::iequals(to_string(k), name)) return k;
  }
  return std::nullopt;
}

std::string_view to_string(CorruptionMode m) noexcept {
  switch (m) {
    case CorruptionMode::kStuck: return "stuck";
    case CorruptionMode::kFlip: return "flip";
    case CorruptionMode::kRandom: return "random";
  }
  return "?";
}

std::optional<CorruptionMode> corruption_mode_from_string(
    std::string_view name) noexcept {
  for (const auto m : {CorruptionMode::kStuck, CorruptionMode::kFlip,
                       CorruptionMode::kRandom}) {
    if (util::iequals(to_string(m), name)) return m;
  }
  return std::nullopt;
}

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr && error->empty()) *error = std::move(message);
}

/// A probability-like field: a number in [0, 1].
bool read_unit(const util::JsonValue& v, double& out, std::string_view key,
               std::string* error) {
  if (!v.is_number() || v.as_double() < 0.0 || v.as_double() > 1.0) {
    set_error(error, "fault." + std::string(key) + " must be a number in [0, 1]");
    return false;
  }
  out = v.as_double();
  return true;
}

}  // namespace

util::JsonValue fault_plan_to_json(const FaultPlan& plan) {
  util::JsonValue crash = util::JsonValue::object();
  crash.set("count",
            util::JsonValue::integer(static_cast<std::int64_t>(plan.crash.count)));
  crash.set("schedule", util::JsonValue::string(
                            std::string(to_string(plan.crash.schedule))));
  crash.set("rate", util::JsonValue::number(plan.crash.rate));
  util::JsonValue times = util::JsonValue::array();
  for (const double t : plan.crash.times) {
    times.push_back(util::JsonValue::number(t));
  }
  crash.set("times", std::move(times));

  util::JsonValue light = util::JsonValue::object();
  light.set("probability", util::JsonValue::number(plan.light.probability));
  light.set("mode",
            util::JsonValue::string(std::string(to_string(plan.light.mode))));

  util::JsonValue noise = util::JsonValue::object();
  noise.set("sigma", util::JsonValue::number(plan.noise.sigma));
  noise.set("dropout", util::JsonValue::number(plan.noise.dropout));

  util::JsonValue obj = util::JsonValue::object();
  obj.set("crash", std::move(crash));
  obj.set("light", std::move(light));
  obj.set("noise", std::move(noise));
  return obj;
}

std::optional<FaultPlan> fault_plan_from_json(const util::JsonValue& json,
                                              std::string* error) {
  if (!json.is_object()) {
    set_error(error, "fault plan must be a JSON object");
    return std::nullopt;
  }
  FaultPlan plan;
  bool ok = true;
  for (const auto& [key, value] : json.members()) {
    if (key == "crash") {
      if (!value.is_object()) {
        set_error(error, "fault.crash must be a JSON object");
        ok = false;
        continue;
      }
      for (const auto& [ckey, cvalue] : value.members()) {
        if (ckey == "count") {
          if (!cvalue.is_integer() || cvalue.as_int() < 0) {
            set_error(error, "fault.crash.count must be a non-negative integer");
            ok = false;
          } else {
            plan.crash.count = static_cast<std::size_t>(cvalue.as_int());
          }
        } else if (ckey == "schedule") {
          if (const auto k = cvalue.is_string()
                                 ? crash_schedule_from_string(cvalue.as_string())
                                 : std::nullopt) {
            plan.crash.schedule = *k;
          } else {
            set_error(error, "fault.crash.schedule: unknown schedule kind");
            ok = false;
          }
        } else if (ckey == "rate") {
          ok = read_unit(cvalue, plan.crash.rate, "crash.rate", error) && ok;
        } else if (ckey == "times") {
          if (!cvalue.is_array()) {
            set_error(error, "fault.crash.times must be an array of numbers >= 0");
            ok = false;
            continue;
          }
          plan.crash.times.clear();
          for (const auto& item : cvalue.items()) {
            if (!item.is_number() || item.as_double() < 0.0) {
              set_error(error,
                        "fault.crash.times must contain only numbers >= 0");
              ok = false;
              break;
            }
            plan.crash.times.push_back(item.as_double());
          }
        } else {
          set_error(error, "fault.crash: unknown key \"" + ckey + "\"");
          ok = false;
        }
      }
    } else if (key == "light") {
      if (!value.is_object()) {
        set_error(error, "fault.light must be a JSON object");
        ok = false;
        continue;
      }
      for (const auto& [lkey, lvalue] : value.members()) {
        if (lkey == "probability") {
          ok = read_unit(lvalue, plan.light.probability, "light.probability",
                         error) &&
               ok;
        } else if (lkey == "mode") {
          if (const auto m = lvalue.is_string()
                                 ? corruption_mode_from_string(lvalue.as_string())
                                 : std::nullopt) {
            plan.light.mode = *m;
          } else {
            set_error(error, "fault.light.mode: unknown corruption mode");
            ok = false;
          }
        } else {
          set_error(error, "fault.light: unknown key \"" + lkey + "\"");
          ok = false;
        }
      }
    } else if (key == "noise") {
      if (!value.is_object()) {
        set_error(error, "fault.noise must be a JSON object");
        ok = false;
        continue;
      }
      for (const auto& [nkey, nvalue] : value.members()) {
        if (nkey == "sigma") {
          if (!nvalue.is_number() || nvalue.as_double() < 0.0) {
            set_error(error, "fault.noise.sigma must be a number >= 0");
            ok = false;
          } else {
            plan.noise.sigma = nvalue.as_double();
          }
        } else if (nkey == "dropout") {
          ok = read_unit(nvalue, plan.noise.dropout, "noise.dropout", error) && ok;
        } else {
          set_error(error, "fault.noise: unknown key \"" + nkey + "\"");
          ok = false;
        }
      }
    } else {
      set_error(error, "fault plan: unknown key \"" + key + "\"");
      ok = false;
    }
  }
  if (!ok) return std::nullopt;
  return plan;
}

}  // namespace lumen::fault
