// lumen_fault: the per-run fault injection state.
//
// FaultState is the runtime counterpart of a FaultPlan, owned by
// sim::ExecutionCore. Its determinism contract mirrors the engine's:
//
//  * Streams are derived from the run's master PRNG with split(), which
//    does NOT advance the parent — an inactive plan therefore leaves every
//    existing stream bit-identical to a fault-free run.
//  * Crash decisions (try_crash) happen only in serial driver code and
//    consume the dedicated "fault-crash" stream in driver order.
//  * View corruption (noise + light misreads) draws from a per-Look stream
//    derived as split(robot).split(look_seq) from the "fault-view" base,
//    where look_seq is assigned serially. The draws are a pure function of
//    (seed, robot, look_seq), so the parallel SYNC Look batch stays
//    bit-identical for any pool size and any thread interleaving.
//  * Counters touched from the parallel Look path are relaxed atomics; the
//    final sums are order-independent.
#pragma once

#include "fault/events.hpp"
#include "fault/plan.hpp"
#include "model/light.hpp"
#include "model/snapshot.hpp"
#include "util/prng.hpp"

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace lumen::fault {

/// What one Look's view corruption amounted to (feeds FaultEvents and the
/// atomic whole-run counters).
struct LookFaultStats {
  std::uint32_t corrupted = 0;
  std::uint32_t dropped = 0;
  std::uint32_t perturbed = 0;

  [[nodiscard]] bool any() const noexcept {
    return (corrupted | dropped | perturbed) != 0;
  }
};

/// Reusable buffers for the noisy-view construction (one per engine plus
/// one per pool slot, like model::SnapshotScratch). Split coordinate
/// arrays, mirroring sim::WorldState: the compacted noisy view feeds the
/// same SoA build_snapshot path as the clean world.
struct ViewScratch {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<model::Light> lights;
};

class FaultState {
 public:
  FaultState() = default;
  FaultState(const FaultState&) = delete;
  FaultState& operator=(const FaultState&) = delete;

  /// Binds the plan and derives the channel streams from `master` (not
  /// advanced). Always sizes the crash bitmap to `n`, so crashed() is valid
  /// for any plan including the empty one.
  void init(const FaultPlan& plan, const util::Prng& master, std::size_t n);

  [[nodiscard]] bool crash_enabled() const noexcept { return crash_enabled_; }
  [[nodiscard]] bool noise_active() const noexcept { return noise_active_; }
  /// True iff any Look-path channel (light corruption or sensor noise) is
  /// live — the engine's fast path skips fault work entirely when false.
  [[nodiscard]] bool view_active() const noexcept {
    return light_active_ || noise_active_;
  }

  // -- Crash channel (serial driver code only) -------------------------------

  /// Decides whether a live `robot` crash-stops as it begins a cycle at
  /// `time`. Draws from the crash stream only while the budget remains;
  /// never draws (and returns false) when the channel is inactive or the
  /// robot is already dead.
  [[nodiscard]] bool try_crash(std::size_t robot, double time);

  [[nodiscard]] bool crashed(std::size_t robot) const noexcept {
    return crashed_[robot] != 0;
  }
  [[nodiscard]] std::size_t crash_count() const noexcept { return crash_count_; }
  [[nodiscard]] std::span<const std::uint8_t> crashed_flags() const noexcept {
    return crashed_;
  }

  // -- View channels (safe from the parallel Look batch) ---------------------

  /// The per-Look corruption stream: deterministic in (robot, look_seq).
  [[nodiscard]] util::Prng look_rng(std::size_t robot,
                                    std::uint64_t look_seq) const noexcept;

  /// Builds the observer's noisy view of the world: every other robot is
  /// independently dropped with P(dropout), survivors get N(0, sigma^2)
  /// added per axis; the observer itself is copied exactly. The world
  /// arrives as split coordinate arrays (xs[j], ys[j]); the compacted view
  /// lands in `view`'s parallel SoA buffers. Returns the observer's index
  /// within them. Draw order is per robot in index order (dropout draw,
  /// then x/y noise draws), identical to the historical AoS walk.
  std::size_t make_noisy_view(std::size_t observer, util::Prng& rng,
                              std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const model::Light> lights,
                              ViewScratch& view, LookFaultStats& stats) const;

  /// Misreads each visible entry's color with P(probability), per the
  /// plan's corruption mode. The observer's own light is never corrupted
  /// (it is internal state, not a sensor reading).
  void corrupt_lights(util::Prng& rng, model::Snapshot& snap,
                      LookFaultStats& stats) const;

  /// Folds one Look's stats into the whole-run counters (relaxed atomics —
  /// the sums are thread-order independent).
  void account(const LookFaultStats& stats) const noexcept;

  [[nodiscard]] FaultCounters counters() const noexcept;

 private:
  FaultPlan plan_;
  bool crash_enabled_ = false;
  bool light_active_ = false;
  bool noise_active_ = false;
  util::Prng crash_rng_{0};
  util::Prng view_base_{0};
  std::vector<std::uint8_t> crashed_;
  std::size_t crash_count_ = 0;
  std::vector<double> times_;   ///< kTimes schedule, sorted.
  std::size_t next_time_ = 0;   ///< First unclaimed entry of times_.
  mutable std::atomic<std::uint64_t> corrupted_{0};
  mutable std::atomic<std::uint64_t> dropped_{0};
  mutable std::atomic<std::uint64_t> perturbed_{0};
};

}  // namespace lumen::fault
