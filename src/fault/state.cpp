#include "fault/state.hpp"

#include <algorithm>

namespace lumen::fault {

void FaultState::init(const FaultPlan& plan, const util::Prng& master,
                      std::size_t n) {
  plan_ = plan;
  crashed_.assign(n, 0);
  crash_count_ = 0;
  next_time_ = 0;
  crash_enabled_ = plan.crash.active();
  light_active_ = plan.light.active();
  noise_active_ = plan.noise.active();
  corrupted_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  perturbed_.store(0, std::memory_order_relaxed);
  if (crash_enabled_) {
    crash_rng_ = master.split("fault-crash");
    if (plan_.crash.schedule == CrashScheduleKind::kTimes) {
      times_ = plan_.crash.times;
      std::sort(times_.begin(), times_.end());
    }
  }
  if (view_active()) view_base_ = master.split("fault-view");
}

bool FaultState::try_crash(std::size_t robot, double time) {
  if (!crash_enabled_ || crashed_[robot] != 0 ||
      crash_count_ >= plan_.crash.count) {
    return false;
  }
  bool dies = false;
  if (plan_.crash.schedule == CrashScheduleKind::kRate) {
    dies = crash_rng_.bernoulli(plan_.crash.rate);
  } else if (next_time_ < times_.size() && time >= times_[next_time_]) {
    // The first live robot to start a cycle at or after the scheduled
    // instant claims it.
    ++next_time_;
    dies = true;
  }
  if (dies) {
    crashed_[robot] = 1;
    ++crash_count_;
  }
  return dies;
}

util::Prng FaultState::look_rng(std::size_t robot,
                               std::uint64_t look_seq) const noexcept {
  return view_base_.split(static_cast<std::uint64_t>(robot)).split(look_seq);
}

std::size_t FaultState::make_noisy_view(std::size_t observer, util::Prng& rng,
                                        std::span<const double> xs,
                                        std::span<const double> ys,
                                        std::span<const model::Light> lights,
                                        ViewScratch& view,
                                        LookFaultStats& stats) const {
  const std::size_t n = xs.size();
  view.xs.clear();
  view.ys.clear();
  view.lights.clear();
  view.xs.reserve(n);
  view.ys.reserve(n);
  view.lights.reserve(n);
  const double sigma = plan_.noise.sigma;
  const double dropout = plan_.noise.dropout;
  std::size_t observer_index = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == observer) {
      observer_index = view.xs.size();
      view.xs.push_back(xs[j]);
      view.ys.push_back(ys[j]);
      view.lights.push_back(lights[j]);
      continue;
    }
    if (dropout > 0.0 && rng.bernoulli(dropout)) {
      ++stats.dropped;
      continue;
    }
    double px = xs[j];
    double py = ys[j];
    if (sigma > 0.0) {
      px += sigma * rng.normal();
      py += sigma * rng.normal();
      ++stats.perturbed;
    }
    view.xs.push_back(px);
    view.ys.push_back(py);
    view.lights.push_back(lights[j]);
  }
  return observer_index;
}

void FaultState::corrupt_lights(util::Prng& rng, model::Snapshot& snap,
                                LookFaultStats& stats) const {
  const double p = plan_.light.probability;
  if (p <= 0.0) return;
  // Visible entries live at snapshot indices 1.. (index 0 is the observer,
  // whose own light is internal state, not a sensor reading). The walk —
  // and therefore the rng draw sequence — matches the historical per-entry
  // loop exactly.
  for (std::size_t k = 1; k < snap.lights.size(); ++k) {
    if (!rng.bernoulli(p)) continue;
    ++stats.corrupted;
    model::Light& light = snap.lights[k];
    switch (plan_.light.mode) {
      case CorruptionMode::kStuck:
        light = model::Light::kOff;
        break;
      case CorruptionMode::kFlip: {
        const auto i = static_cast<std::size_t>(light);
        light = model::kAllLights[(i + 1) % model::kLightCount];
        break;
      }
      case CorruptionMode::kRandom: {
        // Uniform over the OTHER palette colors, so a corrupted read is
        // always an actual misread.
        const auto original = static_cast<std::uint64_t>(light);
        std::uint64_t pick = rng.next_below(model::kLightCount - 1);
        if (pick >= original) ++pick;
        light = model::kAllLights[pick];
        break;
      }
    }
  }
}

void FaultState::account(const LookFaultStats& stats) const noexcept {
  if (!stats.any()) return;
  if (stats.corrupted != 0) {
    corrupted_.fetch_add(stats.corrupted, std::memory_order_relaxed);
  }
  if (stats.dropped != 0) {
    dropped_.fetch_add(stats.dropped, std::memory_order_relaxed);
  }
  if (stats.perturbed != 0) {
    perturbed_.fetch_add(stats.perturbed, std::memory_order_relaxed);
  }
}

FaultCounters FaultState::counters() const noexcept {
  FaultCounters c;
  c.crashes = crash_count_;
  c.corrupted_reads = corrupted_.load(std::memory_order_relaxed);
  c.dropped_observations = dropped_.load(std::memory_order_relaxed);
  c.perturbed_observations = perturbed_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace lumen::fault
