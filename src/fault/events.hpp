// lumen_fault: fault events and counters — the vocabulary shared between
// the injection machinery (state.hpp), the engine observers (sim) and the
// degradation experiments (analysis).
//
// Kept free of any sim dependency so sim/observer.hpp can expose an
// on_fault hook without a header cycle.
#pragma once

#include "geom/vec2.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace lumen::fault {

/// Which injection channel produced an event (kNone is the "no fault"
/// attribution value used by the safety monitor).
enum class FaultChannel { kNone, kCrash, kLight, kNoise };

[[nodiscard]] constexpr std::string_view to_string(FaultChannel c) noexcept {
  switch (c) {
    case FaultChannel::kNone: return "none";
    case FaultChannel::kCrash: return "crash";
    case FaultChannel::kLight: return "light";
    case FaultChannel::kNoise: return "noise";
  }
  return "?";
}

/// Exact (case-sensitive) inverse of to_string; nullopt for unknown names.
/// Used by the campaign journal's RunMetrics round-trip.
[[nodiscard]] constexpr std::optional<FaultChannel> channel_from_string(
    std::string_view name) noexcept {
  for (const auto c : {FaultChannel::kNone, FaultChannel::kCrash,
                       FaultChannel::kLight, FaultChannel::kNoise}) {
    if (to_string(c) == name) return c;
  }
  return std::nullopt;
}

/// One injected fault occurrence, as delivered to RunObserver::on_fault.
/// A crash event reports the robot's death; a light/noise event summarizes
/// everything that channel did to ONE robot's Look (so at most one event
/// per channel per Look reaches the observers).
struct FaultEvent {
  FaultChannel channel = FaultChannel::kNone;
  std::size_t robot = 0;
  double time = 0.0;
  /// The affected robot's true world position at the event time.
  geom::Vec2 position{};
  std::uint32_t corrupted_reads = 0;  ///< kLight: misread colors this Look.
  std::uint32_t dropped = 0;          ///< kNoise: robots dropped from view.
  std::uint32_t perturbed = 0;        ///< kNoise: positions perturbed.
};

/// Whole-run per-channel totals (RunResult::faults).
struct FaultCounters {
  std::uint64_t crashes = 0;
  std::uint64_t corrupted_reads = 0;
  std::uint64_t dropped_observations = 0;
  std::uint64_t perturbed_observations = 0;

  [[nodiscard]] bool any() const noexcept {
    return (crashes | corrupted_reads | dropped_observations |
            perturbed_observations) != 0;
  }

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

}  // namespace lumen::fault
