// lumen_fault: declarative fault plans.
//
// A FaultPlan composes three independent fault channels — crash-stop
// robots, corrupted light reads, and noisy snapshots — each driven by its
// own PRNG stream derived from the run seed, so enabling one channel never
// perturbs another and the all-default plan is bit-identical to a fault-free
// run (pinned by tests/sim_fault_test.cpp). Plans are plain data: they
// embed in sim::RunConfig, serialize through util::JsonValue inside
// analysis::ScenarioSpec with the same byte-exact round-trip guarantee, and
// compare with ==. Semantics of each channel are documented in DESIGN.md
// §11.
#pragma once

#include "util/json.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::fault {

/// How crash instants are chosen: a per-cycle-start Bernoulli rate, or an
/// explicit schedule of times ("the first robot to start a cycle at or
/// after times[k] dies").
enum class CrashScheduleKind { kRate, kTimes };

[[nodiscard]] std::string_view to_string(CrashScheduleKind k) noexcept;
/// Case-insensitive inverse ("rate" == "RATE"); nullopt for unknown names.
[[nodiscard]] std::optional<CrashScheduleKind> crash_schedule_from_string(
    std::string_view name) noexcept;

/// What a corrupted light read becomes: stuck at kOff, deterministically
/// flipped to the next palette color, or a uniformly random DIFFERENT color.
enum class CorruptionMode { kStuck, kFlip, kRandom };

[[nodiscard]] std::string_view to_string(CorruptionMode m) noexcept;
[[nodiscard]] std::optional<CorruptionMode> corruption_mode_from_string(
    std::string_view name) noexcept;

/// Crash-stop channel: kills up to `count` robots. A crashed robot stops
/// executing cycles forever; its body keeps obstructing visibility and its
/// last light stays visible to everyone else.
struct CrashPlan {
  std::size_t count = 0;  ///< f — the crash budget; 0 disables the channel.
  CrashScheduleKind schedule = CrashScheduleKind::kRate;
  double rate = 0.0;          ///< kRate: P(crash) at each cycle start.
  std::vector<double> times;  ///< kTimes: crash instants (sorted on use).

  [[nodiscard]] bool active() const noexcept {
    return count > 0 && (schedule == CrashScheduleKind::kRate ? rate > 0.0
                                                              : !times.empty());
  }

  friend bool operator==(const CrashPlan&, const CrashPlan&) = default;
};

/// Byzantine-lite lights: each OBSERVED color (never the observer's own
/// light, which is internal state) is independently misread with
/// `probability` per Look.
struct LightCorruptionPlan {
  double probability = 0.0;
  CorruptionMode mode = CorruptionMode::kRandom;

  [[nodiscard]] bool active() const noexcept { return probability > 0.0; }

  friend bool operator==(const LightCorruptionPlan&,
                         const LightCorruptionPlan&) = default;
};

/// Sensor noise: per-Look Gaussian perturbation (std dev `sigma` per axis)
/// of every OTHER robot's observed position, plus per-robot `dropout`
/// probability of vanishing from the snapshot entirely. The observer's view
/// only — ground truth is untouched.
struct SensorNoisePlan {
  double sigma = 0.0;
  double dropout = 0.0;

  [[nodiscard]] bool active() const noexcept {
    return sigma > 0.0 || dropout > 0.0;
  }

  friend bool operator==(const SensorNoisePlan&,
                         const SensorNoisePlan&) = default;
};

struct FaultPlan {
  CrashPlan crash;
  LightCorruptionPlan light;
  SensorNoisePlan noise;

  [[nodiscard]] bool any() const noexcept {
    return crash.active() || light.active() || noise.active();
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Deterministic JSON form (fixed key order; sub-objects always present).
/// Round-trips byte-identically through fault_plan_from_json for any string
/// it emitted, matching the ScenarioSpec guarantee.
[[nodiscard]] util::JsonValue fault_plan_to_json(const FaultPlan& plan);

/// Parses a plan document. Missing keys keep their defaults; unknown keys,
/// type mismatches and out-of-domain values (rate/probability/dropout
/// outside [0, 1], negative sigma or times) are errors.
[[nodiscard]] std::optional<FaultPlan> fault_plan_from_json(
    const util::JsonValue& json, std::string* error = nullptr);

}  // namespace lumen::fault
