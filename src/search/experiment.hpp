// lumen_search: the E13 hunt experiment.
//
// E13 puts worst-case numbers next to the mean tables: for each fitness
// function it evaluates a uniform-sampling baseline (the E9-E11
// methodology — random plans from the same bounds) and then runs the
// (μ+λ) hunt with the same evaluation budget scale, reporting
// baseline-mean / baseline-worst / hunt-best / minimized side by side.
//
// The experiment lives in lumen_search but appears in the registry as E13:
// lumen_analysis cannot depend on this library (the hunt depends on the
// campaign layer), so hosts that want E13 — the lumen-bench driver, the
// search tests — call register_hunt_experiment() at startup, which feeds
// ExperimentRegistry::register_external. Analysis-only binaries keep the
// closed built-in registry.
#pragma once

#include "analysis/experiments.hpp"
#include "search/hunt.hpp"

namespace lumen::search {

/// Derives the hunt configuration E13 (and the CLI's defaults) uses for a
/// scenario: seed plan from the spec's run template, N pinned to
/// ns.front(), budgets scaled from spec.runs so --smoke stays tiny.
[[nodiscard]] HuntSpec hunt_spec_for_scenario(const analysis::ScenarioSpec& spec,
                                              FitnessKind fitness,
                                              StrategyKind strategy);

/// The E13 body (exposed for direct testing).
[[nodiscard]] analysis::ExperimentResult run_adversarial_hunt(
    const analysis::ScenarioSpec& spec, const analysis::ExperimentContext& ctx);

/// Registers E13 ("adversarial-hunt") with the experiment registry.
/// Idempotent; call from main() before querying the registry.
void register_hunt_experiment();

}  // namespace lumen::search
