// lumen_search: delta-debugging minimizer for hunt winners.
//
// A raw worst-case plan found by the search loop usually carries freight:
// fault events that never fire, a bigger swarm than the failure needs, an
// exotic adversary kind when uniform would do. The minimizer shrinks the
// plan through a fixed sequence of reduction passes — halve/decrement N,
// drop individual crash instants, disable whole fault channels, halve
// rates, canonicalize the adversary kinds — re-evaluating each candidate
// and keeping it only when the badness survives: the outcome class must be
// preserved exactly and the score must stay within the spec's
// keep_fraction of the winner's. Passes repeat until a full sweep accepts
// nothing (a 1-minimal plan w.r.t. the operator set) or the evaluation
// budget runs out. Everything is driver-thread sequential and seeded by
// nothing: the trajectory is a pure function of (spec, winner), so
// minimization is as deterministic as the runs underneath.
#pragma once

#include "search/hunt.hpp"

namespace lumen::search {

struct MinimizeOutcome {
  /// The shrunken evaluation (== the input winner when nothing shrank).
  Evaluation evaluation;
  /// Every candidate evaluation, in trial order (appended to the hunt
  /// history so the digest covers the minimization trajectory too).
  std::vector<Evaluation> trail;
  std::size_t evaluations = 0;  ///< Candidates evaluated.
  std::size_t accepted = 0;     ///< Candidates that preserved the badness.
};

/// Shrinks `winner` under spec.keep_fraction within spec.minimize_budget
/// evaluations. The control hooks work as in run_hunt (journal / resume /
/// cooperative stop; a stopped minimization returns the best-so-far).
[[nodiscard]] MinimizeOutcome minimize_plan(
    const HuntSpec& spec, const Evaluation& winner, util::ThreadPool* pool,
    const analysis::CampaignControl& control = {});

}  // namespace lumen::search
