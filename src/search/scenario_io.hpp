// lumen_search: committed adversarial regression scenarios.
//
// The end product of a hunt is a small JSON document under
// scenarios/adversarial/: the minimized ScenarioSpec (the exact projection
// the hunt evaluated — see hunt_scenario), the fitness it was hunted under,
// the score it achieved, and the recorded expectations (outcome class,
// epoch count, audited closest approach). ctest replays every committed
// document (tests/search_regression_test.cpp) and asserts the expectations
// exactly — runs are deterministic in their seed, so a replay that drifts
// means the engine's behavior changed, which is precisely what a
// regression scenario exists to catch.
//
// Documents carry type "lumen-adversarial-scenario" version 1 and
// round-trip byte-identically, like every other spec in the repo.
#pragma once

#include "search/hunt.hpp"

#include <optional>
#include <string>
#include <string_view>

namespace lumen::search {

struct AdversarialScenario {
  FitnessKind fitness = FitnessKind::kEpochs;
  /// The minimized plan's projection (runs=1, ns={n}, seed_base=seed).
  analysis::ScenarioSpec scenario;
  double score = 0.0;
  sim::RunOutcome expected_outcome = sim::RunOutcome::kConverged;
  std::size_t expected_epochs = 0;
  /// Audited closest approach; 0 when the fitness runs unaudited.
  double expected_min_separation = 0.0;
  /// Free-text provenance (strategy, hunt seed, budget). Not asserted.
  std::string note;
};

/// Deterministic serialization with the byte-exact round-trip guarantee.
[[nodiscard]] std::string adversarial_scenario_to_json(
    const AdversarialScenario& scenario);

struct AdversarialScenarioParse {
  std::optional<AdversarialScenario> scenario;
  std::string error;
};

[[nodiscard]] AdversarialScenarioParse adversarial_scenario_from_json(
    std::string_view text);

/// File convenience wrappers.
bool save_adversarial_scenario(const AdversarialScenario& scenario,
                               const std::string& path);
[[nodiscard]] AdversarialScenarioParse load_adversarial_scenario(
    const std::string& path);

/// Wraps a hunt's minimized winner as a committable regression document.
[[nodiscard]] AdversarialScenario make_regression_scenario(
    const HuntSpec& spec, const Evaluation& minimized, std::string note = "");

struct ReplayVerdict {
  analysis::RunMetrics metrics;
  double score = 0.0;
  bool ran = false;              ///< The single cell produced metrics.
  bool outcome_matches = false;  ///< Outcome class equals the recorded one.
  bool epochs_match = false;
  bool min_separation_matches = false;
  std::string detail;  ///< Human-readable mismatch description.

  [[nodiscard]] bool passed() const noexcept {
    return ran && outcome_matches && epochs_match && min_separation_matches;
  }
};

/// Re-runs the recorded scenario (one deterministic cell) and checks every
/// expectation exactly — bit-identical doubles included, matching the
/// repo's golden-digest philosophy.
[[nodiscard]] ReplayVerdict replay_adversarial_scenario(
    const AdversarialScenario& scenario, util::ThreadPool* pool = nullptr);

}  // namespace lumen::search
