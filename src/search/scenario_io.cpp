#include "search/scenario_io.hpp"

#include "util/json.hpp"

#include <fstream>
#include <sstream>

namespace lumen::search {
namespace {

constexpr std::string_view kDocType = "lumen-adversarial-scenario";
constexpr std::int64_t kDocVersion = 1;

}  // namespace

std::string adversarial_scenario_to_json(const AdversarialScenario& scenario) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("type", util::JsonValue::string(std::string(kDocType)));
  doc.set("version", util::JsonValue::integer(kDocVersion));
  doc.set("fitness", util::JsonValue::string(
                         std::string(to_string(scenario.fitness))));
  doc.set("score", util::JsonValue::number(scenario.score));
  util::JsonValue expect = util::JsonValue::object();
  expect.set("outcome",
             util::JsonValue::string(
                 std::string(sim::to_string(scenario.expected_outcome))));
  expect.set("epochs", util::JsonValue::integer(
                           static_cast<std::int64_t>(scenario.expected_epochs)));
  expect.set("min_separation",
             util::JsonValue::number(scenario.expected_min_separation));
  doc.set("expect", std::move(expect));
  if (!scenario.note.empty()) {
    doc.set("note", util::JsonValue::string(scenario.note));
  }
  // scenario_to_json is the one deterministic writer for specs; parse its
  // output back to a value so the embedded object and a standalone spec
  // file are the same bytes modulo indentation.
  const std::string spec_text = analysis::scenario_to_json(scenario.scenario);
  std::optional<util::JsonValue> spec_value = util::json_parse(spec_text);
  doc.set("scenario", spec_value.has_value() ? std::move(*spec_value)
                                             : util::JsonValue::object());
  return util::json_write(doc, 2) + "\n";
}

AdversarialScenarioParse adversarial_scenario_from_json(std::string_view text) {
  AdversarialScenarioParse out;
  std::string parse_error;
  const std::optional<util::JsonValue> doc = util::json_parse(text, &parse_error);
  if (!doc.has_value()) {
    out.error = "invalid JSON: " + parse_error;
    return out;
  }
  if (!doc->is_object()) {
    out.error = "document must be a JSON object";
    return out;
  }
  AdversarialScenario scenario;
  bool saw_type = false;
  bool saw_scenario = false;
  for (const auto& [key, value] : doc->members()) {
    if (key == "type") {
      if (!value.is_string() || value.as_string() != kDocType) {
        out.error = "type must be \"" + std::string(kDocType) + "\"";
        return out;
      }
      saw_type = true;
    } else if (key == "version") {
      if (!value.is_integer() || value.as_int() != kDocVersion) {
        out.error = "version must be " + std::to_string(kDocVersion);
        return out;
      }
    } else if (key == "fitness") {
      if (!value.is_string()) {
        out.error = "fitness must be a string";
        return out;
      }
      const auto parsed = fitness_from_string(value.as_string());
      if (!parsed.has_value()) {
        out.error = "fitness: unknown kind '" + value.as_string() + "'";
        return out;
      }
      scenario.fitness = *parsed;
    } else if (key == "score") {
      if (!value.is_number()) {
        out.error = "score must be a number";
        return out;
      }
      scenario.score = value.as_double();
    } else if (key == "expect") {
      if (!value.is_object()) {
        out.error = "expect must be an object";
        return out;
      }
      for (const auto& [ekey, evalue] : value.members()) {
        if (ekey == "outcome") {
          if (!evalue.is_string()) {
            out.error = "expect.outcome must be a string";
            return out;
          }
          const auto parsed = sim::outcome_from_string(evalue.as_string());
          if (!parsed.has_value()) {
            out.error =
                "expect.outcome: unknown outcome '" + evalue.as_string() + "'";
            return out;
          }
          scenario.expected_outcome = *parsed;
        } else if (ekey == "epochs") {
          if (!evalue.is_integer() || evalue.as_int() < 0) {
            out.error = "expect.epochs must be a non-negative integer";
            return out;
          }
          scenario.expected_epochs = static_cast<std::size_t>(evalue.as_int());
        } else if (ekey == "min_separation") {
          if (!evalue.is_number()) {
            out.error = "expect.min_separation must be a number";
            return out;
          }
          scenario.expected_min_separation = evalue.as_double();
        } else {
          out.error = "expect: unknown key '" + ekey + "'";
          return out;
        }
      }
    } else if (key == "note") {
      if (!value.is_string()) {
        out.error = "note must be a string";
        return out;
      }
      scenario.note = value.as_string();
    } else if (key == "scenario") {
      const analysis::ScenarioParse parsed =
          analysis::scenario_from_json(util::json_write(value, 2));
      if (!parsed.spec.has_value()) {
        out.error = "scenario: " + parsed.error;
        return out;
      }
      scenario.scenario = *parsed.spec;
      saw_scenario = true;
    } else {
      out.error = "unknown key '" + key + "'";
      return out;
    }
  }
  if (!saw_type) {
    out.error = "missing required key 'type'";
    return out;
  }
  if (!saw_scenario) {
    out.error = "missing required key 'scenario'";
    return out;
  }
  out.scenario = std::move(scenario);
  return out;
}

bool save_adversarial_scenario(const AdversarialScenario& scenario,
                               const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << adversarial_scenario_to_json(scenario);
  return static_cast<bool>(file);
}

AdversarialScenarioParse load_adversarial_scenario(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    AdversarialScenarioParse out;
    out.error = "cannot open " + path;
    return out;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return adversarial_scenario_from_json(buffer.str());
}

AdversarialScenario make_regression_scenario(const HuntSpec& spec,
                                             const Evaluation& minimized,
                                             std::string note) {
  AdversarialScenario scenario;
  scenario.fitness = spec.fitness;
  scenario.scenario = hunt_scenario(spec, minimized.plan);
  scenario.score = minimized.score;
  scenario.expected_outcome = minimized.metrics.outcome;
  scenario.expected_epochs = minimized.metrics.epochs;
  scenario.expected_min_separation = minimized.metrics.min_observed_separation;
  scenario.note = std::move(note);
  return scenario;
}

ReplayVerdict replay_adversarial_scenario(const AdversarialScenario& scenario,
                                          util::ThreadPool* pool) {
  ReplayVerdict verdict;
  const std::size_t n =
      scenario.scenario.ns.empty() ? 0 : scenario.scenario.ns.front();
  const analysis::CampaignResult result =
      analysis::run_campaign(scenario.scenario.campaign(n), pool);
  if (result.runs.size() != 1) {
    verdict.detail = result.errors.empty()
                         ? "scenario produced no metrics"
                         : "cell error: " + result.errors.front().detail;
    return verdict;
  }
  verdict.ran = true;
  verdict.metrics = result.runs.front();
  verdict.score = fitness_score(scenario.fitness, verdict.metrics);
  verdict.outcome_matches =
      verdict.metrics.outcome == scenario.expected_outcome;
  verdict.epochs_match = verdict.metrics.epochs == scenario.expected_epochs;
  verdict.min_separation_matches = verdict.metrics.min_observed_separation ==
                                   scenario.expected_min_separation;
  if (!verdict.passed()) {
    std::ostringstream detail;
    detail << "expected outcome=" << sim::to_string(scenario.expected_outcome)
           << " epochs=" << scenario.expected_epochs
           << " min_separation=" << scenario.expected_min_separation
           << "; replay got outcome="
           << sim::to_string(verdict.metrics.outcome)
           << " epochs=" << verdict.metrics.epochs
           << " min_separation=" << verdict.metrics.min_observed_separation;
    verdict.detail = detail.str();
  }
  return verdict;
}

}  // namespace lumen::search
