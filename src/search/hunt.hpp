// lumen_search: the hunt driver.
//
// A hunt is an optimization loop over AdversaryPlan space: a strategy
// proposes batches of plans, the campaign layer evaluates each plan as one
// deterministic single-cell campaign (the fitness oracle), and the best
// plan found is handed to the shrinking minimizer (minimize.hpp). Plans are
// proposed on the driver thread only; evaluations fan out over the shared
// ThreadPool. Because every evaluation is a pure function of its plan and
// batches are assembled before any evaluation starts, the whole trajectory
// — every plan proposed, every score observed, the best and the minimized
// plan — is bit-identical for any pool size, pinned by a golden digest in
// tests/search_test.cpp.
//
// Evaluations reuse the campaign resilience hooks verbatim: pass a
// CampaignControl with a journal and resume snapshot and a killed hunt
// resumes exactly like a killed campaign (each plan is its own campaign
// key; journal files hold many keys).
#pragma once

#include "analysis/scenario.hpp"
#include "search/fitness.hpp"
#include "search/plan.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::search {

enum class StrategyKind {
  kMuPlusLambda,  ///< (μ+λ) evolutionary loop: mutate/cross the elite.
  kBandit,        ///< Epsilon-greedy bandit over plan families.
};

[[nodiscard]] std::string_view to_string(StrategyKind k) noexcept;

/// Exact-name inverse ("mu-lambda" / "bandit"); nullopt for unknown names.
[[nodiscard]] std::optional<StrategyKind> strategy_from_string(
    std::string_view name) noexcept;

struct HuntSpec {
  std::string algorithm = "async-log";
  gen::ConfigFamily family = gen::ConfigFamily::kUniformDisk;
  FitnessKind fitness = FitnessKind::kEpochs;
  StrategyKind strategy = StrategyKind::kMuPlusLambda;
  /// Template plan: fixes the scheduler (and seeds the initial population).
  AdversaryPlan seed_plan;
  PlanBounds bounds;
  std::uint64_t hunt_seed = 1;
  /// Total evaluation budget for the search loop (the minimizer draws from
  /// its own minimize_budget on top).
  std::size_t budget = 256;
  std::size_t population = 8;   ///< μ — survivors per generation.
  std::size_t offspring = 16;   ///< λ — children per generation.
  double crossover_rate = 0.5;  ///< P(child gets two parents).
  double epsilon = 0.25;        ///< Bandit exploration probability.
  std::size_t batch = 16;       ///< Bandit arm pulls per round.
  /// Evaluation-cell knobs (mirrors CampaignSpec).
  double min_separation = 1e-3;
  double collision_tolerance = 0.0;
  std::size_t max_cycles_per_robot = 256;
  /// Minimizer knobs (see minimize.hpp).
  std::size_t minimize_budget = 96;
  double keep_fraction = 1.0;
};

/// Everything the hunt validator checks beyond what the campaign validator
/// will re-check per evaluation. Empty string when valid.
[[nodiscard]] std::string validate_hunt_spec(const HuntSpec& spec);

/// One scored plan. `failed` marks evaluations whose cell errored (score is
/// the lowest double; metrics are default); they stay in the history (the
/// digest covers them) but never win.
struct Evaluation {
  AdversaryPlan plan;
  analysis::RunMetrics metrics;
  double score = 0.0;
  bool failed = false;
};

struct HuntResult {
  HuntSpec spec;
  /// Every evaluation in proposal order — the deterministic trajectory.
  std::vector<Evaluation> history;
  /// Best by (score, then earliest in history). Unset only when the hunt
  /// was stopped before any evaluation finished.
  std::optional<Evaluation> best;
  /// The minimizer's shrunken equivalent of `best` (== best when no shrink
  /// step preserved the score).
  std::optional<Evaluation> minimized;
  std::size_t evaluations = 0;      ///< Search-loop evaluations performed.
  std::size_t minimize_evals = 0;   ///< Minimizer evaluations performed.
  std::size_t minimize_accepted = 0;  ///< Accepted shrink steps.
  bool stopped = false;  ///< Cooperative stop fired; result is partial.
  /// Non-empty when the spec failed validation; nothing ran.
  std::string error;
};

/// Projects (hunt, plan) onto the declarative scenario layer: a runs=1,
/// ns={plan.n}, seed_base=plan.seed ScenarioSpec. Both the hunt's fitness
/// oracle and the committed regression scenarios are THIS projection run
/// through run_campaign, so a replayed scenario reproduces its hunt
/// evaluation bit-for-bit.
[[nodiscard]] analysis::ScenarioSpec hunt_scenario(const HuntSpec& spec,
                                                   const AdversaryPlan& plan);

/// Evaluates one plan (one single-cell campaign on the caller thread; the
/// pool only feeds the in-run SYNC fan-out when called from the driver).
[[nodiscard]] Evaluation evaluate_plan(const HuntSpec& spec,
                                       const AdversaryPlan& plan,
                                       util::ThreadPool* pool,
                                       const analysis::CampaignControl& control);

/// Evaluates a pre-assembled batch over the pool, index-addressed — the
/// result is identical for any pool size (E13's uniform-sampling baseline
/// and the strategies both ride this). nullptr pool -> util::global_pool().
[[nodiscard]] std::vector<Evaluation> evaluate_plans(
    const HuntSpec& spec, const std::vector<AdversaryPlan>& plans,
    util::ThreadPool* pool = nullptr,
    const analysis::CampaignControl& control = {});

/// Runs the full hunt: strategy loop, then minimization of the winner.
/// nullptr pool -> util::global_pool(). Control hooks work exactly as in
/// run_campaign (journal / resume / cooperative stop).
[[nodiscard]] HuntResult run_hunt(const HuntSpec& spec,
                                  util::ThreadPool* pool = nullptr,
                                  const analysis::CampaignControl& control = {});

/// FNV-1a digest over the full trajectory (every plan fingerprint, score
/// and outcome, plus the minimized plan): the constant tests pin to assert
/// cross-pool-size and cross-platform hunt determinism.
[[nodiscard]] std::uint64_t hunt_digest(const HuntResult& result);

}  // namespace lumen::search
