#include "search/minimize.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace lumen::search {
namespace {

bool stop_requested(const analysis::CampaignControl& control) {
  return control.stop != nullptr &&
         control.stop->load(std::memory_order_relaxed);
}

/// Acceptance threshold: keep_fraction == 1 demands the exact score; lower
/// fractions concede that much of the winner's magnitude (works for
/// negative scores too — min-separation fitness lives below zero).
double threshold_for(double score, double keep_fraction) {
  return score - (1.0 - keep_fraction) * std::fabs(score);
}

/// The reduction operators, in the order tried within one sweep. Each
/// returns a candidate derived from `current`, or nullopt when it does not
/// apply. `index` selects among multi-site operators (crash instants).
using Reduction = std::optional<AdversaryPlan> (*)(const AdversaryPlan&,
                                                   const PlanBounds&,
                                                   std::size_t);

std::optional<AdversaryPlan> halve_n(const AdversaryPlan& plan,
                                     const PlanBounds& bounds, std::size_t index) {
  if (index > 0) return std::nullopt;
  if (plan.n / 2 < bounds.n_min || plan.n / 2 == plan.n) return std::nullopt;
  AdversaryPlan out = plan;
  out.n = plan.n / 2;
  return out;
}

std::optional<AdversaryPlan> decrement_n(const AdversaryPlan& plan,
                                         const PlanBounds& bounds,
                                         std::size_t index) {
  if (index > 0) return std::nullopt;
  if (plan.n <= bounds.n_min) return std::nullopt;
  AdversaryPlan out = plan;
  out.n = plan.n - 1;
  return out;
}

std::optional<AdversaryPlan> drop_crash_time(const AdversaryPlan& plan,
                                             const PlanBounds&,
                                             std::size_t index) {
  if (index >= plan.fault.crash.times.size()) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.crash.times.erase(out.fault.crash.times.begin() +
                              static_cast<std::ptrdiff_t>(index));
  return out;
}

std::optional<AdversaryPlan> disable_crash(const AdversaryPlan& plan,
                                           const PlanBounds&, std::size_t index) {
  if (index > 0) return std::nullopt;
  if (!plan.fault.crash.active()) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.crash = fault::CrashPlan{};
  return out;
}

std::optional<AdversaryPlan> decrement_crash_count(const AdversaryPlan& plan,
                                                   const PlanBounds&,
                                                   std::size_t index) {
  if (index > 0) return std::nullopt;
  if (plan.fault.crash.count < 2) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.crash.count = plan.fault.crash.count - 1;
  return out;
}

std::optional<AdversaryPlan> halve_crash_rate(const AdversaryPlan& plan,
                                              const PlanBounds&, std::size_t index) {
  if (index > 0) return std::nullopt;
  if (!(plan.fault.crash.rate > 0.0)) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.crash.rate = plan.fault.crash.rate / 2.0;
  return out;
}

std::optional<AdversaryPlan> disable_light(const AdversaryPlan& plan,
                                           const PlanBounds&, std::size_t index) {
  if (index > 0) return std::nullopt;
  if (!plan.fault.light.active()) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.light = fault::LightCorruptionPlan{};
  return out;
}

std::optional<AdversaryPlan> halve_light_probability(const AdversaryPlan& plan,
                                                     const PlanBounds&,
                                                     std::size_t index) {
  if (index > 0) return std::nullopt;
  if (!(plan.fault.light.probability > 0.0)) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.light.probability = plan.fault.light.probability / 2.0;
  return out;
}

std::optional<AdversaryPlan> disable_noise(const AdversaryPlan& plan,
                                           const PlanBounds&, std::size_t index) {
  if (index > 0) return std::nullopt;
  if (!plan.fault.noise.active()) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.noise = fault::SensorNoisePlan{};
  return out;
}

std::optional<AdversaryPlan> halve_noise_sigma(const AdversaryPlan& plan,
                                               const PlanBounds&, std::size_t index) {
  if (index > 0) return std::nullopt;
  if (!(plan.fault.noise.sigma > 0.0)) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.noise.sigma = plan.fault.noise.sigma / 2.0;
  return out;
}

std::optional<AdversaryPlan> zero_noise_dropout(const AdversaryPlan& plan,
                                                const PlanBounds&,
                                                std::size_t index) {
  if (index > 0) return std::nullopt;
  if (!(plan.fault.noise.dropout > 0.0)) return std::nullopt;
  AdversaryPlan out = plan;
  out.fault.noise.dropout = 0.0;
  return out;
}

std::optional<AdversaryPlan> canonical_adversary(const AdversaryPlan& plan,
                                                 const PlanBounds&,
                                                 std::size_t index) {
  if (index > 0) return std::nullopt;
  if (plan.adversary == sched::AdversaryKind::kUniform) return std::nullopt;
  AdversaryPlan out = plan;
  out.adversary = sched::AdversaryKind::kUniform;
  return out;
}

std::optional<AdversaryPlan> canonical_activation(const AdversaryPlan& plan,
                                                  const PlanBounds&,
                                                  std::size_t index) {
  if (index > 0) return std::nullopt;
  if (plan.scheduler == sim::SchedulerKind::kFsync ||
      plan.activation == sched::ActivationKind::kRandomHalf) {
    return std::nullopt;
  }
  AdversaryPlan out = plan;
  out.activation = sched::ActivationKind::kRandomHalf;
  return out;
}

constexpr Reduction kReductions[] = {
    halve_n,           decrement_n,
    drop_crash_time,   disable_crash,
    decrement_crash_count, halve_crash_rate,
    disable_light,     halve_light_probability,
    disable_noise,     halve_noise_sigma,
    zero_noise_dropout, canonical_adversary,
    canonical_activation,
};

}  // namespace

MinimizeOutcome minimize_plan(const HuntSpec& spec, const Evaluation& winner,
                              util::ThreadPool* pool,
                              const analysis::CampaignControl& control) {
  MinimizeOutcome outcome;
  outcome.evaluation = winner;
  if (winner.failed) return outcome;
  const double threshold =
      threshold_for(winner.score, spec.keep_fraction);
  const int target_rank = outcome_rank(winner.metrics.outcome);

  bool improved = true;
  while (improved && outcome.evaluations < spec.minimize_budget) {
    improved = false;
    for (const Reduction reduce : kReductions) {
      // Multi-site operators (crash-instant drops) iterate their sites;
      // single-site ones bail after index 0.
      for (std::size_t index = 0;; ++index) {
        if (outcome.evaluations >= spec.minimize_budget ||
            stop_requested(control)) {
          return outcome;
        }
        std::optional<AdversaryPlan> candidate =
            reduce(outcome.evaluation.plan, spec.bounds, index);
        if (!candidate.has_value()) break;
        if (*candidate == outcome.evaluation.plan) break;
        Evaluation trial = evaluate_plan(spec, *candidate, pool, control);
        ++outcome.evaluations;
        outcome.trail.push_back(trial);
        const bool keeps_class =
            !trial.failed &&
            outcome_rank(trial.metrics.outcome) == target_rank;
        if (keeps_class && trial.score >= threshold) {
          outcome.evaluation = std::move(trial);
          ++outcome.accepted;
          improved = true;
          // Restart this operator from site 0 against the shrunken plan.
          index = static_cast<std::size_t>(-1);
        }
      }
    }
  }
  return outcome;
}

}  // namespace lumen::search
