#include "search/fitness.hpp"

namespace lumen::search {

std::string_view to_string(FitnessKind k) noexcept {
  switch (k) {
    case FitnessKind::kEpochs:
      return "epochs";
    case FitnessKind::kMinSeparation:
      return "min-separation";
    case FitnessKind::kOutcome:
      return "outcome";
  }
  return "epochs";
}

std::optional<FitnessKind> fitness_from_string(std::string_view name) noexcept {
  if (name == "epochs") return FitnessKind::kEpochs;
  if (name == "min-separation") return FitnessKind::kMinSeparation;
  if (name == "outcome") return FitnessKind::kOutcome;
  return std::nullopt;
}

const std::vector<FitnessKind>& all_fitness_kinds() {
  static const std::vector<FitnessKind> kinds = {FitnessKind::kEpochs,
                                                 FitnessKind::kMinSeparation,
                                                 FitnessKind::kOutcome};
  return kinds;
}

int outcome_rank(sim::RunOutcome outcome) noexcept {
  switch (outcome) {
    case sim::RunOutcome::kConverged:
      return 0;
    case sim::RunOutcome::kStalled:
      return 1;
    case sim::RunOutcome::kDeadlineExceeded:
      return 2;
    case sim::RunOutcome::kBudgetExhausted:
      return 3;
    case sim::RunOutcome::kCollision:
      return 4;
  }
  return 0;
}

double fitness_score(FitnessKind kind, const analysis::RunMetrics& m) noexcept {
  switch (kind) {
    case FitnessKind::kEpochs: {
      double score = static_cast<double>(m.epochs);
      if (m.outcome == sim::RunOutcome::kBudgetExhausted ||
          m.outcome == sim::RunOutcome::kDeadlineExceeded) {
        score += 1e6;
      } else if (m.outcome == sim::RunOutcome::kCollision) {
        score += 2e6;
      }
      return score;
    }
    case FitnessKind::kMinSeparation:
      return 1e6 * static_cast<double>(m.position_collisions) -
             m.min_observed_separation;
    case FitnessKind::kOutcome:
      return 1e6 * outcome_rank(m.outcome) + static_cast<double>(m.epochs);
  }
  return 0.0;
}

bool fitness_needs_audit(FitnessKind kind) noexcept {
  return kind == FitnessKind::kMinSeparation || kind == FitnessKind::kOutcome;
}

}  // namespace lumen::search
