#include "search/hunt.hpp"

#include "search/minimize.hpp"
#include "util/json.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace lumen::search {
namespace {

constexpr double kFailedScore = std::numeric_limits<double>::lowest();

bool stop_requested(const analysis::CampaignControl& control) {
  return control.stop != nullptr &&
         control.stop->load(std::memory_order_relaxed);
}

/// Proposal order doubles as the deterministic tiebreak: of two equal
/// scores, the EARLIER evaluation wins, so the trajectory never depends on
/// sort stability or pool interleaving.
struct Scored {
  Evaluation evaluation;
  std::size_t order = 0;
};

bool better(const Scored& a, const Scored& b) {
  if (a.evaluation.score != b.evaluation.score) {
    return a.evaluation.score > b.evaluation.score;
  }
  return a.order < b.order;
}

/// Evaluates a whole batch over the pool. Plans were assembled before this
/// call, out[] is index-addressed, and each evaluation is a pure function
/// of its plan — so the batch result is identical for any pool size.
std::vector<Evaluation> evaluate_batch(const HuntSpec& spec,
                                       const std::vector<AdversaryPlan>& plans,
                                       util::ThreadPool& pool,
                                       const analysis::CampaignControl& control) {
  std::vector<Evaluation> out(plans.size());
  if (plans.empty()) return out;
  pool.parallel_for_slots(plans.size(),
                          [&](std::size_t, std::size_t index) {
                            out[index] =
                                evaluate_plan(spec, plans[index], &pool, control);
                          });
  return out;
}

/// Appends a finished batch to the result, updating the running best.
/// Returns false when the batch was cut short by a cooperative stop (the
/// partial batch is discarded: a resumed hunt re-proposes it from the seed
/// and merges the journaled cells back bit-identically).
bool absorb_batch(HuntResult& result, std::vector<Scored>& scored,
                  std::vector<Evaluation> batch,
                  const analysis::CampaignControl& control) {
  if (stop_requested(control)) {
    result.stopped = true;
    return false;
  }
  for (Evaluation& evaluation : batch) {
    Scored entry{std::move(evaluation), result.history.size()};
    result.history.push_back(entry.evaluation);
    ++result.evaluations;
    if (!entry.evaluation.failed) {
      if (!result.best.has_value() ||
          entry.evaluation.score > result.best->score) {
        result.best = entry.evaluation;
      }
      scored.push_back(std::move(entry));
    }
  }
  return true;
}

void run_mu_plus_lambda(HuntResult& result, const HuntSpec& spec,
                        util::ThreadPool& pool,
                        const analysis::CampaignControl& control) {
  util::Prng rng(spec.hunt_seed);
  util::Prng init_rng = rng.split("hunt-init");

  AdversaryPlan base = spec.seed_plan;
  clamp_plan(base, spec.bounds);

  std::vector<AdversaryPlan> initial;
  initial.push_back(base);
  while (initial.size() < spec.population) {
    initial.push_back(random_plan(base, spec.bounds, init_rng));
  }
  if (initial.size() > spec.budget) initial.resize(spec.budget);

  std::vector<Scored> elite;
  if (!absorb_batch(result, elite,
                    evaluate_batch(spec, initial, pool, control), control)) {
    return;
  }

  for (std::uint64_t generation = 0; result.evaluations < spec.budget;
       ++generation) {
    util::Prng gen_rng = rng.split("hunt-gen").split(generation);
    const std::size_t remaining = spec.budget - result.evaluations;
    const std::size_t lambda = std::min(spec.offspring, remaining);

    std::vector<AdversaryPlan> children;
    children.reserve(lambda);
    for (std::size_t k = 0; k < lambda; ++k) {
      util::Prng child_rng = gen_rng.split(static_cast<std::uint64_t>(k));
      if (elite.empty()) {
        children.push_back(random_plan(base, spec.bounds, child_rng));
        continue;
      }
      const auto tournament = [&]() -> const Scored& {
        const Scored& a = elite[child_rng.next_below(elite.size())];
        const Scored& b = elite[child_rng.next_below(elite.size())];
        return better(a, b) ? a : b;
      };
      const Scored& parent = tournament();
      AdversaryPlan child = parent.evaluation.plan;
      if (child_rng.bernoulli(spec.crossover_rate)) {
        const Scored& other = tournament();
        child = crossover(child, other.evaluation.plan, child_rng);
      }
      child = mutate(child, spec.bounds, child_rng);
      children.push_back(child);
    }

    if (!absorb_batch(result, elite,
                      evaluate_batch(spec, children, pool, control), control)) {
      return;
    }
    std::sort(elite.begin(), elite.end(), better);
    if (elite.size() > spec.population) elite.resize(spec.population);
  }
}

/// One bandit arm: a (scheduler-appropriate kind, fault emphasis) family.
struct Arm {
  sched::AdversaryKind adversary = sched::AdversaryKind::kUniform;
  sched::ActivationKind activation = sched::ActivationKind::kRandomHalf;
  /// 0 = schedule-only, 1 = crash, 2 = light, 3 = noise, 4 = mixed.
  int emphasis = 0;
  double total = 0.0;
  std::size_t pulls = 0;
  std::optional<Scored> best;

  [[nodiscard]] double mean() const noexcept {
    return pulls == 0 ? 0.0 : total / static_cast<double>(pulls);
  }
};

void apply_arm_family(AdversaryPlan& plan, const Arm& arm, const HuntSpec& spec,
                      util::Prng& rng) {
  plan.adversary = arm.adversary;
  plan.activation = arm.activation;
  switch (arm.emphasis) {
    case 0:
      plan.fault = fault::FaultPlan{};
      break;
    case 1:
      plan.fault.light = fault::LightCorruptionPlan{};
      plan.fault.noise = fault::SensorNoisePlan{};
      if (!plan.fault.crash.active()) {
        randomize_crash_channel(plan.fault, spec.bounds, rng);
      }
      break;
    case 2:
      plan.fault.crash = fault::CrashPlan{};
      plan.fault.noise = fault::SensorNoisePlan{};
      if (!plan.fault.light.active()) {
        randomize_light_channel(plan.fault, spec.bounds, rng);
      }
      break;
    case 3:
      plan.fault.crash = fault::CrashPlan{};
      plan.fault.light = fault::LightCorruptionPlan{};
      if (!plan.fault.noise.active()) {
        randomize_noise_channel(plan.fault, spec.bounds, rng);
      }
      break;
    default:
      if (!plan.fault.any()) {
        randomize_crash_channel(plan.fault, spec.bounds, rng);
        randomize_light_channel(plan.fault, spec.bounds, rng);
      }
      break;
  }
  clamp_plan(plan, spec.bounds);
}

void run_bandit(HuntResult& result, const HuntSpec& spec,
                util::ThreadPool& pool,
                const analysis::CampaignControl& control) {
  util::Prng rng(spec.hunt_seed);

  // Arms: every scheduler-appropriate kind x fault emphasis. The kind
  // dimension collapses to one entry for FSYNC (no timing/activation choice
  // survives the engine there).
  std::vector<Arm> arms;
  const auto add_arms = [&](sched::AdversaryKind adversary,
                            sched::ActivationKind activation) {
    for (int emphasis = 0; emphasis < 5; ++emphasis) {
      Arm arm;
      arm.adversary = adversary;
      arm.activation = activation;
      arm.emphasis = emphasis;
      arms.push_back(arm);
    }
  };
  AdversaryPlan base = spec.seed_plan;
  clamp_plan(base, spec.bounds);
  switch (base.scheduler) {
    case sim::SchedulerKind::kAsync:
      for (const auto kind :
           {sched::AdversaryKind::kUniform, sched::AdversaryKind::kBursty,
            sched::AdversaryKind::kStallOne, sched::AdversaryKind::kLockstep}) {
        add_arms(kind, base.activation);
      }
      break;
    case sim::SchedulerKind::kSsync:
      for (const auto kind :
           {sched::ActivationKind::kRandomHalf, sched::ActivationKind::kSingleton,
            sched::ActivationKind::kRandomSingle}) {
        add_arms(base.adversary, kind);
      }
      break;
    case sim::SchedulerKind::kFsync:
      add_arms(base.adversary, sched::ActivationKind::kAll);
      break;
  }

  std::vector<Scored> all_scored;  // Unused beyond best tracking; absorb needs it.
  for (std::uint64_t round = 0; result.evaluations < spec.budget; ++round) {
    util::Prng round_rng = rng.split("hunt-round").split(round);
    const std::size_t remaining = spec.budget - result.evaluations;
    const std::size_t pulls = std::min(spec.batch, remaining);

    // Pick arms first (deterministic in the means observed so far), then
    // build all candidate plans, then evaluate the whole batch.
    std::vector<std::size_t> picked;
    picked.reserve(pulls);
    std::vector<char> pending(arms.size(), 0);
    for (std::size_t k = 0; k < pulls; ++k) {
      // Cold start: sweep every arm once before exploiting.
      std::size_t choice = arms.size();
      for (std::size_t i = 0; i < arms.size(); ++i) {
        if (arms[i].pulls == 0 && pending[i] == 0) {
          choice = i;
          break;
        }
      }
      if (choice == arms.size()) {
        if (round_rng.bernoulli(spec.epsilon)) {
          choice = round_rng.next_below(arms.size());
        } else {
          choice = 0;
          for (std::size_t i = 1; i < arms.size(); ++i) {
            if (arms[i].mean() > arms[choice].mean()) choice = i;
          }
        }
      }
      pending[choice] = 1;
      picked.push_back(choice);
    }

    std::vector<AdversaryPlan> candidates;
    candidates.reserve(picked.size());
    for (std::size_t k = 0; k < picked.size(); ++k) {
      util::Prng pick_rng = round_rng.split(static_cast<std::uint64_t>(k));
      const Arm& arm = arms[picked[k]];
      AdversaryPlan plan = arm.best.has_value()
                               ? mutate(arm.best->evaluation.plan, spec.bounds,
                                        pick_rng)
                               : random_plan(base, spec.bounds, pick_rng);
      apply_arm_family(plan, arm, spec, pick_rng);
      candidates.push_back(plan);
    }

    const std::size_t first_order = result.history.size();
    if (!absorb_batch(result, all_scored,
                      evaluate_batch(spec, candidates, pool, control),
                      control)) {
      return;
    }
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      Arm& arm = arms[picked[k]];
      const Evaluation& evaluation = result.history[first_order + k];
      ++arm.pulls;
      if (evaluation.failed) continue;
      arm.total += evaluation.score;
      Scored entry{evaluation, first_order + k};
      if (!arm.best.has_value() || better(entry, *arm.best)) {
        arm.best = std::move(entry);
      }
    }
  }
}

}  // namespace

std::string_view to_string(StrategyKind k) noexcept {
  switch (k) {
    case StrategyKind::kMuPlusLambda:
      return "mu-lambda";
    case StrategyKind::kBandit:
      return "bandit";
  }
  return "mu-lambda";
}

std::optional<StrategyKind> strategy_from_string(std::string_view name) noexcept {
  if (name == "mu-lambda") return StrategyKind::kMuPlusLambda;
  if (name == "bandit") return StrategyKind::kBandit;
  return std::nullopt;
}

std::string validate_hunt_spec(const HuntSpec& spec) {
  if (spec.budget < 1) return "budget must be >= 1";
  if (spec.population < 1) return "population must be >= 1";
  if (spec.offspring < 1) return "offspring must be >= 1";
  if (spec.batch < 1) return "batch must be >= 1";
  if (!(spec.epsilon >= 0.0 && spec.epsilon <= 1.0)) {
    return "epsilon must be in [0, 1]";
  }
  if (!(spec.crossover_rate >= 0.0 && spec.crossover_rate <= 1.0)) {
    return "crossover_rate must be in [0, 1]";
  }
  if (!(spec.keep_fraction > 0.0 && spec.keep_fraction <= 1.0)) {
    return "keep_fraction must be in (0, 1]";
  }
  if (spec.bounds.n_min < 1) return "bounds.n_min must be >= 1";
  if (spec.bounds.n_min > spec.bounds.n_max) {
    return "bounds.n_min must be <= bounds.n_max";
  }
  if (spec.max_cycles_per_robot < 1) return "max_cycles_per_robot must be >= 1";
  // Everything the campaign layer would reject per evaluation (unknown
  // algorithm, fault domains, min_separation) fails fast here instead.
  AdversaryPlan probe = spec.seed_plan;
  clamp_plan(probe, spec.bounds);
  const std::string campaign_error =
      validate_campaign_spec(hunt_scenario(spec, probe).campaign(probe.n));
  if (!campaign_error.empty()) return campaign_error;
  return "";
}

analysis::ScenarioSpec hunt_scenario(const HuntSpec& spec,
                                     const AdversaryPlan& plan) {
  analysis::ScenarioSpec scenario;
  scenario.algorithm = spec.algorithm;
  scenario.family = spec.family;
  scenario.ns = {plan.n};
  scenario.runs = 1;
  scenario.seed_base = plan.seed;
  scenario.min_separation = spec.min_separation;
  scenario.audit_collisions = fitness_needs_audit(spec.fitness);
  scenario.collision_tolerance = spec.collision_tolerance;
  scenario.run.scheduler = plan.scheduler;
  scenario.run.adversary = plan.adversary;
  scenario.run.activation = plan.activation;
  scenario.run.max_cycles_per_robot = spec.max_cycles_per_robot;
  scenario.run.fault = plan.fault;
  return scenario;
}

Evaluation evaluate_plan(const HuntSpec& spec, const AdversaryPlan& plan,
                         util::ThreadPool* pool,
                         const analysis::CampaignControl& control) {
  Evaluation evaluation;
  evaluation.plan = plan;
  const analysis::CampaignSpec campaign =
      hunt_scenario(spec, plan).campaign(plan.n);
  const analysis::CampaignResult result =
      analysis::run_campaign(campaign, pool, control);
  if (result.runs.size() == 1) {
    evaluation.metrics = result.runs.front();
    evaluation.score = fitness_score(spec.fitness, evaluation.metrics);
  } else {
    evaluation.failed = true;
    evaluation.score = kFailedScore;
  }
  return evaluation;
}

std::vector<Evaluation> evaluate_plans(const HuntSpec& spec,
                                       const std::vector<AdversaryPlan>& plans,
                                       util::ThreadPool* pool,
                                       const analysis::CampaignControl& control) {
  util::ThreadPool& workers = pool != nullptr ? *pool : util::global_pool();
  return evaluate_batch(spec, plans, workers, control);
}

HuntResult run_hunt(const HuntSpec& spec, util::ThreadPool* pool,
                    const analysis::CampaignControl& control) {
  HuntResult result;
  result.spec = spec;
  result.error = validate_hunt_spec(spec);
  if (!result.error.empty()) return result;

  util::ThreadPool& workers = pool != nullptr ? *pool : util::global_pool();
  switch (spec.strategy) {
    case StrategyKind::kMuPlusLambda:
      run_mu_plus_lambda(result, spec, workers, control);
      break;
    case StrategyKind::kBandit:
      run_bandit(result, spec, workers, control);
      break;
  }

  if (result.best.has_value() && !result.stopped) {
    MinimizeOutcome minimized =
        minimize_plan(spec, *result.best, &workers, control);
    result.minimize_evals = minimized.evaluations;
    result.minimize_accepted = minimized.accepted;
    for (Evaluation& evaluation : minimized.trail) {
      result.history.push_back(std::move(evaluation));
    }
    if (stop_requested(control)) {
      result.stopped = true;
    } else {
      result.minimized = std::move(minimized.evaluation);
    }
  }
  return result;
}

std::uint64_t hunt_digest(const HuntResult& result) {
  std::string blob;
  blob.reserve(result.history.size() * 160);
  char buffer[64];
  for (const Evaluation& evaluation : result.history) {
    blob += plan_fingerprint(evaluation.plan);
    std::snprintf(buffer, sizeof buffer, "|%.17g|", evaluation.score);
    blob += buffer;
    blob += evaluation.failed
                ? std::string_view("failed")
                : sim::to_string(evaluation.metrics.outcome);
    blob += '\n';
  }
  if (result.minimized.has_value()) {
    blob += "minimized:";
    blob += plan_fingerprint(result.minimized->plan);
    std::snprintf(buffer, sizeof buffer, "|%.17g\n", result.minimized->score);
    blob += buffer;
  }
  return util::fnv1a(blob);
}

}  // namespace lumen::search
