#include "search/plan.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace lumen::search {
namespace {

constexpr std::array<sched::AdversaryKind, 4> kAdversaries = {
    sched::AdversaryKind::kUniform, sched::AdversaryKind::kBursty,
    sched::AdversaryKind::kStallOne, sched::AdversaryKind::kLockstep};

// FSYNC forces kAll inside the engine, so searching it there is wasted
// moves; the SSYNC-meaningful kinds are the searchable set.
constexpr std::array<sched::ActivationKind, 3> kActivations = {
    sched::ActivationKind::kRandomHalf, sched::ActivationKind::kSingleton,
    sched::ActivationKind::kRandomSingle};

constexpr std::array<fault::CorruptionMode, 3> kModes = {
    fault::CorruptionMode::kStuck, fault::CorruptionMode::kFlip,
    fault::CorruptionMode::kRandom};

constexpr std::uint64_t kSeedMask = 0x7fffffffffffffffULL;

double clamp01(double v, double hi) {
  return std::min(std::max(v, 0.0), hi);
}

void random_crash(fault::CrashPlan& crash, const PlanBounds& bounds,
                  util::Prng& rng) {
  crash.count = 1 + static_cast<std::size_t>(rng.next_below(
                        static_cast<std::uint64_t>(
                            std::max<std::size_t>(bounds.crash_count_max, 1))));
  if (rng.bernoulli(0.5)) {
    crash.schedule = fault::CrashScheduleKind::kRate;
    // Floor at 5% of the range so the channel is always active.
    crash.rate = bounds.crash_rate_max * (0.05 + 0.95 * rng.next_double());
    crash.times.clear();
  } else {
    crash.schedule = fault::CrashScheduleKind::kTimes;
    crash.rate = 0.0;
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(
                std::max<std::size_t>(bounds.crash_times_max, 1))));
    crash.times.clear();
    for (std::size_t i = 0; i < k; ++i) {
      crash.times.push_back(rng.uniform(0.0, bounds.crash_time_max));
    }
  }
}

void random_light(fault::LightCorruptionPlan& light, const PlanBounds& bounds,
                  util::Prng& rng) {
  light.probability =
      bounds.light_probability_max * (0.05 + 0.95 * rng.next_double());
  light.mode = kModes[rng.next_below(kModes.size())];
}

void random_noise(fault::SensorNoisePlan& noise, const PlanBounds& bounds,
                  util::Prng& rng) {
  noise.sigma = bounds.noise_sigma_max * (0.05 + 0.95 * rng.next_double());
  noise.dropout = rng.uniform(0.0, bounds.noise_dropout_max);
}

template <typename T, std::size_t N>
T flip_kind(const std::array<T, N>& all, T current, util::Prng& rng) {
  // Uniform among the OTHER kinds, so a flip always changes something.
  std::array<T, N> others{};
  std::size_t count = 0;
  for (const T k : all) {
    if (k != current) others[count++] = k;
  }
  if (count == 0) return current;
  return others[rng.next_below(count)];
}

}  // namespace

void clamp_plan(AdversaryPlan& plan, const PlanBounds& bounds) {
  plan.n = std::min(std::max(plan.n, bounds.n_min), bounds.n_max);
  plan.seed &= kSeedMask;
  if (plan.scheduler == sim::SchedulerKind::kFsync) {
    plan.activation = sched::ActivationKind::kAll;
  } else if (plan.activation == sched::ActivationKind::kAll) {
    plan.activation = sched::ActivationKind::kRandomHalf;
  }
  auto& crash = plan.fault.crash;
  crash.count = std::min(crash.count, bounds.crash_count_max);
  crash.rate = clamp01(crash.rate, std::min(bounds.crash_rate_max, 1.0));
  if (crash.times.size() > bounds.crash_times_max) {
    crash.times.resize(bounds.crash_times_max);
  }
  for (double& t : crash.times) {
    t = std::min(std::max(t, 0.0), bounds.crash_time_max);
  }
  plan.fault.light.probability = clamp01(
      plan.fault.light.probability, std::min(bounds.light_probability_max, 1.0));
  plan.fault.noise.sigma = clamp01(plan.fault.noise.sigma, bounds.noise_sigma_max);
  plan.fault.noise.dropout =
      clamp01(plan.fault.noise.dropout, std::min(bounds.noise_dropout_max, 1.0));
}

AdversaryPlan random_plan(const AdversaryPlan& base, const PlanBounds& bounds,
                          util::Prng& rng) {
  AdversaryPlan plan;
  plan.scheduler = base.scheduler;
  if (bounds.mutate_scheduler) {
    constexpr std::array<sim::SchedulerKind, 3> kSchedulers = {
        sim::SchedulerKind::kFsync, sim::SchedulerKind::kSsync,
        sim::SchedulerKind::kAsync};
    plan.scheduler = kSchedulers[rng.next_below(kSchedulers.size())];
  }
  plan.adversary = kAdversaries[rng.next_below(kAdversaries.size())];
  plan.activation = kActivations[rng.next_below(kActivations.size())];
  plan.n = bounds.n_min +
           static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(
               bounds.n_max - std::min(bounds.n_min, bounds.n_max) + 1)));
  plan.seed = rng() & kSeedMask;
  if (rng.bernoulli(0.5)) random_crash(plan.fault.crash, bounds, rng);
  if (rng.bernoulli(0.5)) random_light(plan.fault.light, bounds, rng);
  if (rng.bernoulli(0.5)) random_noise(plan.fault.noise, bounds, rng);
  clamp_plan(plan, bounds);
  return plan;
}

AdversaryPlan mutate(const AdversaryPlan& plan, const PlanBounds& bounds,
                     util::Prng& rng) {
  AdversaryPlan out = plan;
  const std::size_t ops = 1 + static_cast<std::size_t>(rng.next_below(2));
  for (std::size_t op = 0; op < ops; ++op) {
    switch (rng.next_below(8)) {
      case 0:  // Fresh seed: jump to an unrelated configuration.
        out.seed = rng() & kSeedMask;
        break;
      case 1:  // Seed nudge: a nearby stream, often a nearby configuration.
        out.seed = (out.seed ^ (1ULL << rng.next_below(16))) & kSeedMask;
        break;
      case 2: {  // Size step.
        const std::size_t step = 1 + static_cast<std::size_t>(rng.next_below(
                                         std::max<std::uint64_t>(out.n / 4, 1)));
        if (rng.bernoulli(0.5)) {
          out.n += step;
        } else {
          out.n = out.n > step ? out.n - step : bounds.n_min;
        }
        break;
      }
      case 3:
        out.adversary = flip_kind(kAdversaries, out.adversary, rng);
        break;
      case 4:
        out.activation = flip_kind(kActivations, out.activation, rng);
        break;
      case 5: {  // Crash channel.
        auto& crash = out.fault.crash;
        if (!crash.active()) {
          random_crash(crash, bounds, rng);
          break;
        }
        switch (rng.next_below(5)) {
          case 0:
            crash.count = rng.bernoulli(0.5) ? crash.count + 1
                                             : (crash.count > 0 ? crash.count - 1
                                                                : 0);
            break;
          case 1:  // Swap schedule kind, re-rolling its parameters.
            if (crash.schedule == fault::CrashScheduleKind::kRate) {
              crash.schedule = fault::CrashScheduleKind::kTimes;
              crash.rate = 0.0;
              crash.times = {rng.uniform(0.0, bounds.crash_time_max)};
            } else {
              crash.schedule = fault::CrashScheduleKind::kRate;
              crash.times.clear();
              crash.rate = rng.uniform(0.0, bounds.crash_rate_max);
            }
            break;
          case 2:
            crash.rate *= rng.uniform(0.5, 2.0);
            break;
          case 3:  // Add / drop an explicit crash instant.
            if (crash.times.empty() || rng.bernoulli(0.5)) {
              crash.times.push_back(rng.uniform(0.0, bounds.crash_time_max));
            } else {
              crash.times.erase(crash.times.begin() +
                                static_cast<std::ptrdiff_t>(
                                    rng.next_below(crash.times.size())));
            }
            break;
          default:  // Perturb one instant.
            if (!crash.times.empty()) {
              double& t = crash.times[rng.next_below(crash.times.size())];
              t += rng.uniform(-4.0, 4.0);
            }
            break;
        }
        break;
      }
      case 6: {  // Light channel.
        auto& light = out.fault.light;
        if (!light.active()) {
          random_light(light, bounds, rng);
        } else if (rng.bernoulli(0.25)) {
          light.probability = 0.0;
        } else if (rng.bernoulli(0.5)) {
          light.probability *= rng.uniform(0.5, 2.0);
        } else {
          light.mode = flip_kind(kModes, light.mode, rng);
        }
        break;
      }
      default: {  // Noise channel.
        auto& noise = out.fault.noise;
        if (!noise.active()) {
          random_noise(noise, bounds, rng);
        } else if (rng.bernoulli(0.25)) {
          noise.sigma = 0.0;
          noise.dropout = 0.0;
        } else if (rng.bernoulli(0.5)) {
          noise.sigma *= rng.uniform(0.5, 2.0);
        } else {
          noise.dropout *= rng.uniform(0.5, 2.0);
        }
        break;
      }
    }
  }
  clamp_plan(out, bounds);
  return out;
}

void randomize_crash_channel(fault::FaultPlan& fault, const PlanBounds& bounds,
                             util::Prng& rng) {
  random_crash(fault.crash, bounds, rng);
}

void randomize_light_channel(fault::FaultPlan& fault, const PlanBounds& bounds,
                             util::Prng& rng) {
  random_light(fault.light, bounds, rng);
}

void randomize_noise_channel(fault::FaultPlan& fault, const PlanBounds& bounds,
                             util::Prng& rng) {
  random_noise(fault.noise, bounds, rng);
}

AdversaryPlan crossover(const AdversaryPlan& a, const AdversaryPlan& b,
                        util::Prng& rng) {
  AdversaryPlan out = a;
  out.adversary = rng.bernoulli(0.5) ? a.adversary : b.adversary;
  out.activation = rng.bernoulli(0.5) ? a.activation : b.activation;
  out.n = rng.bernoulli(0.5) ? a.n : b.n;
  out.seed = rng.bernoulli(0.5) ? a.seed : b.seed;
  out.fault.crash = rng.bernoulli(0.5) ? a.fault.crash : b.fault.crash;
  out.fault.light = rng.bernoulli(0.5) ? a.fault.light : b.fault.light;
  out.fault.noise = rng.bernoulli(0.5) ? a.fault.noise : b.fault.noise;
  return out;
}

util::JsonValue adversary_plan_to_json(const AdversaryPlan& plan) {
  util::JsonValue obj = util::JsonValue::object();
  obj.set("scheduler",
          util::JsonValue::string(std::string(sim::to_string(plan.scheduler))));
  obj.set("adversary", util::JsonValue::string(
                           std::string(sched::to_string(plan.adversary))));
  obj.set("activation", util::JsonValue::string(
                            std::string(sched::to_string(plan.activation))));
  obj.set("n", util::JsonValue::integer(static_cast<std::int64_t>(plan.n)));
  obj.set("seed", util::JsonValue::integer(static_cast<std::int64_t>(plan.seed)));
  obj.set("fault", fault::fault_plan_to_json(plan.fault));
  return obj;
}

std::optional<AdversaryPlan> adversary_plan_from_json(
    const util::JsonValue& json, std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<AdversaryPlan> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  if (!json.is_object()) return fail("plan must be an object");
  AdversaryPlan plan;
  for (const auto& [key, value] : json.members()) {
    if (key == "scheduler") {
      if (!value.is_string()) return fail("plan.scheduler must be a string");
      const auto parsed = sim::scheduler_from_string(value.as_string());
      if (!parsed) {
        return fail("plan.scheduler: unknown scheduler '" + value.as_string() +
                    "'");
      }
      plan.scheduler = *parsed;
    } else if (key == "adversary") {
      if (!value.is_string()) return fail("plan.adversary must be a string");
      const auto parsed = sched::adversary_from_string(value.as_string());
      if (!parsed) {
        return fail("plan.adversary: unknown adversary '" + value.as_string() +
                    "'");
      }
      plan.adversary = *parsed;
    } else if (key == "activation") {
      if (!value.is_string()) return fail("plan.activation must be a string");
      const auto parsed = sched::activation_from_string(value.as_string());
      if (!parsed) {
        return fail("plan.activation: unknown activation '" +
                    value.as_string() + "'");
      }
      plan.activation = *parsed;
    } else if (key == "n") {
      if (!value.is_integer() || value.as_int() < 1) {
        return fail("plan.n must be a positive integer");
      }
      plan.n = static_cast<std::size_t>(value.as_int());
    } else if (key == "seed") {
      if (!value.is_integer() || value.as_int() < 0) {
        return fail("plan.seed must be a non-negative integer");
      }
      plan.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "fault") {
      std::string fault_error;
      const auto parsed = fault::fault_plan_from_json(value, &fault_error);
      if (!parsed) return fail("plan." + fault_error);
      plan.fault = *parsed;
    } else {
      return fail("plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string plan_fingerprint(const AdversaryPlan& plan) {
  return util::json_write(adversary_plan_to_json(plan), 0);
}

}  // namespace lumen::search
