// lumen_search: fitness functions over one evaluated run.
//
// A fitness maps the RunMetrics of a single campaign cell to a score where
// HIGHER IS WORSE for the algorithm — the hunt maximizes it. Three views of
// "bad" are searchable: how long convergence took (epochs), how close the
// swarm came to a collision (near-miss margin), and the categorical outcome
// class itself. Scores are pure functions of the metrics, so a hunt's
// trajectory is exactly as deterministic as the runs underneath it.
#pragma once

#include "analysis/campaign.hpp"

#include <optional>
#include <string_view>

namespace lumen::search {

enum class FitnessKind {
  kEpochs,         ///< Epochs to quiescence; non-quiescent runs dominate.
  kMinSeparation,  ///< Negated closest approach; real collisions dominate.
  kOutcome,        ///< Outcome-class severity, epochs as the tiebreak.
};

[[nodiscard]] std::string_view to_string(FitnessKind k) noexcept;

/// Exact-name inverse ("epochs" / "min-separation" / "outcome"); nullopt
/// for unknown names.
[[nodiscard]] std::optional<FitnessKind> fitness_from_string(
    std::string_view name) noexcept;

/// All kinds, in presentation order.
[[nodiscard]] const std::vector<FitnessKind>& all_fitness_kinds();

/// Severity rank of an outcome for the kOutcome fitness (and the minimizer's
/// class-preservation check): converged < stalled < deadline-exceeded <
/// budget-exhausted < collision.
[[nodiscard]] int outcome_rank(sim::RunOutcome outcome) noexcept;

/// The score the hunt maximizes. Higher is worse for the algorithm:
///  * kEpochs — epochs, plus a 1e6 penalty band when the run never went
///    quiescent (and 2e6 when it collided): a non-converging plan always
///    outranks any converging one.
///  * kMinSeparation — minus the audited closest approach, plus 1e6 per
///    position collision: grazing passes score near zero from below, real
///    contact dominates everything.
///  * kOutcome — outcome_rank * 1e6 + epochs.
[[nodiscard]] double fitness_score(FitnessKind kind,
                                   const analysis::RunMetrics& m) noexcept;

/// Whether this fitness needs the campaign's streaming collision audit
/// (min-separation and outcome read the audit's verdicts).
[[nodiscard]] bool fitness_needs_audit(FitnessKind kind) noexcept;

}  // namespace lumen::search
