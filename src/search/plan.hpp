// lumen_search: the adversary genome.
//
// An AdversaryPlan is everything the search driver is allowed to vary when
// hunting for worst cases: the timing/activation adversary, the swarm size,
// the run seed (which fixes both the initial configuration and every
// schedule/fault stream), and a full fault::FaultPlan. A plan plus a
// HuntSpec (hunt.hpp) projects onto exactly one campaign cell, so every
// fitness evaluation is a deterministic, journalable unit of work — the
// same contract campaigns already have.
//
// Plans serialize through util::JsonValue with the ScenarioSpec byte-exact
// round-trip guarantee, and the seeded mutation / crossover operators are
// pure functions of (input plans, bounds, rng state): a hunt's whole
// trajectory replays bit-identically from its seed (tests/search_test.cpp).
#pragma once

#include "fault/plan.hpp"
#include "sched/activation.hpp"
#include "sched/adversary.hpp"
#include "sim/run.hpp"
#include "util/prng.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace lumen::search {

struct AdversaryPlan {
  sim::SchedulerKind scheduler = sim::SchedulerKind::kAsync;
  sched::AdversaryKind adversary = sched::AdversaryKind::kUniform;
  sched::ActivationKind activation = sched::ActivationKind::kRandomHalf;
  std::size_t n = 16;
  /// Run seed: fixes the initial configuration (gen::generate) and every
  /// schedule/fault stream. Kept in [0, 2^63) so it survives the integer
  /// JSON form ScenarioSpec uses for seed_base.
  std::uint64_t seed = 1;
  fault::FaultPlan fault;

  friend bool operator==(const AdversaryPlan&, const AdversaryPlan&) = default;
};

/// The mutation domain: every operator clamps back into these ranges, so a
/// hunt can never wander into sizes or fault rates the budget (or the spec
/// validator) would reject.
struct PlanBounds {
  std::size_t n_min = 8;
  std::size_t n_max = 48;
  std::size_t crash_count_max = 6;
  double crash_rate_max = 0.2;
  double crash_time_max = 64.0;
  std::size_t crash_times_max = 8;  ///< Length cap for explicit schedules.
  double light_probability_max = 0.3;
  double noise_sigma_max = 0.05;
  double noise_dropout_max = 0.2;
  /// When false (the default) mutation never changes plan.scheduler — a
  /// hunt compares like with like (epoch counts mean different things under
  /// different schedulers). The adversary/activation KINDS always mutate.
  bool mutate_scheduler = false;
};

/// Clamps every searched field into `bounds` (and the [0, 1] probability
/// domains). Idempotent; mutation/crossover call it on their results.
void clamp_plan(AdversaryPlan& plan, const PlanBounds& bounds);

/// A fresh random plan around `base` (scheduler kept from base unless
/// bounds.mutate_scheduler): random kinds, size, seed, and each fault
/// channel enabled with probability 1/2. Deterministic in rng state.
[[nodiscard]] AdversaryPlan random_plan(const AdversaryPlan& base,
                                        const PlanBounds& bounds,
                                        util::Prng& rng);

/// Applies 1-2 random point mutations (reseed/nudge, size step, kind flips,
/// per-channel fault perturbations). Deterministic in (plan, bounds, rng).
[[nodiscard]] AdversaryPlan mutate(const AdversaryPlan& plan,
                                   const PlanBounds& bounds, util::Prng& rng);

/// Uniform block crossover: kinds, size, seed and each fault channel are
/// inherited from one parent each. Deterministic in (parents, rng).
[[nodiscard]] AdversaryPlan crossover(const AdversaryPlan& a,
                                      const AdversaryPlan& b, util::Prng& rng);

/// Per-channel randomizers (the bandit strategy uses them to force a plan
/// into an arm's fault emphasis). Each draws fresh in-bounds parameters
/// that leave the channel active. Deterministic in rng state.
void randomize_crash_channel(fault::FaultPlan& fault, const PlanBounds& bounds,
                             util::Prng& rng);
void randomize_light_channel(fault::FaultPlan& fault, const PlanBounds& bounds,
                             util::Prng& rng);
void randomize_noise_channel(fault::FaultPlan& fault, const PlanBounds& bounds,
                             util::Prng& rng);

/// Deterministic JSON form (fixed key order; the fault object always
/// present). Round-trips byte-identically through adversary_plan_from_json,
/// matching the ScenarioSpec guarantee.
[[nodiscard]] util::JsonValue adversary_plan_to_json(const AdversaryPlan& plan);

/// Parses a plan object. Missing keys keep defaults; unknown keys, type
/// mismatches and out-of-domain values are errors named after the field.
[[nodiscard]] std::optional<AdversaryPlan> adversary_plan_from_json(
    const util::JsonValue& json, std::string* error = nullptr);

/// Compact single-line serialization — the dedup/digest key for a plan.
[[nodiscard]] std::string plan_fingerprint(const AdversaryPlan& plan);

}  // namespace lumen::search
