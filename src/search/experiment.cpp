#include "search/experiment.hpp"

#include <algorithm>
#include <cstdio>

namespace lumen::search {
namespace {

std::string fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, format, value);
  return buffer;
}

}  // namespace

HuntSpec hunt_spec_for_scenario(const analysis::ScenarioSpec& spec,
                                FitnessKind fitness, StrategyKind strategy) {
  HuntSpec hunt;
  hunt.algorithm = spec.algorithm;
  hunt.family = spec.family;
  hunt.fitness = fitness;
  hunt.strategy = strategy;
  hunt.seed_plan.scheduler = spec.run.scheduler;
  hunt.seed_plan.adversary = spec.run.adversary;
  hunt.seed_plan.activation = spec.run.activation;
  hunt.seed_plan.n = spec.ns.empty() ? 16 : spec.ns.front();
  hunt.seed_plan.seed = spec.seed_base;
  hunt.seed_plan.fault = spec.run.fault;
  // Pin N for the experiment: the baseline and the hunt search the same
  // swarm size, so worst-vs-mean rows compare like with like.
  hunt.bounds.n_min = hunt.seed_plan.n;
  hunt.bounds.n_max = hunt.seed_plan.n;
  hunt.hunt_seed = spec.seed_base;
  // Budgets scale with the spec's seed count so --smoke shrinks the hunt
  // the same way it shrinks every other experiment.
  hunt.budget = std::clamp<std::size_t>(spec.runs * 8, 16, 512);
  hunt.minimize_budget = std::clamp<std::size_t>(spec.runs * 4, 8, 96);
  hunt.population = 6;
  hunt.offspring = 12;
  hunt.min_separation = spec.min_separation;
  hunt.collision_tolerance = spec.collision_tolerance;
  hunt.max_cycles_per_robot = spec.run.max_cycles_per_robot;
  return hunt;
}

analysis::ExperimentResult run_adversarial_hunt(
    const analysis::ScenarioSpec& spec, const analysis::ExperimentContext& ctx) {
  analysis::ExperimentResult result;
  result.experiment = "adversarial-hunt";
  result.title =
      "E13: adversarial search — optimized worst-case adversaries vs the "
      "uniform-sampling tails";
  result.columns = {"fitness",        "N",
                    "baseline(mean)", "baseline(worst)",
                    "hunt(best)",     "minimized",
                    "evals",          "exceeds-tail"};

  bool all_found = true;
  bool hunt_at_least_tail = true;
  for (const FitnessKind fitness : all_fitness_kinds()) {
    if (ctx.stop_requested()) {
      result.partial = true;
      break;
    }
    HuntSpec hunt = hunt_spec_for_scenario(spec, fitness,
                                           StrategyKind::kMuPlusLambda);
    const std::string invalid = validate_hunt_spec(hunt);
    if (!invalid.empty()) {
      result.notes.push_back("hunt spec invalid for fitness " +
                             std::string(to_string(fitness)) + ": " + invalid);
      result.partial = true;
      all_found = false;
      continue;
    }

    // Uniform-sampling baseline: the E9-E11 methodology over the SAME plan
    // space — spec.runs independent random plans, no optimization.
    util::Prng baseline_rng = util::Prng(hunt.hunt_seed).split("e13-baseline");
    std::vector<AdversaryPlan> samples;
    samples.reserve(spec.runs);
    for (std::size_t i = 0; i < spec.runs; ++i) {
      samples.push_back(random_plan(hunt.seed_plan, hunt.bounds, baseline_rng));
    }
    const std::vector<Evaluation> baseline =
        evaluate_plans(hunt, samples, ctx.pool, ctx.control);
    double baseline_sum = 0.0;
    double baseline_worst = 0.0;
    std::size_t baseline_ok = 0;
    for (const Evaluation& evaluation : baseline) {
      if (evaluation.failed) continue;
      if (baseline_ok == 0 || evaluation.score > baseline_worst) {
        baseline_worst = evaluation.score;
      }
      baseline_sum += evaluation.score;
      ++baseline_ok;
    }
    const double baseline_mean =
        baseline_ok > 0 ? baseline_sum / static_cast<double>(baseline_ok) : 0.0;

    // Warm-start the hunt from the baseline's winner: the (mu+lambda) loop
    // evaluates its seed plan in generation 0, so the hunt's best can never
    // fall below the uniform-sampling tail — it optimizes FROM it.
    const Evaluation* baseline_best = nullptr;
    for (const Evaluation& evaluation : baseline) {
      if (evaluation.failed) continue;
      if (baseline_best == nullptr || evaluation.score > baseline_best->score) {
        baseline_best = &evaluation;
      }
    }
    if (baseline_best != nullptr) hunt.seed_plan = baseline_best->plan;

    const HuntResult hunted = run_hunt(hunt, ctx.pool, ctx.control);
    if (hunted.stopped) result.partial = true;
    if (!hunted.best.has_value()) {
      all_found = false;
      result.row() = {analysis::cell(std::string(to_string(fitness))),
                      analysis::cell(hunt.seed_plan.n),
                      analysis::cell(baseline_mean, 3),
                      analysis::cell(baseline_worst, 3),
                      analysis::cell("-"),
                      analysis::cell("-"),
                      analysis::cell(hunted.evaluations),
                      analysis::cell("-")};
      continue;
    }
    const double best = hunted.best->score;
    const double minimized =
        hunted.minimized.has_value() ? hunted.minimized->score : best;
    const bool exceeds = baseline_ok == 0 || best >= baseline_worst;
    hunt_at_least_tail = hunt_at_least_tail && exceeds;
    result.row() = {
        analysis::cell(std::string(to_string(fitness))),
        analysis::cell(hunt.seed_plan.n),
        analysis::cell(baseline_mean, 3),
        analysis::cell(baseline_worst, 3),
        analysis::cell(best, 3),
        analysis::cell(minimized, 3),
        analysis::cell(hunted.evaluations + hunted.minimize_evals),
        analysis::cell(exceeds ? "yes" : "no")};
    if (hunted.minimized.has_value()) {
      result.notes.push_back(
          std::string(to_string(fitness)) + " minimized plan: " +
          plan_fingerprint(hunted.minimized->plan) +
          fmt(" (score %.6g, ", hunted.minimized->score) +
          std::string(sim::to_string(hunted.minimized->metrics.outcome)) + ")");
    }
  }

  result.notes.push_back(
      "baseline columns are uniform sampling over the same AdversaryPlan "
      "bounds (the E9-E11 methodology); hunt columns are the (mu+lambda) "
      "optimizer with the same per-evaluation budget. Scores: epochs + 1e6 "
      "per non-quiescence band / 1e6*collisions - min-separation / "
      "1e6*outcome-rank + epochs.");
  result.checks.push_back(
      {"hunt found and minimized a worst case for every fitness", all_found});
  result.checks.push_back(
      {"hunt best matches or exceeds the uniform-sampling worst tail",
       hunt_at_least_tail});
  return result;
}

void register_hunt_experiment() {
  analysis::Experiment experiment;
  experiment.name = "adversarial-hunt";
  experiment.id = "E13";
  experiment.description =
      "Adversarial search over scheduler/fault plans: a (mu+lambda) hunt "
      "per fitness function (epochs-to-converge, near-miss margin, outcome "
      "class) against a uniform-sampling baseline of the same size, with "
      "each winner delta-debugged to a minimal plan. Worst-case constants "
      "to put next to the E9-E11 mean tables; minimized plans are the "
      "committed regression scenarios under scenarios/adversarial/.";
  analysis::ScenarioSpec defaults;
  defaults.ns = {16};
  defaults.runs = 24;
  defaults.seed_base = 1;
  defaults.run.max_cycles_per_robot = 256;
  experiment.defaults = defaults;
  experiment.run = run_adversarial_hunt;
  analysis::ExperimentRegistry::register_external(std::move(experiment));
}

}  // namespace lumen::search
