#include "geom/circle.hpp"

#include "util/prng.hpp"

#include <vector>

namespace lumen::geom {

namespace {

Circle circle_from_two(Vec2 a, Vec2 b) noexcept {
  return {midpoint(a, b), 0.5 * distance(a, b)};
}

bool enclosed(const Circle& c, Vec2 p) noexcept {
  // Relative slack keeps the incremental algorithm stable at large scales.
  const double slack = 1e-10 * (1.0 + c.radius);
  return distance(c.center, p) <= c.radius + slack;
}

/// Exact-ish trivial circles for 0-3 boundary points.
Circle trivial(std::span<const Vec2> boundary) noexcept {
  switch (boundary.size()) {
    case 0: return {};
    case 1: return {boundary[0], 0.0};
    case 2: return circle_from_two(boundary[0], boundary[1]);
    default: {
      // The minimal circle through <=3 points: try pairs first (the third
      // may be inside), then the circumcircle.
      for (int skip = 0; skip < 3; ++skip) {
        const Vec2 p = boundary[static_cast<std::size_t>((skip + 1) % 3)];
        const Vec2 q = boundary[static_cast<std::size_t>((skip + 2) % 3)];
        const Circle c = circle_from_two(p, q);
        if (enclosed(c, boundary[static_cast<std::size_t>(skip)])) return c;
      }
      return circumcircle(boundary[0], boundary[1], boundary[2]);
    }
  }
}

Circle welzl(std::vector<Vec2>& pts, std::size_t n, std::vector<Vec2>& boundary) {
  if (n == 0 || boundary.size() == 3) return trivial(boundary);
  const Vec2 p = pts[n - 1];
  Circle c = welzl(pts, n - 1, boundary);
  if (enclosed(c, p)) return c;
  boundary.push_back(p);
  c = welzl(pts, n - 1, boundary);
  boundary.pop_back();
  return c;
}

}  // namespace

Circle circumcircle(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const double d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  if (d == 0.0) {
    const Vec2 pts[3] = {a, b, c};
    Vec2 mean{};
    for (const Vec2 p : pts) mean += p;
    return {mean / 3.0, 0.0};
  }
  const double a2 = norm_sq(a), b2 = norm_sq(b), c2 = norm_sq(c);
  const Vec2 center{
      (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
      (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d,
  };
  return {center, distance(center, a)};
}

Circle smallest_enclosing_circle(std::span<const Vec2> pts) {
  if (pts.empty()) return {};
  std::vector<Vec2> shuffled(pts.begin(), pts.end());
  // Fixed seed: deterministic runs; Welzl's expectation argument only needs
  // the permutation to be unrelated to the input order.
  util::Prng rng{0x5ec5ec5ec5ecULL};
  rng.shuffle(shuffled.begin(), shuffled.end());
  std::vector<Vec2> boundary;
  boundary.reserve(3);
  return welzl(shuffled, shuffled.size(), boundary);
}

}  // namespace lumen::geom
