#include "geom/polygon.hpp"

#include "geom/predicates.hpp"

#include <cmath>
#include <limits>

namespace lumen::geom {

double polygon_signed_area(std::span<const Vec2> poly) noexcept {
  const std::size_t n = poly.size();
  if (n < 3) return 0.0;
  double twice_area = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % n];
    twice_area += cross(a, b);
  }
  return 0.5 * twice_area;
}

double polygon_area(std::span<const Vec2> poly) noexcept {
  return std::fabs(polygon_signed_area(poly));
}

Vec2 vertex_mean(std::span<const Vec2> pts) noexcept {
  if (pts.empty()) return {};
  Vec2 sum{};
  for (const Vec2 p : pts) sum += p;
  return sum / static_cast<double>(pts.size());
}

Vec2 polygon_centroid(std::span<const Vec2> poly) noexcept {
  const std::size_t n = poly.size();
  const double a = polygon_signed_area(poly);
  if (n < 3 || a == 0.0) return vertex_mean(poly);
  Vec2 c{};
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 p = poly[i];
    const Vec2 q = poly[(i + 1) % n];
    const double w = cross(p, q);
    c += (p + q) * w;
  }
  return c / (6.0 * a);
}

bool polygon_strictly_convex_ccw(std::span<const Vec2> poly) noexcept {
  const std::size_t n = poly.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % n];
    const Vec2 c = poly[(i + 2) % n];
    if (orient2d(a, b, c) <= 0) return false;
  }
  return true;
}

bool convex_polygon_contains_strict(std::span<const Vec2> poly, Vec2 p) noexcept {
  const std::size_t n = poly.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (orient2d(poly[i], poly[(i + 1) % n], p) <= 0) return false;
  }
  return true;
}

double polygon_perimeter(std::span<const Vec2> poly) noexcept {
  const std::size_t n = poly.size();
  if (n < 2) return 0.0;
  double len = 0.0;
  for (std::size_t i = 0; i < n; ++i) len += distance(poly[i], poly[(i + 1) % n]);
  return len;
}

double point_set_diameter(std::span<const Vec2> pts) noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      best = std::fmax(best, distance_sq(pts[i], pts[j]));
    }
  }
  return std::sqrt(best);
}

double min_pairwise_distance(std::span<const Vec2> pts) noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      best = std::fmin(best, distance_sq(pts[i], pts[j]));
    }
  }
  return std::isfinite(best) ? std::sqrt(best) : best;
}

}  // namespace lumen::geom
