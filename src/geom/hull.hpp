// lumen_geom: convex hulls and convex-position tests.
//
// Every robot's Compute step begins by classifying itself against the convex
// hull of its snapshot, and the global termination condition of Complete
// Visibility is "all N robots in strictly convex position". Hulls are
// computed with Andrew's monotone chain over exact orientation predicates
// and returned as INDEX lists into the caller's point span, so callers can
// map hull vertices back to robots without position lookups.
#pragma once

#include "geom/vec2.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace lumen::geom {

/// Convex hull of `points` (duplicates allowed), counter-clockwise, starting
/// from the lexicographically smallest point. STRICT vertices only: points on
/// the relative interior of hull edges are excluded. Returns indices into
/// `points`.
///   - 0 points -> {}
///   - 1 point  -> {0}
///   - all collinear -> the two extreme indices (degenerate "hull").
[[nodiscard]] std::vector<std::size_t> convex_hull_indices(
    std::span<const Vec2> points);

/// Position of a query point relative to the hull of a point set.
enum class HullPosition {
  kVertex,    ///< A strict corner of the hull.
  kEdge,      ///< On the boundary but not a corner (relative interior of an edge).
  kInterior,  ///< Strictly inside.
  kOutside,   ///< Strictly outside (possible only for points not in the set).
};

/// Classifies `query` against the convex hull given by CCW `hull` positions.
/// `hull` must be a valid CCW convex polygon (or a degenerate 1-2 point
/// hull, for which everything on the segment is kVertex/kEdge).
[[nodiscard]] HullPosition classify_against_hull(std::span<const Vec2> hull,
                                                 Vec2 query);

/// True iff EVERY point of the set is a strict vertex of the set's convex
/// hull — the paper's target configuration (Complete Visibility holds iff
/// this does, for distinct points).
[[nodiscard]] bool points_in_strictly_convex_position(std::span<const Vec2> points);

/// True iff all points lie on one straight line (trivially true for n <= 2).
[[nodiscard]] bool all_collinear(std::span<const Vec2> points);

/// True iff every point lies within rel_tol * L of one line, where L is the
/// anchor span of the set. Exact collinearity is destroyed by local-frame
/// similarity transforms (each coordinate rounds independently), so the
/// LINE-configuration classification of the algorithms uses this tolerant
/// test; rel_tol must sit above the transform noise (~1e-13) and below any
/// genuine 2-D extent the generators produce (>= 1e-6 relative).
[[nodiscard]] bool nearly_collinear(std::span<const Vec2> points,
                                    double rel_tol = 1e-9);

}  // namespace lumen::geom
