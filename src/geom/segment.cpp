#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>

namespace lumen::geom {

namespace {

/// For collinear segments: do their projections on the dominant axis share
/// more than a point?
bool collinear_overlap_positive(const Segment& s, const Segment& t) noexcept {
  const bool use_x = std::fabs(s.b.x - s.a.x) + std::fabs(t.b.x - t.a.x) >=
                     std::fabs(s.b.y - s.a.y) + std::fabs(t.b.y - t.a.y);
  const auto coord = [use_x](Vec2 p) { return use_x ? p.x : p.y; };
  const double s_lo = std::fmin(coord(s.a), coord(s.b));
  const double s_hi = std::fmax(coord(s.a), coord(s.b));
  const double t_lo = std::fmin(coord(t.a), coord(t.b));
  const double t_hi = std::fmax(coord(t.a), coord(t.b));
  return std::fmin(s_hi, t_hi) > std::fmax(s_lo, t_lo);
}

bool collinear_touching(const Segment& s, const Segment& t) noexcept {
  return on_segment_closed(s.a, s.b, t.a) || on_segment_closed(s.a, s.b, t.b) ||
         on_segment_closed(t.a, t.b, s.a) || on_segment_closed(t.a, t.b, s.b);
}

}  // namespace

SegmentRelation classify_intersection(const Segment& s, const Segment& t) noexcept {
  // Degenerate segments behave as points.
  if (s.degenerate() && t.degenerate()) {
    return s.a == t.a ? SegmentRelation::kTouching : SegmentRelation::kDisjoint;
  }
  if (s.degenerate()) {
    return on_segment_closed(t.a, t.b, s.a) ? SegmentRelation::kTouching
                                            : SegmentRelation::kDisjoint;
  }
  if (t.degenerate()) {
    return on_segment_closed(s.a, s.b, t.a) ? SegmentRelation::kTouching
                                            : SegmentRelation::kDisjoint;
  }

  const int o1 = orient2d(s.a, s.b, t.a);
  const int o2 = orient2d(s.a, s.b, t.b);
  const int o3 = orient2d(t.a, t.b, s.a);
  const int o4 = orient2d(t.a, t.b, s.b);

  if (o1 == 0 && o2 == 0) {  // All four points collinear.
    if (collinear_overlap_positive(s, t)) return SegmentRelation::kOverlapping;
    return collinear_touching(s, t) ? SegmentRelation::kTouching
                                    : SegmentRelation::kDisjoint;
  }

  const bool straddle_s = (o1 > 0 && o2 < 0) || (o1 < 0 && o2 > 0);
  const bool straddle_t = (o3 > 0 && o4 < 0) || (o3 < 0 && o4 > 0);
  if (straddle_s && straddle_t) return SegmentRelation::kProperCrossing;

  // An endpoint lying exactly on the other segment is a touch; a proper
  // T-junction (endpoint strictly inside the other segment) also counts as
  // touching at exactly one point.
  if ((o1 == 0 && on_segment_closed(s.a, s.b, t.a)) ||
      (o2 == 0 && on_segment_closed(s.a, s.b, t.b)) ||
      (o3 == 0 && on_segment_closed(t.a, t.b, s.a)) ||
      (o4 == 0 && on_segment_closed(t.a, t.b, s.b))) {
    return SegmentRelation::kTouching;
  }
  return SegmentRelation::kDisjoint;
}

bool segments_intersect(const Segment& s, const Segment& t) noexcept {
  return classify_intersection(s, t) != SegmentRelation::kDisjoint;
}

bool segments_cross(const Segment& s, const Segment& t) noexcept {
  switch (classify_intersection(s, t)) {
    case SegmentRelation::kProperCrossing:
    case SegmentRelation::kOverlapping:
      return true;
    case SegmentRelation::kTouching: {
      // Sharing a mere endpoint-to-endpoint contact is not a crossing; an
      // endpoint landing strictly inside the other segment is.
      const bool endpoint_contact = s.a == t.a || s.a == t.b || s.b == t.a || s.b == t.b;
      if (!endpoint_contact) return true;
      // Endpoint contact could still hide an interior touch of the OTHER
      // endpoints; check all four open-interior memberships.
      return on_segment_open(s.a, s.b, t.a) || on_segment_open(s.a, s.b, t.b) ||
             on_segment_open(t.a, t.b, s.a) || on_segment_open(t.a, t.b, s.b);
    }
    case SegmentRelation::kDisjoint:
      return false;
  }
  return false;
}

std::optional<Vec2> crossing_point(const Segment& s, const Segment& t) noexcept {
  if (classify_intersection(s, t) != SegmentRelation::kProperCrossing) return std::nullopt;
  const Vec2 r = s.b - s.a;
  const Vec2 q = t.b - t.a;
  const double denom = cross(r, q);
  if (denom == 0.0) return std::nullopt;  // Unreachable after classification.
  const double u = cross(t.a - s.a, q) / denom;
  return s.a + r * u;
}

double project_onto_segment(const Segment& s, Vec2 p) noexcept {
  const Vec2 d = s.b - s.a;
  const double len_sq = norm_sq(d);
  if (len_sq == 0.0) return 0.0;
  return std::clamp(dot(p - s.a, d) / len_sq, 0.0, 1.0);
}

Vec2 closest_point_on_segment(const Segment& s, Vec2 p) noexcept {
  return lerp(s.a, s.b, project_onto_segment(s, p));
}

double point_segment_distance(const Segment& s, Vec2 p) noexcept {
  return distance(p, closest_point_on_segment(s, p));
}

double segment_segment_distance(const Segment& s, const Segment& t) noexcept {
  if (segments_intersect(s, t)) return 0.0;
  double d = point_segment_distance(s, t.a);
  d = std::fmin(d, point_segment_distance(s, t.b));
  d = std::fmin(d, point_segment_distance(t, s.a));
  d = std::fmin(d, point_segment_distance(t, s.b));
  return d;
}

}  // namespace lumen::geom
