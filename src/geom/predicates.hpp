// lumen_geom: robust geometric predicates.
//
// Orientation of three points is THE decision the whole system hangs on:
// convex-hull corners, collinearity (hence obstructed visibility), and
// path-crossing classification all reduce to it. Plain double determinants
// misclassify near-degenerate triples, so orient2d() uses Shewchuk's
// adaptive scheme: a cheap filtered determinant whose error bound certifies
// the sign, falling back to exact floating-point expansion arithmetic when
// the filter cannot decide. The exact path is exercised directly by tests
// with adversarially collinear inputs.
#pragma once

#include "geom/vec2.hpp"

namespace lumen::geom {

/// Sign of the signed area of triangle (a, b, c):
///   +1  -> c is to the left of directed line a->b  (counter-clockwise)
///    0  -> a, b, c are exactly collinear
///   -1  -> c is to the right (clockwise)
/// Exact: the returned sign is the sign of the real-arithmetic determinant.
[[nodiscard]] int orient2d(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// The filtered determinant value (not just sign); exact fallback applied.
/// Useful where magnitude matters but only near-zero needs exactness.
[[nodiscard]] double orient2d_value(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// True iff a, b, c lie on one line (orient2d == 0).
[[nodiscard]] inline bool collinear(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return orient2d(a, b, c) == 0;
}

/// True iff p lies on the CLOSED segment [a, b] (collinear and within the
/// bounding box). Exact.
[[nodiscard]] bool on_segment_closed(Vec2 a, Vec2 b, Vec2 p) noexcept;

///// True iff p lies strictly between a and b on the OPEN segment (a, b):
/// collinear, inside the box, and distinct from both endpoints. Exact.
/// This is precisely the "blocking" relation of obstructed visibility.
[[nodiscard]] bool on_segment_open(Vec2 a, Vec2 b, Vec2 p) noexcept;

namespace detail {
/// Exact sign of (b-a) x (c-a) via expansion arithmetic. Exposed for tests.
[[nodiscard]] int orient2d_exact_sign(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// Machine half-ulp (2^-53) and Shewchuk's stage-A error coefficient —
/// shared by the out-of-line filter and the keyed inline one below.
inline constexpr double kEpsilon = 0x1.0p-53;
inline constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEpsilon) * kEpsilon;
}  // namespace detail

/// Inline variant of orient2d() — identical sign in every case (same
/// stage-A filter, same exact expansion fallback), but with the filter
/// expanded at the call site. Hot loops that issue millions of mostly
/// well-conditioned queries (the convex-hull chain, the visibility gates)
/// shed the out-of-line call this way; everything else should keep
/// calling orient2d().
[[nodiscard]] inline int orient2d_inline(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;
  double detsum = 0.0;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = -detleft - detright;
  } else {
    // detleft rounded to zero: defer to the exact stage (mirrors orient2d).
    return detail::orient2d_exact_sign(a, b, c);
  }
  const double errbound = detail::kCcwErrBoundA * detsum;
  if (det >= errbound || -det >= errbound) return det > 0.0 ? 1 : -1;
  return detail::orient2d_exact_sign(a, b, c);
}

/// Orientation sign of the triple (o, a, b) — identical in every case to
/// orient2d(o, a, b) — given the PRECOMPUTED rounded differences
/// da = a - o and db = b - o (the very values orient2d(a, b, o) forms
/// internally; the triple is a cyclic permutation, so the sign is shared).
/// Callers that compare many points around one origin hoist the
/// subtractions out of the comparator: the stage-A filter then needs only
/// two multiplications per call, and the exact expansion fallback on the
/// ORIGINAL coordinates keeps the result exact.
[[nodiscard]] inline int orient2d_around(Vec2 da, Vec2 db, Vec2 a, Vec2 b,
                                         Vec2 o) noexcept {
  const double detleft = da.x * db.y;
  const double detright = da.y * db.x;
  const double det = detleft - detright;
  double detsum = 0.0;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = -detleft - detright;
  } else {
    // detleft rounded to zero: defer to the exact stage (mirrors orient2d).
    return detail::orient2d_exact_sign(a, b, o);
  }
  const double errbound = detail::kCcwErrBoundA * detsum;
  if (det >= errbound || -det >= errbound) return det > 0.0 ? 1 : -1;
  return detail::orient2d_exact_sign(a, b, o);
}

}  // namespace lumen::geom
