// lumen_geom: incremental obstructed-visibility maintenance.
//
// The one-shot kernel (visible_from) rebuilds an observer's whole angular
// order every Look. Between two Looks of the same observer, though, only
// the robots that COMMITTED a position change since the last rebuild can
// have altered its angular neighborhood — everyone else's sort key (diff,
// dist2, pseudo-angle) is bit-for-bit unchanged. VisibilityCache exploits
// that: per observer it retains the exactly-sorted half-plane key arrays
// plus the emitted visible-id list, stamped with the world version at
// build time. On the next Look the dirty set is read off the world's
// write log suffix (O(#writes since), not O(N)):
//
//   * empty dirty set            -> replay the stored id list verbatim;
//   * small dirty set, observer
//     itself clean               -> REPAIR: delete the dirty robots' stale
//                                   keys, exact-insert their recomputed
//                                   keys (the arrays stay the unique
//                                   exactly-sorted sequence), re-emit;
//   * observer dirty / large set -> full rebuild.
//
// Bit-identity: every path yields exactly the sequence visible_from would
// produce on the same coordinate arrays. Replay returns a list produced by
// an identical emission over an identical world; repair reconstructs the
// unique exact-sorted key sequence (insertion uses the same strict total
// order as the sort) and runs the same emission. The property tests in
// tests/sim_incremental_visibility_test.cpp pin cache == naive oracle
// under random moves, crashes and noise on every scheduler.
//
// Deaths need no invalidation: a crash-stopped robot keeps its body (and
// thus keeps obstructing) at an unchanged position, so it never dirties
// anyone's neighborhood.
//
// Storage is budgeted: entries exist only for the observer prefix [0, cap)
// where cap is sized so retained keys+ids stay within `budget_bytes`
// (~40 bytes per robot per cached observer). Observers beyond the prefix
// fall through to the one-shot kernel — this is what keeps N = 65536
// rounds inside a fixed footprint instead of the ~2.6 MB/observer a full
// cache would need. In-flight movers (interpolated coordinates that never
// hit the write log) force the transient path: entries are neither stored
// nor repaired while anyone is mid-move.
//
// Concurrency: distinct observers touch distinct entries, and the world
// arrays plus write log are frozen during a Look batch, so the parallel
// SYNC fan-out may call visible_from() concurrently for distinct i. The
// hit/repair/rebuild counters are relaxed atomics.
#pragma once

#include "geom/visibility.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lumen::geom {

class VisibilityCache {
 public:
  /// Per-cached-observer storage estimate, bytes per robot: one AngularKey
  /// (32) plus one retained id (8).
  static constexpr std::size_t kBytesPerRobot = sizeof(AngularKey) + 8;

  /// Dirty sets larger than size/kRepairDivisor robots take the rebuild
  /// path: beyond that the exact re-insertions cost more than one radix
  /// presort of the whole half.
  static constexpr std::size_t kRepairDivisor = 8;

  VisibilityCache() = default;
  VisibilityCache(const VisibilityCache&) = delete;
  VisibilityCache& operator=(const VisibilityCache&) = delete;

  /// Rebinds to a swarm of n robots under a storage budget (0 disables
  /// caching entirely). Invalidates every entry — version stamps restart
  /// with each run — but keeps entry capacity, so reuse across engine
  /// resets (sim::LookArena) stays allocation-free in steady state.
  void reset(std::size_t n, std::size_t budget_bytes);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Observers below this index are cached; the rest always rebuild.
  [[nodiscard]] std::size_t cached_observers() const noexcept { return cap_; }

  /// Visible ids of observer i against the current world, bit-identical to
  /// geom::visible_from(xs, ys, i, ...). `write_log` is the world's full
  /// committed-write log (see sim::WorldState): the suffix past an entry's
  /// stored version IS its dirty set. `moving_count` > 0 signals that
  /// xs/ys contain interpolated in-flight positions (transient; bypasses
  /// storage).
  void visible_from(std::span<const double> xs, std::span<const double> ys,
                    std::size_t i, std::span<const std::uint32_t> write_log,
                    std::size_t moving_count, VisibilityScratch& scratch,
                    std::vector<std::size_t>& out);

  [[nodiscard]] std::uint64_t replays() const noexcept {
    return replays_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repairs() const noexcept {
    return repairs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rebuilds() const noexcept {
    return rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    bool valid = false;
    /// Admission counter: an entry is stored only on the observer's SECOND
    /// rebuild of a run. One-shot workloads (an observer that Looks once,
    /// e.g. a single-round bench or a converged robot's last Look) would
    /// otherwise pay the gather-and-copy of ~n keys for a reuse that never
    /// comes; recurring observers pay one extra plain rebuild and then
    /// replay/repair from the third Look on.
    std::uint8_t touches = 0;
    std::uint64_t version = 0;           ///< write_log length at build time.
    std::vector<AngularKey> upper;       ///< Exactly sorted, angle in [0, pi).
    std::vector<AngularKey> lower;       ///< Exactly sorted, angle in [pi, 2pi).
    std::vector<std::size_t> ids;        ///< Emission result at `version`.
  };

  /// Full rebuild for observer i; stores into `e` when storable (committed
  /// world, i within the cached prefix).
  void rebuild(std::span<const double> xs, std::span<const double> ys,
               std::size_t i, Entry* e, std::uint64_t version, bool storable,
               VisibilityScratch& scratch, std::vector<std::size_t>& out);

  std::size_t n_ = 0;
  std::size_t cap_ = 0;
  std::vector<Entry> entries_;
  mutable std::atomic<std::uint64_t> replays_{0};
  mutable std::atomic<std::uint64_t> repairs_{0};
  mutable std::atomic<std::uint64_t> rebuilds_{0};
};

}  // namespace lumen::geom
