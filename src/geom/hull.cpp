#include "geom/hull.hpp"

#include "geom/predicates.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lumen::geom {

std::vector<std::size_t> convex_hull_indices(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return points[i] < points[j];
  });
  // Drop exact duplicates (keep the first occurrence in sorted order).
  order.erase(std::unique(order.begin(), order.end(),
                          [&](std::size_t i, std::size_t j) {
                            return points[i] == points[j];
                          }),
              order.end());
  const std::size_t m = order.size();
  if (m <= 2) return order;

  // Check for full collinearity: monotone chain would return just the two
  // extremes anyway, but short-circuiting keeps the degenerate contract
  // explicit.
  bool degenerate = true;
  for (std::size_t i = 2; i < m; ++i) {
    if (orient2d(points[order[0]], points[order[1]], points[order[i]]) != 0) {
      degenerate = false;
      break;
    }
  }
  if (degenerate) return {order.front(), order.back()};

  std::vector<std::size_t> hull(2 * m);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t idx = 0; idx < m; ++idx) {
    const std::size_t i = order[idx];
    while (k >= 2 &&
           orient2d(points[hull[k - 2]], points[hull[k - 1]], points[i]) <= 0) {
      --k;
    }
    hull[k++] = i;
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t idx = m - 1; idx-- > 0;) {
    const std::size_t i = order[idx];
    while (k >= lower_size &&
           orient2d(points[hull[k - 2]], points[hull[k - 1]], points[i]) <= 0) {
      --k;
    }
    hull[k++] = i;
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

HullPosition classify_against_hull(std::span<const Vec2> hull, Vec2 query) {
  const std::size_t h = hull.size();
  if (h == 0) return HullPosition::kOutside;
  if (h == 1) return query == hull[0] ? HullPosition::kVertex : HullPosition::kOutside;
  if (h == 2) {
    if (query == hull[0] || query == hull[1]) return HullPosition::kVertex;
    return on_segment_open(hull[0], hull[1], query) ? HullPosition::kEdge
                                                    : HullPosition::kOutside;
  }
  bool on_boundary = false;
  for (std::size_t i = 0; i < h; ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % h];
    if (query == a) return HullPosition::kVertex;
    const int o = orient2d(a, b, query);
    if (o < 0) return HullPosition::kOutside;
    if (o == 0 && on_segment_closed(a, b, query)) on_boundary = true;
  }
  return on_boundary ? HullPosition::kEdge : HullPosition::kInterior;
}

bool points_in_strictly_convex_position(std::span<const Vec2> points) {
  if (points.size() <= 2) return true;
  if (all_collinear(points)) return false;
  const auto hull = convex_hull_indices(points);
  return hull.size() == points.size();
}

bool nearly_collinear(std::span<const Vec2> points, double rel_tol) {
  const std::size_t n = points.size();
  if (n <= 2) return true;
  // Anchor the line on the pair (p0, q) with q farthest from p0 — a
  // 2-approximation of the diameter, good enough for a tolerance test.
  std::size_t far_idx = 0;
  double far_sq = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double d = distance_sq(points[0], points[i]);
    if (d > far_sq) {
      far_sq = d;
      far_idx = i;
    }
  }
  if (far_sq == 0.0) return true;  // All coincident.
  const Vec2 a = points[0];
  const Vec2 b = points[far_idx];
  // |orient| = 2 * area = |ab| * dist(c, line ab); require dist <= tol*|ab|.
  const double threshold = rel_tol * far_sq;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(orient2d_value(a, b, points[i])) > threshold) return false;
  }
  return true;
}

bool all_collinear(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  if (n <= 2) return true;
  // Find two distinct anchor points, then test the rest against them.
  std::size_t second = 1;
  while (second < n && points[second] == points[0]) ++second;
  if (second == n) return true;  // All coincident.
  for (std::size_t i = second + 1; i < n; ++i) {
    if (orient2d(points[0], points[second], points[i]) != 0) return false;
  }
  return true;
}

}  // namespace lumen::geom
