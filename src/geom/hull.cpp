#include "geom/hull.hpp"

#include "geom/predicates.hpp"
#include "geom/simd.hpp"
#include "util/radix.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace lumen::geom {

namespace {

/// Monotone 64-bit image of a double coordinate: unsigned order of the key
/// equals numeric order of the value (sign bit remapped; -0.0 canonicalized
/// to +0.0 by the `+ 0.0` so the two zero encodings map to one key). The
/// image is EXACT — equal keys mean equal doubles — so a stable radix sort
/// by this key is already the exact coordinate order, with no approximate-
/// key tie runs to repair.
inline std::uint64_t coord_key64(double v) noexcept {
  const std::uint64_t u = std::bit_cast<std::uint64_t>(v + 0.0);
  return (u & 0x8000000000000000ull) != 0 ? ~u : (u | 0x8000000000000000ull);
}

/// Below this size the extreme-quad cull costs more than the chain work it
/// saves. Output-neutral: the cull never changes the hull, only its cost.
inline constexpr std::size_t kCullMin = 32;

/// Exact lexicographic (x, y, index) sort of the fringe records, where
/// record.key is coord_key64(x) and the y/index tie-breaks read the points.
/// One monotone value-bucket scatter (bucket = (x - min_x) * scale, so
/// bucket order equals key order and equal keys share a bucket) followed by
/// exact per-bucket comparison sorts of the tiny runs — the same shape as
/// util::sort_f32key_records, but with the double coordinate as the bucket
/// value and the full three-way comparator as the finish. Chaining two
/// 8-pass 64-bit LSD radix sorts here costs 16 histogram+scatter sweeps and
/// loses ~2x to this at realistic sizes; the bucketed form does one.
inline void sort_fringe_records(std::vector<util::Key64Record>& records,
                                std::vector<util::Key64Record>& tmp,
                                std::span<const Vec2> points, double min_x,
                                double max_x) {
  const std::size_t m = records.size();
  const auto exact_less = [&points](const util::Key64Record& a,
                                    const util::Key64Record& b) {
    if (a.key != b.key) return a.key < b.key;  // Exact x order.
    const Vec2 pa = points[a.slot];
    const Vec2 pb = points[b.slot];
    if (pa.y != pb.y) return pa.y < pb.y;
    return a.slot < b.slot;
  };
  if (m < util::kRadixMinRecords || !(max_x > min_x)) {
    // Tiny fringe, or every x equal (degenerate quad): compare-sort.
    std::sort(records.begin(), records.end(), exact_less);
    return;
  }
  const std::size_t nb =
      std::min<std::size_t>(std::bit_floor(m), std::size_t{1} << 13);
  const double scale = static_cast<double>(nb) / (max_x - min_x);
  const auto bucket_of = [&](const util::Key64Record& r) {
    const auto b = static_cast<std::size_t>(
        (points[r.slot].x - min_x) * scale);
    return b < nb ? b : nb - 1;
  };
  std::vector<std::size_t> cursors(nb + 1, 0);
  for (const util::Key64Record& r : records) ++cursors[bucket_of(r) + 1];
  for (std::size_t b = 1; b <= nb; ++b) cursors[b] += cursors[b - 1];
  tmp.resize(m);
  for (const util::Key64Record& r : records) tmp[cursors[bucket_of(r)]++] = r;
  std::size_t begin = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t end = cursors[b];  // Post-scatter: one past bucket b.
    if (end - begin > 1) {
      std::sort(tmp.begin() + static_cast<std::ptrdiff_t>(begin),
                tmp.begin() + static_cast<std::ptrdiff_t>(end), exact_less);
    }
    begin = end;
  }
  records.swap(tmp);
}

}  // namespace

std::vector<std::size_t> convex_hull_indices(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  // Exact lexicographic (x, y, index) sort: records carry the monotone
  // 64-bit image of x (so the primary comparison is one integer compare and
  // -0.0/+0.0 collapse), sort_fringe_records buckets by the x value and
  // finishes each tiny bucket with the exact (x, y, index) comparator. The
  // index tie-break makes the order — and hence the surviving duplicate
  // below — deterministic.
  std::vector<util::Key64Record> records;
  std::vector<util::Key64Record> tmp;
  records.reserve(n);
  double min_x = 0.0;
  double max_x = 0.0;
  if (n >= kCullMin) {
    // Akl–Toussaint interior cull: a point certifiably STRICTLY inside the
    // quadrilateral of the four coordinate-extreme points is strictly
    // inside the hull, so the monotone chain below could never emit it.
    // Dropping such points first shrinks both the sort and the chain to the
    // candidate fringe while leaving the output bit-identical — the
    // certify-only test (geom/simd.hpp: the batched stage-A filter) keeps
    // every point it cannot decide, and on fully collinear input
    // (degenerate quad) it certifies nothing, so the degenerate branch
    // still sees the complete sorted order.
    std::size_t iw = 0, ie = 0, is = 0, in = 0;
    for (std::size_t j = 1; j < n; ++j) {
      if (points[j].x < points[iw].x) iw = j;
      if (points[j].x > points[ie].x) ie = j;
      if (points[j].y < points[is].y) is = j;
      if (points[j].y > points[in].y) in = j;
    }
    // CCW corner order: west, south, east, north.
    const Vec2 quad[4] = {points[iw], points[is], points[ie], points[in]};
    std::vector<std::uint8_t> inside(n);
    simd::hull_cull_mask(points.data(), n, quad, inside.data());
    for (std::uint32_t j = 0; j < n; ++j) {
      if (inside[j] != 0) continue;
      records.push_back(util::Key64Record{coord_key64(points[j].x), j});
    }
    min_x = points[iw].x;
    max_x = points[ie].x;
  } else {
    for (std::uint32_t j = 0; j < n; ++j) {
      records.push_back(util::Key64Record{coord_key64(points[j].x), j});
    }
  }
  sort_fringe_records(records, tmp, points, min_x, max_x);
  std::vector<std::size_t> order;
  order.reserve(records.size());
  for (const util::Key64Record& r : records) {
    order.push_back(r.slot);
  }
  // Drop exact duplicates (keep the first occurrence in sorted order).
  order.erase(std::unique(order.begin(), order.end(),
                          [&](std::size_t i, std::size_t j) {
                            return points[i] == points[j];
                          }),
              order.end());
  const std::size_t m = order.size();
  if (m <= 2) return order;

  // Check for full collinearity: monotone chain would return just the two
  // extremes anyway, but short-circuiting keeps the degenerate contract
  // explicit.
  bool degenerate = true;
  for (std::size_t i = 2; i < m; ++i) {
    if (orient2d(points[order[0]], points[order[1]], points[order[i]]) != 0) {
      degenerate = false;
      break;
    }
  }
  if (degenerate) return {order.front(), order.back()};

  std::vector<std::size_t> hull(2 * m);
  std::size_t k = 0;
  // Lower hull. orient2d_inline keeps the stage-A filter in the loop.
  for (std::size_t idx = 0; idx < m; ++idx) {
    const std::size_t i = order[idx];
    while (k >= 2 && orient2d_inline(points[hull[k - 2]], points[hull[k - 1]],
                                     points[i]) <= 0) {
      --k;
    }
    hull[k++] = i;
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t idx = m - 1; idx-- > 0;) {
    const std::size_t i = order[idx];
    while (k >= lower_size &&
           orient2d_inline(points[hull[k - 2]], points[hull[k - 1]],
                           points[i]) <= 0) {
      --k;
    }
    hull[k++] = i;
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

HullPosition classify_against_hull(std::span<const Vec2> hull, Vec2 query) {
  const std::size_t h = hull.size();
  if (h == 0) return HullPosition::kOutside;
  if (h == 1) return query == hull[0] ? HullPosition::kVertex : HullPosition::kOutside;
  if (h == 2) {
    if (query == hull[0] || query == hull[1]) return HullPosition::kVertex;
    return on_segment_open(hull[0], hull[1], query) ? HullPosition::kEdge
                                                    : HullPosition::kOutside;
  }
  bool on_boundary = false;
  for (std::size_t i = 0; i < h; ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % h];
    if (query == a) return HullPosition::kVertex;
    const int o = orient2d(a, b, query);
    if (o < 0) return HullPosition::kOutside;
    if (o == 0 && on_segment_closed(a, b, query)) on_boundary = true;
  }
  return on_boundary ? HullPosition::kEdge : HullPosition::kInterior;
}

bool points_in_strictly_convex_position(std::span<const Vec2> points) {
  if (points.size() <= 2) return true;
  if (all_collinear(points)) return false;
  const auto hull = convex_hull_indices(points);
  return hull.size() == points.size();
}

bool nearly_collinear(std::span<const Vec2> points, double rel_tol) {
  const std::size_t n = points.size();
  if (n <= 2) return true;
  // Anchor the line on the pair (p0, q) with q farthest from p0 — a
  // 2-approximation of the diameter, good enough for a tolerance test.
  std::size_t far_idx = 0;
  double far_sq = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double d = distance_sq(points[0], points[i]);
    if (d > far_sq) {
      far_sq = d;
      far_idx = i;
    }
  }
  if (far_sq == 0.0) return true;  // All coincident.
  const Vec2 a = points[0];
  const Vec2 b = points[far_idx];
  // |orient| = 2 * area = |ab| * dist(c, line ab); require dist <= tol*|ab|.
  const double threshold = rel_tol * far_sq;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(orient2d_value(a, b, points[i])) > threshold) return false;
  }
  return true;
}

bool all_collinear(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  if (n <= 2) return true;
  // Find two distinct anchor points, then test the rest against them.
  std::size_t second = 1;
  while (second < n && points[second] == points[0]) ++second;
  if (second == n) return true;  // All coincident.
  for (std::size_t i = second + 1; i < n; ++i) {
    if (orient2d(points[0], points[second], points[i]) != 0) return false;
  }
  return true;
}

}  // namespace lumen::geom
