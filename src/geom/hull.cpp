#include "geom/hull.hpp"

#include "geom/predicates.hpp"
#include "util/radix.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace lumen::geom {

namespace {

/// Monotone 32-bit presort key for an x-coordinate: round to float
/// (round-to-nearest is monotone, so DISTINCT keys certify the double
/// order) and remap the sign bit so unsigned order matches numeric order.
/// Only runs of EQUAL keys can hide an exactly-ordered pair, so those runs
/// alone are re-sorted with the full (x, y, index) comparator.
inline std::uint32_t x_presort_key(double x) noexcept {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(static_cast<float>(x));
  return (u & 0x80000000u) != 0 ? ~u : (u | 0x80000000u);
}

/// True only when the stage-A filter CERTIFIES orient2d(a, b, c) > 0 (c
/// strictly left of a->b). No exact fallback: an uncertain sign returns
/// false, which the interior cull below treats as "keep the point" — sound,
/// because a false negative merely forgoes a discard.
inline bool certainly_left(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;
  if (!(det > 0.0)) return false;
  double detsum = 0.0;
  if (detleft > 0.0) {
    if (detright <= 0.0) return true;  // Opposite signs: det sign is exact.
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    detsum = -detleft - detright;  // det > 0 forces detright < detleft < 0.
  } else {
    return false;  // detleft rounded to zero: cannot certify.
  }
  return det >= detail::kCcwErrBoundA * detsum;
}

/// Below this size the extreme-quad cull costs more than the chain work it
/// saves. Output-neutral: the cull never changes the hull, only its cost.
inline constexpr std::size_t kCullMin = 32;

}  // namespace

std::vector<std::size_t> convex_hull_indices(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  // Lexicographic (x, y, index) sort, radix-presorted by a rounded x key.
  // The index tie-break makes the order — and hence the surviving
  // duplicate below — deterministic across library sort implementations.
  std::vector<std::uint64_t> records;
  std::vector<std::uint64_t> tmp;
  records.reserve(n);
  if (n >= kCullMin) {
    // Akl–Toussaint interior cull: a point certifiably STRICTLY inside the
    // quadrilateral of the four coordinate-extreme points is strictly
    // inside the hull, so the monotone chain below could never emit it.
    // Dropping such points first shrinks both the sort and the chain to the
    // candidate fringe while leaving the output bit-identical — the
    // certify-only test keeps every point the filter cannot decide, and on
    // fully collinear input (degenerate quad) it certifies nothing, so the
    // degenerate branch still sees the complete sorted order.
    std::size_t iw = 0, ie = 0, is = 0, in = 0;
    for (std::size_t j = 1; j < n; ++j) {
      if (points[j].x < points[iw].x) iw = j;
      if (points[j].x > points[ie].x) ie = j;
      if (points[j].y < points[is].y) is = j;
      if (points[j].y > points[in].y) in = j;
    }
    // CCW corner order: west, south, east, north.
    const Vec2 cw = points[iw];
    const Vec2 cs = points[is];
    const Vec2 ce = points[ie];
    const Vec2 cn = points[in];
    for (std::uint32_t j = 0; j < n; ++j) {
      const Vec2 p = points[j];
      if (certainly_left(cw, cs, p) && certainly_left(cs, ce, p) &&
          certainly_left(ce, cn, p) && certainly_left(cn, cw, p)) {
        continue;
      }
      records.push_back((std::uint64_t{x_presort_key(p.x)} << 32) | j);
    }
  } else {
    for (std::uint32_t j = 0; j < n; ++j) {
      records.push_back(
          (std::uint64_t{x_presort_key(points[j].x)} << 32) | j);
    }
  }
  const std::size_t kept = records.size();
  util::sort_key32_records(records, tmp);
  const auto exact_less = [&](std::uint64_t a, std::uint64_t b) {
    const Vec2 pa = points[static_cast<std::uint32_t>(a)];
    const Vec2 pb = points[static_cast<std::uint32_t>(b)];
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return static_cast<std::uint32_t>(a) < static_cast<std::uint32_t>(b);
  };
  const auto rec = [&](std::size_t k) {
    return records.begin() + static_cast<std::ptrdiff_t>(k);
  };
  std::size_t run_begin = 0;
  for (std::size_t k = 1; k < kept; ++k) {
    if ((records[k] >> 32) != (records[run_begin] >> 32)) {
      if (k - run_begin > 1) std::sort(rec(run_begin), rec(k), exact_less);
      run_begin = k;
    }
  }
  if (kept - run_begin > 1) {
    std::sort(rec(run_begin), records.end(), exact_less);
  }
  std::vector<std::size_t> order;
  order.reserve(kept);
  for (const std::uint64_t r : records) {
    order.push_back(static_cast<std::uint32_t>(r));
  }
  // Drop exact duplicates (keep the first occurrence in sorted order).
  order.erase(std::unique(order.begin(), order.end(),
                          [&](std::size_t i, std::size_t j) {
                            return points[i] == points[j];
                          }),
              order.end());
  const std::size_t m = order.size();
  if (m <= 2) return order;

  // Check for full collinearity: monotone chain would return just the two
  // extremes anyway, but short-circuiting keeps the degenerate contract
  // explicit.
  bool degenerate = true;
  for (std::size_t i = 2; i < m; ++i) {
    if (orient2d(points[order[0]], points[order[1]], points[order[i]]) != 0) {
      degenerate = false;
      break;
    }
  }
  if (degenerate) return {order.front(), order.back()};

  std::vector<std::size_t> hull(2 * m);
  std::size_t k = 0;
  // Lower hull. orient2d_inline keeps the stage-A filter in the loop.
  for (std::size_t idx = 0; idx < m; ++idx) {
    const std::size_t i = order[idx];
    while (k >= 2 && orient2d_inline(points[hull[k - 2]], points[hull[k - 1]],
                                     points[i]) <= 0) {
      --k;
    }
    hull[k++] = i;
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t idx = m - 1; idx-- > 0;) {
    const std::size_t i = order[idx];
    while (k >= lower_size &&
           orient2d_inline(points[hull[k - 2]], points[hull[k - 1]],
                           points[i]) <= 0) {
      --k;
    }
    hull[k++] = i;
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

HullPosition classify_against_hull(std::span<const Vec2> hull, Vec2 query) {
  const std::size_t h = hull.size();
  if (h == 0) return HullPosition::kOutside;
  if (h == 1) return query == hull[0] ? HullPosition::kVertex : HullPosition::kOutside;
  if (h == 2) {
    if (query == hull[0] || query == hull[1]) return HullPosition::kVertex;
    return on_segment_open(hull[0], hull[1], query) ? HullPosition::kEdge
                                                    : HullPosition::kOutside;
  }
  bool on_boundary = false;
  for (std::size_t i = 0; i < h; ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % h];
    if (query == a) return HullPosition::kVertex;
    const int o = orient2d(a, b, query);
    if (o < 0) return HullPosition::kOutside;
    if (o == 0 && on_segment_closed(a, b, query)) on_boundary = true;
  }
  return on_boundary ? HullPosition::kEdge : HullPosition::kInterior;
}

bool points_in_strictly_convex_position(std::span<const Vec2> points) {
  if (points.size() <= 2) return true;
  if (all_collinear(points)) return false;
  const auto hull = convex_hull_indices(points);
  return hull.size() == points.size();
}

bool nearly_collinear(std::span<const Vec2> points, double rel_tol) {
  const std::size_t n = points.size();
  if (n <= 2) return true;
  // Anchor the line on the pair (p0, q) with q farthest from p0 — a
  // 2-approximation of the diameter, good enough for a tolerance test.
  std::size_t far_idx = 0;
  double far_sq = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double d = distance_sq(points[0], points[i]);
    if (d > far_sq) {
      far_sq = d;
      far_idx = i;
    }
  }
  if (far_sq == 0.0) return true;  // All coincident.
  const Vec2 a = points[0];
  const Vec2 b = points[far_idx];
  // |orient| = 2 * area = |ab| * dist(c, line ab); require dist <= tol*|ab|.
  const double threshold = rel_tol * far_sq;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(orient2d_value(a, b, points[i])) > threshold) return false;
  }
  return true;
}

bool all_collinear(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  if (n <= 2) return true;
  // Find two distinct anchor points, then test the rest against them.
  std::size_t second = 1;
  while (second < n && points[second] == points[0]) ++second;
  if (second == n) return true;  // All coincident.
  for (std::size_t i = second + 1; i < n; ++i) {
    if (orient2d(points[0], points[second], points[i]) != 0) return false;
  }
  return true;
}

}  // namespace lumen::geom
