// lumen_geom: internals of the obstructed-visibility kernel.
//
// Shared by visibility.cpp (the one-shot per-observer sweep) and
// visibility_cache.cpp (the incremental per-observer maintenance): the key
// build, the two-tier exact sort (float diamond-angle radix presort +
// exact fixup of suspect chains) and the equal-direction run emission.
// Everything here preserves the bit-identity contract documented in
// visibility.hpp — the sorted sequence is the unique exact angular order,
// and emission applies the exact on_segment_open blocking relation — so
// any composition of these pieces over the same point set yields the same
// visible-id sequence.
#pragma once

#include "geom/predicates.hpp"
#include "geom/simd.hpp"
#include "geom/visibility.hpp"
#include "util/radix.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace lumen::geom::detail {

/// Half-plane index for the exact angular order around an origin:
/// 0 for directions with angle in [0, pi) — dy > 0, or dy == 0 && dx > 0 —
/// 1 otherwise. Opposite directions always land in different halves.
inline std::uint8_t half_of(Vec2 d) noexcept {
  if (d.y > 0.0) return 0;
  if (d.y < 0.0) return 1;
  return d.x > 0.0 ? 0 : 1;
}

/// Diamond pseudo-angle of an upper-half direction (d.y > 0, or d.y == +-0
/// with d.x > 0), monotone in the true angle over [0, pi): 0 on the +x
/// ray, 1 on the +y ray, -> 2 approaching the -x ray. Lower-half callers
/// pass -d (negation preserves the within-half orient2d order). Total
/// uncertainty vs the exact angle order is bounded by the f32 rounding
/// (half-ulp at t < 2 is ~1.2e-7; the double-precision divide contributes
/// ~1e-16) — far below kSuspectEps, so keys further apart than
/// kSuspectEps are GUARANTEED exactly ordered and only closer pairs need
/// the exact comparator.
inline float diamond_key(Vec2 d) noexcept {
  const double t =
      d.x >= 0.0 ? d.y / (d.x + d.y) : 1.0 + (-d.x) / (d.y - d.x);
  // + 0.0f canonicalizes a -0.0 quotient (possible when d.y is a negative
  // zero) so the bit-pattern radix order matches numeric order.
  return static_cast<float>(t) + 0.0f;
}

/// The angular-sort key of point j seen from `o` (d = p - o, nonzero).
inline AngularKey make_key(Vec2 d, std::size_t j) noexcept {
  const float akey =
      half_of(d) == 0 ? diamond_key(d) : diamond_key(Vec2{-d.x, -d.y});
  return AngularKey{d, norm_sq(d), akey, static_cast<std::uint32_t>(j)};
}

/// Pseudo-angle separation below which two keys' exact order is not
/// certified by the float presort. ~40x the worst-case key uncertainty.
inline constexpr float kSuspectEps = 1e-5f;

/// Minimum observer count before compute_visibility fans out: below this
/// the pool's task handshake costs more than the sweep itself.
inline constexpr std::size_t kMinParallelObservers = 32;

inline std::uint32_t slot_of(std::uint64_t rec) noexcept {
  return static_cast<std::uint32_t>(rec);
}

/// The float pseudo-angle a presort record was built from, recovered from
/// its high 32 bits — EXACTLY keys[slot_of(rec)].akey, bit for bit, without
/// the random gather into the key array. The rank scans in sort_records and
/// emit_half_records only need the akey, so reading it out of the already-
/// resident record halves their cache traffic.
inline float akey_of(std::uint64_t rec) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(rec >> 32));
}

/// The exact strict total order on keys within one half-plane: orientation
/// around `o` (via the precomputed diffs), then squared distance, then
/// index. Identical to the comparator the direct exact sort would use.
template <class PtFn>
[[nodiscard]] inline bool exact_key_less(const PtFn& pt, Vec2 o,
                                         const AngularKey& a,
                                         const AngularKey& b) noexcept {
  const int orientation =
      orient2d_around(a.diff, b.diff, pt(a.index), pt(b.index), o);
  if (orientation != 0) return orientation > 0;
  if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
  return a.index < b.index;  // Full ties: deterministic order.
}

/// Emits the visible members of one equal-direction run [b, e): the exact
/// nearest point plus everything coincident with it. A point strictly
/// inside the open segment (o, target) lies on the same ray from o, so it
/// belongs to the same run — which makes this emission exactly the naive
/// blocking relation, and therefore symmetric (set_half relies on that).
/// The rounded dist2 sort key only pre-orders the run; the nearest is
/// re-derived with the exact on_segment_open predicate, so even adversarial
/// dist2 rounding ties cannot pick the wrong survivor. `key_at(k)` resolves
/// rank k to its key (indirect through radix records, or contiguous).
template <class PtFn, class KeyAt>
void emit_run(const PtFn& pt, Vec2 o, const KeyAt& key_at, std::size_t b,
              std::size_t e, std::vector<std::size_t>& out) {
  if (e - b == 1) {
    out.push_back(key_at(b).index);
    return;
  }
  std::size_t lead = b;
  for (std::size_t m = b + 1; m < e; ++m) {
    if (on_segment_open(o, pt(key_at(lead).index), pt(key_at(m).index))) {
      lead = m;
    }
  }
  const Vec2 nearest = pt(key_at(lead).index);
  for (std::size_t m = b; m < e; ++m) {
    const std::size_t j = key_at(m).index;
    if (pt(j) == nearest) out.push_back(j);
  }
}

/// Splits ranks [0, m) into equal-direction runs and emits each. An akey
/// gap above kSuspectEps certifies a direction change without touching the
/// predicate; only near-ties pay for orient2d_around. (Within a fixed-up
/// suspect chain akeys may dip non-monotone by up to the key uncertainty —
/// a negative gap simply takes the exact branch, which is always sound.)
template <class PtFn, class KeyAt>
void emit_half(const PtFn& pt, Vec2 o, const KeyAt& key_at, std::size_t m,
               std::vector<std::size_t>& out) {
  if (m == 0) return;
  std::size_t run_begin = 0;
  const AngularKey* prev_key = &key_at(0);
  for (std::size_t k = 1; k < m; ++k) {
    const AngularKey& cur_key = key_at(k);
    const bool boundary =
        (cur_key.akey - prev_key->akey > kSuspectEps) ||
        orient2d_around(prev_key->diff, cur_key.diff, pt(prev_key->index),
                        pt(cur_key.index), o) != 0;
    if (boundary) {
      emit_run(pt, o, key_at, run_begin, k, out);
      run_begin = k;
    }
    prev_key = &cur_key;
  }
  emit_run(pt, o, key_at, run_begin, m, out);
}

/// emit_half over exact-sorted records: identical run splitting and
/// emission, but the akey-gap certificate reads the records (akey_of)
/// instead of gathering each ranked key — the key array is only touched at
/// suspect boundaries (orient2d operands) and for the emitted points
/// themselves. Same boundaries, same runs, same output as emit_half: the
/// record akeys are bit-equal to the gathered ones.
template <class PtFn>
void emit_half_records(const PtFn& pt, Vec2 o,
                       const std::vector<AngularKey>& keys,
                       const std::vector<std::uint64_t>& order,
                       std::vector<std::size_t>& out) {
  const std::size_t m = order.size();
  if (m == 0) return;
  const auto key_at = [&](std::size_t k) -> const AngularKey& {
    return keys[slot_of(order[k])];
  };
  std::size_t run_begin = 0;
  float prev = akey_of(order[0]);
  for (std::size_t k = 1; k < m; ++k) {
    const float cur = akey_of(order[k]);
    const bool boundary =
        (cur - prev > kSuspectEps) ||
        orient2d_around(key_at(k - 1).diff, key_at(k).diff,
                        pt(key_at(k - 1).index), pt(key_at(k).index), o) != 0;
    if (boundary) {
      emit_run(pt, o, key_at, run_begin, k, out);
      run_begin = k;
    }
    prev = cur;
  }
  emit_run(pt, o, key_at, run_begin, m, out);
}

/// Exact CCW sort of one half-plane's keys over PREBUILT (akey << 32 |
/// slot) records: radix-presort by float pseudo-angle (ties fall back to
/// insertion = index order), then exact-sort every maximal chain of keys
/// whose consecutive presorted akeys are within kSuspectEps. Keys in
/// different chains are separated by > kSuspectEps, which certifies their
/// exact order (see diamond_key), so per-chain exact sorting yields the
/// one globally exact-sorted sequence — the same unique permutation a full
/// exact std::sort would produce. Within one half no two directions are
/// opposite, so orient2d alone orders them; the keyed predicate returns
/// exactly orient2d(o, pts[a], pts[b]) (see orient2d_around), making the
/// order bit-identical to the direct formulation.
///
/// The records come either from sort_half below (the AoS path, which
/// gathers them out of the keys) or fused out of the batched SoA key build
/// (geom/simd.hpp), which skips that strided gather.
template <class PtFn>
void sort_records(const PtFn& pt, Vec2 o, const std::vector<AngularKey>& keys,
                  std::vector<std::uint64_t>& order,
                  std::vector<std::uint64_t>& tmp) {
  const std::size_t m = order.size();
  if (m == 0) return;
  // The akeys are diamond pseudo-angles: finite floats in [0, 2] (2.0 only
  // via quotient rounding at the half boundary), which is exactly the
  // precondition of the value-bucketed sort — one scatter instead of four
  // radix passes, with the float->bucket mapping batched per SIMD level.
  simd::sort_angular_records(order, tmp, 2.0f);

  const auto exact_less = [&](std::uint64_t ra, std::uint64_t rb) {
    return exact_key_less(pt, o, keys[slot_of(ra)], keys[slot_of(rb)]);
  };
  // Suspect-chain fixup. The presorted akeys are ascending, so chains are
  // found with one forward scan reading akeys straight out of the records
  // (akey_of — no gather); `prev` is always read before the chain ending at
  // that position is re-sorted, so the scan sees presort values.
  std::size_t chain_begin = 0;
  float prev = akey_of(order[0]);
  const auto ord = [&](std::size_t k) {
    return order.begin() + static_cast<std::ptrdiff_t>(k);
  };
  for (std::size_t k = 1; k < m; ++k) {
    const float cur = akey_of(order[k]);
    if (cur - prev > kSuspectEps) {
      if (k - chain_begin > 1) std::sort(ord(chain_begin), ord(k), exact_less);
      chain_begin = k;
    }
    prev = cur;
  }
  if (m - chain_begin > 1) std::sort(ord(chain_begin), order.end(), exact_less);
}

/// Record build + exact sort for one half: fills scratch.order with the
/// presort records gathered from the keys, then delegates to sort_records.
template <class PtFn>
void sort_half(const PtFn& pt, Vec2 o, const std::vector<AngularKey>& keys,
               VisibilityScratch& scratch) {
  const std::size_t m = keys.size();
  std::vector<std::uint64_t>& order = scratch.order;
  order.clear();
  if (m == 0) return;
  order.reserve(m);
  for (std::uint32_t s = 0; s < m; ++s) {
    order.push_back(
        (std::uint64_t{std::bit_cast<std::uint32_t>(keys[s].akey)} << 32) | s);
  }
  sort_records(pt, o, keys, order, scratch.order_tmp);
}

/// Sort + emit for one half, reading keys through the order indirection
/// (the one-shot AoS path — emission scans the records, same as the SoA
/// path below).
template <class PtFn>
void sort_and_dedup_half(const PtFn& pt, Vec2 o,
                         const std::vector<AngularKey>& keys,
                         VisibilityScratch& scratch,
                         std::vector<std::size_t>& out) {
  if (keys.empty()) return;
  sort_half(pt, o, keys, scratch);
  emit_half_records(pt, o, keys, scratch.order, out);
}

/// Builds the per-observer sort keys in one pass: every subtraction,
/// half-plane classification, pseudo-angle and squared norm the presort,
/// comparator and dedup pass will need, computed exactly once per point
/// and partitioned by half-plane. Coincident points are skipped (they
/// never see each other; collisions are flagged elsewhere).
template <class PtFn>
void build_keys(const PtFn& pt, std::size_t n, std::size_t i, Vec2 o,
                std::vector<AngularKey>& upper,
                std::vector<AngularKey>& lower) {
  upper.clear();
  lower.clear();
  // Split estimate: the two halves partition the n-1 candidates, so
  // reserving n per half would hold 2x the points in memory forever (cold
  // cost ~64 bytes/point of dead capacity). A lopsided split grows one half
  // once more; steady-state reuse keeps whatever capacity that settled at.
  // The SoA batch path (geom/simd.hpp) sizes exactly via a counting pass.
  const std::size_t est = n / 2 + 8;
  upper.reserve(est);
  lower.reserve(est);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const Vec2 p = pt(j);
    if (p == o) continue;
    const Vec2 d = p - o;
    if (half_of(d) == 0) {
      upper.push_back(AngularKey{d, norm_sq(d), diamond_key(d),
                                 static_cast<std::uint32_t>(j)});
    } else {
      lower.push_back(AngularKey{d, norm_sq(d), diamond_key(Vec2{-d.x, -d.y}),
                                 static_cast<std::uint32_t>(j)});
    }
  }
}

/// Shared kernel over an arbitrary point accessor pt(j) -> Vec2. The AoS
/// and SoA entry points instantiate it with a span lookup and a split-
/// array gather respectively; everything downstream of the key build is
/// layout-independent.
template <class PtFn>
void visible_from_impl(const PtFn& pt, std::size_t n, std::size_t i,
                       VisibilityScratch& scratch,
                       std::vector<std::size_t>& out) {
  const Vec2 o = pt(i);
  build_keys(pt, n, i, o, scratch.upper, scratch.lower);
  out.clear();
  out.reserve(scratch.upper.size() + scratch.lower.size());
  sort_and_dedup_half(pt, o, scratch.upper, scratch, out);
  sort_and_dedup_half(pt, o, scratch.lower, scratch, out);
}

/// Sort + emit for one half whose presort records were PREBUILT by the
/// batched SoA key build; `order` is that half's record vector
/// (scratch.upper_order / lower_order), exact-sorted in place.
template <class PtFn>
void sort_and_dedup_half_records(const PtFn& pt, Vec2 o,
                                 const std::vector<AngularKey>& keys,
                                 std::vector<std::uint64_t>& order,
                                 std::vector<std::uint64_t>& tmp,
                                 std::vector<std::size_t>& out) {
  if (keys.empty()) return;
  sort_records(pt, o, keys, order, tmp);
  emit_half_records(pt, o, keys, order, out);
}

/// The SoA one-shot sweep: the runtime-dispatched batch key build
/// (geom/simd.hpp) fills keys AND presort records in one pass over the
/// split coordinate arrays; sorting and emission are shared with the AoS
/// path. Output bit-identical to visible_from_impl over
/// pt(j) = {xs[j], ys[j]} — the batch kernels reproduce build_keys byte
/// for byte at every dispatch level.
inline void visible_from_soa_impl(const double* xs, const double* ys,
                                  std::size_t n, std::size_t i,
                                  VisibilityScratch& scratch,
                                  std::vector<std::size_t>& out) {
  const Vec2 o{xs[i], ys[i]};
  simd::build_keys_soa(xs, ys, n, i, o, scratch);
  const auto pt = [xs, ys](std::size_t j) noexcept {
    return Vec2{xs[j], ys[j]};
  };
  out.clear();
  out.reserve(scratch.upper.size() + scratch.lower.size());
  sort_and_dedup_half_records(pt, o, scratch.upper, scratch.upper_order,
                              scratch.order_tmp, out);
  sort_and_dedup_half_records(pt, o, scratch.lower, scratch.lower_order,
                              scratch.order_tmp, out);
}

}  // namespace lumen::geom::detail
