#include "geom/visibility.hpp"

#include "geom/predicates.hpp"

#include <algorithm>
#include <numeric>

namespace lumen::geom {

std::size_t VisibilityGraph::edge_count() const noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (sees(i, j)) ++c;
    }
  }
  return c;
}

std::size_t VisibilityGraph::degree(std::size_t i) const noexcept {
  std::size_t c = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != i && sees(i, j)) ++c;
  }
  return c;
}

bool VisibilityGraph::complete() const noexcept {
  return edge_count() == n_ * (n_ - 1) / 2;
}

namespace {

/// Half-plane index for the exact angular order around an origin:
/// 0 for directions with angle in [0, pi) — dy > 0, or dy == 0 && dx > 0 —
/// 1 otherwise. Opposite directions always land in different halves.
inline int half_of(Vec2 d) noexcept {
  if (d.y > 0.0) return 0;
  if (d.y < 0.0) return 1;
  return d.x > 0.0 ? 0 : 1;
}

}  // namespace

std::vector<std::size_t> visible_from(std::span<const Vec2> pts, std::size_t i) {
  VisibilityScratch scratch;
  std::vector<std::size_t> visible;
  visible_from(pts, i, scratch, visible);
  return visible;
}

void visible_from(std::span<const Vec2> pts, std::size_t i,
                  VisibilityScratch& scratch, std::vector<std::size_t>& out) {
  const Vec2 o = pts[i];
  std::vector<std::size_t>& others = scratch.order;
  others.clear();
  others.reserve(pts.size());
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (j != i && pts[j] != o) others.push_back(j);
  }
  // Exact CCW angular sort around o; ties (same ray) by distance.
  std::sort(others.begin(), others.end(), [&](std::size_t a, std::size_t b) {
    const Vec2 da = pts[a] - o;
    const Vec2 db = pts[b] - o;
    const int ha = half_of(da), hb = half_of(db);
    if (ha != hb) return ha < hb;
    const int orientation = orient2d(o, pts[a], pts[b]);
    if (orientation != 0) return orientation > 0;
    return norm_sq(da) < norm_sq(db);
  });
  // Keep only the first (nearest) of each equal-direction run.
  out.clear();
  out.reserve(others.size());
  for (std::size_t k = 0; k < others.size(); ++k) {
    if (k > 0) {
      const std::size_t prev = others[k - 1];
      const std::size_t cur = others[k];
      const bool same_ray = half_of(pts[prev] - o) == half_of(pts[cur] - o) &&
                            orient2d(o, pts[prev], pts[cur]) == 0;
      if (same_ray) continue;
    }
    out.push_back(others[k]);
  }
}

VisibilityGraph compute_visibility(std::span<const Vec2> pts) {
  VisibilityGraph g(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (const std::size_t j : visible_from(pts, i)) g.set(i, j);
  }
  return g;
}

bool visible_naive(std::span<const Vec2> pts, std::size_t i, std::size_t j) {
  if (i == j || pts[i] == pts[j]) return false;
  for (std::size_t k = 0; k < pts.size(); ++k) {
    if (k == i || k == j) continue;
    if (on_segment_open(pts[i], pts[j], pts[k])) return false;
  }
  return true;
}

VisibilityGraph compute_visibility_naive(std::span<const Vec2> pts) {
  VisibilityGraph g(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (visible_naive(pts, i, j)) g.set(i, j);
    }
  }
  return g;
}

bool complete_visibility(std::span<const Vec2> pts) {
  const std::size_t n = pts.size();
  if (n <= 1) return true;
  // Distinctness first: coincident robots are collisions, never "visible".
  std::vector<Vec2> sorted(pts.begin(), pts.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
  return compute_visibility(pts).complete();
}

}  // namespace lumen::geom
