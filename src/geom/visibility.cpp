#include "geom/visibility.hpp"

#include "geom/predicates.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <bit>

namespace lumen::geom {

std::size_t VisibilityGraph::edge_count() const noexcept {
  // Upper-triangle popcount: row i contributes its bits j > i, so the count
  // is exact whether or not the lower triangle has been mirrored yet.
  std::size_t c = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* row = bits_.data() + i * words_;
    const std::size_t first = (i + 1) >> 6;
    const std::size_t shift = (i + 1) & 63;
    for (std::size_t w = first; w < words_; ++w) {
      std::uint64_t word = row[w];
      if (w == first && shift != 0) {
        word &= ~((std::uint64_t{1} << shift) - 1);
      }
      c += static_cast<std::size_t>(std::popcount(word));
    }
  }
  return c;
}

std::size_t VisibilityGraph::degree(std::size_t i) const noexcept {
  std::size_t c = 0;
  const std::uint64_t* row = bits_.data() + i * words_;
  for (std::size_t w = 0; w < words_; ++w) {
    c += static_cast<std::size_t>(std::popcount(row[w]));
  }
  return c;
}

bool VisibilityGraph::complete() const noexcept {
  if (n_ <= 1) return true;
  // Row i must be all-ones over the first n_ bits except bit i itself;
  // bail out on the first block that misses a pair.
  const std::uint64_t last_mask = ((n_ & 63) == 0)
                                      ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << (n_ & 63)) - 1;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* row = bits_.data() + i * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t expected = (w + 1 == words_) ? last_mask : ~std::uint64_t{0};
      if (w == (i >> 6)) expected &= ~(std::uint64_t{1} << (i & 63));
      if (row[w] != expected) return false;
    }
  }
  return true;
}

namespace {

/// Half-plane index for the exact angular order around an origin:
/// 0 for directions with angle in [0, pi) — dy > 0, or dy == 0 && dx > 0 —
/// 1 otherwise. Opposite directions always land in different halves.
inline std::uint8_t half_of(Vec2 d) noexcept {
  if (d.y > 0.0) return 0;
  if (d.y < 0.0) return 1;
  return d.x > 0.0 ? 0 : 1;
}

/// Minimum observer count before compute_visibility fans out: below this
/// the pool's task handshake costs more than the sweep itself.
constexpr std::size_t kMinParallelObservers = 32;

}  // namespace

std::vector<std::size_t> visible_from(std::span<const Vec2> pts, std::size_t i) {
  VisibilityScratch scratch;
  std::vector<std::size_t> visible;
  visible_from(pts, i, scratch, visible);
  return visible;
}

namespace {

/// Emits the visible members of one equal-direction run [b, e): the exact
/// nearest point plus everything coincident with it. A point strictly
/// inside the open segment (o, target) lies on the same ray from o, so it
/// belongs to the same run — which makes this emission exactly the naive
/// blocking relation, and therefore symmetric (set_half relies on that).
/// The rounded dist2 sort key only pre-orders the run; the nearest is
/// re-derived with the exact on_segment_open predicate, so even adversarial
/// dist2 rounding ties cannot pick the wrong survivor.
void emit_run(std::span<const Vec2> pts, Vec2 o,
              std::span<const AngularKey> keys, std::size_t b, std::size_t e,
              std::vector<std::size_t>& out) {
  if (e - b == 1) {
    out.push_back(keys[b].index);
    return;
  }
  std::size_t lead = b;
  for (std::size_t m = b + 1; m < e; ++m) {
    if (on_segment_open(o, pts[keys[lead].index], pts[keys[m].index])) {
      lead = m;
    }
  }
  const Vec2 nearest = pts[keys[lead].index];
  for (std::size_t m = b; m < e; ++m) {
    if (pts[keys[m].index] == nearest) out.push_back(keys[m].index);
  }
}

/// Exact CCW sort of one half-plane's keys, then append each
/// equal-direction run's visible members to `out`. Within one half no two
/// directions are opposite, so orient2d alone orders them; the keyed
/// predicate returns exactly orient2d(o, pts[a], pts[b]) (see
/// orient2d_around), making the order bit-identical to the direct
/// formulation. Runs never span the half-plane boundary (the halves hold
/// no opposite or equal directions across each other), so per-half runs
/// are complete.
void sort_and_dedup_half(std::span<const Vec2> pts, Vec2 o,
                         std::vector<AngularKey>& keys,
                         std::vector<std::size_t>& out) {
  std::sort(keys.begin(), keys.end(),
            [&](const AngularKey& a, const AngularKey& b) {
              const int orientation = orient2d_around(
                  a.diff, b.diff, pts[a.index], pts[b.index], o);
              if (orientation != 0) return orientation > 0;
              if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
              return a.index < b.index;  // Full ties: deterministic order.
            });
  std::size_t run_begin = 0;
  for (std::size_t k = 1; k < keys.size(); ++k) {
    if (orient2d_around(keys[k - 1].diff, keys[k].diff,
                        pts[keys[k - 1].index], pts[keys[k].index], o) != 0) {
      emit_run(pts, o, keys, run_begin, k, out);
      run_begin = k;
    }
  }
  if (!keys.empty()) emit_run(pts, o, keys, run_begin, keys.size(), out);
}

}  // namespace

void visible_from(std::span<const Vec2> pts, std::size_t i,
                  VisibilityScratch& scratch, std::vector<std::size_t>& out) {
  const Vec2 o = pts[i];
  const std::size_t n = pts.size();
  // Build the sort keys in one pass: every subtraction, half-plane
  // classification and squared norm the comparator and dedup pass will
  // need, computed exactly once per point and partitioned by half-plane.
  std::vector<AngularKey>& upper = scratch.upper;
  std::vector<AngularKey>& lower = scratch.lower;
  upper.clear();
  lower.clear();
  upper.reserve(n);
  lower.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i || pts[j] == o) continue;
    const Vec2 d = pts[j] - o;
    const AngularKey key{d, norm_sq(d), static_cast<std::uint32_t>(j)};
    if (half_of(d) == 0) {
      upper.push_back(key);
    } else {
      lower.push_back(key);
    }
  }
  out.clear();
  out.reserve(upper.size() + lower.size());
  sort_and_dedup_half(pts, o, upper, out);
  sort_and_dedup_half(pts, o, lower, out);
}

VisibilityGraph compute_visibility(std::span<const Vec2> pts,
                                   util::ThreadPool* pool) {
  const std::size_t n = pts.size();
  VisibilityGraph g(n);
  if (pool != nullptr && n >= kMinParallelObservers) {
    // Every observer writes only its own row; the per-observer relation is
    // exactly the (symmetric) naive blocking relation — see emit_run — so
    // the mirrored bits arrive from the mirrored sweeps and the result is
    // bit-identical to the serial fill for any pool size.
    struct ObserverScratch {
      VisibilityScratch scratch;
      std::vector<std::size_t> out;
    };
    std::vector<ObserverScratch> slots(pool->slot_count());
    pool->parallel_for_slots(
        n,
        [&](std::size_t slot, std::size_t i) {
          ObserverScratch& s = slots[slot];
          visible_from(pts, i, s.scratch, s.out);
          for (const std::size_t j : s.out) g.set_half(i, j);
        },
        /*grain=*/4);
    return g;
  }
  VisibilityScratch scratch;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    visible_from(pts, i, scratch, out);
    for (const std::size_t j : out) g.set_half(i, j);
  }
  return g;
}

bool visible_naive(std::span<const Vec2> pts, std::size_t i, std::size_t j) {
  if (i == j || pts[i] == pts[j]) return false;
  for (std::size_t k = 0; k < pts.size(); ++k) {
    if (k == i || k == j) continue;
    if (on_segment_open(pts[i], pts[j], pts[k])) return false;
  }
  return true;
}

VisibilityGraph compute_visibility_naive(std::span<const Vec2> pts) {
  VisibilityGraph g(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (visible_naive(pts, i, j)) g.set(i, j);
    }
  }
  return g;
}

bool complete_visibility(std::span<const Vec2> pts, util::ThreadPool* pool) {
  const std::size_t n = pts.size();
  if (n <= 1) return true;
  // Distinctness first: coincident robots are collisions, never "visible".
  std::vector<Vec2> sorted(pts.begin(), pts.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
  return compute_visibility(pts, pool).complete();
}

}  // namespace lumen::geom
