#include "geom/visibility.hpp"

#include "geom/predicates.hpp"
#include "geom/visibility_detail.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>

namespace lumen::geom {

std::size_t VisibilityGraph::edge_count() const noexcept {
  // Upper-triangle popcount: row i contributes its bits j > i, so the count
  // is exact whether or not the lower triangle has been mirrored yet.
  std::size_t c = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* row = bits_.data() + i * words_;
    const std::size_t first = (i + 1) >> 6;
    const std::size_t shift = (i + 1) & 63;
    for (std::size_t w = first; w < words_; ++w) {
      std::uint64_t word = row[w];
      if (w == first && shift != 0) {
        word &= ~((std::uint64_t{1} << shift) - 1);
      }
      c += static_cast<std::size_t>(std::popcount(word));
    }
  }
  return c;
}

std::size_t VisibilityGraph::degree(std::size_t i) const noexcept {
  std::size_t c = 0;
  const std::uint64_t* row = bits_.data() + i * words_;
  for (std::size_t w = 0; w < words_; ++w) {
    c += static_cast<std::size_t>(std::popcount(row[w]));
  }
  return c;
}

bool VisibilityGraph::complete() const noexcept {
  if (n_ <= 1) return true;
  // Row i must be all-ones over the first n_ bits except bit i itself;
  // bail out on the first block that misses a pair.
  const std::uint64_t last_mask = ((n_ & 63) == 0)
                                      ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << (n_ & 63)) - 1;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* row = bits_.data() + i * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t expected = (w + 1 == words_) ? last_mask : ~std::uint64_t{0};
      if (w == (i >> 6)) expected &= ~(std::uint64_t{1} << (i & 63));
      if (row[w] != expected) return false;
    }
  }
  return true;
}

namespace {

/// Shared graph fill over any per-observer sweep(i, scratch, out): the AoS
/// entry point instantiates it with visible_from_impl, the SoA one with the
/// batch-kernel sweep (visible_from_soa_impl).
template <class SweepFn>
VisibilityGraph compute_visibility_graph(std::size_t n, util::ThreadPool* pool,
                                         const SweepFn& sweep) {
  VisibilityGraph g(n);
  if (pool != nullptr && n >= detail::kMinParallelObservers) {
    // Every observer writes only its own row; the per-observer relation is
    // exactly the (symmetric) naive blocking relation — see emit_run — so
    // the mirrored bits arrive from the mirrored sweeps and the result is
    // bit-identical to the serial fill for any pool size.
    struct ObserverScratch {
      VisibilityScratch scratch;
      std::vector<std::size_t> out;
    };
    std::vector<ObserverScratch> slots(pool->slot_count());
    pool->parallel_for_slots(
        n,
        [&](std::size_t slot, std::size_t i) {
          ObserverScratch& s = slots[slot];
          sweep(i, s.scratch, s.out);
          for (const std::size_t j : s.out) g.set_half(i, j);
        },
        /*grain=*/4);
    return g;
  }
  VisibilityScratch scratch;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    sweep(i, scratch, out);
    for (const std::size_t j : out) g.set_half(i, j);
  }
  return g;
}

}  // namespace

std::vector<std::size_t> visible_from(std::span<const Vec2> pts, std::size_t i) {
  VisibilityScratch scratch;
  std::vector<std::size_t> visible;
  visible_from(pts, i, scratch, visible);
  return visible;
}

void visible_from(std::span<const Vec2> pts, std::size_t i,
                  VisibilityScratch& scratch, std::vector<std::size_t>& out) {
  detail::visible_from_impl([pts](std::size_t j) noexcept { return pts[j]; },
                            pts.size(), i, scratch, out);
}

void visible_from(std::span<const double> xs, std::span<const double> ys,
                  std::size_t i, VisibilityScratch& scratch,
                  std::vector<std::size_t>& out) {
  detail::visible_from_soa_impl(xs.data(), ys.data(), xs.size(), i, scratch,
                                out);
}

VisibilityGraph compute_visibility(std::span<const Vec2> pts,
                                   util::ThreadPool* pool) {
  const auto pt = [pts](std::size_t j) noexcept { return pts[j]; };
  return compute_visibility_graph(
      pts.size(), pool,
      [&](std::size_t i, VisibilityScratch& scratch,
          std::vector<std::size_t>& out) {
        detail::visible_from_impl(pt, pts.size(), i, scratch, out);
      });
}

VisibilityGraph compute_visibility(std::span<const double> xs,
                                   std::span<const double> ys,
                                   util::ThreadPool* pool) {
  return compute_visibility_graph(
      xs.size(), pool,
      [&](std::size_t i, VisibilityScratch& scratch,
          std::vector<std::size_t>& out) {
        detail::visible_from_soa_impl(xs.data(), ys.data(), xs.size(), i,
                                      scratch, out);
      });
}

bool visible_naive(std::span<const Vec2> pts, std::size_t i, std::size_t j) {
  if (i == j || pts[i] == pts[j]) return false;
  for (std::size_t k = 0; k < pts.size(); ++k) {
    if (k == i || k == j) continue;
    if (on_segment_open(pts[i], pts[j], pts[k])) return false;
  }
  return true;
}

VisibilityGraph compute_visibility_naive(std::span<const Vec2> pts) {
  VisibilityGraph g(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (visible_naive(pts, i, j)) g.set(i, j);
    }
  }
  return g;
}

bool complete_visibility(std::span<const Vec2> pts, util::ThreadPool* pool) {
  const std::size_t n = pts.size();
  if (n <= 1) return true;
  // Distinctness first: coincident robots are collisions, never "visible".
  std::vector<Vec2> sorted(pts.begin(), pts.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
  return compute_visibility(pts, pool).complete();
}

}  // namespace lumen::geom
