// lumen_geom: SIMD level detection, LUMEN_SIMD override, kernel dispatch.
#include "geom/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lumen::geom::simd {

// Per-level kernel entry points. The scalar level always exists; the wide
// levels exist only when src/geom/CMakeLists.txt compiled their TU for
// this architecture (LUMEN_SIMD_HAVE_* definitions).
namespace scalar {
void build_keys_soa(const double* xs, const double* ys, std::size_t n,
                    std::size_t i, Vec2 o, VisibilityScratch& scratch);
void hull_cull_mask(const Vec2* pts, std::size_t n, const Vec2 quad[4],
                    std::uint8_t* inside);
void sort_f32key_records(std::vector<std::uint64_t>& records,
                         std::vector<std::uint64_t>& tmp, float max_key);
}  // namespace scalar

#ifdef LUMEN_SIMD_HAVE_WIDE128
namespace wide128 {
void build_keys_soa(const double* xs, const double* ys, std::size_t n,
                    std::size_t i, Vec2 o, VisibilityScratch& scratch);
void hull_cull_mask(const Vec2* pts, std::size_t n, const Vec2 quad[4],
                    std::uint8_t* inside);
void sort_f32key_records(std::vector<std::uint64_t>& records,
                         std::vector<std::uint64_t>& tmp, float max_key);
}  // namespace wide128
#endif

#ifdef LUMEN_SIMD_HAVE_AVX2
namespace avx2 {
void build_keys_soa(const double* xs, const double* ys, std::size_t n,
                    std::size_t i, Vec2 o, VisibilityScratch& scratch);
void hull_cull_mask(const Vec2* pts, std::size_t n, const Vec2 quad[4],
                    std::uint8_t* inside);
void sort_f32key_records(std::vector<std::uint64_t>& records,
                         std::vector<std::uint64_t>& tmp, float max_key);
}  // namespace avx2
#endif

namespace {

/// The 128-bit level's public name depends on the architecture the wide128
/// TU was compiled for.
constexpr Level kWide128Level =
#if defined(__aarch64__) || defined(_M_ARM64)
    Level::kNeon;
#else
    Level::kSse2;
#endif

bool level_supported(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
    case Level::kNeon:
#ifdef LUMEN_SIMD_HAVE_WIDE128
      return level == kWide128Level;
#else
      return false;
#endif
    case Level::kAvx2:
#ifdef LUMEN_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

/// -1 = not yet resolved; otherwise the int value of the active Level.
std::atomic<int> g_active{-1};

Level resolve_startup_level() noexcept {
  Level level = best_supported_level();
  if (const char* env = std::getenv("LUMEN_SIMD")) {
    const auto requested = level_from_string(env);
    if (requested.has_value() && level_supported(*requested)) {
      level = *requested;
    } else {
      std::fprintf(stderr,
                   "lumen: LUMEN_SIMD=%s is not available on this host; "
                   "using %s\n",
                   env, std::string(to_string(level)).c_str());
    }
  }
  return level;
}

}  // namespace

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

std::optional<Level> level_from_string(std::string_view s) noexcept {
  if (s == "scalar") return Level::kScalar;
  if (s == "sse2") return Level::kSse2;
  if (s == "neon") return Level::kNeon;
  if (s == "avx2") return Level::kAvx2;
  return std::nullopt;
}

Level best_supported_level() noexcept {
  if (level_supported(Level::kAvx2)) return Level::kAvx2;
  if (level_supported(kWide128Level)) return kWide128Level;
  return Level::kScalar;
}

Level active_level() noexcept {
  int v = g_active.load(std::memory_order_acquire);
  if (v < 0) {
    // Racing first calls both compute the same value; the store is
    // idempotent.
    const Level resolved = resolve_startup_level();
    g_active.store(static_cast<int>(resolved), std::memory_order_release);
    return resolved;
  }
  return static_cast<Level>(v);
}

bool set_active_level(Level level) noexcept {
  if (!level_supported(level)) return false;
  g_active.store(static_cast<int>(level), std::memory_order_release);
  return true;
}

void build_keys_soa(const double* xs, const double* ys, std::size_t n,
                    std::size_t i, Vec2 o, VisibilityScratch& scratch) {
  switch (active_level()) {
#ifdef LUMEN_SIMD_HAVE_AVX2
    case Level::kAvx2:
      avx2::build_keys_soa(xs, ys, n, i, o, scratch);
      return;
#endif
#ifdef LUMEN_SIMD_HAVE_WIDE128
    case Level::kSse2:
    case Level::kNeon:
      wide128::build_keys_soa(xs, ys, n, i, o, scratch);
      return;
#endif
    default:
      scalar::build_keys_soa(xs, ys, n, i, o, scratch);
      return;
  }
}

void sort_angular_records(std::vector<std::uint64_t>& records,
                          std::vector<std::uint64_t>& tmp, float max_key) {
  switch (active_level()) {
#ifdef LUMEN_SIMD_HAVE_AVX2
    case Level::kAvx2:
      avx2::sort_f32key_records(records, tmp, max_key);
      return;
#endif
#ifdef LUMEN_SIMD_HAVE_WIDE128
    case Level::kSse2:
    case Level::kNeon:
      wide128::sort_f32key_records(records, tmp, max_key);
      return;
#endif
    default:
      scalar::sort_f32key_records(records, tmp, max_key);
      return;
  }
}

void hull_cull_mask(const Vec2* pts, std::size_t n, const Vec2 quad[4],
                    std::uint8_t* inside) {
  switch (active_level()) {
#ifdef LUMEN_SIMD_HAVE_AVX2
    case Level::kAvx2:
      avx2::hull_cull_mask(pts, n, quad, inside);
      return;
#endif
#ifdef LUMEN_SIMD_HAVE_WIDE128
    case Level::kSse2:
    case Level::kNeon:
      wide128::hull_cull_mask(pts, n, quad, inside);
      return;
#endif
    default:
      scalar::hull_cull_mask(pts, n, quad, inside);
      return;
  }
}

}  // namespace lumen::geom::simd
