// lumen_geom: circles and the smallest enclosing circle (Welzl).
//
// The SSYNC comparator algorithm sends robots to a common circle derived
// from their snapshots; the smallest enclosing circle is the canonical
// frame-invariant choice (it is preserved by the similarity transforms that
// relate robot-local frames, up to the same similarity).
#pragma once

#include "geom/vec2.hpp"

#include <span>

namespace lumen::geom {

struct Circle {
  Vec2 center{};
  double radius = 0.0;

  [[nodiscard]] bool contains(Vec2 p, double slack = 1e-9) const noexcept {
    return distance(center, p) <= radius + slack;
  }
  [[nodiscard]] bool on_boundary(Vec2 p, double tol = 1e-9) const noexcept {
    return std::fabs(distance(center, p) - radius) <= tol;
  }
};

/// Circle through three non-collinear points (circumcircle). Radius 0 and
/// center at the vertex mean when the points are collinear.
[[nodiscard]] Circle circumcircle(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// Smallest enclosing circle of a point set. Welzl's randomized incremental
/// algorithm, expected O(n); deterministic here because the permutation is
/// fixed by a seeded shuffle inside (same input -> same intermediate states,
/// and the result is unique regardless). Empty input -> zero circle.
[[nodiscard]] Circle smallest_enclosing_circle(std::span<const Vec2> pts);

}  // namespace lumen::geom
