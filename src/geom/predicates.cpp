// Robust orientation predicate.
//
// Stage 1 (filter): the textbook determinant on translated coordinates with
// Shewchuk's stage-A forward error bound; if |det| exceeds the bound the
// sign is certified.
// Stage 2 (exact): the determinant of the ORIGINAL coordinates,
//   ax*by - ax*cy + ay*cx - ay*bx + bx*cy - by*cx,
// evaluated as a floating-point expansion: each product is split exactly
// into (hi, lo) via fused multiply-add, and the twelve components are folded
// into a nonoverlapping expansion with grow-expansion steps. The sign of the
// largest (last nonzero) component is the exact sign of the real value.
#include "geom/predicates.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace lumen::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

namespace {

using detail::kCcwErrBoundA;

/// Knuth two-sum: x + y == a + b exactly, x = fl(a+b), y is the roundoff.
inline void two_sum(double a, double b, double& x, double& y) noexcept {
  x = a + b;
  const double b_virtual = x - a;
  const double a_virtual = x - b_virtual;
  const double b_round = b - b_virtual;
  const double a_round = a - a_virtual;
  y = a_round + b_round;
}

/// Exact product via FMA: x + y == a * b exactly.
inline void two_product(double a, double b, double& x, double& y) noexcept {
  x = a * b;
  y = std::fma(a, b, -x);
}

/// Nonoverlapping expansion with components in increasing magnitude order.
/// Fixed capacity is enough for the 12-component orient2d determinant plus
/// carries (each grow step adds at most one component).
struct Expansion {
  std::array<double, 16> comp{};
  std::size_t size = 0;

  /// Shewchuk GROW-EXPANSION: adds scalar b, preserving the invariants.
  void grow(double b) noexcept {
    double q = b;
    std::size_t out = 0;
    for (std::size_t i = 0; i < size; ++i) {
      double sum = 0.0, err = 0.0;
      two_sum(q, comp[i], sum, err);
      if (err != 0.0) comp[out++] = err;
      q = sum;
    }
    // Always keep the head so a zero expansion still has a representative.
    comp[out++] = q;
    size = out;
  }

  /// Sign of the exact real value: the last component dominates.
  [[nodiscard]] int sign() const noexcept {
    for (std::size_t i = size; i > 0; --i) {
      const double c = comp[i - 1];
      if (c > 0.0) return 1;
      if (c < 0.0) return -1;
    }
    return 0;
  }

  /// Approximate value (sum smallest-first; correct sign, nearly full
  /// precision magnitude).
  [[nodiscard]] double approx() const noexcept {
    double s = 0.0;
    for (std::size_t i = 0; i < size; ++i) s += comp[i];
    return s;
  }
};

Expansion orient2d_expansion(Vec2 a, Vec2 b, Vec2 c) noexcept {
  // det = ax*by - ax*cy + ay*cx - ay*bx + bx*cy - by*cx
  const std::array<std::array<double, 2>, 6> terms = {{
      {a.x, b.y},  {a.x, -c.y}, {a.y, c.x},
      {a.y, -b.x}, {b.x, c.y},  {b.y, -c.x},
  }};
  Expansion e;
  for (const auto& [p, q] : terms) {
    double hi = 0.0, lo = 0.0;
    two_product(p, q, hi, lo);
    if (lo != 0.0) e.grow(lo);
    e.grow(hi);
  }
  return e;
}

/// Stage-A filter. Returns the filtered determinant and whether its sign is
/// certified against the exact value.
inline bool orient2d_filter(Vec2 a, Vec2 b, Vec2 c, double& det) noexcept {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  det = detleft - detright;
  double detsum = 0.0;
  if (detleft > 0.0) {
    if (detright <= 0.0) return true;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return true;
    detsum = -detleft - detright;
  } else {
    // detleft rounded to zero: only trustworthy if it is exactly zero,
    // which we cannot certify cheaply here — defer to the exact stage
    // unless detright alone decides with margin.
    return false;
  }
  const double errbound = kCcwErrBoundA * detsum;
  return det >= errbound || -det >= errbound;
}

}  // namespace

int orient2d(Vec2 a, Vec2 b, Vec2 c) noexcept {
  double det = 0.0;
  if (orient2d_filter(a, b, c, det)) {
    return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
  }
  return orient2d_expansion(a, b, c).sign();
}

double orient2d_value(Vec2 a, Vec2 b, Vec2 c) noexcept {
  double det = 0.0;
  if (orient2d_filter(a, b, c, det)) return det;
  return orient2d_expansion(a, b, c).approx();
}

bool on_segment_closed(Vec2 a, Vec2 b, Vec2 p) noexcept {
  if (orient2d(a, b, p) != 0) return false;
  const double min_x = std::fmin(a.x, b.x), max_x = std::fmax(a.x, b.x);
  const double min_y = std::fmin(a.y, b.y), max_y = std::fmax(a.y, b.y);
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool on_segment_open(Vec2 a, Vec2 b, Vec2 p) noexcept {
  if (p == a || p == b) return false;
  return on_segment_closed(a, b, p);
}

namespace detail {
int orient2d_exact_sign(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return orient2d_expansion(a, b, c).sign();
}
}  // namespace detail

}  // namespace lumen::geom
