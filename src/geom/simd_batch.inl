// lumen_geom: generic W-lane vector kernels (GCC/Clang vector extensions).
//
// Included by one translation unit per dispatch level with
// LUMEN_SIMD_LANES defined (2 for SSE2/NEON, 4 for AVX2), inside that
// level's namespace; the including TU is compiled with the matching -m
// flags and MUST be compiled with -ffp-contract=off so no fused
// multiply-add changes a rounding (the whole library builds that way; the
// bit-identity contract depends on it).
//
// Every lane evaluates exactly the scalar formulas from simd_common.hpp /
// visibility_detail.hpp: same IEEE operations, same order. Divisions are
// folded to one per vector by selecting numerator/denominator first
// (t = cond ? sy/(sx+sy) : 1 + (-sx)/(sy-sx) computes the SAME quotient
// either way once num/den are selected, so the rounding is unchanged).
// Lanes the batch cannot handle (block tails) fall back to the scalar
// helpers, which are the reference semantics by definition.

static_assert(LUMEN_SIMD_LANES == 2 || LUMEN_SIMD_LANES == 4,
              "supported widths: 2 (128-bit) and 4 (256-bit)");
static_assert(sizeof(geom::Vec2) == 2 * sizeof(double),
              "the AoS deinterleave assumes Vec2 is two packed doubles");
static_assert(sizeof(geom::AngularKey) == 32,
              "the transposed key store assumes a packed 32-byte AngularKey");

inline constexpr std::size_t kLanes = LUMEN_SIMD_LANES;

typedef double vd __attribute__((vector_size(LUMEN_SIMD_LANES * 8)));
typedef std::int64_t vi __attribute__((vector_size(LUMEN_SIMD_LANES * 8)));
typedef float vf __attribute__((vector_size(LUMEN_SIMD_LANES * 4)));

inline vd load_pd(const double* p) noexcept {
  vd v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

/// Counts, over [begin, end), the points in the upper half-plane and the
/// points distinct from the observer — the exact split build_keys_soa will
/// append, so the key vectors can reserve their true sizes.
inline void count_range(const double* xs, const double* ys, std::size_t begin,
                        std::size_t end, geom::Vec2 o, std::size_t& n_upper,
                        std::size_t& n_valid) noexcept {
  const vd zero = {};
  const vd ox = zero + o.x;
  const vd oy = zero + o.y;
  vi acc_up = {};
  vi acc_co = {};
  std::size_t j = begin;
  for (; j + kLanes <= end; j += kLanes) {
    const vd dx = load_pd(xs + j) - ox;
    const vd dy = load_pd(ys + j) - oy;
    const vi up = (dy > zero) | ((dy == zero) & (dx > zero));
    const vi co = (dx == zero) & (dy == zero);
    acc_up += up;  // Each true lane contributes -1.
    acc_co += co;
  }
  std::int64_t up_hits = 0;
  std::int64_t co_hits = 0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    up_hits -= acc_up[l];
    co_hits -= acc_co[l];
  }
  std::size_t valid = (j - begin) - static_cast<std::size_t>(co_hits);
  std::size_t upper = static_cast<std::size_t>(up_hits);
  for (; j < end; ++j) {
    const double dx = xs[j] - o.x;
    const double dy = ys[j] - o.y;
    if (dx == 0.0 && dy == 0.0) continue;
    ++valid;
    if (dy > 0.0 || (dy == 0.0 && dx > 0.0)) ++upper;
  }
  n_upper += upper;
  n_valid += valid;
}

/// Write cursors into the exactly-resized output vectors: compress-store
/// lands each key at its final slot with plain stores, skipping the
/// size/capacity bookkeeping a push_back per lane would pay.
struct KeySink {
  geom::AngularKey* up_keys;
  std::uint64_t* up_order;
  geom::AngularKey* lo_keys;
  std::uint64_t* lo_order;
  std::size_t up_pos = 0;
  std::size_t lo_pos = 0;
};

/// Builds and appends the angular keys of [begin, end): vector lanes for
/// full blocks, the scalar reference formulas for the tail.
inline void append_range(const double* xs, const double* ys, std::size_t begin,
                         std::size_t end, geom::Vec2 o, KeySink& sink) {
  const vd zero = {};
  const vd ox = zero + o.x;
  const vd oy = zero + o.y;
  const vd one = zero + 1.0;
  std::size_t j = begin;
  for (; j + kLanes <= end; j += kLanes) {
    const vd dx = load_pd(xs + j) - ox;
    const vd dy = load_pd(ys + j) - oy;
    const vi up = (dy > zero) | ((dy == zero) & (dx > zero));
    const vi co = (dx == zero) & (dy == zero);
    // Normalize lower-half lanes to their antipode (what the scalar path
    // feeds diamond_key), then evaluate the diamond pseudo-angle with one
    // division per vector.
    const vd sx = up ? dx : -dx;
    const vd sy = up ? dy : -dy;
    const vi cond = sx >= zero;
    const vd num = cond ? sy : -sx;
    const vd den = cond ? sx + sy : sy - sx;
    const vd q = num / den;
    const vd t = cond ? q : one + q;
    const vf akey = __builtin_convertvector(t, vf) + 0.0f;
    const vd d2 = dx * dx + dy * dy;
    // Compress-store: partition the block into the upper/lower key arrays.
    // Lane order is ascending j, so within each half the append order is
    // identical to the scalar loop's. The destination is selected
    // branchlessly (the up/lo split of random input is a coin flip — a
    // branch here mispredicts ~half the points); only the coincident skip
    // stays a branch, because it is almost never taken.
#if LUMEN_SIMD_LANES == 4
    // Transpose (dx, dy, d2, pack) from lane-major to key-major so each
    // lane's 32-byte AngularKey image lands with ONE vector store instead
    // of four element extracts. pack interleaves the akey bits (low dword)
    // with the point index (high dword), matching the struct's tail qword
    // on a little-endian layout. The stored bytes are exactly the ones the
    // per-field writes would produce — this is data movement only.
    typedef std::uint32_t vu4 __attribute__((vector_size(16)));
    const vu4 akbits = (vu4)akey;
    const vu4 idx = {static_cast<std::uint32_t>(j),
                     static_cast<std::uint32_t>(j + 1),
                     static_cast<std::uint32_t>(j + 2),
                     static_cast<std::uint32_t>(j + 3)};
    const vu4 p01 = __builtin_shufflevector(akbits, idx, 0, 4, 1, 5);
    const vu4 p23 = __builtin_shufflevector(akbits, idx, 2, 6, 3, 7);
    const vd pack =
        (vd)__builtin_shufflevector(p01, p23, 0, 1, 2, 3, 4, 5, 6, 7);
    const vd lo01 = __builtin_shufflevector(dx, dy, 0, 4, 1, 5);
    const vd lo23 = __builtin_shufflevector(dx, dy, 2, 6, 3, 7);
    const vd hi01 = __builtin_shufflevector(d2, pack, 0, 4, 1, 5);
    const vd hi23 = __builtin_shufflevector(d2, pack, 2, 6, 3, 7);
    const vd key_img[4] = {
        __builtin_shufflevector(lo01, hi01, 0, 1, 4, 5),
        __builtin_shufflevector(lo01, hi01, 2, 3, 6, 7),
        __builtin_shufflevector(lo23, hi23, 0, 1, 4, 5),
        __builtin_shufflevector(lo23, hi23, 2, 3, 6, 7),
    };
    // Both-sides store: each lane writes its key and record to BOTH halves
    // at their current cursors and only the correct half's cursor advances.
    // The stray write either gets overwritten by that half's next real
    // append (same slot — its cursor never moved) or lies beyond the final
    // fill and is discarded by the exact resize-down, so the visible bytes
    // are untouched; in exchange the loop carries no data-dependent select
    // on the store address. Requires the one-slot slack build_keys_soa
    // allocates.
    for (std::size_t l = 0; l < kLanes; ++l) {
      if (co[l] != 0) continue;
      const std::size_t is_up = up[l] != 0 ? 1 : 0;
      sink.up_order[sink.up_pos] =
          simd::detail::order_record(akey[l], sink.up_pos);
      sink.lo_order[sink.lo_pos] =
          simd::detail::order_record(akey[l], sink.lo_pos);
      __builtin_memcpy(static_cast<void*>(sink.up_keys + sink.up_pos),
                       &key_img[l], sizeof(geom::AngularKey));
      __builtin_memcpy(static_cast<void*>(sink.lo_keys + sink.lo_pos),
                       &key_img[l], sizeof(geom::AngularKey));
      sink.up_pos += is_up;
      sink.lo_pos += 1 - is_up;
    }
#else
    for (std::size_t l = 0; l < kLanes; ++l) {
      if (co[l] != 0) continue;
      const bool is_up = up[l] != 0;
      const std::size_t slot = is_up ? sink.up_pos : sink.lo_pos;
      geom::AngularKey* const kdst = is_up ? sink.up_keys : sink.lo_keys;
      std::uint64_t* const odst = is_up ? sink.up_order : sink.lo_order;
      odst[slot] = simd::detail::order_record(akey[l], slot);
      kdst[slot] = geom::AngularKey{geom::Vec2{dx[l], dy[l]}, d2[l], akey[l],
                                    static_cast<std::uint32_t>(j + l)};
      sink.up_pos += is_up ? 1 : 0;
      sink.lo_pos += is_up ? 0 : 1;
    }
#endif
  }
  for (; j < end; ++j) {
    const double dx = xs[j] - o.x;
    const double dy = ys[j] - o.y;
    if (dx == 0.0 && dy == 0.0) continue;
    const geom::Vec2 d{dx, dy};
    const auto jj = static_cast<std::uint32_t>(j);
    if (geom::detail::half_of(d) == 0) {
      const float ak = geom::detail::diamond_key(d);
      sink.up_order[sink.up_pos] = simd::detail::order_record(ak, sink.up_pos);
      sink.up_keys[sink.up_pos] = geom::AngularKey{d, norm_sq(d), ak, jj};
      ++sink.up_pos;
    } else {
      const float ak = geom::detail::diamond_key(geom::Vec2{-d.x, -d.y});
      sink.lo_order[sink.lo_pos] = simd::detail::order_record(ak, sink.lo_pos);
      sink.lo_keys[sink.lo_pos] = geom::AngularKey{d, norm_sq(d), ak, jj};
      ++sink.lo_pos;
    }
  }
}

void build_keys_soa(const double* xs, const double* ys, std::size_t n,
                    std::size_t i, geom::Vec2 o,
                    geom::VisibilityScratch& scratch) {
  scratch.upper.clear();
  scratch.lower.clear();
  scratch.upper_order.clear();
  scratch.lower_order.clear();
  const std::size_t after = i + 1 < n ? i + 1 : n;
  std::size_t n_upper = 0;
  std::size_t n_valid = 0;
  count_range(xs, ys, 0, i, o, n_upper, n_valid);
  count_range(xs, ys, after, n, o, n_upper, n_valid);
  // Exact sizing (the counting pass makes it free of guesswork) plus one
  // slot of slack per array for the both-sides compress store; the final
  // resize-down restores the exact sizes (trivially — no element work).
  const std::size_t n_lower = n_valid - n_upper;
  scratch.upper.resize(n_upper + 1);
  scratch.upper_order.resize(n_upper + 1);
  scratch.lower.resize(n_lower + 1);
  scratch.lower_order.resize(n_lower + 1);
  KeySink sink{scratch.upper.data(), scratch.upper_order.data(),
               scratch.lower.data(), scratch.lower_order.data()};
  append_range(xs, ys, 0, i, o, sink);
  append_range(xs, ys, after, n, o, sink);
  scratch.upper.resize(n_upper);
  scratch.upper_order.resize(n_upper);
  scratch.lower.resize(n_lower);
  scratch.lower_order.resize(n_lower);
}

/// Batched form of util::sort_f32key_records: the float->bucket mapping of
/// the histogram and scatter passes runs kLanes records at a time (extract
/// the key floats from a block of records with one shuffle, one multiply,
/// one truncating convert and one clamp); the increments and stores stay
/// scalar, as they must. Bucket count, scale and the finishing pass are
/// identical to the scalar routine, and the output — the full ascending
/// 64-bit order — is canonical, so every level produces the same bytes no
/// matter how the buckets were computed.
void sort_f32key_records(std::vector<std::uint64_t>& records,
                         std::vector<std::uint64_t>& tmp, float max_key) {
  const std::size_t m = records.size();
  if (m < util::kRadixMinRecords) {
    std::sort(records.begin(), records.end());
    return;
  }
  std::size_t nb = std::bit_floor(m);
  if (nb > (std::size_t{1} << 13)) nb = std::size_t{1} << 13;
  const float scale = static_cast<float>(nb) / max_key;
  tmp.resize(nb + m);
  std::uint64_t* const cursors = tmp.data();
  std::uint64_t* const dst = tmp.data() + nb;
  std::fill_n(cursors, nb, std::uint64_t{0});

  typedef std::int32_t vs __attribute__((vector_size(LUMEN_SIMD_LANES * 4)));
  typedef std::uint32_t vkey __attribute__((vector_size(LUMEN_SIMD_LANES * 4)));
  typedef std::uint32_t vrec
      __attribute__((vector_size(LUMEN_SIMD_LANES * 8)));
  const vs cap = vs{} + static_cast<std::int32_t>(nb - 1);
  // Buckets of kLanes consecutive records: the high dwords hold the float
  // key bits; value * scale truncated matches the scalar size_t cast for
  // every in-range key, and the clamp handles keys landing exactly on
  // max_key the same way the scalar routine does.
  const auto lane_buckets = [scale, cap](const std::uint64_t* p) noexcept {
    vrec w;
    __builtin_memcpy(&w, p, sizeof(w));
#if LUMEN_SIMD_LANES == 4
    const vkey hi = __builtin_shufflevector(w, w, 1, 3, 5, 7);
#else
    const vkey hi = __builtin_shufflevector(w, w, 1, 3);
#endif
    const vf keys = (vf)hi;
    const vs b = __builtin_convertvector(keys * scale, vs);
    return b < cap ? b : cap;
  };
  const auto scalar_bucket = [scale, nb](std::uint64_t rec) noexcept {
    const float key =
        std::bit_cast<float>(static_cast<std::uint32_t>(rec >> 32));
    const auto b = static_cast<std::size_t>(key * scale);
    return b < nb ? b : nb - 1;
  };
  const std::uint64_t* const rp = records.data();
  std::size_t k = 0;
  for (; k + kLanes <= m; k += kLanes) {
    const vs b = lane_buckets(rp + k);
    for (std::size_t l = 0; l < kLanes; ++l) {
      ++cursors[static_cast<std::uint32_t>(b[l])];
    }
  }
  for (; k < m; ++k) ++cursors[scalar_bucket(rp[k])];
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint64_t count = cursors[b];
    cursors[b] = sum;
    sum += count;
  }
  k = 0;
  for (; k + kLanes <= m; k += kLanes) {
    const vs b = lane_buckets(rp + k);
    for (std::size_t l = 0; l < kLanes; ++l) {
      dst[cursors[static_cast<std::uint32_t>(b[l])]++] = rp[k + l];
    }
  }
  for (; k < m; ++k) dst[cursors[scalar_bucket(rp[k])]++] = rp[k];
  util::sort_bucketed_runs(dst, cursors, nb);
  std::memcpy(records.data(), dst, m * sizeof(std::uint64_t));
}

/// One quad edge's certify-only stage-A filter across a block of points:
/// lanes where orient2d(a, b, p) > 0 is CERTIFIED (the same filter
/// simd::detail::certainly_left applies, op for op).
inline vi lanes_certainly_left(geom::Vec2 a, geom::Vec2 b, vd px,
                               vd py) noexcept {
  const vd zero = {};
  const vd dl = (a.x - px) * (b.y - py);
  const vd dr = (a.y - py) * (b.x - px);
  const vd det = dl - dr;
  // Decision-for-decision the scalar filter, with the branches folded into
  // closed form. Opposite signs (dl > 0 >= dr) are exact and det > 0 holds
  // outright. Otherwise the scalar detsum is |dl| + |dr| in every reachable
  // case (dl > 0, dr > 0 adds them; det > 0 with dl < 0 forces dr < dl < 0,
  // negating both; a bound pass with dl != 0 implies det >= kA*|dl| > 0, so
  // the det > 0 test is subsumed), and dl == 0 lanes certify nothing.
  const vi sign_exact = (dl > zero) & (dr <= zero);
  const vi abs_mask = vi{} + std::int64_t{0x7fffffffffffffff};
  const vd abs_sum = (vd)((vi)dl & abs_mask) + (vd)((vi)dr & abs_mask);
  const vi bound_ok =
      (dl != zero) & (det >= geom::detail::kCcwErrBoundA * abs_sum);
  return sign_exact | bound_ok;
}

void hull_cull_mask(const geom::Vec2* pts, std::size_t n,
                    const geom::Vec2 quad[4], std::uint8_t* inside) {
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    // Deinterleave kLanes packed Vec2 into x and y lanes.
    const double* base = &pts[j].x;
#if LUMEN_SIMD_LANES == 2
    const vd v0 = load_pd(base);
    const vd v1 = load_pd(base + 2);
    const vd px = __builtin_shufflevector(v0, v1, 0, 2);
    const vd py = __builtin_shufflevector(v0, v1, 1, 3);
#else
    const vd v0 = load_pd(base);
    const vd v1 = load_pd(base + 4);
    const vd px = __builtin_shufflevector(v0, v1, 0, 2, 4, 6);
    const vd py = __builtin_shufflevector(v0, v1, 1, 3, 5, 7);
#endif
    const vi in = lanes_certainly_left(quad[0], quad[1], px, py) &
                  lanes_certainly_left(quad[1], quad[2], px, py) &
                  lanes_certainly_left(quad[2], quad[3], px, py) &
                  lanes_certainly_left(quad[3], quad[0], px, py);
    // Lane masks are 0 / ~0; narrowing keeps the low byte, so & 1 yields
    // the 0/1 the scalar loop writes — stored as one kLanes-byte write.
    typedef std::uint8_t vb __attribute__((vector_size(LUMEN_SIMD_LANES)));
    const vb byte_mask =
        __builtin_convertvector(in, vb) & (vb{} + std::uint8_t{1});
    __builtin_memcpy(inside + j, &byte_mask, sizeof(byte_mask));
  }
  for (; j < n; ++j) {
    inside[j] = simd::detail::inside_quad(quad, pts[j]) ? 1 : 0;
  }
}
