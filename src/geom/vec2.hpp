// lumen_geom: plain 2-D vectors/points in double precision.
//
// All robot positions, snapshot entries and motion targets are Vec2. The
// struct is a regular value type (aggregate, trivially copyable) so spans of
// positions can be handled like raw buffers. Decisions that must be exact
// (orientation, collinearity) never use these floating helpers directly —
// they go through geom/predicates.hpp.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace lumen::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator/(Vec2 a, double s) noexcept { return {a.x / s, a.y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) noexcept { x *= s; y *= s; return *this; }

  /// Exact componentwise comparison; lexicographic ordering (x, then y) —
  /// the canonical tie-break order used by hulls and sweeps.
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;
  friend constexpr auto operator<=>(Vec2 a, Vec2 b) noexcept = default;
};

[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; positive when b is CCW from a.
[[nodiscard]] constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }

[[nodiscard]] inline double norm(Vec2 a) noexcept { return std::hypot(a.x, a.y); }
[[nodiscard]] constexpr double norm_sq(Vec2 a) noexcept { return dot(a, a); }
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept { return norm(b - a); }
[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) noexcept { return norm_sq(b - a); }

/// Unit vector in the direction of a; returns {0,0} for the zero vector.
[[nodiscard]] inline Vec2 normalized(Vec2 a) noexcept {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec2{};
}

/// CCW perpendicular (rotation by +90 degrees).
[[nodiscard]] constexpr Vec2 perp(Vec2 a) noexcept { return {-a.y, a.x}; }

/// Linear interpolation a + t*(b-a).
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

/// Rotation by `radians` about the origin.
[[nodiscard]] inline Vec2 rotated(Vec2 a, double radians) noexcept {
  const double c = std::cos(radians), s = std::sin(radians);
  return {a.x * c - a.y * s, a.x * s + a.y * c};
}

/// Midpoint of a and b.
[[nodiscard]] constexpr Vec2 midpoint(Vec2 a, Vec2 b) noexcept {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Componentwise approximate equality with absolute tolerance.
[[nodiscard]] inline bool almost_equal(Vec2 a, Vec2 b, double tol = 1e-12) noexcept {
  return std::fabs(a.x - b.x) <= tol && std::fabs(a.y - b.y) <= tol;
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace lumen::geom
