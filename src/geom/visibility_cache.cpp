#include "geom/visibility_cache.hpp"

#include "geom/visibility_detail.hpp"

#include <algorithm>

namespace lumen::geom {

namespace {

/// Contiguous-array rank accessor for emit_half / emit_run.
struct KeyAt {
  const AngularKey* keys;
  const AngularKey& operator()(std::size_t k) const noexcept { return keys[k]; }
};

}  // namespace

void VisibilityCache::reset(std::size_t n, std::size_t budget_bytes) {
  n_ = n;
  const std::size_t per_observer = n == 0 ? 1 : n * kBytesPerRobot;
  cap_ = std::min(n, budget_bytes / std::max<std::size_t>(per_observer, 1));
  if (entries_.size() < cap_) entries_.resize(cap_);
  // Invalidate but keep capacity: version counters restart with each run,
  // so a stale entry from a previous run must never be trusted.
  for (Entry& e : entries_) {
    e.valid = false;
    e.touches = 0;
    e.version = 0;
  }
  replays_.store(0, std::memory_order_relaxed);
  repairs_.store(0, std::memory_order_relaxed);
  rebuilds_.store(0, std::memory_order_relaxed);
}

void VisibilityCache::rebuild(std::span<const double> xs,
                              std::span<const double> ys, std::size_t i,
                              Entry* e, std::uint64_t version, bool storable,
                              VisibilityScratch& scratch,
                              std::vector<std::size_t>& out) {
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  const auto pt = [xs, ys](std::size_t j) noexcept {
    return Vec2{xs[j], ys[j]};
  };
  if (!storable || e == nullptr) {
    detail::visible_from_soa_impl(xs.data(), ys.data(), xs.size(), i, scratch,
                                  out);
    return;
  }
  // Storing rebuild: same sort, but the sorted halves are gathered into the
  // entry so later Looks can repair in place. Emission over the gathered
  // arrays visits the identical rank sequence, so the output matches the
  // one-shot kernel bit for bit. The batch key build (geom/simd.hpp) emits
  // the presort records fused with the keys, same as the one-shot SoA path.
  const Vec2 o = pt(i);
  simd::build_keys_soa(xs.data(), ys.data(), xs.size(), i, o, scratch);
  out.clear();
  out.reserve(scratch.upper.size() + scratch.lower.size());
  const auto sort_gather_emit = [&](const std::vector<AngularKey>& keys,
                                    std::vector<std::uint64_t>& order,
                                    std::vector<AngularKey>& stored) {
    stored.clear();
    if (keys.empty()) return;
    detail::sort_records(pt, o, keys, order, scratch.order_tmp);
    stored.reserve(keys.size());
    for (const std::uint64_t rec : order) {
      stored.push_back(keys[detail::slot_of(rec)]);
    }
    detail::emit_half(pt, o, KeyAt{stored.data()}, stored.size(), out);
  };
  sort_gather_emit(scratch.upper, scratch.upper_order, e->upper);
  sort_gather_emit(scratch.lower, scratch.lower_order, e->lower);
  e->ids = out;
  e->version = version;
  e->valid = true;
}

void VisibilityCache::visible_from(std::span<const double> xs,
                                   std::span<const double> ys, std::size_t i,
                                   std::span<const std::uint32_t> write_log,
                                   std::size_t moving_count,
                                   VisibilityScratch& scratch,
                                   std::vector<std::size_t>& out) {
  const std::uint64_t version = write_log.size();
  Entry* e = i < cap_ ? &entries_[i] : nullptr;
  // In-flight movers mean xs/ys hold interpolated positions the write log
  // knows nothing about: neither replay nor store is sound, so this Look is
  // served transiently and the entry is left for the next committed Look.
  if (moving_count > 0 || e == nullptr) {
    // A transient Look still counts toward admission: the observer is
    // active, so its next committed Look should store.
    if (e != nullptr && e->touches == 0) e->touches = 1;
    rebuild(xs, ys, i, nullptr, version, /*storable=*/false, scratch, out);
    return;
  }
  if (!e->valid) {
    // Admission on second rebuild (see Entry::touches): the first Look of a
    // run is served without the store, so observers that never Look again
    // cost nothing beyond the one-shot kernel.
    if (e->touches == 0) {
      e->touches = 1;
      rebuild(xs, ys, i, nullptr, version, /*storable=*/false, scratch, out);
    } else {
      rebuild(xs, ys, i, e, version, /*storable=*/true, scratch, out);
    }
    return;
  }
  const std::size_t suffix_len =
      static_cast<std::size_t>(version - e->version);
  if (suffix_len == 0) {
    // Nothing committed since the entry was built: the world arrays are
    // bit-identical to the ones it was built from.
    replays_.fetch_add(1, std::memory_order_relaxed);
    out.assign(e->ids.begin(), e->ids.end());
    return;
  }
  if (suffix_len > n_) {
    // Walking a megabyte log suffix costs more than resorting; bail early.
    rebuild(xs, ys, i, e, version, /*storable=*/true, scratch, out);
    return;
  }
  // Dedup the log suffix into the dirty set (a robot may commit many moves
  // between two Looks of this observer).
  if (scratch.mark.size() != n_) scratch.mark.assign(n_, 0);
  std::vector<std::uint32_t>& dirty = scratch.dirty;
  dirty.clear();
  bool self_dirty = false;
  for (std::size_t k = e->version; k < version; ++k) {
    const std::uint32_t r = write_log[k];
    if (r == i) self_dirty = true;
    if (scratch.mark[r] == 0) {
      scratch.mark[r] = 1;
      dirty.push_back(r);
    }
  }
  const bool repairable =
      !self_dirty && dirty.size() <= std::max<std::size_t>(n_ / kRepairDivisor, 1);
  if (!repairable) {
    for (const std::uint32_t r : dirty) scratch.mark[r] = 0;
    rebuild(xs, ys, i, e, version, /*storable=*/true, scratch, out);
    return;
  }
  repairs_.fetch_add(1, std::memory_order_relaxed);
  const auto pt = [xs, ys](std::size_t j) noexcept {
    return Vec2{xs[j], ys[j]};
  };
  const Vec2 o = pt(i);
  // Delete the dirty robots' stale keys (their old position may sit in
  // either half), then exact-insert the recomputed keys. Every surviving
  // key is bit-unchanged (its robot and the observer both kept their
  // committed positions), so after insertion each half is again the unique
  // exactly-sorted key sequence of the current world.
  const auto is_dirty = [&](const AngularKey& k) {
    return scratch.mark[k.index] != 0;
  };
  std::erase_if(e->upper, is_dirty);
  std::erase_if(e->lower, is_dirty);
  const auto exact_less = [&](const AngularKey& a, const AngularKey& b) {
    return detail::exact_key_less(pt, o, a, b);
  };
  for (const std::uint32_t r : dirty) {
    scratch.mark[r] = 0;
    const Vec2 p = pt(r);
    if (p == o) continue;  // Coincident with the observer: never visible.
    const AngularKey key = detail::make_key(p - o, r);
    std::vector<AngularKey>& half =
        detail::half_of(p - o) == 0 ? e->upper : e->lower;
    half.insert(std::lower_bound(half.begin(), half.end(), key, exact_less),
                key);
  }
  out.clear();
  out.reserve(e->upper.size() + e->lower.size());
  detail::emit_half(pt, o, KeyAt{e->upper.data()}, e->upper.size(), out);
  detail::emit_half(pt, o, KeyAt{e->lower.data()}, e->lower.size(), out);
  e->ids = out;
  e->version = version;
}

}  // namespace lumen::geom
