// lumen_geom: 256-bit (four double lanes) batch kernels for AVX2 hosts.
//
// This TU alone is compiled with -mavx2 (see src/geom/CMakeLists.txt);
// it must contain nothing but the batch kernels, so no bit-identity-
// sensitive scalar code can silently pick up AVX codegen. Selected at
// runtime only when __builtin_cpu_supports("avx2") says the host can run
// it. -ffp-contract=off (project-wide) keeps GCC from fusing the vector
// multiply-adds, which would change roundings versus the scalar reference.
#include "geom/simd.hpp"
#include "geom/simd_common.hpp"
#include "util/radix.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

namespace lumen::geom::simd::avx2 {

#define LUMEN_SIMD_LANES 4
#include "geom/simd_batch.inl"
#undef LUMEN_SIMD_LANES

}  // namespace lumen::geom::simd::avx2
