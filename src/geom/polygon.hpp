// lumen_geom: simple-polygon utilities.
//
// Used by the safe-wedge construction (clamping insertion targets inside the
// pocket outside a hull edge), by monitors (convexity audits), and by the
// SVG renderer (hull outlines).
#pragma once

#include "geom/vec2.hpp"

#include <span>

namespace lumen::geom {

/// Signed area of a polygon given by its vertices in order (shoelace);
/// positive for counter-clockwise orientation.
[[nodiscard]] double polygon_signed_area(std::span<const Vec2> poly) noexcept;

/// Absolute area.
[[nodiscard]] double polygon_area(std::span<const Vec2> poly) noexcept;

/// Area centroid. For degenerate polygons (area 0) falls back to the vertex
/// mean, which is what the algorithms want for collinear snapshots.
[[nodiscard]] Vec2 polygon_centroid(std::span<const Vec2> poly) noexcept;

/// Vertex mean (not area centroid) — the frame-invariant reference point
/// robots can compute from any snapshot.
[[nodiscard]] Vec2 vertex_mean(std::span<const Vec2> pts) noexcept;

/// True iff the CCW polygon is strictly convex: every consecutive vertex
/// triple makes a strict left turn (no collinear runs, no reflex vertices,
/// no repeated vertices). Exact.
[[nodiscard]] bool polygon_strictly_convex_ccw(std::span<const Vec2> poly) noexcept;

/// True iff point p is strictly inside the CCW convex polygon. Exact.
[[nodiscard]] bool convex_polygon_contains_strict(std::span<const Vec2> poly,
                                                  Vec2 p) noexcept;

/// Perimeter length.
[[nodiscard]] double polygon_perimeter(std::span<const Vec2> poly) noexcept;

/// Maximum pairwise vertex distance (diameter of the vertex set).
[[nodiscard]] double point_set_diameter(std::span<const Vec2> pts) noexcept;

/// Minimum pairwise vertex distance; +infinity for fewer than 2 points.
[[nodiscard]] double min_pairwise_distance(std::span<const Vec2> pts) noexcept;

}  // namespace lumen::geom
