// lumen_geom: runtime-dispatched SIMD batch kernels over split arrays.
//
// The two hottest inner loops of the geometry substrate — the per-observer
// angular-key build that feeds the visibility sort, and the Akl–Toussaint
// interior cull that shrinks the convex-hull candidate set — are data
// parallel over the SoA coordinate arrays. This layer provides batched
// versions of both, compiled per instruction set (SSE2/AVX2 on x86-64, NEON
// on aarch64, plus an always-present scalar reference) and selected once at
// startup: the best level the host supports, overridable with
// LUMEN_SIMD=scalar|sse2|avx2|neon (unsupported requests clamp down; the
// scalar fallback always exists).
//
// The hard contract is BIT-IDENTITY: every level produces byte-for-byte the
// same AngularKey sequences, presort records and cull mask as the scalar
// reference. The vector kernels evaluate exactly the scalar formulas —
// same IEEE operations in the same order, compiled with FP contraction off
// so no fused multiply-add can change a rounding — and SIMD is only ever
// allowed to CERTIFY a stage-A decision the scalar filter would also
// certify, never to decide an uncertain one (uncertain lanes keep the
// conservative outcome, exactly like the scalar certify-only filters).
// tests/geom_simd_test.cpp pins scalar-vs-vector equality per kernel and
// end-to-end through the golden-seed digests.
#pragma once

#include "geom/vec2.hpp"
#include "geom/visibility.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace lumen::geom::simd {

/// Dispatch levels in increasing preference order. kSse2 and kNeon are both
/// "128-bit wide" kernels (two double lanes); which one exists depends on
/// the architecture the library was compiled for.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kNeon = 2,
  kAvx2 = 3,
};

[[nodiscard]] std::string_view to_string(Level level) noexcept;
[[nodiscard]] std::optional<Level> level_from_string(std::string_view s) noexcept;

/// The widest level this binary supports on this host (compile-time kernel
/// availability AND runtime CPU feature detection).
[[nodiscard]] Level best_supported_level() noexcept;

/// The level batch kernels currently dispatch to. Resolved once on first
/// use: best_supported_level() unless the LUMEN_SIMD environment variable
/// names a supported level (an unsupported or unknown value falls back to
/// the best supported level with a one-time stderr warning).
[[nodiscard]] Level active_level() noexcept;

/// Forces the active level (tests and benchmarks compare levels this way).
/// Returns false — and leaves the active level unchanged — if this binary
/// cannot run `level` here. Not thread-safe against concurrent kernel
/// calls; switch only between runs.
bool set_active_level(Level level) noexcept;

/// Batched SoA angular-key build: exactly detail::build_keys over
/// pt(j) = {xs[j], ys[j]} (observer `i` and coincident points skipped),
/// filling scratch.upper/lower with the half-partitioned AngularKeys AND
/// scratch.upper_order/lower_order with the (akey bits << 32 | slot)
/// presort records the radix sort consumes. All four vectors are sized
/// exactly (a cheap vectorized counting pass precedes the build), so cold
/// calls reserve the true split instead of 2x the point count.
void build_keys_soa(const double* xs, const double* ys, std::size_t n,
                    std::size_t i, Vec2 o, VisibilityScratch& scratch);

/// Batched value-bucketed presort of (float_bits << 32 | slot) records —
/// the dispatched form of util::sort_f32key_records (same preconditions:
/// keys are bit images of finite non-negative floats bounded by max_key).
/// Vector levels batch the float->bucket computation of the histogram and
/// scatter passes; the result is the full ascending 64-bit order, which is
/// CANONICAL — every level produces identical bytes by construction, so
/// this kernel carries no bit-identity risk at all. `tmp` is the bucket
/// cursor + scatter workspace and keeps its capacity across calls.
void sort_angular_records(std::vector<std::uint64_t>& records,
                          std::vector<std::uint64_t>& tmp, float max_key);

/// Batched Akl–Toussaint stage-A cull: inside[j] = 1 iff point j is
/// CERTIFIED strictly inside the CCW quad (quad[0]..quad[3]) by the scalar
/// certify-only filter (geom/simd_common.hpp: certainly_left on all four
/// edges). Uncertified lanes report 0 ("keep"), so a hull built from the
/// surviving points is bit-identical to one built from all points.
void hull_cull_mask(const Vec2* pts, std::size_t n, const Vec2 quad[4],
                    std::uint8_t* inside);

}  // namespace lumen::geom::simd
