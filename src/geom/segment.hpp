// lumen_geom: segments, point-segment kernels, and exact intersection
// classification.
//
// Path-crossing detection (one half of the paper's collision-freedom claim)
// is decided here: two robot trajectories cross iff their path segments
// intersect. Classification is exact (built on orient2d); distances are
// floating approximations used only for metric decisions with slack.
#pragma once

#include "geom/predicates.hpp"
#include "geom/vec2.hpp"

#include <optional>

namespace lumen::geom {

struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return distance(a, b); }
  [[nodiscard]] Vec2 midpoint() const noexcept { return geom::midpoint(a, b); }
  [[nodiscard]] bool degenerate() const noexcept { return a == b; }
};

/// How two segments meet, from "not at all" to "share a sub-segment".
enum class SegmentRelation {
  kDisjoint,        ///< No common point.
  kTouching,        ///< Exactly one common point, at an endpoint of at least one segment.
  kProperCrossing,  ///< One common point strictly interior to both segments.
  kOverlapping,     ///< Collinear with a shared sub-segment of positive length.
};

/// Exact classification of how s and t intersect.
[[nodiscard]] SegmentRelation classify_intersection(const Segment& s,
                                                    const Segment& t) noexcept;

/// True iff the segments share at least one point (any relation but
/// kDisjoint).
[[nodiscard]] bool segments_intersect(const Segment& s, const Segment& t) noexcept;

/// True iff the segments share a point that is interior to at least one of
/// them, or overlap — the "paths cross" relation of the paper (two movers may
/// share an endpoint only if it is a common rendezvous, which the collision
/// monitor flags separately).
[[nodiscard]] bool segments_cross(const Segment& s, const Segment& t) noexcept;

/// Intersection point of properly crossing segments (floating); nullopt for
/// any other relation.
[[nodiscard]] std::optional<Vec2> crossing_point(const Segment& s,
                                                 const Segment& t) noexcept;

/// Closest point on the CLOSED segment to p.
[[nodiscard]] Vec2 closest_point_on_segment(const Segment& s, Vec2 p) noexcept;

/// Euclidean distance from p to the closed segment.
[[nodiscard]] double point_segment_distance(const Segment& s, Vec2 p) noexcept;

/// Parameter t in [0,1] of the closest point on s to p (0 at s.a, 1 at s.b).
[[nodiscard]] double project_onto_segment(const Segment& s, Vec2 p) noexcept;

/// Minimum distance between two closed segments.
[[nodiscard]] double segment_segment_distance(const Segment& s,
                                              const Segment& t) noexcept;

}  // namespace lumen::geom
