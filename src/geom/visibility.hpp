// lumen_geom: obstructed visibility among point robots.
//
// Robot i sees robot j iff no third robot lies on the open segment (i, j).
// Because robots are dimensionless points, a blocker must be EXACTLY
// collinear — so from any observer, among all robots lying on one ray only
// the nearest is visible. That observation gives the fast kernel: sort the
// other robots around the observer with an exact angular comparator
// (O(n log n) per observer, O(n^2 log n) for the full graph) and keep the
// nearest robot of every equal-direction run. A brute-force O(n^3) checker
// is kept as the test oracle.
#pragma once

#include "geom/vec2.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace lumen::geom {

/// Symmetric visibility relation over a fixed point set.
class VisibilityGraph {
 public:
  VisibilityGraph() = default;
  explicit VisibilityGraph(std::size_t n) : n_(n), bits_(n * n, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool sees(std::size_t i, std::size_t j) const noexcept {
    return bits_[i * n_ + j] != 0;
  }
  void set(std::size_t i, std::size_t j) noexcept {
    bits_[i * n_ + j] = 1;
    bits_[j * n_ + i] = 1;
  }

  /// Number of (unordered) visible pairs.
  [[nodiscard]] std::size_t edge_count() const noexcept;
  /// Degree of vertex i.
  [[nodiscard]] std::size_t degree(std::size_t i) const noexcept;
  /// True iff every pair of distinct robots is mutually visible.
  [[nodiscard]] bool complete() const noexcept;

 private:
  std::size_t n_ = 0;
  std::vector<unsigned char> bits_;
};

/// Reusable workspace for visible_from. Holding one per caller makes the
/// steady-state visibility sweep allocation-free: the angular-sort buffer
/// keeps its capacity across calls.
struct VisibilityScratch {
  std::vector<std::size_t> order;  ///< Angular-sort workspace.
};

/// Indices of the robots visible from observer `i` (excluding i itself).
/// Coincident points never see each other (they are collisions, flagged
/// elsewhere). O(n log n).
[[nodiscard]] std::vector<std::size_t> visible_from(std::span<const Vec2> pts,
                                                    std::size_t i);

/// Buffer-reusing overload: fills `out` with the visible indices using
/// `scratch` for the sort workspace. Performs no heap allocation once both
/// buffers have warmed to the point count. Produces exactly the same index
/// sequence as the allocating overload (which delegates to this one).
void visible_from(std::span<const Vec2> pts, std::size_t i,
                  VisibilityScratch& scratch, std::vector<std::size_t>& out);

/// Full visibility graph, O(n^2 log n).
[[nodiscard]] VisibilityGraph compute_visibility(std::span<const Vec2> pts);

/// Brute-force oracle: is j visible from i? O(n) per query.
[[nodiscard]] bool visible_naive(std::span<const Vec2> pts, std::size_t i,
                                 std::size_t j);

/// Brute-force full graph, O(n^3). Test oracle only.
[[nodiscard]] VisibilityGraph compute_visibility_naive(std::span<const Vec2> pts);

/// True iff the configuration solves Complete Visibility: all points
/// distinct and every pair mutually visible.
[[nodiscard]] bool complete_visibility(std::span<const Vec2> pts);

}  // namespace lumen::geom
