// lumen_geom: obstructed visibility among point robots.
//
// Robot i sees robot j iff no third robot lies on the open segment (i, j).
// Because robots are dimensionless points, a blocker must be EXACTLY
// collinear — so from any observer, among all robots lying on one ray only
// the nearest is visible. That observation gives the fast kernel: sort the
// other robots around the observer with an exact angular comparator
// (O(n log n) per observer, O(n^2 log n) for the full graph) and keep, per
// equal-direction run, the exact nearest robot plus anything coincident
// with it.
//
// The sort itself is two-tier. Each key carries a float diamond
// pseudo-angle whose uncertainty (~3e-7, dominated by the f32 rounding) is
// orders of magnitude below kSuspectEps; a 64-bit radix pass orders the
// keys by that angle, and only "suspect groups" — maximal chains of keys
// whose consecutive pseudo-angles sit within kSuspectEps — are re-sorted
// with the exact orient2d_around comparator. Because the exact comparator
// is a strict total order (orientation, then squared distance, then
// index), the fixed-up sequence is the unique exact-sorted order, so the
// output is bit-identical to a direct exact sort. Keys stream out of
// either AoS (span of Vec2) or SoA (split x/y arrays) storage through one
// shared kernel. A brute-force O(n^3) checker is kept as the test oracle.
#pragma once

#include "geom/vec2.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lumen::util {
class ThreadPool;
}

namespace lumen::geom {

/// Symmetric visibility relation over a fixed point set. Rows are stored as
/// 64-bit blocks so edge_count/degree/complete popcount whole words instead
/// of scanning bits one at a time.
class VisibilityGraph {
 public:
  VisibilityGraph() = default;
  explicit VisibilityGraph(std::size_t n)
      : n_(n), words_(n == 0 ? 0 : (n + 63) / 64), bits_(n * words_, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool sees(std::size_t i, std::size_t j) const noexcept {
    return ((bits_[i * words_ + (j >> 6)] >> (j & 63)) & 1u) != 0;
  }
  void set(std::size_t i, std::size_t j) noexcept {
    set_half(i, j);
    set_half(j, i);
  }
  /// One direction only — the parallel observer sweep: each task owns row i
  /// outright (no two tasks touch the same word), and the mirrored sweep
  /// from j supplies the symmetric bit. Use set() everywhere else.
  void set_half(std::size_t i, std::size_t j) noexcept {
    bits_[i * words_ + (j >> 6)] |= std::uint64_t{1} << (j & 63);
  }

  /// Number of (unordered) visible pairs. O(n^2 / 64).
  [[nodiscard]] std::size_t edge_count() const noexcept;
  /// Degree of vertex i. O(n / 64).
  [[nodiscard]] std::size_t degree(std::size_t i) const noexcept;
  /// True iff every pair of distinct robots is mutually visible.
  /// Early-exits on the first block with a missing pair.
  [[nodiscard]] bool complete() const noexcept;

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;  ///< 64-bit blocks per row.
  std::vector<std::uint64_t> bits_;
};

/// One precomputed angular-sort key: everything the radix presort, the
/// exact comparator and the dedup pass need, packed into 32 bytes so each
/// comparison touches two contiguous records instead of re-deriving
/// subtractions and half-plane indices.
struct AngularKey {
  /// Deliberately uninitialized: the batch key build sizes the scratch
  /// vectors with resize() and then overwrites every slot with plain
  /// stores; a zeroing default constructor would memset ~32 bytes/point
  /// per observer for values that are never read.
  AngularKey() noexcept {}
  AngularKey(Vec2 d, double d2, float a, std::uint32_t i) noexcept
      : diff(d), dist2(d2), akey(a), index(i) {}

  Vec2 diff;            ///< pts[index] - observer, rounded once.
  double dist2;         ///< |diff|^2 for the same-ray tie-break.
  float akey;           ///< Diamond pseudo-angle of diff within its half.
  std::uint32_t index;  ///< Original point id.
};

/// Reusable workspace for visible_from: the per-observer sort keys
/// partitioned by half-plane (angle in [0, pi) vs [pi, 2pi)), plus the
/// radix-sort order buffers. Holding one per caller (or per pool worker)
/// makes the steady-state visibility sweep allocation-free: every buffer
/// keeps its capacity across calls, including across ExecutionCore resets
/// when the scratch is owned above the engine (see sim::LookArena).
struct VisibilityScratch {
  std::vector<AngularKey> upper;  ///< Keys with direction angle in [0, pi).
  std::vector<AngularKey> lower;  ///< Keys with direction angle in [pi, 2pi).
  std::vector<std::uint64_t> order;      ///< (akey bits << 32) | slot records.
  std::vector<std::uint64_t> order_tmp;  ///< Radix ping-pong buffer.
  /// Per-half presort records, filled by the batched SoA key build in the
  /// same pass that fills upper/lower (the gather loop the AoS path runs
  /// inside sort_half is fused into the key build on the SoA path).
  std::vector<std::uint64_t> upper_order;
  std::vector<std::uint64_t> lower_order;
  std::vector<std::uint32_t> dirty;      ///< VisibilityCache: deduped dirty set.
  std::vector<std::uint8_t> mark;        ///< VisibilityCache: membership mask.
};

/// Indices of the robots visible from observer `i` (excluding i itself).
/// Coincident points never see each other (they are collisions, flagged
/// elsewhere). O(n log n).
[[nodiscard]] std::vector<std::size_t> visible_from(std::span<const Vec2> pts,
                                                    std::size_t i);

/// Buffer-reusing overload: fills `out` with the visible indices using
/// `scratch` for the sort keys and workspace. Performs no heap allocation
/// once the buffers have warmed to the point count. Produces exactly the
/// same index sequence as the allocating overload (which delegates to this
/// one).
void visible_from(std::span<const Vec2> pts, std::size_t i,
                  VisibilityScratch& scratch, std::vector<std::size_t>& out);

/// SoA overload: identical output to the AoS form for pts[j] == {xs[j],
/// ys[j]}; the key-build loop streams the split coordinate arrays
/// directly, which is how the simulation's WorldState feeds the kernel
/// without materialising Vec2 pairs.
void visible_from(std::span<const double> xs, std::span<const double> ys,
                  std::size_t i, VisibilityScratch& scratch,
                  std::vector<std::size_t>& out);

/// Full visibility graph, O(n^2 log n). With a pool, observers fan out
/// across the workers (each task fills only its own rows, so the result is
/// bit-identical to the serial sweep for any pool size); nullptr runs
/// serially on the caller.
[[nodiscard]] VisibilityGraph compute_visibility(std::span<const Vec2> pts,
                                                 util::ThreadPool* pool = nullptr);

/// SoA full graph; identical output to the AoS form.
[[nodiscard]] VisibilityGraph compute_visibility(std::span<const double> xs,
                                                 std::span<const double> ys,
                                                 util::ThreadPool* pool = nullptr);

/// Brute-force oracle: is j visible from i? O(n) per query.
[[nodiscard]] bool visible_naive(std::span<const Vec2> pts, std::size_t i,
                                 std::size_t j);

/// Brute-force full graph, O(n^3). Test oracle only.
[[nodiscard]] VisibilityGraph compute_visibility_naive(std::span<const Vec2> pts);

/// True iff the configuration solves Complete Visibility: all points
/// distinct and every pair mutually visible. Pool as in compute_visibility.
[[nodiscard]] bool complete_visibility(std::span<const Vec2> pts,
                                       util::ThreadPool* pool = nullptr);

}  // namespace lumen::geom
