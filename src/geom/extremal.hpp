// lumen_geom: extremal pairwise statistics at scale.
//
// The O(n^2) pairwise scans in polygon.hpp are fine for snapshots, but the
// monitors and generators query whole configurations repeatedly; these are
// the classical O(n log n) kernels: divide-and-conquer closest pair and
// rotating-calipers diameter (over the convex hull).
#pragma once

#include "geom/vec2.hpp"

#include <cstddef>
#include <span>
#include <utility>

namespace lumen::geom {

struct PointPair {
  std::size_t first = 0;
  std::size_t second = 0;
  double distance = 0.0;
};

/// Closest pair of points, divide & conquer, O(n log n). Requires n >= 2.
/// Ties are broken arbitrarily but deterministically.
[[nodiscard]] PointPair closest_pair(std::span<const Vec2> pts);

/// Farthest pair (the diameter), rotating calipers over the convex hull,
/// O(n log n). Requires n >= 2. Degenerate (all-coincident) sets return
/// distance 0.
[[nodiscard]] PointPair farthest_pair(std::span<const Vec2> pts);

}  // namespace lumen::geom
