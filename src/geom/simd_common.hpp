// lumen_geom: scalar building blocks shared by every SIMD dispatch level.
//
// The vector kernels in simd_batch.inl process full lanes and delegate
// block tails (and the whole input, at the scalar level) to these helpers,
// so "what one point contributes" is defined in exactly one place. The
// scalar formulas here ARE the bit-identity reference: a vector lane is
// correct iff it reproduces these doubles bit for bit.
#pragma once

#include "geom/predicates.hpp"
#include "geom/visibility.hpp"
#include "geom/visibility_detail.hpp"

#include <bit>
#include <cstdint>

namespace lumen::geom::simd::detail {

/// Packs the radix presort record for a key about to land at `slot` in its
/// half (callers pass half.size() BEFORE the push_back).
inline std::uint64_t order_record(float akey, std::size_t slot) noexcept {
  return (std::uint64_t{std::bit_cast<std::uint32_t>(akey)} << 32) |
         static_cast<std::uint32_t>(slot);
}

/// Appends point j's angular key (direction d = p - o, nonzero) to the
/// half-partitioned key and presort-record vectors — one point of
/// detail::build_keys, with the sort_half record build fused in.
inline void append_key(Vec2 d, std::uint32_t j, VisibilityScratch& scratch) {
  using geom::detail::diamond_key;
  using geom::detail::half_of;
  if (half_of(d) == 0) {
    const float akey = diamond_key(d);
    scratch.upper_order.push_back(order_record(akey, scratch.upper.size()));
    scratch.upper.push_back(AngularKey{d, norm_sq(d), akey, j});
  } else {
    const float akey = diamond_key(Vec2{-d.x, -d.y});
    scratch.lower_order.push_back(order_record(akey, scratch.lower.size()));
    scratch.lower.push_back(AngularKey{d, norm_sq(d), akey, j});
  }
}

/// True only when the stage-A filter CERTIFIES orient2d(a, b, c) > 0 (c
/// strictly left of a->b). No exact fallback: an uncertain sign returns
/// false, which the interior cull treats as "keep the point" — sound,
/// because a false negative merely forgoes a discard.
inline bool certainly_left(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;
  if (!(det > 0.0)) return false;
  double detsum = 0.0;
  if (detleft > 0.0) {
    if (detright <= 0.0) return true;  // Opposite signs: det sign is exact.
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    detsum = -detleft - detright;  // det > 0 forces detright < detleft < 0.
  } else {
    return false;  // detleft rounded to zero: cannot certify.
  }
  return det >= geom::detail::kCcwErrBoundA * detsum;
}

/// Scalar cull test for one point against the CCW quad, matching the
/// vector lanes decision for decision.
inline bool inside_quad(const Vec2 quad[4], Vec2 p) noexcept {
  return certainly_left(quad[0], quad[1], p) &&
         certainly_left(quad[1], quad[2], p) &&
         certainly_left(quad[2], quad[3], p) &&
         certainly_left(quad[3], quad[0], p);
}

}  // namespace lumen::geom::simd::detail
