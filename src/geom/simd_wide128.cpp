// lumen_geom: 128-bit (two double lanes) batch kernels.
//
// Compiled on every 64-bit target whose baseline ISA has 128-bit vectors:
// SSE2 on x86-64, NEON on aarch64 — no extra -m flags needed, the generic
// vector-extension code in simd_batch.inl lowers to whichever the target
// provides. Reported as Level::kSse2 or Level::kNeon accordingly.
#include "geom/simd.hpp"
#include "geom/simd_common.hpp"
#include "util/radix.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

namespace lumen::geom::simd::wide128 {

#define LUMEN_SIMD_LANES 2
#include "geom/simd_batch.inl"
#undef LUMEN_SIMD_LANES

}  // namespace lumen::geom::simd::wide128
