// lumen_geom: scalar reference implementation of the batch kernels.
//
// This level always exists (LUMEN_SIMD=scalar selects it, and hosts with
// no vector kernels compiled in fall back to it). It IS the bit-identity
// reference: every vector level must reproduce these outputs byte for
// byte. Note it still performs the exact-split counting pass and fuses the
// presort-record build, so "scalar" differs from the vector levels only in
// lane width, never in behavior.
#include "geom/simd.hpp"
#include "geom/simd_common.hpp"
#include "util/radix.hpp"

namespace lumen::geom::simd::scalar {

void build_keys_soa(const double* xs, const double* ys, std::size_t n,
                    std::size_t i, Vec2 o, VisibilityScratch& scratch) {
  scratch.upper.clear();
  scratch.lower.clear();
  scratch.upper_order.clear();
  scratch.lower_order.clear();
  std::size_t n_upper = 0;
  std::size_t n_valid = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const double dx = xs[j] - o.x;
    const double dy = ys[j] - o.y;
    if (dx == 0.0 && dy == 0.0) continue;
    ++n_valid;
    if (dy > 0.0 || (dy == 0.0 && dx > 0.0)) ++n_upper;
  }
  scratch.upper.reserve(n_upper);
  scratch.upper_order.reserve(n_upper);
  scratch.lower.reserve(n_valid - n_upper);
  scratch.lower_order.reserve(n_valid - n_upper);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const double dx = xs[j] - o.x;
    const double dy = ys[j] - o.y;
    if (dx == 0.0 && dy == 0.0) continue;
    detail::append_key(Vec2{dx, dy}, static_cast<std::uint32_t>(j), scratch);
  }
}

void hull_cull_mask(const Vec2* pts, std::size_t n, const Vec2 quad[4],
                    std::uint8_t* inside) {
  for (std::size_t j = 0; j < n; ++j) {
    inside[j] = detail::inside_quad(quad, pts[j]) ? 1 : 0;
  }
}

void sort_f32key_records(std::vector<std::uint64_t>& records,
                         std::vector<std::uint64_t>& tmp, float max_key) {
  util::sort_f32key_records(records, tmp, max_key);
}

}  // namespace lumen::geom::simd::scalar
