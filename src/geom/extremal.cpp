#include "geom/extremal.hpp"

#include "geom/hull.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lumen::geom {

namespace {

struct Indexed {
  Vec2 p;
  std::size_t idx;
};

/// Recursive closest-pair over x-sorted points; `by_y` is the same range
/// kept y-sorted (classic merge-based variant avoiding re-sorting).
PointPair closest_rec(std::span<Indexed> by_x, std::vector<Indexed>& scratch) {
  const std::size_t n = by_x.size();
  if (n <= 3) {
    PointPair best{0, 0, std::numeric_limits<double>::infinity()};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = distance(by_x[i].p, by_x[j].p);
        if (d < best.distance) best = {by_x[i].idx, by_x[j].idx, d};
      }
    }
    std::sort(by_x.begin(), by_x.end(),
              [](const Indexed& a, const Indexed& b) { return a.p.y < b.p.y; });
    return best;
  }
  const std::size_t mid = n / 2;
  const double split_x = by_x[mid].p.x;
  PointPair left = closest_rec(by_x.subspan(0, mid), scratch);
  const PointPair right = closest_rec(by_x.subspan(mid), scratch);
  PointPair best = left.distance <= right.distance ? left : right;

  // Merge halves by y.
  scratch.assign(by_x.begin(), by_x.end());
  std::merge(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(mid),
             scratch.begin() + static_cast<std::ptrdiff_t>(mid), scratch.end(),
             by_x.begin(),
             [](const Indexed& a, const Indexed& b) { return a.p.y < b.p.y; });

  // Strip pass: points within best.distance of the split line, y-ordered;
  // each needs comparing to at most the next few strip mates.
  std::vector<const Indexed*> strip;
  strip.reserve(n);
  for (const auto& e : by_x) {
    if (std::fabs(e.p.x - split_x) < best.distance) strip.push_back(&e);
  }
  for (std::size_t i = 0; i < strip.size(); ++i) {
    for (std::size_t j = i + 1;
         j < strip.size() && strip[j]->p.y - strip[i]->p.y < best.distance; ++j) {
      const double d = distance(strip[i]->p, strip[j]->p);
      if (d < best.distance) best = {strip[i]->idx, strip[j]->idx, d};
    }
  }
  return best;
}

}  // namespace

PointPair closest_pair(std::span<const Vec2> pts) {
  if (pts.size() < 2) {
    throw std::invalid_argument("closest_pair: need at least two points");
  }
  std::vector<Indexed> work(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) work[i] = {pts[i], i};
  std::sort(work.begin(), work.end(), [](const Indexed& a, const Indexed& b) {
    return a.p.x < b.p.x || (a.p.x == b.p.x && a.p.y < b.p.y);
  });
  std::vector<Indexed> scratch;
  scratch.reserve(work.size());
  PointPair best = closest_rec(work, scratch);
  if (best.first > best.second) std::swap(best.first, best.second);
  return best;
}

PointPair farthest_pair(std::span<const Vec2> pts) {
  if (pts.size() < 2) {
    throw std::invalid_argument("farthest_pair: need at least two points");
  }
  const auto hull = convex_hull_indices(pts);
  if (hull.size() == 1) {
    // All points coincident.
    return {hull[0], hull[0], 0.0};
  }
  if (hull.size() == 2) {
    PointPair p{hull[0], hull[1], distance(pts[hull[0]], pts[hull[1]])};
    if (p.first > p.second) std::swap(p.first, p.second);
    return p;
  }
  // Rotating calipers: advance the antipodal pointer while the triangle
  // area (distance to the current edge) keeps growing.
  const std::size_t h = hull.size();
  const auto at = [&](std::size_t k) { return pts[hull[k % h]]; };
  PointPair best{0, 0, 0.0};
  std::size_t j = 1;
  for (std::size_t i = 0; i < h; ++i) {
    const Vec2 a = at(i);
    const Vec2 b = at(i + 1);
    const auto area2 = [&](std::size_t k) {
      return std::fabs(cross(b - a, at(k) - a));
    };
    while (area2(j + 1) > area2(j)) j = (j + 1) % h;
    for (const Vec2 q : {a, b}) {
      const double d = distance(q, at(j));
      if (d > best.distance) {
        best = {hull[i % h], hull[j % h], d};
        if (q == b) best.first = hull[(i + 1) % h];
      }
    }
  }
  if (best.first > best.second) std::swap(best.first, best.second);
  return best;
}

}  // namespace lumen::geom
