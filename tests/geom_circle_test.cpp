// Circumcircle and smallest-enclosing-circle tests, including the
// containment/minimality invariants checked against brute force.
#include "geom/circle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace lumen::geom {
namespace {

TEST(Circumcircle, RightTriangle) {
  // Right triangle: circumcenter is the hypotenuse midpoint.
  const Circle c = circumcircle({0, 0}, {4, 0}, {0, 3});
  EXPECT_NEAR(c.center.x, 2.0, 1e-12);
  EXPECT_NEAR(c.center.y, 1.5, 1e-12);
  EXPECT_NEAR(c.radius, 2.5, 1e-12);
}

TEST(Circumcircle, EquidistantFromAllThree) {
  util::Prng rng{3};
  for (int i = 0; i < 200; ++i) {
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Circle c = circumcircle(a, b, p);
    if (c.radius == 0.0) continue;  // Degenerate draw.
    EXPECT_NEAR(distance(c.center, a), c.radius, 1e-6);
    EXPECT_NEAR(distance(c.center, b), c.radius, 1e-6);
    EXPECT_NEAR(distance(c.center, p), c.radius, 1e-6);
  }
}

TEST(Circumcircle, CollinearDegenerates) {
  const Circle c = circumcircle({0, 0}, {1, 1}, {2, 2});
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
  EXPECT_NEAR(c.center.x, 1.0, 1e-12);
}

TEST(Sec, TrivialSizes) {
  EXPECT_DOUBLE_EQ(smallest_enclosing_circle({}).radius, 0.0);
  const std::vector<Vec2> one = {{3, 4}};
  const Circle c1 = smallest_enclosing_circle(one);
  EXPECT_EQ(c1.center, (Vec2{3, 4}));
  EXPECT_DOUBLE_EQ(c1.radius, 0.0);
  const std::vector<Vec2> two = {{0, 0}, {6, 8}};
  const Circle c2 = smallest_enclosing_circle(two);
  EXPECT_NEAR(c2.radius, 5.0, 1e-12);
  EXPECT_NEAR(c2.center.x, 3.0, 1e-12);
}

TEST(Sec, ObtuseTriangleUsesLongestSide) {
  // Very obtuse: the circle through the two far points suffices.
  const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {5, 0.1}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-3);
}

TEST(Sec, ContainsAllPoints) {
  util::Prng rng{9};
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Vec2> pts;
    const std::size_t n = 1 + rng.next_below(80);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    const Circle c = smallest_enclosing_circle(pts);
    for (const Vec2 p : pts) {
      EXPECT_TRUE(c.contains(p, 1e-6 * (1.0 + c.radius)))
          << "r=" << c.radius << " d=" << distance(c.center, p);
    }
  }
}

TEST(Sec, MinimalityAgainstBruteForce) {
  // The SEC is determined by <=3 points; brute-force all 2- and 3-subsets
  // and compare the best enclosing radius.
  util::Prng rng{13};
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 12; ++i) {
      pts.push_back({rng.uniform(-50, 50), rng.uniform(-50, 50)});
    }
    const Circle fast = smallest_enclosing_circle(pts);
    double best = std::numeric_limits<double>::infinity();
    const auto encloses_all = [&](const Circle& c) {
      for (const Vec2 p : pts) {
        if (!c.contains(p, 1e-9 * (1 + c.radius))) return false;
      }
      return true;
    };
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        const Circle c2{midpoint(pts[i], pts[j]), 0.5 * distance(pts[i], pts[j])};
        if (encloses_all(c2)) best = std::min(best, c2.radius);
        for (std::size_t k = j + 1; k < pts.size(); ++k) {
          const Circle c3 = circumcircle(pts[i], pts[j], pts[k]);
          if (c3.radius > 0 && encloses_all(c3)) best = std::min(best, c3.radius);
        }
      }
    }
    EXPECT_NEAR(fast.radius, best, 1e-6 * (1 + best));
  }
}

TEST(Sec, DeterministicAcrossCalls) {
  util::Prng rng{17};
  std::vector<Vec2> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5)});
  }
  const Circle a = smallest_enclosing_circle(pts);
  const Circle b = smallest_enclosing_circle(pts);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.radius, b.radius);
}

TEST(Circle, BoundaryPredicate) {
  const Circle c{{0, 0}, 5.0};
  EXPECT_TRUE(c.on_boundary({3, 4}));
  EXPECT_FALSE(c.on_boundary({3, 3.9}));
  EXPECT_TRUE(c.contains({1, 1}));
  EXPECT_FALSE(c.contains({5, 5}));
}

TEST(Sec, DuplicatePointsHandled) {
  const std::vector<Vec2> pts = {{1, 1}, {1, 1}, {1, 1}, {4, 5}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 0.5 * distance({1, 1}, {4, 5}), 1e-9);
}

}  // namespace
}  // namespace lumen::geom
