// Incremental visibility: the cache must be indistinguishable, bit for
// bit, from the one-shot kernel — and runs with caching on, off, or using
// a shared cross-run arena must produce identical RunResults.
//
// Two layers of evidence:
//  1. A direct property test drives geom::VisibilityCache through random
//     interleavings of committed moves, deaths (which commit nothing),
//     transient in-flight Looks and repeated observer Looks, checking every
//     answer against the naive SoA kernel on the same arrays. This walks
//     all four paths (replay / repair / rebuild / transient) plus the
//     admission warm-up and the budget fall-through.
//  2. End-to-end runs on all three schedulers, pool sizes 1 and 4, with
//     and without fault plans, digesting the full RunResult for cache-on
//     vs cache-off and private-arena vs shared-arena equality.
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "geom/visibility.hpp"
#include "geom/visibility_cache.hpp"
#include "sim/look_arena.hpp"
#include "sim/run.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace lumen::sim {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t bits(double d) noexcept {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t run_digest(const RunResult& r) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, r.converged ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(r.outcome));
  h = mix(h, bits(r.final_time));
  h = mix(h, r.epochs);
  h = mix(h, r.rounds);
  h = mix(h, r.total_cycles);
  h = mix(h, r.total_moves);
  h = mix(h, bits(r.total_distance));
  for (const auto& p : r.final_positions) {
    h = mix(h, bits(p.x));
    h = mix(h, bits(p.y));
  }
  for (const model::Light l : r.final_lights) {
    h = mix(h, static_cast<std::uint64_t>(l));
  }
  for (const auto& m : r.moves) {
    h = mix(h, m.robot);
    h = mix(h, bits(m.t0));
    h = mix(h, bits(m.t1));
    h = mix(h, bits(m.from.x));
    h = mix(h, bits(m.from.y));
    h = mix(h, bits(m.to.x));
    h = mix(h, bits(m.to.y));
  }
  for (const std::uint8_t c : r.crashed) h = mix(h, c);
  h = mix(h, r.faults.crashes);
  h = mix(h, r.faults.corrupted_reads);
  h = mix(h, r.faults.dropped_observations);
  h = mix(h, r.faults.perturbed_observations);
  return h;
}

/// Drives one cache instance through `steps` random events and checks
/// every Look against the naive kernel. `budget` scales the cached
/// observer prefix (a small budget exercises the uncached fall-through).
void churn_against_oracle(std::uint64_t seed, std::size_t n,
                          std::size_t budget, int steps) {
  util::Prng rng(seed);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(-10.0, 10.0);
    ys[i] = rng.uniform(-10.0, 10.0);
  }
  std::vector<std::uint32_t> write_log;
  geom::VisibilityCache cache;
  cache.reset(n, budget);
  geom::VisibilityScratch cache_scratch;
  geom::VisibilityScratch naive_scratch;
  std::vector<std::size_t> got;
  std::vector<std::size_t> want;
  // In-flight interpolation buffers for the transient path.
  std::vector<double> fly_xs;
  std::vector<double> fly_ys;
  for (int step = 0; step < steps; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.25) {
      // Commit a move: the ONLY event that appends to the write log.
      const auto r = static_cast<std::uint32_t>(rng.next_below(n));
      xs[r] = rng.uniform(-10.0, 10.0);
      ys[r] = rng.uniform(-10.0, 10.0);
      write_log.push_back(r);
      continue;
    }
    if (roll < 0.30) {
      // A burst of commits (forces the rebuild path on the next Look of a
      // long-idle observer: dirty set above the repair bound).
      const std::size_t burst = 1 + rng.next_below(n / 2);
      for (std::size_t k = 0; k < burst; ++k) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(n));
        xs[r] = rng.uniform(-10.0, 10.0);
        ys[r] = rng.uniform(-10.0, 10.0);
        write_log.push_back(r);
      }
      continue;
    }
    if (roll < 0.40) {
      // Transient Look: someone is mid-move, coordinates interpolated.
      // Deaths commit nothing, so this doubles as the crash model — a
      // crashed robot's position simply stops appearing in the log.
      fly_xs.assign(xs.begin(), xs.end());
      fly_ys.assign(ys.begin(), ys.end());
      const std::size_t mover = rng.next_below(n);
      fly_xs[mover] += rng.uniform(-0.5, 0.5);
      fly_ys[mover] += rng.uniform(-0.5, 0.5);
      const std::size_t observer = rng.next_below(n);
      cache.visible_from(fly_xs, fly_ys, observer, write_log,
                         /*moving_count=*/1, cache_scratch, got);
      geom::visible_from(fly_xs, fly_ys, observer, naive_scratch, want);
      ASSERT_EQ(got, want) << "transient look, observer " << observer
                           << ", step " << step;
      continue;
    }
    // Committed Look. Biasing toward low observers revisits cached entries
    // often enough to pass admission and hit replay (no commits since) and
    // repair (few commits since).
    const std::size_t observer = roll < 0.8
                                     ? rng.next_below((n / 4) + 1)
                                     : rng.next_below(n);
    cache.visible_from(xs, ys, observer, write_log, /*moving_count=*/0,
                       cache_scratch, got);
    geom::visible_from(xs, ys, observer, naive_scratch, want);
    ASSERT_EQ(got, want) << "committed look, observer " << observer
                         << ", step " << step;
  }
  // The churn above must actually have exercised the incremental paths,
  // or the property is vacuous.
  EXPECT_GT(cache.rebuilds(), 0u);
  if (budget >= n * n * geom::VisibilityCache::kBytesPerRobot) {
    EXPECT_GT(cache.replays() + cache.repairs(), 0u)
        << "full-budget churn never replayed or repaired";
  }
}

TEST(IncrementalVisibilityProperty, CacheMatchesNaiveOracleUnderChurn) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    churn_against_oracle(seed, 48, /*budget=*/256u << 20, /*steps=*/600);
  }
}

TEST(IncrementalVisibilityProperty, SmallBudgetFallsThroughToKernel) {
  // Budget for only ~8 of 48 observers: indices past the cap must still be
  // answered correctly by the one-shot fall-through.
  const std::size_t n = 48;
  const std::size_t budget = 8 * n * geom::VisibilityCache::kBytesPerRobot;
  churn_against_oracle(7, n, budget, 600);
}

TEST(IncrementalVisibilityProperty, ZeroBudgetDisablesCaching) {
  geom::VisibilityCache cache;
  cache.reset(16, 0);
  EXPECT_EQ(cache.cached_observers(), 0u);
  churn_against_oracle(5, 16, 0, 200);
}

struct RunCase {
  const char* label;
  const char* algorithm;
  SchedulerKind scheduler;
  std::size_t n;
  std::uint64_t seed;
  bool with_faults;
};

const RunCase kRunCases[] = {
    {"fsync", "ssync-parallel", SchedulerKind::kFsync, 20, 3, false},
    {"ssync", "ssync-parallel", SchedulerKind::kSsync, 20, 5, false},
    {"async", "async-log", SchedulerKind::kAsync, 14, 7, false},
    {"fsync-faults", "ssync-parallel", SchedulerKind::kFsync, 20, 3, true},
    {"ssync-faults", "ssync-parallel", SchedulerKind::kSsync, 20, 5, true},
    {"async-faults", "async-log", SchedulerKind::kAsync, 14, 7, true},
};

RunResult run_case(const RunCase& c, std::size_t cache_budget,
                   util::ThreadPool* pool, LookArena* arena) {
  RunConfig config;
  config.scheduler = c.scheduler;
  config.seed = c.seed;
  config.pool = pool;
  config.arena = arena;
  config.visibility_cache_budget = cache_budget;
  if (c.with_faults) {
    config.fault.crash.count = 2;
    config.fault.crash.rate = 0.02;
    config.fault.light.probability = 0.05;
    config.fault.noise.sigma = 1e-4;
    config.fault.noise.dropout = 0.02;
  }
  const auto initial =
      gen::generate(gen::ConfigFamily::kUniformDisk, c.n, c.seed);
  const auto algo = core::make_algorithm(c.algorithm);
  return run_simulation(*algo, initial, config);
}

TEST(IncrementalVisibilityRuns, CacheOnEqualsCacheOffEverywhere) {
  util::ThreadPool pool4{4};
  for (const RunCase& c : kRunCases) {
    const std::uint64_t off = run_digest(run_case(c, 0, nullptr, nullptr));
    const std::uint64_t on =
        run_digest(run_case(c, 256u << 20, nullptr, nullptr));
    EXPECT_EQ(on, off) << c.label << " serial";
    const std::uint64_t pooled =
        run_digest(run_case(c, 256u << 20, &pool4, nullptr));
    EXPECT_EQ(pooled, off) << c.label << " pool=4";
  }
}

TEST(IncrementalVisibilityRuns, TinyCacheBudgetIsStillBitIdentical) {
  // A budget that caches only a fraction of the swarm mixes cached and
  // fall-through observers inside one run.
  for (const RunCase& c : kRunCases) {
    const std::uint64_t off = run_digest(run_case(c, 0, nullptr, nullptr));
    const std::size_t tiny =
        4 * c.n * geom::VisibilityCache::kBytesPerRobot;
    EXPECT_EQ(run_digest(run_case(c, tiny, nullptr, nullptr)), off)
        << c.label;
  }
}

TEST(IncrementalVisibilityRuns, SharedArenaAcrossRunsIsBitIdentical) {
  // The campaign pattern: one arena reused for every cell. Back-to-back
  // runs with the shared arena must match private-arena runs exactly, and
  // the arena's retained capacity must not leak state between them.
  LookArena shared;
  for (const RunCase& c : kRunCases) {
    const std::uint64_t expected =
        run_digest(run_case(c, 256u << 20, nullptr, nullptr));
    EXPECT_EQ(run_digest(run_case(c, 256u << 20, nullptr, &shared)), expected)
        << c.label << " first shared-arena run";
    EXPECT_EQ(run_digest(run_case(c, 256u << 20, nullptr, &shared)), expected)
        << c.label << " repeat on warm arena";
  }
}

}  // namespace
}  // namespace lumen::sim
