// Bit-identity pinning for the dispatched SIMD batch kernels.
//
// The contract in geom/simd.hpp is that every vector level reproduces the
// scalar reference BYTE FOR BYTE: same AngularKey images, same presort
// records, same cull mask, same sorted record order. These tests enumerate
// every level the running binary supports (set_active_level refuses the
// rest) and memcmp each kernel's output against the scalar level across
// adversarial input families — uniform random, collinear-heavy (exercises
// the dy == 0 half-plane tie-break), coincident-heavy (skipped lanes), and
// a small integer lattice (exactly representable coordinates, maximal key
// ties) — at sizes chosen to hit every vector-width remainder path.
#include "geom/simd.hpp"
#include "geom/visibility.hpp"
#include "util/prng.hpp"
#include "util/radix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace lumen {
namespace {

using geom::Vec2;
using geom::simd::Level;

std::vector<Level> supported_levels() {
  std::vector<Level> levels;
  for (Level level : {Level::kScalar, Level::kSse2, Level::kNeon, Level::kAvx2}) {
    if (geom::simd::set_active_level(level)) levels.push_back(level);
  }
  geom::simd::set_active_level(geom::simd::best_supported_level());
  return levels;
}

/// Restores the default dispatch choice when a test exits, even on failure.
struct LevelGuard {
  ~LevelGuard() {
    geom::simd::set_active_level(geom::simd::best_supported_level());
  }
};

struct InputFamily {
  const char* name;
  std::vector<Vec2> (*make)(std::size_t n, std::uint64_t seed);
};

std::vector<Vec2> make_random(std::size_t n, std::uint64_t seed) {
  util::Prng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    pts.push_back(Vec2{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)});
  }
  return pts;
}

std::vector<Vec2> make_collinear_heavy(std::size_t n, std::uint64_t seed) {
  // Mostly points on two rays through the observer region (lots of exact
  // dy == 0 and equal-akey lanes), with a sprinkle of generic points.
  util::Prng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    switch (j % 4) {
      case 0: pts.push_back(Vec2{static_cast<double>(j) + 1.0, 0.0}); break;
      case 1: pts.push_back(Vec2{-static_cast<double>(j), 0.0}); break;
      case 2:
        pts.push_back(Vec2{static_cast<double>(j), 2.0 * static_cast<double>(j)});
        break;
      default:
        pts.push_back(Vec2{rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
    }
  }
  return pts;
}

std::vector<Vec2> make_coincident_heavy(std::size_t n, std::uint64_t seed) {
  // Half the points duplicate a handful of sites (including the observer
  // slot's own position, which every kernel must skip as coincident).
  util::Prng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (j % 2 == 0) {
      const double site = static_cast<double>(j % 6);
      pts.push_back(Vec2{site, -site});
    } else {
      pts.push_back(Vec2{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
    }
  }
  return pts;
}

std::vector<Vec2> make_lattice(std::size_t n, std::uint64_t /*seed*/) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    pts.push_back(Vec2{static_cast<double>(j % 17) - 8.0,
                       static_cast<double>(j / 17) - 8.0});
  }
  return pts;
}

constexpr InputFamily kFamilies[] = {
    {"random", make_random},
    {"collinear", make_collinear_heavy},
    {"coincident", make_coincident_heavy},
    {"lattice", make_lattice},
};

// Sizes straddling every remainder path of the 2- and 4-lane kernels.
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 5, 8, 9, 16, 17, 64, 257};

void run_build(const std::vector<Vec2>& pts, std::size_t i,
               geom::VisibilityScratch& scratch) {
  std::vector<double> xs, ys;
  for (const Vec2 p : pts) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  const Vec2 o = pts.empty() ? Vec2{0.0, 0.0} : pts[i];
  geom::simd::build_keys_soa(xs.data(), ys.data(), pts.size(), i, o, scratch);
}

void expect_keys_equal(const std::vector<geom::AngularKey>& ref,
                       const std::vector<geom::AngularKey>& got,
                       const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  if (!ref.empty()) {
    EXPECT_EQ(std::memcmp(ref.data(), got.data(),
                          ref.size() * sizeof(geom::AngularKey)),
              0)
        << what << ": AngularKey bytes differ from the scalar reference";
  }
}

TEST(GeomSimd, EveryLevelBuildsBitIdenticalKeys) {
  LevelGuard guard;
  const auto levels = supported_levels();
  ASSERT_FALSE(levels.empty());
  ASSERT_EQ(levels.front(), Level::kScalar);
  for (const InputFamily& family : kFamilies) {
    for (std::size_t n : kSizes) {
      const auto pts = family.make(n, 7u * n + 13u);
      std::vector<std::size_t> observers = {0};
      if (n > 2) observers.push_back(n / 2);
      if (n > 1) observers.push_back(n - 1);
      for (std::size_t i : observers) {
        geom::VisibilityScratch ref;
        ASSERT_TRUE(geom::simd::set_active_level(Level::kScalar));
        run_build(pts, i, ref);
        for (Level level : levels) {
          if (level == Level::kScalar) continue;
          geom::VisibilityScratch got;
          ASSERT_TRUE(geom::simd::set_active_level(level));
          run_build(pts, i, got);
          const std::string what =
              std::string(family.name) + " n=" + std::to_string(n) + " i=" +
              std::to_string(i) + " level=" +
              std::string(geom::simd::to_string(level));
          expect_keys_equal(ref.upper, got.upper, what + " upper");
          expect_keys_equal(ref.lower, got.lower, what + " lower");
          EXPECT_EQ(ref.upper_order, got.upper_order) << what;
          EXPECT_EQ(ref.lower_order, got.lower_order) << what;
        }
      }
    }
  }
}

TEST(GeomSimd, EveryLevelCullsBitIdentically) {
  LevelGuard guard;
  const auto levels = supported_levels();
  for (const InputFamily& family : kFamilies) {
    for (std::size_t n : kSizes) {
      if (n < 4) continue;
      const auto pts = family.make(n, 31u * n + 5u);
      // The Akl–Toussaint extreme quad, exactly as hull.cpp assembles it.
      std::size_t iw = 0, is = 0, ie = 0, in = 0;
      for (std::size_t j = 1; j < n; ++j) {
        if (pts[j].x < pts[iw].x) iw = j;
        if (pts[j].y < pts[is].y) is = j;
        if (pts[j].x > pts[ie].x) ie = j;
        if (pts[j].y > pts[in].y) in = j;
      }
      const Vec2 quad[4] = {pts[iw], pts[is], pts[ie], pts[in]};
      std::vector<std::uint8_t> ref(n, 0xcd);
      ASSERT_TRUE(geom::simd::set_active_level(Level::kScalar));
      geom::simd::hull_cull_mask(pts.data(), n, quad, ref.data());
      for (Level level : levels) {
        if (level == Level::kScalar) continue;
        std::vector<std::uint8_t> got(n, 0xab);
        ASSERT_TRUE(geom::simd::set_active_level(level));
        geom::simd::hull_cull_mask(pts.data(), n, quad, got.data());
        EXPECT_EQ(ref, got)
            << family.name << " n=" << n
            << " level=" << geom::simd::to_string(level);
      }
    }
  }
}

TEST(GeomSimd, EveryLevelSortsRecordsCanonically) {
  LevelGuard guard;
  const auto levels = supported_levels();
  util::Prng rng(424242);
  for (std::size_t m : {0u, 1u, 50u, 95u, 96u, 97u, 300u, 4096u}) {
    // Diamond pseudo-angles: finite floats in [0, 2), heavy on ties.
    std::vector<std::uint64_t> records;
    records.reserve(m);
    for (std::size_t k = 0; k < m; ++k) {
      const float key = (k % 5 == 0)
                            ? static_cast<float>(k % 7) * 0.25f
                            : static_cast<float>(rng.uniform(0.0, 2.0));
      std::uint64_t bits = 0;
      std::memcpy(&bits, &key, sizeof(key));
      records.push_back((bits << 32) | static_cast<std::uint32_t>(k));
    }
    std::vector<std::uint64_t> expected = records;
    std::sort(expected.begin(), expected.end());
    for (Level level : levels) {
      ASSERT_TRUE(geom::simd::set_active_level(level));
      std::vector<std::uint64_t> got = records;
      std::vector<std::uint64_t> tmp;
      geom::simd::sort_angular_records(got, tmp, 2.0f);
      EXPECT_EQ(expected, got)
          << "m=" << m << " level=" << geom::simd::to_string(level);
    }
  }
}

TEST(GeomSimd, Key64RadixMatchesStableSort) {
  util::Prng rng(99);
  for (std::size_t m : {0u, 3u, 95u, 96u, 500u, 3000u}) {
    std::vector<util::Key64Record> records;
    records.reserve(m);
    for (std::size_t k = 0; k < m; ++k) {
      // Narrow key range => dense ties, the case that breaks unstable sorts.
      const std::uint64_t key =
          static_cast<std::uint64_t>(rng.uniform(0.0, 17.0)) << 40;
      records.push_back({key, static_cast<std::uint32_t>(k)});
    }
    std::vector<util::Key64Record> expected = records;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const util::Key64Record& a, const util::Key64Record& b) {
                       return a.key < b.key;
                     });
    std::vector<util::Key64Record> tmp;
    util::sort_key64_records(records, tmp);
    ASSERT_EQ(expected.size(), records.size()) << "m=" << m;
    for (std::size_t k = 0; k < m; ++k) {
      EXPECT_EQ(expected[k].key, records[k].key) << "m=" << m << " k=" << k;
      EXPECT_EQ(expected[k].slot, records[k].slot) << "m=" << m << " k=" << k;
    }
  }
}

TEST(GeomSimd, ActiveLevelRoundTripsThroughStrings) {
  LevelGuard guard;
  for (Level level : supported_levels()) {
    ASSERT_TRUE(geom::simd::set_active_level(level));
    EXPECT_EQ(geom::simd::active_level(), level);
    const auto parsed =
        geom::simd::level_from_string(geom::simd::to_string(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
}

}  // namespace
}  // namespace lumen
