// Polygon utility tests.
#include "geom/polygon.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace lumen::geom {
namespace {

const std::vector<Vec2> kUnitSquare = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};

TEST(PolygonArea, SquareAndTriangle) {
  EXPECT_DOUBLE_EQ(polygon_signed_area(kUnitSquare), 1.0);
  EXPECT_DOUBLE_EQ(polygon_area(kUnitSquare), 1.0);
  const std::vector<Vec2> tri = {{0, 0}, {4, 0}, {0, 3}};
  EXPECT_DOUBLE_EQ(polygon_area(tri), 6.0);
  // Clockwise orientation flips the sign.
  const std::vector<Vec2> cw = {{0, 1}, {1, 1}, {1, 0}, {0, 0}};
  EXPECT_DOUBLE_EQ(polygon_signed_area(cw), -1.0);
  EXPECT_DOUBLE_EQ(polygon_area(cw), 1.0);
}

TEST(PolygonArea, DegenerateCases) {
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Vec2>{}), 0.0);
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Vec2>{{1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Vec2>{{1, 1}, {2, 2}}), 0.0);
  const std::vector<Vec2> collinear = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_DOUBLE_EQ(polygon_area(collinear), 0.0);
}

TEST(PolygonCentroid, SquareCenter) {
  const Vec2 c = polygon_centroid(kUnitSquare);
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(PolygonCentroid, DegenerateFallsBackToVertexMean) {
  const std::vector<Vec2> collinear = {{0, 0}, {2, 0}, {4, 0}};
  const Vec2 c = polygon_centroid(collinear);
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 0.0, 1e-12);
}

TEST(VertexMean, Basic) {
  EXPECT_EQ(vertex_mean(std::vector<Vec2>{}), (Vec2{0, 0}));
  const Vec2 m = vertex_mean(kUnitSquare);
  EXPECT_NEAR(m.x, 0.5, 1e-12);
  EXPECT_NEAR(m.y, 0.5, 1e-12);
}

TEST(PolygonConvexity, StrictlyConvexRecognition) {
  EXPECT_TRUE(polygon_strictly_convex_ccw(kUnitSquare));
  // Clockwise fails (right turns).
  const std::vector<Vec2> cw = {{0, 1}, {1, 1}, {1, 0}, {0, 0}};
  EXPECT_FALSE(polygon_strictly_convex_ccw(cw));
  // Collinear run fails strictness.
  const std::vector<Vec2> with_mid = {{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_FALSE(polygon_strictly_convex_ccw(with_mid));
  // Reflex vertex fails.
  const std::vector<Vec2> reflex = {{0, 0}, {4, 0}, {2, 1}, {4, 4}, {0, 4}};
  EXPECT_FALSE(polygon_strictly_convex_ccw(reflex));
  EXPECT_FALSE(polygon_strictly_convex_ccw(std::vector<Vec2>{{0, 0}, {1, 0}}));
}

TEST(PolygonContains, StrictContainment) {
  EXPECT_TRUE(convex_polygon_contains_strict(kUnitSquare, {0.5, 0.5}));
  EXPECT_FALSE(convex_polygon_contains_strict(kUnitSquare, {0.5, 0.0}));  // On edge.
  EXPECT_FALSE(convex_polygon_contains_strict(kUnitSquare, {0, 0}));      // Vertex.
  EXPECT_FALSE(convex_polygon_contains_strict(kUnitSquare, {2, 2}));      // Outside.
  EXPECT_FALSE(convex_polygon_contains_strict(std::vector<Vec2>{{0, 0}, {1, 0}}, {0.5, 0.0}));
}

TEST(PolygonPerimeter, SquareAndDegenerate) {
  EXPECT_DOUBLE_EQ(polygon_perimeter(kUnitSquare), 4.0);
  EXPECT_DOUBLE_EQ(polygon_perimeter(std::vector<Vec2>{{0, 0}}), 0.0);
  // A 2-gon traverses the segment twice (closed walk).
  EXPECT_DOUBLE_EQ(polygon_perimeter(std::vector<Vec2>{{0, 0}, {3, 4}}), 10.0);
}

TEST(PointSetMetrics, DiameterAndMinDistance) {
  const std::vector<Vec2> pts = {{0, 0}, {3, 4}, {1, 0}};
  EXPECT_DOUBLE_EQ(point_set_diameter(pts), 5.0);
  EXPECT_DOUBLE_EQ(min_pairwise_distance(pts), 1.0);
  EXPECT_DOUBLE_EQ(point_set_diameter(std::vector<Vec2>{{1, 1}}), 0.0);
  EXPECT_TRUE(std::isinf(min_pairwise_distance(std::vector<Vec2>{{1, 1}})));
}

TEST(PolygonCentroid, InsideForRandomConvexPolygons) {
  util::Prng rng{31};
  for (int iter = 0; iter < 50; ++iter) {
    // Random convex polygon: sorted angles on a circle with radial jitter.
    std::vector<double> angles;
    const int k = 3 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < k; ++i) angles.push_back(rng.uniform(0, 6.283185307179586));
    std::sort(angles.begin(), angles.end());
    std::vector<Vec2> poly;
    for (const double a : angles) {
      poly.push_back({10 * std::cos(a), 10 * std::sin(a)});
    }
    const Vec2 c = polygon_centroid(poly);
    if (polygon_strictly_convex_ccw(poly)) {
      EXPECT_TRUE(convex_polygon_contains_strict(poly, c));
    }
  }
}

}  // namespace
}  // namespace lumen::geom
