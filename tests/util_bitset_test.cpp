// Word-boundary coverage for util::DynamicBitset.
//
// The simulation packs per-robot flags (alive, move-in-flight) 64 to the
// word and hands the raw words out through sim::WorldView, so the edges
// that matter are exactly the word boundaries: sizes one below, at, and one
// above a multiple of 64. The tail-bits-zero invariant is load-bearing —
// count()/any() never mask — so it is pinned here for every boundary size.
#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lumen::util {
namespace {

const std::size_t kBoundarySizes[] = {63, 64, 65, 127, 128, 129};

TEST(DynamicBitsetWords, WordCountRoundsUp) {
  EXPECT_EQ(DynamicBitset::word_count(0), 0u);
  EXPECT_EQ(DynamicBitset::word_count(1), 1u);
  EXPECT_EQ(DynamicBitset::word_count(63), 1u);
  EXPECT_EQ(DynamicBitset::word_count(64), 1u);
  EXPECT_EQ(DynamicBitset::word_count(65), 2u);
  EXPECT_EQ(DynamicBitset::word_count(127), 2u);
  EXPECT_EQ(DynamicBitset::word_count(128), 2u);
  EXPECT_EQ(DynamicBitset::word_count(129), 3u);
}

TEST(DynamicBitsetWords, AssignTrueKeepsTailBitsZero) {
  for (const std::size_t n : kBoundarySizes) {
    DynamicBitset bits(n, true);
    EXPECT_EQ(bits.size(), n);
    EXPECT_EQ(bits.count(), n) << "n=" << n;
    EXPECT_TRUE(bits.any());
    EXPECT_FALSE(bits.none());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(bits.test(i)) << "n=" << n << " i=" << i;
    }
    // The invariant itself: bits past size() in the last word are zero.
    const auto words = bits.words();
    ASSERT_EQ(words.size(), DynamicBitset::word_count(n));
    const std::size_t tail = n & 63;
    if (tail != 0) {
      const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
      EXPECT_EQ(words.back() & ~mask, 0u) << "n=" << n;
    }
  }
}

TEST(DynamicBitsetWords, SetAndResetAcrossWordBoundary) {
  for (const std::size_t n : kBoundarySizes) {
    DynamicBitset bits(n, false);
    EXPECT_EQ(bits.count(), 0u);
    EXPECT_TRUE(bits.none());
    // Set the bits straddling each 64-bit boundary plus both ends.
    std::vector<std::size_t> picks = {0, n - 1};
    for (std::size_t b = 64; b < n; b += 64) {
      picks.push_back(b - 1);
      picks.push_back(b);
    }
    for (const std::size_t i : picks) bits.set(i);
    for (const std::size_t i : picks) {
      EXPECT_TRUE(bits.test(i)) << "n=" << n << " i=" << i;
    }
    std::size_t distinct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (bits.test(i)) ++distinct;
    }
    EXPECT_EQ(bits.count(), distinct) << "n=" << n;
    for (const std::size_t i : picks) bits.reset(i);
    EXPECT_EQ(bits.count(), 0u) << "n=" << n;
    EXPECT_TRUE(bits.none());
  }
}

TEST(DynamicBitsetWords, LastBitOfEachSizeIsIndependent) {
  for (const std::size_t n : kBoundarySizes) {
    DynamicBitset bits(n, false);
    bits.set(n - 1);
    EXPECT_EQ(bits.count(), 1u) << "n=" << n;
    EXPECT_TRUE(bits.test(n - 1));
    if (n >= 2) {
      EXPECT_FALSE(bits.test(n - 2));
    }
    // Words view agrees with test(): bit (n-1) lives in the last word.
    const auto words = bits.words();
    EXPECT_EQ(words[(n - 1) >> 6] >> ((n - 1) & 63) & 1u, 1u) << "n=" << n;
  }
}

TEST(DynamicBitsetWords, ReassignShrinkGrowReestablishesInvariant) {
  DynamicBitset bits(129, true);
  bits.assign(63, true);
  EXPECT_EQ(bits.size(), 63u);
  EXPECT_EQ(bits.count(), 63u);
  EXPECT_EQ(bits.words().size(), 1u);
  EXPECT_EQ(bits.words().back() >> 63, 0u) << "tail bit must be cleared";
  bits.assign(128, true);
  EXPECT_EQ(bits.count(), 128u);
  EXPECT_EQ(bits.words().back(), ~std::uint64_t{0})
      << "full word needs no tail mask";
  bits.assign(0, true);
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.any());
}

}  // namespace
}  // namespace lumen::util
