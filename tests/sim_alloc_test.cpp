// Steady-state allocation audit for the Look path.
//
// The engines snapshot the world on every Look; the scratch overloads of
// geom::visible_from and model::build_snapshot must therefore be heap-free
// once their buffers are warm, or a long campaign spends its time in the
// allocator. The test TU replaces global operator new/delete with counting
// versions and asserts zero allocations across warmed-up calls.
#include "geom/visibility.hpp"
#include "model/frame.hpp"
#include "model/snapshot.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace {

std::size_t g_alloc_count = 0;
std::size_t g_alloc_bytes = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  g_alloc_bytes += size;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  g_alloc_bytes += size;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lumen {
namespace {

using geom::Vec2;

std::vector<Vec2> ring_of_points(std::size_t n) {
  util::Prng rng(99);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Vec2{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
  }
  return pts;
}

TEST(LookPathAllocations, VisibleFromScratchOverloadIsAllocationFree) {
  const auto pts = ring_of_points(64);
  geom::VisibilityScratch scratch;
  std::vector<std::size_t> out;
  // Warm the scratch buffers to steady-state capacity.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    geom::visible_from(pts, i, scratch, out);
  }
  const std::size_t before = g_alloc_count;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      geom::visible_from(pts, i, scratch, out);
      ASSERT_FALSE(out.empty());
    }
  }
  EXPECT_EQ(g_alloc_count, before)
      << "warm visible_from must not touch the heap";
}

TEST(LookPathAllocations, VisibleFromSoAOverloadIsAllocationFree) {
  const auto pts = ring_of_points(64);
  std::vector<double> xs, ys;
  for (const Vec2 p : pts) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  geom::VisibilityScratch scratch;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    geom::visible_from(xs, ys, i, scratch, out);
  }
  const std::size_t before = g_alloc_count;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      geom::visible_from(xs, ys, i, scratch, out);
      ASSERT_FALSE(out.empty());
    }
  }
  EXPECT_EQ(g_alloc_count, before)
      << "the warm SoA visible_from must not touch the heap";
}

TEST(LookPathAllocations, ColdSoAKeyBuildReservesTheExactSplit) {
  // The batched key build counts the upper/lower split before sizing, so a
  // COLD call allocates the true split (~32+8 bytes per point across the
  // four scratch vectors) plus the sort/output workspace — NOT the 2x-of-n
  // guess the old AoS build_keys reserved for both halves. The bound below
  // sits between the two: exact sizing passes with plenty of headroom,
  // a both-halves reserve(n) (64 bytes/point for the key vectors alone,
  // ~112 total) trips it.
  const std::size_t n = 1024;
  const auto pts = ring_of_points(n);
  std::vector<double> xs, ys;
  for (const Vec2 p : pts) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  geom::VisibilityScratch scratch;
  std::vector<std::size_t> out;
  const std::size_t before = g_alloc_bytes;
  geom::visible_from(xs, ys, 0, scratch, out);
  const std::size_t cold_bytes = g_alloc_bytes - before;
  EXPECT_LT(cold_bytes, 75 * n)
      << "cold SoA visible_from allocated " << cold_bytes
      << " bytes for n=" << n << "; the key build is over-reserving";
}

TEST(LookPathAllocations, BuildSnapshotScratchOverloadIsAllocationFree) {
  const auto pts = ring_of_points(64);
  const std::vector<model::Light> lights(pts.size(), model::Light::kOff);
  util::Prng frame_rng(7);
  model::SnapshotScratch scratch;
  model::Snapshot snap;
  // Warm up: every observer once, so visible-list capacities peak.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const model::LocalFrame frame = model::LocalFrame::random(pts[i], frame_rng);
    model::build_snapshot(pts, lights, i, frame, scratch, snap);
  }
  const std::size_t before = g_alloc_count;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const model::LocalFrame frame =
          model::LocalFrame::random(pts[i], frame_rng);
      model::build_snapshot(pts, lights, i, frame, scratch, snap);
      ASSERT_GT(snap.visible_count(), 0u);
    }
  }
  EXPECT_EQ(g_alloc_count, before)
      << "the warmed Look snapshot path must not touch the heap";
}

TEST(LookPathAllocations, AllocationCounterActuallyCounts) {
  const std::size_t before = g_alloc_count;
  std::vector<int>* v = new std::vector<int>(100);
  EXPECT_GT(g_alloc_count, before);
  delete v;
}

}  // namespace
}  // namespace lumen
