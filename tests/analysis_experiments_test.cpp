// ExperimentRegistry tests: registry contents and lookup, shape invariants
// for every registered experiment on a tiny spec, legacy-parity spot checks
// (the E1 and E4 bodies must compute exactly the metric values the former
// bench_time_vs_n / bench_collisions binaries printed), and the reporters.
#include "analysis/experiments.hpp"
#include "analysis/reporter.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

namespace lumen::analysis {
namespace {

// ---------------------------------------------------------------------------
// Registry contents.

TEST(Registry, ListsAllPaperExperiments) {
  const auto& experiments = ExperimentRegistry::instance().experiments();
  ASSERT_EQ(experiments.size(), 11u);
  const char* names[] = {"time-vs-n", "convergence", "colors",
                         "collisions", "doubling",   "summary",
                         "ablation",   "crash-tolerance",
                         "light-corruption", "sensor-noise",
                         "cross-algorithm"};
  const char* ids[] = {"E1", "E2", "E3", "E4", "E5",
                       "E6", "E8", "E9", "E10", "E11", "E12"};
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    EXPECT_EQ(experiments[i].name, names[i]);
    EXPECT_EQ(experiments[i].id, ids[i]);
    EXPECT_FALSE(experiments[i].description.empty());
    EXPECT_TRUE(experiments[i].run != nullptr);
  }
}

TEST(Registry, FindsByNameAndById) {
  const auto& registry = ExperimentRegistry::instance();
  const auto* by_name = registry.find("collisions");
  const auto* by_id = registry.find("E4");
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name, by_id);
  EXPECT_EQ(registry.find("bogus"), nullptr);
  EXPECT_EQ(registry.find("E7"), nullptr);  // bench_micro is not registered.
}

TEST(Registry, CrossAlgorithmExperimentCoversEveryPluginAndScheduler) {
  const auto* e = ExperimentRegistry::instance().find("cross-algorithm");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e, ExperimentRegistry::instance().find("E12"));

  ScenarioSpec spec = e->defaults;
  spec.ns = {8};
  spec.runs = 2;
  const ExperimentResult result = e->run(spec, ExperimentContext{});

  // One row per (registered algorithm, scheduler).
  EXPECT_EQ(result.rows.size(), 5u * 3u);
  ASSERT_GE(result.columns.size(), 4u);
  EXPECT_EQ(result.columns[0], "algorithm");
  for (const char* algorithm :
       {"async-log", "seq-baseline", "ssync-parallel", "grid-cv",
        "mutual-vis"}) {
    std::size_t rows = 0;
    for (const auto& row : result.rows) {
      if (row[0].text == algorithm) ++rows;
    }
    EXPECT_EQ(rows, 3u) << algorithm;
  }
}

TEST(Registry, DefaultSpecsRoundTripByteIdentically) {
  for (const auto& e : ExperimentRegistry::instance().experiments()) {
    const std::string text = scenario_to_json(e.defaults);
    const auto parsed = scenario_from_json(text);
    ASSERT_TRUE(parsed.spec.has_value()) << e.name << ": " << parsed.error;
    EXPECT_EQ(scenario_to_json(*parsed.spec), text) << e.name;
  }
}

// ---------------------------------------------------------------------------
// Shape invariants: every experiment, run on a seconds-scale spec, produces
// a well-formed result (rows as wide as the header, at least one check).

ScenarioSpec tiny(ScenarioSpec spec) {
  if (spec.ns.size() > 2) spec.ns.resize(2);
  for (auto& n : spec.ns) n = std::min<std::size_t>(n, 12);
  if (spec.baseline_ns.size() > 2) spec.baseline_ns.resize(2);
  for (auto& n : spec.baseline_ns) n = std::min<std::size_t>(n, 12);
  spec.runs = std::min<std::size_t>(spec.runs, 2);
  return spec;
}

TEST(Experiments, EveryExperimentProducesWellFormedResult) {
  for (const auto& e : ExperimentRegistry::instance().experiments()) {
    SCOPED_TRACE(e.name);
    const ExperimentResult result = e.run(tiny(e.defaults), ExperimentContext{});
    EXPECT_EQ(result.experiment, e.name);
    EXPECT_FALSE(result.title.empty());
    EXPECT_FALSE(result.columns.empty());
    EXPECT_FALSE(result.rows.empty());
    for (const auto& row : result.rows) {
      EXPECT_EQ(row.size(), result.columns.size());
    }
    EXPECT_FALSE(result.checks.empty());
  }
}

// ---------------------------------------------------------------------------
// Legacy parity: E1's table rows must carry exactly the campaign metrics the
// old bench_time_vs_n printed — same seeds, same aggregation, same
// formatting (including the >= 512 seed cap, exercised at small scale here
// by construction of the same CampaignSpec).

TEST(Experiments, TimeVsNMatchesDirectCampaignMetrics) {
  const auto* e = ExperimentRegistry::instance().find("E1");
  ASSERT_NE(e, nullptr);
  ScenarioSpec spec;
  spec.ns = {8, 16};
  spec.baseline_ns = {8};
  spec.runs = 3;
  spec.audit_collisions = false;
  const ExperimentResult result = e->run(spec, ExperimentContext{});

  // Rows: async-log at 8 and 16, then seq-baseline at 8.
  ASSERT_EQ(result.rows.size(), 3u);
  const struct {
    const char* algorithm;
    std::size_t n;
  } expected[] = {{"async-log", 8}, {"async-log", 16}, {"seq-baseline", 8}};
  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    CampaignSpec campaign = spec.campaign(expected[i].n);
    campaign.algorithm = expected[i].algorithm;
    const auto direct = run_campaign(campaign);
    const auto epochs = direct.epochs();
    const auto& row = result.rows[i];
    ASSERT_EQ(row.size(), 8u);
    EXPECT_EQ(row[0].text, expected[i].algorithm);
    EXPECT_EQ(row[1].value, static_cast<double>(expected[i].n));
    EXPECT_EQ(row[2].value, static_cast<double>(direct.converged_count()));
    EXPECT_EQ(row[3].value, static_cast<double>(direct.runs.size()));
    EXPECT_EQ(row[4].value, epochs.mean);
    EXPECT_EQ(row[4].text, util::format_number(epochs.mean, 1));
    EXPECT_EQ(row[5].value, epochs.stddev);
    EXPECT_EQ(row[6].value, epochs.min);
    EXPECT_EQ(row[7].value, epochs.max);
  }
}

// E4 parity: the first table row aggregates position collisions, closest
// approach, and phantom crossings over the same audited campaign the old
// bench_collisions ran.

TEST(Experiments, CollisionsMatchesDirectCampaignMetrics) {
  const auto* e = ExperimentRegistry::instance().find("E4");
  ASSERT_NE(e, nullptr);
  ScenarioSpec spec = e->defaults;
  spec.ns = {12};
  spec.runs = 2;
  const ExperimentResult result = e->run(spec, ExperimentContext{});
  ASSERT_GE(result.rows.size(), 1u);

  CampaignSpec campaign = spec.campaign(12);
  campaign.run.adversary = sched::AdversaryKind::kUniform;
  campaign.audit_collisions = true;
  const auto direct = run_campaign(campaign);
  std::size_t collisions = 0, crossings = 0;
  double min_sep = std::numeric_limits<double>::infinity();
  for (const auto& m : direct.runs) {
    collisions += m.position_collisions;
    crossings += m.path_crossings;
    min_sep = std::min(min_sep, m.min_observed_separation);
  }

  const auto& row = result.rows[0];
  ASSERT_EQ(row.size(), 7u);
  EXPECT_EQ(row[0].text, "async-log");
  EXPECT_EQ(row[1].text, "uniform");
  EXPECT_EQ(row[2].text, "uniform-disk");
  EXPECT_EQ(row[3].value, static_cast<double>(direct.runs.size()));
  EXPECT_EQ(row[4].value, static_cast<double>(collisions));
  EXPECT_EQ(row[5].text, util::format_number(min_sep, 4));
  EXPECT_EQ(row[6].value, static_cast<double>(crossings));
}

// ---------------------------------------------------------------------------
// Reporters.

ExperimentResult sample_result() {
  ExperimentResult result;
  result.experiment = "sample";
  result.title = "Sample experiment";
  result.columns = {"name", "value"};
  result.row() = {cell("alpha"), cell(std::size_t{42})};
  result.row() = {cell("beta"), cell(2.5, 1)};
  result.notes.push_back("a note");
  result.checks.push_back({"always true", true});
  result.checks.push_back({"always false", false});
  return result;
}

TEST(Reporter, PassedIsAllOfChecks) {
  ExperimentResult result = sample_result();
  EXPECT_FALSE(result.passed());
  result.checks.pop_back();
  EXPECT_TRUE(result.passed());
  result.checks.clear();
  EXPECT_TRUE(result.passed());  // Vacuously true.
}

TEST(Reporter, PrettyShowsTableNotesAndVerdicts) {
  std::ostringstream os;
  make_reporter("pretty")->report(sample_result(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Sample experiment"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("a note"), std::string::npos);
  EXPECT_NE(text.find("[PASS] always true"), std::string::npos);
  EXPECT_NE(text.find("[FAIL] always false"), std::string::npos);
}

TEST(Reporter, CsvEmitsHeaderAndDataRows) {
  std::ostringstream os;
  make_reporter("csv")->report(sample_result(), os);
  EXPECT_EQ(os.str(), "name,value\nalpha,42\nbeta,2.5\n");
}

TEST(Reporter, JsonKeepsNumbersAsNumbersAndTextAsStrings) {
  const util::JsonValue doc = result_to_json(sample_result());
  ASSERT_TRUE(doc.is_object());
  const auto* rows = doc.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 2u);
  EXPECT_TRUE(rows->items()[0].items()[0].is_string());
  EXPECT_TRUE(rows->items()[0].items()[1].is_number());
  EXPECT_EQ(rows->items()[0].items()[1].as_double(), 42.0);
  const auto* passed = doc.find("passed");
  ASSERT_NE(passed, nullptr);
  EXPECT_FALSE(passed->as_bool());
  // The JSON document round-trips through the parser.
  const auto reparsed = util::json_parse(util::json_write(doc), nullptr);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(util::json_write(*reparsed), util::json_write(doc));
}

TEST(Reporter, UnknownFormatReturnsNull) {
  EXPECT_EQ(make_reporter("xml"), nullptr);
  EXPECT_NE(make_reporter("pretty"), nullptr);
  EXPECT_NE(make_reporter("csv"), nullptr);
  EXPECT_NE(make_reporter("json"), nullptr);
}

}  // namespace
}  // namespace lumen::analysis
