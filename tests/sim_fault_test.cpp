// Fault injection through the engines: the determinism contract (an
// INACTIVE plan is bit-identical to a fault-free run; active plans are
// bit-identical across pool sizes and repetitions), crash-stop semantics
// (dead bodies keep obstructing, survivors quiesce around them), outcome
// classification, fault event recording, and SafetyMonitor parity with the
// bare collision monitor on fault-free runs.
#include "core/registry.hpp"
#include "fault/plan.hpp"
#include "gen/generators.hpp"
#include "sim/monitors.hpp"
#include "sim/run.hpp"
#include "sim/streaming_collision.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace lumen::sim {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t bits(double d) noexcept {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Digests every RunResult field bit-for-bit, fault fields included.
std::uint64_t run_digest(const RunResult& r) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, r.converged ? 1 : 0);
  h = mix(h, bits(r.final_time));
  h = mix(h, r.epochs);
  h = mix(h, r.rounds);
  h = mix(h, r.total_cycles);
  h = mix(h, r.total_moves);
  h = mix(h, bits(r.total_distance));
  for (const auto& p : r.final_positions) {
    h = mix(h, bits(p.x));
    h = mix(h, bits(p.y));
  }
  for (const model::Light l : r.final_lights) {
    h = mix(h, static_cast<std::uint64_t>(l));
  }
  for (const auto& m : r.moves) {
    h = mix(h, m.robot);
    h = mix(h, bits(m.t0));
    h = mix(h, bits(m.t1));
    h = mix(h, bits(m.from.x));
    h = mix(h, bits(m.from.y));
    h = mix(h, bits(m.to.x));
    h = mix(h, bits(m.to.y));
  }
  h = mix(h, static_cast<std::uint64_t>(r.outcome));
  h = mix(h, r.faults.crashes);
  h = mix(h, r.faults.corrupted_reads);
  h = mix(h, r.faults.dropped_observations);
  h = mix(h, r.faults.perturbed_observations);
  for (const std::uint8_t c : r.crashed) h = mix(h, c);
  for (const auto& e : r.fault_events) {
    h = mix(h, static_cast<std::uint64_t>(e.channel));
    h = mix(h, e.robot);
    h = mix(h, bits(e.time));
    h = mix(h, e.corrupted_reads);
    h = mix(h, e.dropped);
    h = mix(h, e.perturbed);
  }
  return h;
}

struct Case {
  const char* label;
  const char* algorithm;
  SchedulerKind scheduler;
  std::size_t n;
  std::uint64_t seed;
};

const Case kCases[] = {
    {"fsync", "ssync-parallel", SchedulerKind::kFsync, 24, 5},
    {"ssync", "ssync-parallel", SchedulerKind::kSsync, 24, 5},
    {"async", "async-log", SchedulerKind::kAsync, 16, 7},
};

RunResult run_case(const Case& c, const fault::FaultPlan& plan,
                   util::ThreadPool* pool = nullptr) {
  RunConfig config;
  config.scheduler = c.scheduler;
  config.seed = c.seed;
  config.fault = plan;
  config.pool = pool;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, c.n, c.seed);
  const auto algo = core::make_algorithm(c.algorithm);
  return run_simulation(*algo, initial, config);
}

/// An active plan exercising every channel at once.
fault::FaultPlan all_channels_plan() {
  fault::FaultPlan plan;
  plan.crash.count = 2;
  plan.crash.rate = 0.02;
  plan.light.probability = 0.05;
  plan.noise.sigma = 1e-4;
  plan.noise.dropout = 0.01;
  return plan;
}

// ---------------------------------------------------------------------------
// Determinism.

TEST(SimFault, InactivePlanIsBitIdenticalToFaultFreeRun) {
  // Non-default but INACTIVE channels (zero rate / probability / sigma)
  // must leave every PRNG stream and result bit untouched.
  fault::FaultPlan inactive;
  inactive.crash.count = 4;          // rate stays 0 -> channel inert.
  inactive.light.mode = fault::CorruptionMode::kFlip;  // probability 0.
  for (const Case& c : kCases) {
    const RunResult plain = run_case(c, fault::FaultPlan{});
    const RunResult planned = run_case(c, inactive);
    EXPECT_EQ(run_digest(planned), run_digest(plain)) << c.label;
    EXPECT_FALSE(planned.faults.any()) << c.label;
    EXPECT_EQ(planned.outcome, RunOutcome::kConverged) << c.label;
  }
}

TEST(SimFault, FaultedRunsAreBitIdenticalForAnyPoolSize) {
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  std::vector<std::size_t> sizes = {1, 2};
  if (hw > 2) sizes.push_back(hw);
  for (const Case& c : kCases) {
    const std::uint64_t serial = run_digest(run_case(c, all_channels_plan()));
    for (const std::size_t workers : sizes) {
      util::ThreadPool pool{workers};
      const std::uint64_t pooled =
          run_digest(run_case(c, all_channels_plan(), &pool));
      EXPECT_EQ(pooled, serial) << c.label << " pool=" << workers;
    }
  }
}

TEST(SimFault, FaultedRunsAreRepeatable) {
  for (const Case& c : kCases) {
    const std::uint64_t first = run_digest(run_case(c, all_channels_plan()));
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(run_digest(run_case(c, all_channels_plan())), first)
          << c.label << " repetition " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-stop semantics.

fault::FaultPlan boot_crash_plan() {
  fault::FaultPlan plan;
  plan.crash.count = 1;
  plan.crash.schedule = fault::CrashScheduleKind::kTimes;
  plan.crash.times = {0.0};  // The first robot to start a cycle dies.
  return plan;
}

TEST(SimFault, CrashedRobotKeepsBodyAndLastLight) {
  for (const Case& c : kCases) {
    const RunResult run = run_case(c, boot_crash_plan());
    ASSERT_EQ(run.crashed.size(), c.n) << c.label;
    const std::size_t dead = static_cast<std::size_t>(
        std::find(run.crashed.begin(), run.crashed.end(), 1) -
        run.crashed.begin());
    ASSERT_LT(dead, c.n) << c.label;
    EXPECT_EQ(std::count(run.crashed.begin(), run.crashed.end(), 1), 1)
        << c.label;
    EXPECT_EQ(run.faults.crashes, 1u) << c.label;
    // Dead at its very first cycle start: it never moved and never changed
    // its light, but its body stayed in the configuration.
    EXPECT_EQ(run.final_positions[dead], run.initial_positions[dead]) << c.label;
    EXPECT_EQ(run.final_lights[dead], model::Light::kOff) << c.label;
    // Survivors still reached a fixpoint around the dead body.
    EXPECT_TRUE(run.converged) << c.label;
    EXPECT_EQ(run.outcome, RunOutcome::kStalled) << c.label;
  }
}

TEST(SimFault, FaultEventsAreRecordedWhenTracing) {
  Case c = kCases[2];  // ASYNC.
  RunConfig config;
  config.scheduler = c.scheduler;
  config.seed = c.seed;
  config.fault = all_channels_plan();
  config.record_moves = true;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, c.n, c.seed);
  const auto algo = core::make_algorithm(c.algorithm);
  const RunResult run = run_simulation(*algo, initial, config);
  ASSERT_FALSE(run.fault_events.empty());
  std::uint64_t crashes = 0, corrupted = 0, dropped = 0, perturbed = 0;
  for (const auto& e : run.fault_events) {
    ASSERT_NE(e.channel, fault::FaultChannel::kNone);
    ASSERT_LT(e.robot, c.n);
    crashes += e.channel == fault::FaultChannel::kCrash ? 1 : 0;
    corrupted += e.corrupted_reads;
    dropped += e.dropped;
    perturbed += e.perturbed;
  }
  // The event log and the streaming counters tell one consistent story.
  EXPECT_EQ(crashes, run.faults.crashes);
  EXPECT_EQ(corrupted, run.faults.corrupted_reads);
  EXPECT_EQ(dropped, run.faults.dropped_observations);
  EXPECT_EQ(perturbed, run.faults.perturbed_observations);

  // A fault-free traced run records no events at all.
  config.fault = fault::FaultPlan{};
  EXPECT_TRUE(run_simulation(*algo, initial, config).fault_events.empty());
}

// ---------------------------------------------------------------------------
// Outcome classification.

TEST(SimFault, OutcomeClassification) {
  const Case& c = kCases[2];
  EXPECT_EQ(run_case(c, fault::FaultPlan{}).outcome, RunOutcome::kConverged);
  EXPECT_EQ(run_case(c, boot_crash_plan()).outcome, RunOutcome::kStalled);

  RunConfig config;
  config.scheduler = c.scheduler;
  config.seed = c.seed;
  config.max_cycles_per_robot = 1;  // Far too small to converge.
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, c.n, c.seed);
  const auto algo = core::make_algorithm(c.algorithm);
  EXPECT_EQ(run_simulation(*algo, initial, config).outcome,
            RunOutcome::kBudgetExhausted);
}

TEST(SimFault, OutcomeStringsRoundTrip) {
  for (const auto o : {RunOutcome::kConverged, RunOutcome::kStalled,
                       RunOutcome::kCollision, RunOutcome::kBudgetExhausted}) {
    const auto parsed = outcome_from_string(to_string(o));
    ASSERT_TRUE(parsed.has_value()) << to_string(o);
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_EQ(outcome_from_string("STALLED"), RunOutcome::kStalled);
  EXPECT_EQ(outcome_from_string("Budget-Exhausted"),
            RunOutcome::kBudgetExhausted);
  EXPECT_EQ(outcome_from_string("exploded"), std::nullopt);
}

// ---------------------------------------------------------------------------
// SafetyMonitor.

TEST(SimFault, SafetyMonitorMatchesBareMonitorOnFaultFreeRun) {
  const Case& c = kCases[1];
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, c.n, c.seed);
  const auto algo = core::make_algorithm(c.algorithm);
  RunConfig config;
  config.scheduler = c.scheduler;
  config.seed = c.seed;

  StreamingCollisionMonitor bare;
  SafetyMonitor safety;
  RunObserver* observers[] = {&bare, &safety};
  (void)run_simulation(*algo, initial, config, observers);

  EXPECT_EQ(safety.report().position_collisions, bare.report().position_collisions);
  EXPECT_EQ(safety.report().path_crossings, bare.report().path_crossings);
  EXPECT_EQ(bits(safety.report().min_separation),
            bits(bare.report().min_separation));
  for (const auto channel :
       {fault::FaultChannel::kNone, fault::FaultChannel::kCrash,
        fault::FaultChannel::kLight, fault::FaultChannel::kNoise}) {
    EXPECT_EQ(safety.attributed(channel), 0u);
  }
  EXPECT_EQ(safety.dominant_channel(), fault::FaultChannel::kNone);
  EXPECT_EQ(safety.last_active_channel(), fault::FaultChannel::kNone);
}

}  // namespace
}  // namespace lumen::sim
