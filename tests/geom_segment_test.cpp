// Segment intersection/classification tests — the relation behind the
// paper's "paths do not cross" guarantee.
#include "geom/segment.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace lumen::geom {
namespace {

TEST(SegmentClassify, ProperCrossing) {
  const Segment s{{0, 0}, {10, 10}};
  const Segment t{{0, 10}, {10, 0}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kProperCrossing);
  EXPECT_TRUE(segments_intersect(s, t));
  EXPECT_TRUE(segments_cross(s, t));
  const auto p = crossing_point(s, t);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 5.0, 1e-12);
  EXPECT_NEAR(p->y, 5.0, 1e-12);
}

TEST(SegmentClassify, Disjoint) {
  const Segment s{{0, 0}, {1, 0}};
  const Segment t{{0, 1}, {1, 1}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kDisjoint);
  EXPECT_FALSE(segments_intersect(s, t));
  EXPECT_FALSE(segments_cross(s, t));
  EXPECT_FALSE(crossing_point(s, t).has_value());
}

TEST(SegmentClassify, SharedEndpointIsTouchingNotCrossing) {
  const Segment s{{0, 0}, {1, 1}};
  const Segment t{{1, 1}, {2, 0}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kTouching);
  EXPECT_TRUE(segments_intersect(s, t));
  EXPECT_FALSE(segments_cross(s, t));
}

TEST(SegmentClassify, TJunctionIsTouchingAndCrossing) {
  // t's endpoint lands strictly inside s: one shared point, but an interior
  // one — for robot paths this IS a crossing hazard.
  const Segment s{{0, 0}, {10, 0}};
  const Segment t{{5, -3}, {5, 0}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kTouching);
  EXPECT_TRUE(segments_cross(s, t));
}

TEST(SegmentClassify, CollinearOverlap) {
  const Segment s{{0, 0}, {10, 0}};
  const Segment t{{5, 0}, {15, 0}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kOverlapping);
  EXPECT_TRUE(segments_cross(s, t));
}

TEST(SegmentClassify, CollinearTouchAtEndpointOnly) {
  const Segment s{{0, 0}, {10, 0}};
  const Segment t{{10, 0}, {20, 0}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kTouching);
  EXPECT_FALSE(segments_cross(s, t));
}

TEST(SegmentClassify, CollinearDisjoint) {
  const Segment s{{0, 0}, {10, 0}};
  const Segment t{{11, 0}, {20, 0}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kDisjoint);
}

TEST(SegmentClassify, DegeneratePointSegments) {
  const Segment point{{3, 3}, {3, 3}};
  const Segment s{{0, 0}, {10, 10}};
  EXPECT_EQ(classify_intersection(point, s), SegmentRelation::kTouching);
  EXPECT_EQ(classify_intersection(s, point), SegmentRelation::kTouching);
  const Segment far_point{{3, 4}, {3, 4}};
  EXPECT_EQ(classify_intersection(far_point, s), SegmentRelation::kDisjoint);
  EXPECT_EQ(classify_intersection(point, point), SegmentRelation::kTouching);
  EXPECT_EQ(classify_intersection(point, far_point), SegmentRelation::kDisjoint);
}

TEST(SegmentClassify, ParallelNonCollinear) {
  const Segment s{{0, 0}, {10, 0}};
  const Segment t{{0, 1}, {10, 1}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kDisjoint);
}

TEST(SegmentClassify, NearMissBelowIsNotIntersecting) {
  const Segment s{{0, 0}, {10, 0}};
  const Segment t{{5, -1}, {5, -1e-12}};
  EXPECT_EQ(classify_intersection(s, t), SegmentRelation::kDisjoint);
}

TEST(SegmentDistance, PointToSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(point_segment_distance(s, {5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(point_segment_distance(s, {-4, 3}), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance(s, {14, -3}), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance(s, {7, 0}), 0.0);
}

TEST(SegmentDistance, Projection) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(project_onto_segment(s, {3, 5}), 0.3);
  EXPECT_DOUBLE_EQ(project_onto_segment(s, {-3, 5}), 0.0);
  EXPECT_DOUBLE_EQ(project_onto_segment(s, {13, 5}), 1.0);
  const Segment degenerate{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(project_onto_segment(degenerate, {5, 5}), 0.0);
}

TEST(SegmentDistance, SegmentToSegment) {
  EXPECT_DOUBLE_EQ(
      segment_segment_distance({{0, 0}, {10, 0}}, {{0, 3}, {10, 3}}), 3.0);
  EXPECT_DOUBLE_EQ(
      segment_segment_distance({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}), 0.0);
  EXPECT_DOUBLE_EQ(
      segment_segment_distance({{0, 0}, {1, 0}}, {{3, 0}, {4, 0}}), 2.0);
}

TEST(SegmentCross, RandomizedConsistencyWithClassification) {
  util::Prng rng{2024};
  for (int i = 0; i < 5000; ++i) {
    const Segment s{{rng.uniform(-5, 5), rng.uniform(-5, 5)},
                    {rng.uniform(-5, 5), rng.uniform(-5, 5)}};
    const Segment t{{rng.uniform(-5, 5), rng.uniform(-5, 5)},
                    {rng.uniform(-5, 5), rng.uniform(-5, 5)}};
    const auto rel = classify_intersection(s, t);
    if (rel == SegmentRelation::kProperCrossing ||
        rel == SegmentRelation::kOverlapping) {
      EXPECT_TRUE(segments_cross(s, t));
    }
    if (rel == SegmentRelation::kDisjoint) {
      EXPECT_FALSE(segments_cross(s, t));
      EXPECT_GT(segment_segment_distance(s, t), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(segment_segment_distance(s, t), 0.0);
    }
  }
}

}  // namespace
}  // namespace lumen::geom
