// Pool-size invariance: run_simulation with RunConfig::pool set must be
// bit-identical to the serial run for ANY pool size — that is the whole
// determinism contract of the in-run Look+Compute fan-out (DESIGN.md §10).
//
// Every field of RunResult is digested bit-for-bit (doubles by bit pattern,
// the full move log included) and compared against the pool-free run across
// pool sizes 1, 2 and hardware_concurrency for all three schedulers. ASYNC
// ignores the pool by design; it is included to pin exactly that.
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sim/run.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace lumen::sim {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t bits(double d) noexcept {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t run_digest(const RunResult& r) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, r.converged ? 1 : 0);
  h = mix(h, bits(r.final_time));
  h = mix(h, r.epochs);
  h = mix(h, r.rounds);
  h = mix(h, r.total_cycles);
  h = mix(h, r.total_moves);
  h = mix(h, bits(r.total_distance));
  for (const auto& p : r.initial_positions) {
    h = mix(h, bits(p.x));
    h = mix(h, bits(p.y));
  }
  for (const auto& p : r.final_positions) {
    h = mix(h, bits(p.x));
    h = mix(h, bits(p.y));
  }
  for (const model::Light l : r.final_lights) {
    h = mix(h, static_cast<std::uint64_t>(l));
  }
  for (const auto& m : r.moves) {
    h = mix(h, m.robot);
    h = mix(h, bits(m.t0));
    h = mix(h, bits(m.t1));
    h = mix(h, bits(m.from.x));
    h = mix(h, bits(m.from.y));
    h = mix(h, bits(m.to.x));
    h = mix(h, bits(m.to.y));
  }
  for (const bool b : r.lights_seen) h = mix(h, b ? 1 : 0);
  return h;
}

struct Case {
  const char* label;
  const char* algorithm;
  SchedulerKind scheduler;
  std::size_t n;
  std::uint64_t seed;
  bool rigid;
};

const Case kCases[] = {
    {"fsync", "ssync-parallel", SchedulerKind::kFsync, 24, 5, true},
    {"ssync-randomhalf", "ssync-parallel", SchedulerKind::kSsync, 24, 5, true},
    {"ssync-nonrigid", "ssync-parallel", SchedulerKind::kSsync, 20, 9, false},
    {"async", "async-log", SchedulerKind::kAsync, 16, 7, true},
};

RunResult run_case(const Case& c, util::ThreadPool* pool) {
  RunConfig config;
  config.scheduler = c.scheduler;
  config.seed = c.seed;
  config.rigid_moves = c.rigid;
  config.pool = pool;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, c.n, c.seed);
  const auto algo = core::make_algorithm(c.algorithm);
  return run_simulation(*algo, initial, config);
}

TEST(PoolInvariance, RunResultsAreBitIdenticalForAnyPoolSize) {
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  std::vector<std::size_t> sizes = {1, 2};
  if (hw > 2) sizes.push_back(hw);
  for (const Case& c : kCases) {
    const std::uint64_t serial = run_digest(run_case(c, nullptr));
    for (const std::size_t workers : sizes) {
      util::ThreadPool pool{workers};
      const std::uint64_t pooled = run_digest(run_case(c, &pool));
      EXPECT_EQ(pooled, serial) << c.label << " pool=" << workers;
    }
  }
}

TEST(PoolInvariance, RepeatedRunsOnOnePoolStayIdentical) {
  // A shared pool across many runs (the campaign pattern) must not leak
  // state between runs: per-slot scratch is wiped by construction.
  util::ThreadPool pool{2};
  const std::uint64_t first = run_digest(run_case(kCases[1], &pool));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(run_digest(run_case(kCases[1], &pool)), first) << "iteration " << i;
  }
}

TEST(PoolInvariance, NestedCampaignUseIsIdenticalToSerialCampaign) {
  // Simulate the campaign topology: pool workers each running a simulation
  // that ALSO holds the same pool (nested fan-out degrades to inline-serial
  // instead of deadlocking). Results must equal the pool-free runs.
  util::ThreadPool pool{2};
  std::vector<std::uint64_t> nested(4), serial(4);
  pool.parallel_for(nested.size(), [&](std::size_t i) {
    Case c = kCases[1];
    c.seed += i;
    nested[i] = run_digest(run_case(c, &pool));
  });
  for (std::size_t i = 0; i < serial.size(); ++i) {
    Case c = kCases[1];
    c.seed += i;
    serial[i] = run_digest(run_case(c, nullptr));
  }
  EXPECT_EQ(nested, serial);
}

}  // namespace
}  // namespace lumen::sim
