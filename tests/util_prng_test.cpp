// PRNG tests: determinism, stream independence, distributional sanity.
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace lumen::util {
namespace {

TEST(Prng, DeterministicPerSeed) {
  Prng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a{123}, b{124};
  std::size_t same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0u);
}

TEST(Prng, NextDoubleInUnitInterval) {
  Prng rng{7};
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, UniformRespectsBounds) {
  Prng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 12.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 12.25);
  }
}

TEST(Prng, UniformMeanIsCentered) {
  Prng rng{99};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, NextBelowIsUnbiasedOverSmallModulus) {
  Prng rng{5};
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 5.0 * std::sqrt(n / 7.0));
  }
}

TEST(Prng, NextBelowEdgeCases) {
  Prng rng{5};
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Prng, UniformIntInclusiveRange) {
  Prng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
  EXPECT_EQ(rng.uniform_int(9, 3), 9);  // Degenerate bounds collapse to lo.
}

TEST(Prng, NormalMomentsApproximatelyStandard) {
  Prng rng{11};
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Prng, ExponentialMeanMatchesRate) {
  Prng rng{13};
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Prng, SplitStreamsAreIndependentAndStable) {
  const Prng base{42};
  Prng c1 = base.split("alpha");
  Prng c2 = base.split("beta");
  Prng c1_again = base.split("alpha");
  bool all_same = true;
  for (int i = 0; i < 100; ++i) {
    const auto a = c1();
    const auto b = c2();
    if (a != b) all_same = false;
    EXPECT_EQ(a, c1_again());
  }
  EXPECT_FALSE(all_same);
}

TEST(Prng, SplitDoesNotAdvanceParent) {
  Prng a{42};
  Prng b{42};
  (void)a.split("child");
  (void)a.split(std::uint64_t{99});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Prng, ShuffleIsAPermutation) {
  Prng rng{17};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Prng, BernoulliFrequency) {
  Prng rng{21};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Fnv1a, StableKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a("alpha"), fnv1a("beta"));
}

}  // namespace
}  // namespace lumen::util
