// SVG renderer tests: structural checks on the emitted document.
#include "sim/svg.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "core/registry.hpp"
#include "gen/generators.hpp"

namespace lumen::sim {
namespace {

RunResult small_run() {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 12, 3);
  RunConfig config;
  config.seed = 3;
  return run_simulation(*algo, initial, config);
}

TEST(Svg, WellFormedDocumentWithAllLayers) {
  const auto run = small_run();
  const std::string svg = render_svg(run);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One filled circle per robot plus hollow initial markers.
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, 2 * run.final_positions.size());
  EXPECT_NE(svg.find("<polygon"), std::string::npos);  // Final hull.
  if (!run.moves.empty()) {
    EXPECT_NE(svg.find("<line"), std::string::npos);  // Motion paths.
  }
}

TEST(Svg, OptionsSuppressLayers) {
  const auto run = small_run();
  SvgOptions options;
  options.draw_paths = false;
  options.draw_hull = false;
  options.draw_initial = false;
  const std::string svg = render_svg(run, options);
  EXPECT_EQ(svg.find("<line"), std::string::npos);
  EXPECT_EQ(svg.find("<polygon"), std::string::npos);
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, run.final_positions.size());
}

TEST(Svg, HandlesEmptyRun) {
  const RunResult empty;
  const std::string svg = render_svg(empty);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  const auto run = small_run();
  const std::string path = ::testing::TempDir() + "/lumen_svg_test.svg";
  ASSERT_TRUE(save_svg(run, path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first_line;
  std::getline(f, first_line);
  EXPECT_EQ(first_line.rfind("<svg", 0), 0u);
  EXPECT_FALSE(save_svg(run, "/nonexistent-dir-xyz/x.svg"));
}

RunResult faulty_run() {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 12, 3);
  RunConfig config;
  config.seed = 3;
  config.record_moves = true;  // Fault events ride the tracing flag.
  config.fault.crash.count = 1;
  config.fault.crash.schedule = fault::CrashScheduleKind::kTimes;
  config.fault.crash.times = {0.0};
  config.fault.light.probability = 0.05;
  return run_simulation(*algo, initial, config);
}

TEST(Svg, FaultyRunGetsCrashMarkersAndAnnotations) {
  const auto run = faulty_run();
  ASSERT_EQ(run.faults.crashes, 1u);
  const std::string svg = render_svg(run);
  // The crash marker is a red X path over the dead robot's final circle.
  EXPECT_NE(svg.find("<path"), std::string::npos);
  EXPECT_NE(svg.find("#d93025"), std::string::npos);
  // The summary line spells out the per-channel totals and the outcome.
  EXPECT_NE(svg.find("faults: 1 crashes"), std::string::npos);
  EXPECT_NE(svg.find("outcome: stalled"), std::string::npos);
  // Corrupted Looks leave hollow channel-colored rings.
  if (run.faults.corrupted_reads > 0) {
    EXPECT_NE(svg.find("#fbbc04"), std::string::npos);
  }
  // Opting out removes every fault layer again.
  SvgOptions options;
  options.draw_faults = false;
  const std::string plain = render_svg(run, options);
  EXPECT_EQ(plain.find("<path"), std::string::npos);
  EXPECT_EQ(plain.find("faults:"), std::string::npos);
}

TEST(Svg, FaultFreeRunRendersIdenticallyWithFaultLayerEnabled) {
  // draw_faults defaults to true but must emit nothing without fault data,
  // keeping historical output byte-identical.
  const auto run = small_run();
  ASSERT_FALSE(run.faults.any());
  SvgOptions options;
  options.draw_faults = false;
  EXPECT_EQ(render_svg(run), render_svg(run, options));
  EXPECT_EQ(render_svg(run).find("<path"), std::string::npos);
}

TEST(Svg, CoordinatesStayInViewport) {
  const auto run = small_run();
  SvgOptions options;
  options.width = 400;
  options.height = 300;
  const std::string svg = render_svg(run, options);
  // Parse all cx= values and check bounds.
  for (std::size_t pos = 0; (pos = svg.find("cx='", pos)) != std::string::npos;) {
    pos += 4;
    const double cx = std::stod(svg.substr(pos));
    EXPECT_GE(cx, 0.0);
    EXPECT_LE(cx, 400.0);
  }
}

}  // namespace
}  // namespace lumen::sim
