// SVG renderer tests: structural checks on the emitted document.
#include "sim/svg.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "core/registry.hpp"
#include "gen/generators.hpp"

namespace lumen::sim {
namespace {

RunResult small_run() {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 12, 3);
  RunConfig config;
  config.seed = 3;
  return run_simulation(*algo, initial, config);
}

TEST(Svg, WellFormedDocumentWithAllLayers) {
  const auto run = small_run();
  const std::string svg = render_svg(run);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One filled circle per robot plus hollow initial markers.
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, 2 * run.final_positions.size());
  EXPECT_NE(svg.find("<polygon"), std::string::npos);  // Final hull.
  if (!run.moves.empty()) {
    EXPECT_NE(svg.find("<line"), std::string::npos);  // Motion paths.
  }
}

TEST(Svg, OptionsSuppressLayers) {
  const auto run = small_run();
  SvgOptions options;
  options.draw_paths = false;
  options.draw_hull = false;
  options.draw_initial = false;
  const std::string svg = render_svg(run, options);
  EXPECT_EQ(svg.find("<line"), std::string::npos);
  EXPECT_EQ(svg.find("<polygon"), std::string::npos);
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, run.final_positions.size());
}

TEST(Svg, HandlesEmptyRun) {
  const RunResult empty;
  const std::string svg = render_svg(empty);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  const auto run = small_run();
  const std::string path = ::testing::TempDir() + "/lumen_svg_test.svg";
  ASSERT_TRUE(save_svg(run, path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first_line;
  std::getline(f, first_line);
  EXPECT_EQ(first_line.rfind("<svg", 0), 0u);
  EXPECT_FALSE(save_svg(run, "/nonexistent-dir-xyz/x.svg"));
}

TEST(Svg, CoordinatesStayInViewport) {
  const auto run = small_run();
  SvgOptions options;
  options.width = 400;
  options.height = 300;
  const std::string svg = render_svg(run, options);
  // Parse all cx= values and check bounds.
  for (std::size_t pos = 0; (pos = svg.find("cx='", pos)) != std::string::npos;) {
    pos += 4;
    const double cx = std::stod(svg.substr(pos));
    EXPECT_GE(cx, 0.0);
    EXPECT_LE(cx, 400.0);
  }
}

}  // namespace
}  // namespace lumen::sim
