// Snapshot-fuzz conformance tests: every algorithm's Compute must be total,
// deterministic, palette-closed, and emit finite targets on ARBITRARY
// snapshots — including ones no healthy execution would produce (wrong
// lights on hull corners, coincident entries, mid-protocol states). The
// engine can hand an algorithm any such snapshot after adversarial
// interleavings, so robustness here is load-bearing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/registry.hpp"
#include "model/algorithm.hpp"
#include "util/prng.hpp"

namespace lumen::core {
namespace {

using geom::Vec2;
using model::Light;
using model::Snapshot;

Snapshot random_snapshot(util::Prng& rng) {
  Snapshot snap;
  snap.reset(model::kAllLights[rng.next_below(model::kLightCount)]);
  const std::size_t n = rng.next_below(24);
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 p{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    // Occasionally inject structured degeneracies.
    if (rng.bernoulli(0.15) && snap.visible_count() > 0) {
      const auto others = snap.other_positions();
      const Vec2 prev = others[rng.next_below(others.size())];
      if (rng.bernoulli(0.5)) {
        p = prev;  // Coincident robots (a collision state).
      } else {
        p = prev * rng.uniform(0.1, 2.0);  // Collinear with origin.
      }
    }
    snap.push_visible(p, model::kAllLights[rng.next_below(model::kLightCount)]);
  }
  return snap;
}

class AlgorithmFuzzTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AlgorithmFuzzTest, TotalDeterministicAndPaletteClosed) {
  const auto algo = make_algorithm(GetParam());
  const auto palette = algo->palette();
  util::Prng rng{2026};
  for (int iter = 0; iter < 3000; ++iter) {
    const Snapshot snap = random_snapshot(rng);
    const auto a = algo->compute(snap);
    const auto b = algo->compute(snap);
    // Deterministic.
    ASSERT_EQ(a.target, b.target) << "iter " << iter;
    ASSERT_EQ(a.light, b.light) << "iter " << iter;
    // Finite target.
    ASSERT_TRUE(std::isfinite(a.target.x) && std::isfinite(a.target.y))
        << "iter " << iter;
    // Palette-closed.
    ASSERT_NE(std::find(palette.begin(), palette.end(), a.light), palette.end())
        << "iter " << iter;
    // A move must never aim at a visible robot's exact position (it would
    // be a guaranteed collision).
    if (a.moves()) {
      for (const Vec2& p : snap.other_positions()) {
        ASSERT_NE(a.target, p) << "iter " << iter;
      }
    }
  }
}

TEST_P(AlgorithmFuzzTest, BoundedTargets) {
  // Targets must stay within a constant factor of the snapshot's extent —
  // a runaway target would fling robots out of the configuration.
  const auto algo = make_algorithm(GetParam());
  util::Prng rng{77};
  for (int iter = 0; iter < 2000; ++iter) {
    const Snapshot snap = random_snapshot(rng);
    double extent = 1.0;
    for (const Vec2& p : snap.other_positions()) {
      extent = std::max(extent, geom::norm(p));
    }
    const auto action = algo->compute(snap);
    if (action.moves()) {
      EXPECT_LE(geom::norm(action.target), 4.0 * extent) << "iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, AlgorithmFuzzTest,
                         ::testing::Values("async-log", "seq-baseline",
                                           "ssync-parallel", "grid-cv",
                                           "mutual-vis"));

}  // namespace
}  // namespace lumen::core
