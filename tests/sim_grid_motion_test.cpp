// Grid motion-model invariants (model::MotionModel::kGrid): the engine
// snaps initial positions and Compute targets to the integer lattice, moves
// in single-axis legs, and keeps every committed endpoint on lattice points
// — on all three schedulers, with the write-log/VisibilityCache contract
// intact (cached runs are bit-identical to the cache-disabled oracle).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sim/monitors.hpp"
#include "sim/run.hpp"

namespace lumen::sim {
namespace {

using geom::Vec2;

bool is_integer(double v) { return v == std::nearbyint(v); }

bool is_lattice_point(Vec2 p) { return is_integer(p.x) && is_integer(p.y); }

/// Records every committed move's endpoints for post-hoc lattice checks.
class CommitRecorder final : public RunObserver {
 public:
  void on_commit(const CommitEvent& event, const WorldView&) override {
    if (event.move_started != nullptr) {
      segments_.push_back(*event.move_started);
    }
  }

  [[nodiscard]] const std::vector<MoveSegment>& segments() const noexcept {
    return segments_;
  }

 private:
  std::vector<MoveSegment> segments_;
};

RunConfig grid_config(SchedulerKind scheduler, std::uint64_t seed) {
  RunConfig config;
  config.scheduler = scheduler;
  config.seed = seed;
  return config;
}

std::vector<Vec2> lattice_initial(std::size_t n, std::uint64_t seed) {
  return gen::generate(gen::ConfigFamily::kLattice, n, seed, 1.0);
}

class GridMotionTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(GridMotionTest, EveryCommittedMoveIsOneAxisAlignedLatticeLeg) {
  const auto algo = core::make_algorithm("grid-cv");
  const auto initial = lattice_initial(12, 71);
  CommitRecorder recorder;
  RunObserver* obs[] = {&recorder};
  const RunResult run =
      run_simulation(*algo, initial, grid_config(GetParam(), 71), obs);

  ASSERT_TRUE(run.converged);
  for (const MoveSegment& move : recorder.segments()) {
    EXPECT_TRUE(is_lattice_point(move.from));
    EXPECT_TRUE(is_lattice_point(move.to));
    // One axis leg per commit: exactly one coordinate changes.
    EXPECT_TRUE(move.from.x == move.to.x || move.from.y == move.to.y);
    EXPECT_NE(move.from, move.to);
  }
  for (const Vec2& p : run.final_positions) {
    EXPECT_TRUE(is_lattice_point(p));
  }
}

TEST_P(GridMotionTest, NonIntegerInitialPositionsAreSnappedBeforeTheRun) {
  const auto algo = core::make_algorithm("grid-cv");
  const std::vector<Vec2> initial = {
      {0.3, 0.2}, {4.7, -0.4}, {-3.2, 5.4}, {6.1, 6.9}, {-5.5 + 0.1, -4.2}};
  const RunResult run =
      run_simulation(*algo, initial, grid_config(GetParam(), 5));

  ASSERT_EQ(run.initial_positions.size(), initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const Vec2 expect{std::nearbyint(initial[i].x),
                      std::nearbyint(initial[i].y)};
    EXPECT_EQ(run.initial_positions[i], expect);
  }
  for (const Vec2& p : run.final_positions) {
    EXPECT_TRUE(is_lattice_point(p));
  }
}

// The VisibilityCache contract under grid motion: replay/repair from the
// world write log must reproduce the one-shot oracle bit-for-bit, so a
// cached run and a cache-disabled run are byte-identical.
TEST_P(GridMotionTest, CachedRunMatchesCacheDisabledOracle) {
  const auto algo = core::make_algorithm("grid-cv");
  const auto initial = lattice_initial(14, 92);

  RunConfig cached = grid_config(GetParam(), 92);
  RunConfig oracle = cached;
  oracle.visibility_cache_budget = 0;

  const RunResult a = run_simulation(*algo, initial, cached);
  const RunResult b = run_simulation(*algo, initial, oracle);

  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.total_distance, b.total_distance);
  EXPECT_EQ(a.final_positions, b.final_positions);
  EXPECT_EQ(a.final_lights, b.final_lights);
  // The cache path actually engaged (and the oracle never did): grid moves
  // land in the write log, so warm Looks replay or repair instead of
  // rebuilding from scratch.
  EXPECT_GT(a.cache_replays + a.cache_repairs + a.cache_rebuilds, 0u);
  EXPECT_GT(a.cache_replays + a.cache_repairs, 0u);
  EXPECT_EQ(b.cache_replays + b.cache_repairs + b.cache_rebuilds, 0u);
}

TEST_P(GridMotionTest, GridRunSatisfiesItsDeclaredPredicate) {
  const auto algo = core::make_algorithm("grid-cv");
  const auto initial = lattice_initial(10, 17);
  const RunResult run =
      run_simulation(*algo, initial, grid_config(GetParam(), 17));

  ASSERT_TRUE(run.converged);
  EXPECT_TRUE(
      verify_success(algo->success_predicate(), run.final_positions).satisfied);
}

// Continuous algorithms are untouched by the grid machinery: a non-integer
// initial configuration stays non-integer (no snapping on kContinuous).
TEST_P(GridMotionTest, ContinuousAlgorithmsDoNotSnap) {
  const auto algo = core::make_algorithm("mutual-vis");
  const std::vector<Vec2> initial = {{0.25, 0.5}, {3.75, 0.5}, {1.5, 2.25}};
  const RunResult run =
      run_simulation(*algo, initial, grid_config(GetParam(), 3));

  ASSERT_EQ(run.initial_positions.size(), initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_EQ(run.initial_positions[i], initial[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, GridMotionTest,
                         ::testing::Values(SchedulerKind::kFsync,
                                           SchedulerKind::kSsync,
                                           SchedulerKind::kAsync));

}  // namespace
}  // namespace lumen::sim
