// Model-layer tests: local frames round-trip exactly enough, snapshots
// respect obstruction and frame transformation, and the light palette is
// closed and stable.
#include "model/frame.hpp"
#include "model/light.hpp"
#include "model/snapshot.hpp"

#include <gtest/gtest.h>

#include "geom/hull.hpp"
#include "util/prng.hpp"

namespace lumen::model {
namespace {

using geom::Vec2;

TEST(Light, PaletteIsClosedAndNamed) {
  EXPECT_EQ(kAllLights.size(), kLightCount);
  for (const Light l : kAllLights) {
    EXPECT_NE(to_string(l), "?");
  }
  EXPECT_EQ(to_string(Light::kCorner), "Corner");
  EXPECT_EQ(to_string(Light::kTransit), "Transit");
}

TEST(LocalFrame, IdentityIsIdentity) {
  const LocalFrame f;
  const Vec2 p{3.5, -2.25};
  EXPECT_EQ(f.to_local(p), p);
  EXPECT_EQ(f.to_world(p), p);
}

TEST(LocalFrame, OriginMapsToLocalZero) {
  util::Prng rng{5};
  for (int i = 0; i < 100; ++i) {
    const Vec2 origin{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const LocalFrame f = LocalFrame::random(origin, rng);
    const Vec2 local = f.to_local(origin);
    EXPECT_NEAR(local.x, 0.0, 1e-12);
    EXPECT_NEAR(local.y, 0.0, 1e-12);
  }
}

TEST(LocalFrame, RoundTripIsNearIdentity) {
  util::Prng rng{7};
  for (int i = 0; i < 500; ++i) {
    const Vec2 origin{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const LocalFrame f = LocalFrame::random(origin, rng);
    const Vec2 p{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Vec2 round = f.to_world(f.to_local(p));
    EXPECT_NEAR(round.x, p.x, 1e-9);
    EXPECT_NEAR(round.y, p.y, 1e-9);
  }
}

TEST(LocalFrame, ScaleAppliesToDistances) {
  const LocalFrame f{{0, 0}, 0.0, 2.5, false};
  const Vec2 local = f.to_local({4, 0});
  EXPECT_NEAR(geom::norm(local), 10.0, 1e-12);
}

TEST(LocalFrame, ReflectionFlipsOrientation) {
  const LocalFrame plain{{0, 0}, 0.7, 1.3, false};
  const LocalFrame mirrored{{0, 0}, 0.7, 1.3, true};
  const Vec2 a{1, 0}, b{0, 1};
  // Cross product sign flips under reflection, is preserved without.
  const double plain_cross = geom::cross(plain.to_local(a), plain.to_local(b));
  const double mirrored_cross =
      geom::cross(mirrored.to_local(a), mirrored.to_local(b));
  EXPECT_GT(plain_cross, 0.0);
  EXPECT_LT(mirrored_cross, 0.0);
  EXPECT_TRUE(mirrored.reflected());
  EXPECT_FALSE(plain.reflected());
}

TEST(LocalFrame, SimilarityPreservesDistanceRatios) {
  util::Prng rng{11};
  for (int i = 0; i < 200; ++i) {
    const LocalFrame f = LocalFrame::random({rng.uniform(-9, 9), rng.uniform(-9, 9)}, rng);
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 c{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double world_ratio = geom::distance(a, b) / (geom::distance(a, c) + 1e-30);
    const double local_ratio = geom::distance(f.to_local(a), f.to_local(b)) /
                               (geom::distance(f.to_local(a), f.to_local(c)) + 1e-30);
    EXPECT_NEAR(world_ratio, local_ratio, 1e-6 * (1 + world_ratio));
  }
}

TEST(LocalFrame, DirectionTransformIgnoresTranslation) {
  util::Prng rng{13};
  const LocalFrame f = LocalFrame::random({42, -17}, rng);
  const Vec2 d{3, 4};
  const Vec2 via_points = f.to_local({45, -13}) - f.to_local({42, -17});
  const Vec2 via_direction = f.direction_to_local(d);
  EXPECT_NEAR(via_points.x, via_direction.x, 1e-9);
  EXPECT_NEAR(via_points.y, via_direction.y, 1e-9);
}

TEST(Snapshot, ObstructionExcludesBlockedRobots) {
  const std::vector<Vec2> pts = {{0, 0}, {5, 0}, {10, 0}, {0, 7}};
  const std::vector<Light> lights(4, Light::kOff);
  const LocalFrame identity;
  const Snapshot snap = build_snapshot(pts, lights, 0, identity);
  // Robot 2 is hidden behind robot 1; robot 3 is visible.
  EXPECT_EQ(snap.visible_count(), 2u);
}

TEST(Snapshot, EntriesAreInLocalFrame) {
  const std::vector<Vec2> pts = {{10, 10}, {13, 14}};
  const std::vector<Light> lights = {Light::kOff, Light::kCorner};
  const LocalFrame frame{{10, 10}, 0.0, 1.0, false};
  const Snapshot snap = build_snapshot(pts, lights, 0, frame);
  ASSERT_EQ(snap.visible_count(), 1u);
  EXPECT_NEAR(snap.other_positions()[0].x, 3.0, 1e-12);
  EXPECT_NEAR(snap.other_positions()[0].y, 4.0, 1e-12);
  EXPECT_EQ(snap.other_lights()[0], Light::kCorner);
  EXPECT_EQ(snap.self_light, Light::kOff);
}

TEST(Snapshot, LightCountsAndHelpers) {
  Snapshot snap;
  snap.reset(Light::kInterior);
  snap.push_visible({1, 0}, Light::kCorner);
  snap.push_visible({0, 1}, Light::kCorner);
  snap.push_visible({1, 1}, Light::kTransit);
  EXPECT_EQ(snap.count_light(Light::kCorner), 2u);
  EXPECT_TRUE(snap.any_light(Light::kTransit));
  EXPECT_FALSE(snap.any_light(Light::kLine));
  EXPECT_EQ(snap.all_positions().size(), 4u);
  EXPECT_EQ(snap.all_positions()[0], Vec2{});
  EXPECT_EQ(snap.other_positions().size(), 3u);
}

TEST(Snapshot, VisibleSetInvariantUnderFrames) {
  // The SET of visible robots is a world property; the frame only changes
  // coordinates. Cardinality and lights must match across random frames.
  util::Prng rng{19};
  std::vector<Vec2> pts;
  std::vector<Light> lights;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10)});
    lights.push_back(kAllLights[rng.next_below(kLightCount)]);
  }
  const LocalFrame identity{pts[0], 0.0, 1.0, false};
  const Snapshot reference = build_snapshot(pts, lights, 0, identity);
  for (int trial = 0; trial < 20; ++trial) {
    const LocalFrame f = LocalFrame::random(pts[0], rng);
    const Snapshot snap = build_snapshot(pts, lights, 0, f);
    ASSERT_EQ(snap.visible_count(), reference.visible_count());
    for (std::size_t k = 0; k < snap.visible_count(); ++k) {
      EXPECT_EQ(snap.other_lights()[k], reference.other_lights()[k]);
    }
  }
}

}  // namespace
}  // namespace lumen::model
