// CLI parser tests.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace lumen::util {
namespace {

Cli make_cli() {
  Cli cli;
  cli.flag("n", "count", "32")
      .flag("rate", "a rate", "1.5")
      .flag("name", "a string", "default")
      .flag("verbose", "a boolean", "false")
      .flag("list", "comma ints", "1,2,3");
  return cli;
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  const std::array argv = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_EQ(cli.get_int("n"), 32);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.is_set("n"));
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "--n=64", "--rate=2.25", "--name=abc"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("n"), 64);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.25);
  EXPECT_EQ(cli.get("name"), "abc");
  EXPECT_TRUE(cli.is_set("n"));
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "--n", "128"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("n"), 128);
}

TEST(Cli, BareBooleanFlag) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagIsError) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(Cli, PositionalArgumentsCollected) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "input.txt", "--n=2", "more"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "more");
}

TEST(Cli, HelpRequested) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.help_requested());
  const std::string usage = cli.usage("prog", "test program");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("count"), std::string::npos);
}

TEST(Cli, IntListParsing) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "--list=8,16,32"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  const auto xs = cli.get_int_list("list");
  ASSERT_TRUE(xs.has_value());
  ASSERT_EQ(xs->size(), 3u);
  EXPECT_EQ((*xs)[0], 8);
  EXPECT_EQ((*xs)[2], 32);
}

TEST(Cli, IntListDefault) {
  Cli cli = make_cli();
  const std::array argv = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  ASSERT_TRUE(cli.get_int_list("list").has_value());
  EXPECT_EQ(cli.get_int_list("list")->size(), 3u);
}

TEST(Cli, IntListRejectsMalformedLists) {
  // A typoed sweep list must fail loudly, not silently skip/garble entries.
  for (const char* bad : {"8,,16", "8x", "8,16,", ",8", "", "8;16", "1.5",
                          "9999999999999999999999"}) {
    EXPECT_FALSE(parse_int_list(bad).has_value()) << bad;
  }
  Cli cli = make_cli();
  const std::array argv = {"prog", "--list=8,,16"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(cli.get_int_list("list").has_value());
}

TEST(Cli, IntListAcceptsNegativesAndSpaces) {
  const auto xs = parse_int_list("-4, 8");
  ASSERT_TRUE(xs.has_value());
  EXPECT_EQ((*xs)[0], -4);
  EXPECT_EQ((*xs)[1], 8);
}

TEST(Cli, BoolTruthyValues) {
  Cli cli = make_cli();
  const std::array argv = {"prog", "--verbose=yes"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnregisteredGetReturnsEmpty) {
  Cli cli = make_cli();
  const std::array argv = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_EQ(cli.get("nothing"), "");
  EXPECT_EQ(cli.get_int("nothing"), 0);
}

}  // namespace
}  // namespace lumen::util
